"""Setuptools shim.

The environment this reproduction targets is fully offline and does not ship
the ``wheel`` package, so PEP 660 editable installs (which build a wheel)
fail.  Keeping a classic ``setup.py`` allows::

    pip install -e . --no-build-isolation --no-use-pep517

to fall back to the legacy ``setup.py develop`` code path.  All project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
