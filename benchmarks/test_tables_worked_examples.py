"""Tables II-IV: the paper's worked scheduling examples.

Unlike the figure sweeps these are exact reproductions: the schedules are
computed with the exact (memoised) ``M`` search on the paper's example
topologies and must match the published ``P(A)`` values and colour choices.
The benchmark timings document the cost of the exact search at example scale.
"""

from __future__ import annotations

import pytest

from repro.experiments.tables import table2, table3, table4

from _bench_utils import emit


@pytest.mark.table
def test_table2_figure2a_schedule(benchmark):
    """Table II: Figure 2(a), round-based system, P(A) = 2."""
    result = benchmark(table2)
    emit("Table II (reproduced)", result.to_text())
    assert result.end_time == 2
    assert result.matches_paper
    assert [row.selected_color for row in result.rows] == [(1,), (2,)]
    assert result.rows[1].receivers == (4, 5)


@pytest.mark.table
def test_table3_figure1c_schedule(benchmark):
    """Table III: Figure 1(c), round-based system, P(A) = 3."""
    result = benchmark(table3)
    emit("Table III (reproduced)", result.to_text())
    assert result.end_time == 3
    assert result.matches_paper
    assert [row.selected_color for row in result.rows] == [(11,), (1,), (0, 4)]
    assert result.rows[1].receivers == (3, 4, 10)
    assert result.rows[2].receivers == (5, 6, 7, 8, 9)
    # lambda(W) per decision: one colour at the source, three at round 2.
    assert [row.num_colors for row in result.rows] == [1, 3, 3]


@pytest.mark.table
def test_table4_figure2e_schedule(benchmark):
    """Table IV: Figure 2(e), duty-cycle system, t_s = 2, P(A) = 4."""
    result = benchmark(table4)
    emit("Table IV (reproduced)", result.to_text())
    assert result.end_time == 4
    assert result.matches_paper
    # Slot 2: source; slot 3: nobody awake (N/A row); slot 4: node 2 selected.
    assert [row.time for row in result.rows] == [2, 4]
    assert result.rows[-1].selected_color == (2,)
