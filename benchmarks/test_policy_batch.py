"""Policy-decision microbenchmark: batched deciders and lane fast-forward.

The end-to-end stripe benchmark (``test_batched_sweep.py``) measures the
whole executor; this module isolates the two mechanisms the batched
decision protocol adds on top of the stacked kernels:

* **decision throughput** — ``run_batched`` with ``batch_decisions=True``
  (one ``select_advance_batch`` call per macro-slot over stacked lane
  views) versus ``batch_decisions=False`` (the per-lane
  ``BroadcastState.for_engine`` fallback) on the same replay stripe.  The
  traces are bit-identical by the protocol contract, so the ratio is pure
  decision-dispatch cost.  Gated at paper scale; quick scale records only.
* **lane fast-forward** — the 17-approx duty-cycle column decided with
  ``next_decision_slot`` hints driving the wake-time heap.  The gate is
  *deterministic* (decision counts, not wall time): without fast-forward
  the executor polls every lane once per slot, so decisions ~= covered
  slots; with it, a duty-cycled lane is only woken at pending parents'
  wake-up slots.  Asserted at every scale.
* **colour-cache reuse** — ``cached_greedy_color_classes`` warm-hit
  versus the uncached ``greedy_color_classes``, the memoisation the
  plan-driven deciders lean on when sweep repetitions revisit the same
  ``(topology, covered)`` frontier.  Regression floor at paper scale.

Results are written as JSON to ``$REPRO_BENCH_POLICY_BATCH_JSON`` (default
``BENCH_policy_batch.json`` in the working directory) so CI can upload
them as an artifact alongside ``BENCH_batched.json``.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.baselines.approx17 import Approx17Policy
from repro.core.coloring import cached_greedy_color_classes, greedy_color_classes
from repro.core.policies import EModelPolicy
from repro.dutycycle.schedule import WakeupSchedule
from repro.network.deployment import DeploymentConfig, deploy_uniform
from repro.sim.batched import BatchProfile, BroadcastTask, run_batched
from repro.sim.broadcast import run_broadcast
from repro.sim.replay import ReplayPolicy

from _bench_utils import (
    emit,
    paper_scale as _paper_scale,
    time_pair as _time_pair,
    time_per_call as _time_per_call,
)

NUM_NODES = 50  # the dispatch-bound paper-geometry column
LANES = 60
DUTY_RATE = 10
#: Batched decisions vs the per-lane fallback on the replay stripe
#: (measured ~1.2-1.3x on the reference machine; the decider is one dict
#: lookup per lane, so this isolates the protocol's frame overhead).
DECISION_SPEEDUP_TARGET = 1.1
#: Fast-forwarded decisions per covered slot for the 17-approx duty-cycle
#: column (measured ~0.26 at rate 10: one decision per pending parent
#: wake-up instead of one poll per slot).
FAST_FORWARD_DECISION_RATIO = 0.35
#: Warm colour-cache hit vs an uncached recolouring (measured ~20x on the
#: mid-broadcast frontier, where the uncovered residue is already small;
#: early frontiers reach ~100x).
COLOR_CACHE_TARGET = 10.0


def _json_path() -> str:
    return os.environ.get("REPRO_BENCH_POLICY_BATCH_JSON", "BENCH_policy_batch.json")


@pytest.fixture(scope="module")
def results_sink():
    """Accumulates benchmark numbers; written as a JSON artifact at teardown."""
    results: dict = {
        "workload": {
            "num_nodes": NUM_NODES,
            "lanes": LANES,
            "duty_rate": DUTY_RATE,
            "area_side": 50.0,
            "radius": 10.0,
            "scale": "paper" if _paper_scale() else "quick",
        }
    }
    yield results
    path = _json_path()
    with open(path, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")


@pytest.fixture(scope="module")
def stripe_cells():
    """60 paper-geometry n=50 cells: ``[(topology, source, trace), ...]``."""
    config = DeploymentConfig(
        num_nodes=NUM_NODES,
        area_side=50.0,
        radius=10.0,
        source_min_ecc=2,
        source_max_ecc=None,
    )
    cells = []
    for lane in range(LANES):
        topology, source = deploy_uniform(config=config, seed=2012 + lane)
        trace = run_broadcast(
            topology, source, EModelPolicy(), validate=False, engine="vectorized"
        )
        cells.append((topology, source, trace))
    return cells


@pytest.mark.ablation
def test_decision_throughput(stripe_cells, results_sink):
    """Batched replay decisions beat the per-lane fallback on the stripe."""
    tasks = [
        BroadcastTask(topology, source, ReplayPolicy(trace))
        for topology, source, trace in stripe_cells
    ]

    def batched() -> None:
        run_batched(tasks, validate=False)

    def fallback() -> None:
        run_batched(tasks, validate=False, batch_decisions=False)

    reps = 10 if _paper_scale() else 3
    # Interleaved timing: this ratio sits near 1.25x, so disjoint timing
    # windows would let machine-load drift swamp the signal entirely.
    fallback_s, batched_s = _time_pair(fallback, batched, min_reps=reps)
    speedup = fallback_s / batched_s

    # One profiled run turns the wall time into a decisions/sec figure.
    profile = BatchProfile()
    run_batched(tasks, validate=False, profile=profile)
    decisions_per_s = profile.lanes_decided / batched_s

    results_sink["decision_throughput"] = {
        "batched_ms": batched_s * 1e3,
        "fallback_ms": fallback_s * 1e3,
        "speedup": speedup,
        "target": DECISION_SPEEDUP_TARGET,
        "decisions": profile.lanes_decided,
        "decisions_per_s": decisions_per_s,
    }
    emit(
        "Replay decision throughput (60-lane n=50 stripe)",
        f"batched {batched_s * 1e3:.2f} ms  fallback {fallback_s * 1e3:.2f} ms  "
        f"({speedup:.2f}x, {decisions_per_s / 1e3:.0f}k decisions/s)",
    )
    if _paper_scale():
        assert speedup >= DECISION_SPEEDUP_TARGET, (
            f"batched decisions only {speedup:.2f}x over the per-lane "
            f"fallback; expected >= {DECISION_SPEEDUP_TARGET}x"
        )


@pytest.mark.ablation
def test_fast_forward_decision_count(stripe_cells, results_sink):
    """Lane fast-forward polls duty-cycled lanes ~once per parent wake-up.

    Deterministic at every scale: the workload is seeded, so the decision
    counts are exact.  ``lanes_decided`` counts every view handed to a
    decider; without ``next_decision_slot`` hints the executor would offer
    each lane every slot, putting the count at ~the total covered slots.
    """
    profile = BatchProfile()
    tasks = [
        BroadcastTask(
            topology,
            source,
            Approx17Policy(),
            schedule=WakeupSchedule(topology.node_ids, rate=DUTY_RATE, seed=7),
            align_start=True,
        )
        for topology, source, _ in stripe_cells
    ]
    results = run_batched(tasks, validate=False, profile=profile)
    total_slots = sum(
        result.end_time - result.start_time + 1 for result in results
    )
    ratio = profile.lanes_decided / total_slots
    wasted = profile.lanes_decided - profile.advances

    results_sink["fast_forward"] = {
        "decisions": profile.lanes_decided,
        "advances": profile.advances,
        "covered_slots": total_slots,
        "decisions_per_slot": ratio,
        "ratio_ceiling": FAST_FORWARD_DECISION_RATIO,
    }
    emit(
        "Lane fast-forward (17-approx, duty rate 10)",
        f"{profile.lanes_decided} decisions over {total_slots} covered slots "
        f"(ratio {ratio:.3f}, {wasted} produced no advance)",
    )
    assert ratio <= FAST_FORWARD_DECISION_RATIO, (
        f"fast-forward regressed: {profile.lanes_decided} decisions over "
        f"{total_slots} covered slots (ratio {ratio:.3f} > "
        f"{FAST_FORWARD_DECISION_RATIO}); lanes are being polled on slots "
        "where no pending parent is awake"
    )


@pytest.mark.ablation
def test_color_cache_reuse(stripe_cells, results_sink):
    """Warm colour-cache hits stay far cheaper than recolouring."""
    topology, _, trace = stripe_cells[0]
    # A mid-broadcast frontier — the shape plan-driven deciders re-request
    # across sweep repetitions over the same deployment.
    covered = trace.advances[len(trace.advances) // 2].color | {trace.source}

    def cold() -> None:
        greedy_color_classes(topology, covered)

    def warm() -> None:
        cached_greedy_color_classes(topology, covered)

    warm()  # populate the cache before timing the hit path
    reps = 200 if _paper_scale() else 20
    cold_s = _time_per_call(cold, min_reps=reps)
    warm_s = _time_per_call(warm, min_reps=reps)
    speedup = cold_s / warm_s

    results_sink["color_cache"] = {
        "cold_us": cold_s * 1e6,
        "warm_us": warm_s * 1e6,
        "speedup": speedup,
        "target": COLOR_CACHE_TARGET,
    }
    emit(
        "Colour-cache reuse (n=50 mid-broadcast frontier)",
        f"cold {cold_s * 1e6:.1f} us  warm {warm_s * 1e6:.2f} us  ({speedup:.0f}x)",
    )
    if _paper_scale():
        assert speedup >= COLOR_CACHE_TARGET, (
            f"warm colour-cache hit only {speedup:.1f}x over recolouring; "
            f"expected >= {COLOR_CACHE_TARGET}x — the memoisation the "
            "plan-driven deciders amortise has regressed"
        )
