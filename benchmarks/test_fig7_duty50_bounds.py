"""Figure 7: analytical upper bounds in the light duty-cycle system (r = 50).

Same comparison as Figure 5 at the 2% duty cycle: the Theorem-1 bound
``2 r (d + 2)`` vs the baseline's ``17 k d``; the gap widens with the cycle
length because ``k`` scales with ``2 r``.
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import figure5, figure7

from _bench_utils import emit, mean


@pytest.mark.figure
def test_figure7_duty50_bounds(benchmark, sweep_config, bench_rounds):
    result = benchmark.pedantic(figure7, args=(sweep_config,), **bench_rounds)
    emit("Figure 7 (reproduced, analytical bounds, r = 50)", result.to_text())

    theorem1 = result.series_for("OPT-analysis (2r(d+2))")
    baseline = result.series_for("17-approx bound (17kd)")

    for i in range(len(result.x_values)):
        assert theorem1[i] < baseline[i]
        assert baseline[i] / theorem1[i] >= 4.0

    # The r = 50 bounds are ~5x the r = 10 bounds for the same densities
    # (both scale linearly in r); verify the scaling against Figure 5.
    fig5 = figure5(sweep_config, sweep=result.sweep)
    ratio = mean(theorem1) / mean(fig5.series_for("OPT-analysis (2r(d+2))"))
    assert ratio == pytest.approx(5.0, rel=0.01)
