"""Telemetry overhead gate: an instrumented sweep stays within 5% of bare.

The zero-cost-when-off contract (docs/telemetry.md) has two measurable
halves:

* **off** — with no sink attached, the ``if EVENT_BUS.active`` guards keep
  instrumented hot paths at one attribute load + branch per site, so a
  bare sweep after the telemetry spine landed must cost what it cost
  before it;
* **on** — with a ring sink attached, events are constructed and buffered
  at cell/store/lane granularity (never per slot of a non-streamed run),
  so even a fully observed sweep must stay within ``OVERHEAD_BUDGET`` of
  the bare one.

Both sides are timed interleaved (:func:`_bench_utils.time_pair`) so
machine-load drift cannot masquerade as overhead.  The streamed slot path
— the only per-advance emission — is measured separately with the same
budget.  Results land in ``$REPRO_BENCH_TELEMETRY_JSON`` (default
``BENCH_telemetry.json``) for the CI artifact trajectory.
"""

from __future__ import annotations

import dataclasses
import json
import os

import pytest

from repro.core.policies import EModelPolicy
from repro.experiments.config import sweep_from_env
from repro.experiments.runner import run_sweep
from repro.network.deployment import DeploymentConfig, deploy_uniform
from repro.obs.bus import EVENT_BUS
from repro.obs.sinks import RingBufferSink
from repro.sim import stream_broadcast

from _bench_utils import emit, paper_scale as _paper_scale, time_pair

#: Instrumented / bare wall-time ratio each workload must stay under.
OVERHEAD_BUDGET = 1.05


def _json_path() -> str:
    return os.environ.get("REPRO_BENCH_TELEMETRY_JSON", "BENCH_telemetry.json")


def _sweep_config():
    config = sweep_from_env()
    if not _paper_scale():
        # One 50-node cell keeps a single timed call around 100 ms: long
        # enough that a 5% regression is far above timer noise, short
        # enough for the interleaved rounds to fit the CI budget.
        config = dataclasses.replace(config, node_counts=(50,), repetitions=1)
    return config


@pytest.mark.ablation
def test_telemetry_overhead_within_budget(tmp_path):
    """Ring-sink-instrumented runs stay within 5% of bare runs."""
    config = _sweep_config()
    ring = RingBufferSink()

    def bare_sweep():
        run_sweep(config, system="duty", rate=10)

    def observed_sweep():
        with EVENT_BUS.attached(ring):
            run_sweep(config, system="duty", rate=10)

    bare_s, observed_s = time_pair(bare_sweep, observed_sweep, min_reps=2, budget_s=20.0)
    sweep_ratio = observed_s / bare_s
    assert ring.total > 0, "the observed side emitted nothing — vacuous measurement"

    # The streamed slot loop is the only per-advance emission site.
    topology, source = deploy_uniform(
        config=DeploymentConfig(
            num_nodes=100,
            area_side=30.0,
            radius=8.0,
            source_min_ecc=2,
            source_max_ecc=None,
        ),
        seed=11,
    )

    def bare_stream():
        stream_broadcast(topology, source, EModelPolicy())

    def observed_stream():
        with EVENT_BUS.attached(ring):
            stream_broadcast(topology, source, EModelPolicy())

    bare_stream_s, observed_stream_s = time_pair(
        bare_stream, observed_stream, min_reps=5, budget_s=10.0
    )
    stream_ratio = observed_stream_s / bare_stream_s

    cells = len(config.node_counts) * config.repetitions
    results = {
        "workload": {
            "node_counts": list(config.node_counts),
            "repetitions": config.repetitions,
            "cells": cells,
            "scale": "paper" if _paper_scale() else "quick",
            "overhead_budget": OVERHEAD_BUDGET,
        },
        "sweep": {
            "bare_s": bare_s,
            "observed_s": observed_s,
            "ratio": sweep_ratio,
            "bare_cells_per_s": cells / bare_s,
            "observed_cells_per_s": cells / observed_s,
        },
        "stream": {
            "bare_s": bare_stream_s,
            "observed_s": observed_stream_s,
            "ratio": stream_ratio,
        },
    }
    with open(_json_path(), "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")

    emit(
        "Telemetry overhead (ring sink attached vs bare)",
        f"sweep:  bare {bare_s * 1e3:8.1f} ms | observed {observed_s * 1e3:8.1f} ms "
        f"| ratio {sweep_ratio:.3f}\n"
        f"stream: bare {bare_stream_s * 1e3:8.1f} ms | observed "
        f"{observed_stream_s * 1e3:8.1f} ms | ratio {stream_ratio:.3f}\n"
        f"budget: <= {OVERHEAD_BUDGET:.2f}",
    )
    assert sweep_ratio <= OVERHEAD_BUDGET, (
        f"instrumented sweep is {(sweep_ratio - 1) * 100:.1f}% slower than bare; "
        f"budget is {(OVERHEAD_BUDGET - 1) * 100:.0f}%"
    )
    assert stream_ratio <= OVERHEAD_BUDGET, (
        f"instrumented stream is {(stream_ratio - 1) * 100:.1f}% slower than bare; "
        f"budget is {(OVERHEAD_BUDGET - 1) * 100:.0f}%"
    )
