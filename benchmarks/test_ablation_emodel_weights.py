"""Ablation A2: the Eq. (11) weight used by the asynchronous E-model.

The paper constructs the duty-cycle estimate with cycle-waiting-time weights
``t(u, v)``; proactively those are not known exactly, so our default uses the
expectation ``(r + 1) / 2`` per hop (DESIGN.md substitution).  This ablation
compares the expected-CWT weighting against plain hop counting ("unit") to
show the reported E-model latencies are not sensitive to that choice — the
selection rule (Eq. 10) only compares estimates, and a uniform per-hop scale
factor preserves the comparison.
"""

from __future__ import annotations

import pytest

from repro.core.policies import EModelPolicy
from repro.dutycycle.schedule import WakeupSchedule
from repro.network.deployment import DeploymentConfig, deploy_uniform
from repro.sim.broadcast import run_broadcast
from repro.utils.format import format_table

from _bench_utils import emit, mean


def _run_weight_comparison(rate: int = 10, count: int = 3, num_nodes: int = 80):
    config = DeploymentConfig(num_nodes=num_nodes, source_min_ecc=4, source_max_ecc=None)
    rows = []
    expected_latencies = []
    unit_latencies = []
    for index in range(count):
        topology, source = deploy_uniform(config=config, seed=200 + index)
        schedule = WakeupSchedule(topology.node_ids, rate=rate, seed=300 + index)
        expected = run_broadcast(
            topology,
            source,
            EModelPolicy(weight="expected"),
            schedule=schedule,
            align_start=True,
            validate=False,
        ).latency
        unit = run_broadcast(
            topology,
            source,
            EModelPolicy(weight="unit"),
            schedule=schedule,
            align_start=True,
            validate=False,
        ).latency
        expected_latencies.append(expected)
        unit_latencies.append(unit)
        rows.append([index, expected, unit])
    return rows, expected_latencies, unit_latencies


@pytest.mark.ablation
def test_ablation_emodel_weights(benchmark, bench_rounds):
    rows, expected, unit = benchmark.pedantic(_run_weight_comparison, **bench_rounds)
    emit(
        "Ablation A2: asynchronous E-model weight choice (r = 10)",
        format_table(["deployment", "expected-CWT weight", "unit weight"], rows),
    )
    # A uniform per-hop scale factor cannot change which colour holds the
    # maximum estimate, so the two weightings produce identical schedules.
    assert expected == unit
    assert mean(expected) > 0
