"""Backend microbenchmark: reference vs vectorized engines on a 500-node sweep.

The workload is a paper-shaped duty-cycle sweep at 500 nodes (50 x 50 sq-ft,
10-ft radius, cycle rates 10 and 50) with three schedulers.  Three
measurements are taken, all on *recorded traces* so that zero policy cost
pollutes the comparison (the policies are identical under both backends by
the parity guarantee):

* **parity** — both engines replay every trace bit-identically and both
  validator backends return a clean bill (this is the part the CI smoke job
  runs; it is assertion-only and timing-free);
* **kernel throughput** — the interference kernels themselves
  (``conflicting_pairs`` + ``receivers_of`` per advance versus the bitset
  view's fused ``check_and_receivers``), replayed over every advance of the
  sweep.  This isolates exactly the set-algebra the vectorized backend
  replaces with matrix ops; the paper-scale run asserts the >= 5x speedup
  target (measured ~7x on the reference machine);
* **end-to-end replay latency** — ``run_broadcast`` + trace validation per
  backend.  Engine-side machinery only; reported and gated loosely (the
  sequential policy protocol bounds this at a smaller factor than the
  kernels).

Results are written as JSON to ``$REPRO_BENCH_JSON`` (default
``engine-backends.json`` in the working directory) so CI can upload them as
an artifact.  ``REPRO_BENCH_SCALE=paper`` enables the timing assertions;
the default quick scale measures but only asserts parity.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.baselines.approx17 import Approx17Policy
from repro.baselines.flooding import LargestFirstPolicy
from repro.core.policies import EModelPolicy
from repro.dutycycle.schedule import WakeupSchedule
from repro.network.bitset import bitset_view
from repro.network.deployment import DeploymentConfig, deploy_uniform
from repro.network.interference import conflicting_pairs, receivers_of
from repro.sim.broadcast import run_broadcast
from repro.sim.replay import ReplayPolicy
from repro.sim.validation import validate_broadcast

from _bench_utils import emit, paper_scale as _paper_scale, time_per_call as _time_per_call

NUM_NODES = 500
DUTY_RATES = (10, 50)
POLICIES = {
    "largest-first": LargestFirstPolicy,
    "17-approx": Approx17Policy,
    "E-model": EModelPolicy,
}
SPEEDUP_TARGET = 5.0


def _json_path() -> str:
    return os.environ.get("REPRO_BENCH_JSON", "engine-backends.json")


@pytest.fixture(scope="module")
def results_sink():
    """Accumulates benchmark numbers; written as a JSON artifact at teardown."""
    results: dict = {
        "workload": {
            "num_nodes": NUM_NODES,
            "duty_rates": list(DUTY_RATES),
            "policies": sorted(POLICIES),
            "scale": "paper" if _paper_scale() else "quick",
        }
    }
    yield results
    path = _json_path()
    with open(path, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")


@pytest.fixture(scope="module")
def sweep_workload():
    """The recorded 500-node duty-cycle sweep: (topology, [(name, rate, schedule, trace)])."""
    config = DeploymentConfig(
        num_nodes=NUM_NODES,
        area_side=50.0,
        radius=10.0,
        source_min_ecc=5,
        source_max_ecc=8,
    )
    topology, source = deploy_uniform(config=config, seed=2012)
    entries = []
    for rate in DUTY_RATES:
        schedule = WakeupSchedule(topology.node_ids, rate=rate, seed=rate)
        for name, make_policy in POLICIES.items():
            trace = run_broadcast(
                topology,
                source,
                make_policy(),
                schedule=schedule,
                align_start=True,
                validate=False,
            )
            entries.append((name, rate, schedule, trace))
    return topology, source, entries


@pytest.mark.ablation
def test_backend_parity_on_500_node_sweep(sweep_workload):
    """Every trace replays bit-identically and validates cleanly on both backends."""
    topology, source, entries = sweep_workload
    for name, rate, schedule, trace in entries:
        for engine in ("reference", "vectorized"):
            replayed = run_broadcast(
                topology,
                source,
                ReplayPolicy(trace),
                schedule=schedule,
                start_time=trace.start_time,
                validate=True,
                engine=engine,
            )
            assert replayed == trace, f"{name} r={rate}: {engine} replay diverged"
        for backend in ("reference", "vectorized"):
            violations = validate_broadcast(
                topology, trace, schedule=schedule, backend=backend
            )
            assert violations == [], f"{name} r={rate}: {backend} validator objects"


@pytest.mark.ablation
def test_interference_kernel_speedup(sweep_workload, results_sink):
    """The vectorized interference kernels beat the reference by >= 5x.

    One *pass* replays coverage through every advance of every trace of the
    sweep, computing the conflict check and the receiver set per advance —
    the backend work the tentpole vectorized.  Quick scale records the
    numbers; paper scale enforces the target.
    """
    topology, _, entries = sweep_workload
    view = bitset_view(topology)

    def reference_pass() -> None:
        for _, _, _, trace in entries:
            covered = frozenset({trace.source})
            for advance in trace.advances:
                assert not conflicting_pairs(topology, advance.color, covered)
                received = receivers_of(topology, advance.color, covered)
                assert received == advance.receivers
                covered = covered | received

    def vectorized_pass() -> None:
        for _, _, _, trace in entries:
            covered_bool = np.zeros(view.num_nodes, dtype=bool)
            covered_bool[view.index_of(trace.source)] = True
            for advance in trace.advances:
                tx_idx = view.indices(advance.color)
                conflict, received_bool = view.check_and_receivers(tx_idx, covered_bool)
                assert not conflict
                assert int(received_bool.sum()) == len(advance.receivers)
                covered_bool |= received_bool

    reps = 20 if _paper_scale() else 5
    reference_s = _time_per_call(reference_pass, min_reps=reps)
    vectorized_s = _time_per_call(vectorized_pass, min_reps=reps)
    speedup = reference_s / vectorized_s
    results_sink["kernel"] = {
        "reference_ms_per_pass": reference_s * 1e3,
        "vectorized_ms_per_pass": vectorized_s * 1e3,
        "speedup": speedup,
        "target": SPEEDUP_TARGET,
    }
    emit(
        "Interference-kernel throughput (500-node duty-cycle sweep)",
        f"reference:  {reference_s * 1e3:8.3f} ms/pass\n"
        f"vectorized: {vectorized_s * 1e3:8.3f} ms/pass\n"
        f"speedup:    {speedup:8.2f}x  (target >= {SPEEDUP_TARGET}x at paper scale)",
    )
    if _paper_scale():
        assert speedup >= SPEEDUP_TARGET, (
            f"vectorized interference kernels only {speedup:.2f}x faster; "
            f"expected >= {SPEEDUP_TARGET}x"
        )


@pytest.mark.ablation
def test_replay_latency_per_backend(sweep_workload, results_sink):
    """End-to-end engine+validation latency per backend on each trace."""
    topology, source, entries = sweep_workload
    reps = 30 if _paper_scale() else 5
    per_config: dict[str, dict[str, float]] = {}
    totals = {"reference": 0.0, "vectorized": 0.0}
    for name, rate, schedule, trace in entries:
        policy = ReplayPolicy(trace)
        row: dict[str, float] = {}
        for engine in ("reference", "vectorized"):

            def one_run(engine: str = engine) -> None:
                run_broadcast(
                    topology,
                    source,
                    policy,
                    schedule=schedule,
                    start_time=trace.start_time,
                    validate=True,
                    engine=engine,
                )

            seconds = _time_per_call(one_run, min_reps=reps)
            row[engine] = seconds * 1e3
            totals[engine] += seconds
        row["speedup"] = row["reference"] / row["vectorized"]
        per_config[f"{name}-r{rate}"] = row
    total_speedup = totals["reference"] / totals["vectorized"]
    results_sink["replay"] = {
        "per_config_ms": per_config,
        "total_reference_ms": totals["reference"] * 1e3,
        "total_vectorized_ms": totals["vectorized"] * 1e3,
        "total_speedup": total_speedup,
    }
    lines = [
        f"{key:>20}: ref {row['reference']:7.3f} ms  vec {row['vectorized']:7.3f} ms"
        f"  ({row['speedup']:.2f}x)"
        for key, row in per_config.items()
    ]
    lines.append(f"{'sweep total':>20}: {total_speedup:.2f}x")
    emit("Replay latency per backend (engine + validation)", "\n".join(lines))
    if _paper_scale():
        # The sequential policy protocol bounds this below the kernel
        # speedup; gate regressions, not the headline number.
        assert total_speedup >= 1.5, (
            f"vectorized backend no longer faster end-to-end ({total_speedup:.2f}x)"
        )
