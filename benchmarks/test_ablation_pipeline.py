"""Ablation A3: how much of the gain is the pipeline itself?

The paper's improvement has two ingredients: (a) re-colouring the whole
frontier after every advance instead of synchronising per BFS layer (the
pipeline), and (b) selecting *which* colour to launch with the time counter
``M`` / the edge estimate ``E`` (conflict awareness).  This ablation isolates
them by comparing, on the same deployments:

* the 26-approximation (no pipeline, no informed selection),
* ``LargestFirstPolicy`` (pipeline, naive most-receivers-first selection),
* G-OPT (pipeline + M-driven selection).

Expected shape: the pipeline alone already removes a large share of the
baseline's latency; the informed selection removes a further round or more,
which is exactly the motivation of Section II.
"""

from __future__ import annotations

import pytest

from repro.baselines.approx26 import Approx26Policy
from repro.baselines.flooding import LargestFirstPolicy
from repro.core.policies import GreedyOptPolicy
from repro.core.time_counter import SearchConfig
from repro.network.deployment import DeploymentConfig, deploy_uniform
from repro.sim.broadcast import run_broadcast
from repro.utils.format import format_table

from _bench_utils import emit, mean


def _run_pipeline_ablation(count: int = 3, num_nodes: int = 100):
    config = DeploymentConfig(num_nodes=num_nodes, source_min_ecc=4, source_max_ecc=None)
    results: dict[str, list[int]] = {"26-approx": [], "pipeline-naive": [], "G-OPT": []}
    for index in range(count):
        topology, source = deploy_uniform(config=config, seed=400 + index)
        results["26-approx"].append(
            run_broadcast(topology, source, Approx26Policy(), validate=False).latency
        )
        results["pipeline-naive"].append(
            run_broadcast(topology, source, LargestFirstPolicy(), validate=False).latency
        )
        results["G-OPT"].append(
            run_broadcast(
                topology,
                source,
                GreedyOptPolicy(search=SearchConfig(mode="beam", beam_width=6)),
                validate=False,
            ).latency
        )
    return results


@pytest.mark.ablation
def test_ablation_pipeline_vs_selection(benchmark, bench_rounds):
    results = benchmark.pedantic(_run_pipeline_ablation, **bench_rounds)

    rows = [
        [name, *values, f"{mean(values):.1f}"] for name, values in results.items()
    ]
    emit(
        "Ablation A3: pipeline vs conflict-aware selection (100-node deployments)",
        format_table(["scheduler", "dep 1", "dep 2", "dep 3", "mean"], rows),
    )

    baseline = mean(results["26-approx"])
    naive = mean(results["pipeline-naive"])
    informed = mean(results["G-OPT"])
    # The pipeline alone beats per-layer synchronisation...
    assert naive < baseline
    # ...and the M-driven selection improves on the naive pipeline further.
    assert informed <= naive
    # Both pipeline variants beat the baseline on every single deployment.
    for naive_value, base_value in zip(results["pipeline-naive"], results["26-approx"]):
        assert naive_value < base_value
