"""Figure 5: analytical upper bounds in the duty-cycle system with r = 10.

The figure compares the Theorem-1 bound ``2 r (d + 2)`` of the pipeline
schedulers against the ``17 k d`` bound quoted for the duty-cycle baseline
[12].  Asserted shape: the Theorem-1 curve sits far below the baseline's
bound at every density, and both grow with the deployment's hop radius.
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import figure5

from _bench_utils import emit


@pytest.mark.figure
def test_figure5_duty10_bounds(benchmark, sweep_config, bench_rounds):
    result = benchmark.pedantic(figure5, args=(sweep_config,), **bench_rounds)
    emit("Figure 5 (reproduced, analytical bounds, r = 10)", result.to_text())

    theorem1 = result.series_for("OPT-analysis (2r(d+2))")
    baseline = result.series_for("17-approx bound (17kd)")

    for i in range(len(result.x_values)):
        assert theorem1[i] < baseline[i]
        # 17 k d with k = 2r is at least 8.5x the Theorem-1 bound for d >= 4.
        assert baseline[i] / theorem1[i] >= 4.0
        assert theorem1[i] > 0

    # The experimental schedules that produced the eccentricities (the cheap
    # E-model sweep) stay far inside the baseline's analytical envelope.
    sweep = result.sweep
    assert sweep is not None
    for record in sweep.records:
        assert record.latency <= 17 * (2 * 10) * max(record.eccentricity, 1)
