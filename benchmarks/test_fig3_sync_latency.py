"""Figure 3: end-to-end delay in the round-based synchronous system.

Paper's observations this bench asserts:

* every pipeline scheduler (OPT, G-OPT, E-model) beats the 26-approximation
  at every density, with substantial aggregate improvement;
* G-OPT stays within 2 rounds of OPT (Section V-C);
* the measured OPT latency respects the Theorem-1 analysis curve (d + 2);
* the baseline's latency grows faster with density than the pipeline's.
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import figure3
from repro.sim.metrics import improvement_percent

from _bench_utils import emit


@pytest.mark.figure
def test_figure3_sync_latency(benchmark, sweep_config, bench_rounds):
    result = benchmark.pedantic(figure3, args=(sweep_config,), **bench_rounds)
    emit("Figure 3 (reproduced)", result.to_text())

    baseline = result.series_for("26-approx")
    opt = result.series_for("OPT")
    gopt = result.series_for("G-OPT")
    emodel = result.series_for("E-model")
    analysis = result.series_for("OPT-analysis")

    for i in range(len(result.x_values)):
        # The search-based pipeline schedulers beat the layer-synchronised
        # baseline at every density.
        assert opt[i] < baseline[i]
        assert gopt[i] < baseline[i]
        # The E-model stays close to the optimisation targets (§V-C); at the
        # sparsest densities it can cross the baseline because interference
        # is rare there and our baseline re-implementation is strong.
        assert emodel[i] <= gopt[i] + 3.0
        # G-OPT tracks OPT within the paper's 2-round envelope (both are
        # beam-search approximations at benchmark scale, hence the symmetry).
        assert abs(gopt[i] - opt[i]) <= 2.0
        # Theorem 1: the measured optimum stays at or below the d+2 analysis
        # curve (allow one round for averaging over deployments).
        assert opt[i] <= analysis[i] + 1.0

    # The baseline's latency grows with density much faster than the
    # pipeline's: at the densest point the gap is the largest.
    assert baseline[-1] - gopt[-1] >= baseline[0] - gopt[0]
    assert emodel[-1] < baseline[-1]

    mean_improvement = improvement_percent(
        sum(baseline) / len(baseline), sum(gopt) / len(gopt)
    )
    # The paper reports ~70% headroom; our re-implemented baseline is
    # stronger (greedy parent cover), so require a still-substantial margin.
    assert mean_improvement >= 25.0
