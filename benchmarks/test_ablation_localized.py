"""Ablation A4: localized contention vs centralised E-model selection.

The paper's future work (§VII) asks for a localized colour scheme.  This
bench compares the distributed greedy-MIS election of
:class:`repro.core.localized.LocalizedEModelPolicy` against the centralised
E-model and G-OPT on paper-style deployments, in both system models.
Expected shape: the localized scheme stays within a couple of rounds (a
fraction of a cycle in the duty-cycle system) of the centralised E-model
while using only 2-hop information, and both remain far below the
layer-synchronised baselines.
"""

from __future__ import annotations

import pytest

from repro.baselines.approx26 import Approx26Policy
from repro.core.localized import LocalizedEModelPolicy
from repro.core.policies import EModelPolicy, GreedyOptPolicy
from repro.core.time_counter import SearchConfig
from repro.dutycycle.schedule import WakeupSchedule
from repro.network.deployment import DeploymentConfig, deploy_uniform
from repro.sim.broadcast import run_broadcast
from repro.utils.format import format_table

from _bench_utils import emit, mean


def _run_localized_ablation(count: int = 3, num_nodes: int = 100, rate: int = 10):
    config = DeploymentConfig(num_nodes=num_nodes, source_min_ecc=4, source_max_ecc=None)
    sync: dict[str, list[int]] = {"26-approx": [], "E-model": [], "localized-E": [], "G-OPT": []}
    duty: dict[str, list[int]] = {"E-model": [], "localized-E": []}
    for index in range(count):
        topology, source = deploy_uniform(config=config, seed=500 + index)
        sync["26-approx"].append(
            run_broadcast(topology, source, Approx26Policy(), validate=False).latency
        )
        sync["E-model"].append(
            run_broadcast(topology, source, EModelPolicy(), validate=False).latency
        )
        sync["localized-E"].append(
            run_broadcast(topology, source, LocalizedEModelPolicy(), validate=False).latency
        )
        sync["G-OPT"].append(
            run_broadcast(
                topology,
                source,
                GreedyOptPolicy(search=SearchConfig(mode="beam", beam_width=4)),
                validate=False,
            ).latency
        )
        schedule = WakeupSchedule(topology.node_ids, rate=rate, seed=600 + index)
        for name, policy in (("E-model", EModelPolicy()), ("localized-E", LocalizedEModelPolicy())):
            duty[name].append(
                run_broadcast(
                    topology,
                    source,
                    policy,
                    schedule=schedule,
                    align_start=True,
                    validate=False,
                ).latency
            )
    return sync, duty


@pytest.mark.ablation
def test_ablation_localized_vs_centralised(benchmark, bench_rounds):
    sync, duty = benchmark.pedantic(_run_localized_ablation, **bench_rounds)

    rows = [[name, *values, f"{mean(values):.1f}"] for name, values in sync.items()]
    emit(
        "Ablation A4 (synchronous): localized contention vs centralised selection",
        format_table(["scheduler", "dep 1", "dep 2", "dep 3", "mean"], rows),
    )
    rows = [[name, *values, f"{mean(values):.1f}"] for name, values in duty.items()]
    emit(
        "Ablation A4 (duty cycle r=10)",
        format_table(["scheduler", "dep 1", "dep 2", "dep 3", "mean"], rows),
    )

    # Localized decisions cost little versus the centralised E-model ...
    assert mean(sync["localized-E"]) <= mean(sync["E-model"]) + 2.0
    assert mean(duty["localized-E"]) <= mean(duty["E-model"]) + 10.0
    # ... and remain far better than per-layer synchronisation.
    assert mean(sync["localized-E"]) < mean(sync["26-approx"])
    # The global search stays the best of the three, as expected.
    assert mean(sync["G-OPT"]) <= mean(sync["localized-E"]) + 1e-9
