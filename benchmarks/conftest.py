"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
(Section V) and asserts its *qualitative shape* — which scheduler wins, by
roughly what factor, how the curves move with density — rather than the
absolute numbers (our substrate is a discrete simulator, not the authors'
Mica-mote-calibrated testbed).

Scale selection
---------------
``REPRO_BENCH_SCALE=quick`` (default) runs a reduced sweep (3 node counts,
2 repetitions, narrow beam) so ``pytest benchmarks/ --benchmark-only``
finishes in a few minutes; ``REPRO_BENCH_SCALE=paper`` runs the full
Section V-A parameterisation (50-300 nodes, 5 repetitions).
"""

from __future__ import annotations

import pytest

from repro.experiments.config import SweepConfig, sweep_from_env


def pytest_configure(config):  # noqa: D103 - pytest hook
    config.addinivalue_line(
        "markers", "figure: benchmark regenerating a figure of the paper"
    )
    config.addinivalue_line(
        "markers", "table: benchmark regenerating a table of the paper"
    )
    config.addinivalue_line(
        "markers", "ablation: benchmark for a design-choice ablation (ours)"
    )


@pytest.fixture(scope="session")
def sweep_config() -> SweepConfig:
    """The sweep configuration selected by REPRO_BENCH_SCALE."""
    return sweep_from_env()


@pytest.fixture(scope="session")
def bench_rounds() -> dict:
    """pytest-benchmark pedantic settings for expensive whole-sweep benches."""
    return {"rounds": 1, "iterations": 1, "warmup_rounds": 0}
