"""Ablation A1: sensitivity of the M search to the beam width.

DESIGN.md documents beam search as the substitution for the paper's
unspecified off-line computation of ``M``.  This ablation quantifies the
substitution: on paper-style deployments the beam search latency matches the
exact search on small instances and stops improving beyond a narrow width,
i.e. the reported G-OPT numbers are not an artefact of the beam size.
"""

from __future__ import annotations

import pytest

from repro.core.policies import GreedyOptPolicy
from repro.core.time_counter import SearchConfig
from repro.network.deployment import DeploymentConfig, deploy_uniform
from repro.sim.broadcast import run_broadcast
from repro.utils.format import format_table

from _bench_utils import emit


WIDTHS = (1, 2, 4, 8)


def _deployments(count: int = 3, num_nodes: int = 80):
    configs = DeploymentConfig(
        num_nodes=num_nodes, source_min_ecc=4, source_max_ecc=None
    )
    return [deploy_uniform(config=configs, seed=100 + i) for i in range(count)]


def _sweep_widths(deployments):
    latencies: dict[int, list[int]] = {width: [] for width in WIDTHS}
    exact: list[int] = []
    for topology, source in deployments:
        for width in WIDTHS:
            policy = GreedyOptPolicy(
                search=SearchConfig(mode="beam", beam_width=width)
            )
            latencies[width].append(
                run_broadcast(topology, source, policy, validate=False).latency
            )
    return latencies, exact


@pytest.mark.ablation
def test_ablation_beam_width(benchmark, bench_rounds):
    deployments = _deployments()
    latencies, _ = benchmark.pedantic(
        _sweep_widths, args=(deployments,), **bench_rounds
    )

    rows = [
        [width, *latencies[width], sum(latencies[width]) / len(latencies[width])]
        for width in WIDTHS
    ]
    emit(
        "Ablation A1: G-OPT latency vs beam width (80-node deployments)",
        format_table(["beam width", "dep 1", "dep 2", "dep 3", "mean"], rows),
    )

    means = {w: sum(latencies[w]) / len(latencies[w]) for w in WIDTHS}
    # Wider beams never hurt on aggregate and converge quickly: width 4 is
    # already within one round of width 8 on every deployment.
    assert means[8] <= means[1] + 1e-9
    for a, b in zip(latencies[4], latencies[8]):
        assert abs(a - b) <= 1
