"""Ablation A5: how strong is our baseline re-implementation?

EXPERIMENTS.md attributes the gap between the paper's 70-90% improvement
claims and our measured 45-85% to the strength of the re-implemented
baselines (greedy minimal parent cover).  This bench quantifies that by
comparing the two parent-selection modes of the 26-approximation on the same
deployments:

* ``cover`` — greedy minimal set cover (our default, *strong* baseline);
* ``tree``  — literal BFS-tree parents (every node with an assigned child
  transmits), the weaker reading of the construction.

Expected shape: the weak variant needs noticeably more rounds, and measuring
the improvement of G-OPT against it recovers (or exceeds) the paper's
headline percentages.
"""

from __future__ import annotations

import pytest

from repro.baselines.approx26 import Approx26Policy
from repro.core.policies import GreedyOptPolicy
from repro.core.time_counter import SearchConfig
from repro.network.deployment import DeploymentConfig, deploy_uniform
from repro.sim.broadcast import run_broadcast
from repro.sim.metrics import improvement_percent
from repro.utils.format import format_table

from _bench_utils import emit, mean


def _run_baseline_strength(count: int = 3, num_nodes: int = 150):
    config = DeploymentConfig(num_nodes=num_nodes, source_min_ecc=4, source_max_ecc=None)
    results: dict[str, list[int]] = {"cover (strong)": [], "tree (weak)": [], "G-OPT": []}
    for index in range(count):
        topology, source = deploy_uniform(config=config, seed=700 + index)
        results["cover (strong)"].append(
            run_broadcast(
                topology, source, Approx26Policy(parent_mode="cover"), validate=False
            ).latency
        )
        results["tree (weak)"].append(
            run_broadcast(
                topology, source, Approx26Policy(parent_mode="tree"), validate=False
            ).latency
        )
        results["G-OPT"].append(
            run_broadcast(
                topology,
                source,
                GreedyOptPolicy(search=SearchConfig(mode="beam", beam_width=4)),
                validate=False,
            ).latency
        )
    return results


@pytest.mark.ablation
def test_ablation_baseline_strength(benchmark, bench_rounds):
    results = benchmark.pedantic(_run_baseline_strength, **bench_rounds)

    rows = [[name, *values, f"{mean(values):.1f}"] for name, values in results.items()]
    emit(
        "Ablation A5: baseline parent-selection strength (150-node deployments)",
        format_table(["variant", "dep 1", "dep 2", "dep 3", "mean"], rows),
    )

    strong = mean(results["cover (strong)"])
    weak = mean(results["tree (weak)"])
    gopt = mean(results["G-OPT"])
    assert weak >= strong
    improvement_vs_strong = improvement_percent(strong, gopt)
    improvement_vs_weak = improvement_percent(weak, gopt)
    emit(
        "Ablation A5: measured improvement of G-OPT",
        f"vs strong baseline: {improvement_vs_strong:.1f}%   "
        f"vs weak baseline: {improvement_vs_weak:.1f}%   "
        "(paper reports >= 70% against its baseline)",
    )
    assert improvement_vs_weak >= improvement_vs_strong
    # Against the literal BFS-tree baseline the paper's >= 70% lower bound is
    # approached or exceeded.
    assert improvement_vs_weak >= 55.0
