"""Micro-benchmarks of the core primitives (not tied to a paper figure).

These provide regression tracking for the hot paths the figure sweeps rely
on: UDG construction, frontier colouring, E-model construction and a single
G-OPT decision.  They use pytest-benchmark's statistical timing (multiple
rounds) because each operation is cheap enough to repeat.
"""

from __future__ import annotations

import pytest

from repro.core.coloring import greedy_color_classes
from repro.core.estimation import build_edge_estimate
from repro.core.policies import GreedyOptPolicy
from repro.core.time_counter import SearchConfig, TimeCounter
from repro.network.deployment import DeploymentConfig, deploy_uniform
from repro.network.topology import WSNTopology


@pytest.fixture(scope="module")
def deployment_200():
    config = DeploymentConfig(num_nodes=200, source_min_ecc=4, source_max_ecc=None)
    return deploy_uniform(config=config, seed=9)


@pytest.fixture(scope="module")
def frontier_state(deployment_200):
    topology, source = deployment_200
    covered = frozenset({source}) | topology.neighbors(source)
    return topology, covered


def test_udg_construction_200_nodes(benchmark, deployment_200):
    topology, _ = deployment_200
    positions = topology.positions.copy()
    result = benchmark(WSNTopology.from_positions, positions, 10.0)
    assert result.num_nodes == 200


def test_greedy_coloring_of_a_frontier(benchmark, frontier_state):
    topology, covered = frontier_state
    classes = benchmark(greedy_color_classes, topology, covered)
    assert classes


def test_emodel_construction_200_nodes(benchmark, deployment_200):
    topology, _ = deployment_200
    estimate = benchmark(build_edge_estimate, topology)
    assert estimate.update_count <= 4 * topology.num_nodes


def test_single_gopt_decision(benchmark, frontier_state):
    topology, covered = frontier_state
    counter = TimeCounter(
        topology, config=SearchConfig(mode="beam", beam_width=4)
    )
    colors = greedy_color_classes(topology, covered)

    def _decide():
        counter.clear_cache()
        return counter.select_color(covered, 2, colors)

    color, completion = benchmark(_decide)
    assert color in colors
    assert completion >= 2


def test_full_gopt_broadcast_120_nodes(benchmark):
    from repro.sim.broadcast import run_broadcast

    config = DeploymentConfig(num_nodes=120, source_min_ecc=4, source_max_ecc=None)
    topology, source = deploy_uniform(config=config, seed=31)
    policy = GreedyOptPolicy(search=SearchConfig(mode="beam", beam_width=4))

    def _broadcast():
        return run_broadcast(topology, source, policy, validate=False)

    result = benchmark(_broadcast)
    assert result.covered == topology.node_set
