"""Experiment-store benchmark: cold vs warm sweeps on a 2-scenario grid.

The store's value proposition, measured: the first (cold) pass over a grid
pays full simulation cost and populates the store; the second (warm) pass
serves every cell from disk.  Three assertions:

* **identity** — the warm records are *bit-identical* to the cold records
  (loading a cell is indistinguishable from simulating it);
* **full reuse** — the warm pass reports 100% cache hits;
* **speedup** — the warm pass is at least 10x faster than the cold pass
  (in practice it is orders of magnitude faster: sqlite lookups + shard
  reads vs per-cell deployment, colouring and broadcast simulation).

Results are written as JSON to ``$REPRO_BENCH_STORE_JSON`` (default
``BENCH_store.json`` in the working directory) so CI can upload them as an
artifact — the first point of the ``BENCH_*`` trajectory.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time

import pytest

from repro.experiments.config import sweep_from_env
from repro.experiments.runner import run_sweep
from repro.store import ExperimentStore

from _bench_utils import emit, paper_scale as _paper_scale

SCENARIOS = ("uniform", "clustered")
SPEEDUP_TARGET = 10.0


def _json_path() -> str:
    return os.environ.get("REPRO_BENCH_STORE_JSON", "BENCH_store.json")


def _grid_config():
    config = sweep_from_env()
    if not _paper_scale():
        # Two node counts keep the cold pass at a few seconds in CI while
        # leaving it ~3 orders of magnitude above the warm pass's IO cost.
        config = dataclasses.replace(config, node_counts=(50, 100))
    return config


@pytest.mark.ablation
def test_store_cold_vs_warm_sweep(tmp_path):
    """Warm >= 10x faster than cold, records bit-identical, 100% hits."""
    config = _grid_config()
    configs = [
        dataclasses.replace(config, scenario=scenario) for scenario in SCENARIOS
    ]
    cells_per_sweep = len(config.node_counts) * config.repetitions

    with ExperimentStore(tmp_path / "store") as store:
        start = time.perf_counter()
        cold = [
            run_sweep(cfg, system="duty", rate=10, store=store) for cfg in configs
        ]
        cold_seconds = time.perf_counter() - start

        start = time.perf_counter()
        warm = [
            run_sweep(cfg, system="duty", rate=10, store=store) for cfg in configs
        ]
        warm_seconds = time.perf_counter() - start
        stats = store.stats()

    for cold_sweep, warm_sweep in zip(cold, warm):
        assert warm_sweep.records == cold_sweep.records, (
            f"{cold_sweep.config.scenario}: warm records diverged from cold"
        )
        assert cold_sweep.cache_misses == cells_per_sweep
        assert warm_sweep.cache_hits == cells_per_sweep
        assert warm_sweep.cache_misses == 0

    speedup = cold_seconds / warm_seconds
    results = {
        "workload": {
            "scenarios": list(SCENARIOS),
            "node_counts": list(config.node_counts),
            "repetitions": config.repetitions,
            "cells": stats.cells,
            "records": stats.records,
            "shard_bytes": stats.shard_bytes,
            "scale": "paper" if _paper_scale() else "quick",
            "speedup_target": SPEEDUP_TARGET,
        },
        "store_cache": {
            "cold_s": cold_seconds,
            "warm_s": warm_seconds,
            "speedup": speedup,
        },
    }
    with open(_json_path(), "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")

    emit(
        f"Experiment-store cache ({len(SCENARIOS)} scenarios x "
        f"{cells_per_sweep} cells)",
        f"cold: {cold_seconds:8.3f} s\n"
        f"warm: {warm_seconds:8.3f} s\n"
        f"speedup: {speedup:.1f}x  (target >= {SPEEDUP_TARGET}x)",
    )
    assert speedup >= SPEEDUP_TARGET, (
        f"warm sweep only {speedup:.1f}x faster than cold; "
        f"expected >= {SPEEDUP_TARGET}x"
    )
