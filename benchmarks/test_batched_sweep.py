"""Batched-executor benchmark: stacked stripes vs per-cell vectorized runs.

The workload is a paper-geometry grid stripe per node-count column (50 x 50
sq-ft, 10-ft radius — the Section 5 deployment): 60 independently deployed
cells per column, the lane count of one full sweep stripe (systems x
repetitions x policies).  All measurements run on *recorded traces* so zero
policy cost pollutes the comparison (traces are bit-identical across
backends by the determinism contract).  Three measurements:

* **parity** — ``run_batched`` over every stripe returns the bit-identical
  records of the per-cell vectorized engine, and the ``"batched"`` engine
  entry matches ``"vectorized"`` on a single broadcast.  Assertion-only and
  timing-free; this is the part the CI smoke job runs at quick scale.
* **stacked-kernel throughput** — the per-advance interference kernels
  (``check_and_receivers`` once per lane per slot versus one
  ``stacked_hear_counts_at`` + ``stacked_receivers`` pass for the whole
  stripe), replayed over every macro-slot of each stripe.  This isolates
  exactly the numpy dispatch the batched executor amortizes.  The grid
  speedup (geometric mean over the dispatch-bound columns — n=50, the
  paper's 0.02-density column, where per-advance work is tiny and
  dispatch dominates) is gated >= 5x at paper scale (measured ~6.7x on
  the reference machine); denser columns shift toward memory-bound — both
  executors touch the same adjacency rows — so n=100/300 are recorded and
  gated only against regression.
* **stripe latency end-to-end** — ``run_batched`` versus a per-cell
  ``run_broadcast`` loop over the same stripe.  With the batched decision
  protocol (``select_advance_batch`` over stacked lane views, lane
  fast-forward via ``next_decision_slot``, and the decoded-receiver apply
  path) the plan-driven column is no longer bounded by per-lane Python
  dispatch: the dispatch-bound column (n=50) is gated >= 3x at paper
  scale (measured ~3.2x on the reference machine; was ~1.1-1.7x under
  the per-lane fallback protocol), denser columns shift memory-bound and
  are gated with the whole grid against "batching must not slow the grid
  down" (total >= 1x).

Results are written as JSON to ``$REPRO_BENCH_BATCHED_JSON`` (default
``BENCH_batched.json`` in the working directory) so CI can upload them as
an artifact.  ``REPRO_BENCH_SCALE=paper`` enables the timing assertions;
the default quick scale measures but only asserts parity.
"""

from __future__ import annotations

import json
import math
import os

import numpy as np
import pytest

from repro.core.policies import EModelPolicy
from repro.network.bitset import (
    bitset_view,
    stacked_adjacency,
    stacked_hear_counts_at,
    stacked_receivers,
)
from repro.network.deployment import DeploymentConfig, deploy_uniform
from repro.sim.batched import BroadcastTask, run_batched
from repro.sim.broadcast import run_broadcast
from repro.sim.replay import ReplayPolicy

from _bench_utils import (
    emit,
    paper_scale as _paper_scale,
    time_pair as _time_pair,
    time_per_call as _time_per_call,
)

GRID_COLUMNS = (50, 100, 300)
DISPATCH_BOUND_COLUMNS = (50,)
LANES_PER_STRIPE = 60
GRID_SPEEDUP_TARGET = 5.0
COLUMN_SPEEDUP_FLOOR = 1.2
END_TO_END_FLOOR = 1.0
END_TO_END_DISPATCH_TARGET = 3.0


def _json_path() -> str:
    return os.environ.get("REPRO_BENCH_BATCHED_JSON", "BENCH_batched.json")


@pytest.fixture(scope="module")
def results_sink():
    """Accumulates benchmark numbers; written as a JSON artifact at teardown."""
    results: dict = {
        "workload": {
            "grid_columns": list(GRID_COLUMNS),
            "dispatch_bound_columns": list(DISPATCH_BOUND_COLUMNS),
            "lanes_per_stripe": LANES_PER_STRIPE,
            "area_side": 50.0,
            "radius": 10.0,
            "scale": "paper" if _paper_scale() else "quick",
        }
    }
    yield results
    path = _json_path()
    with open(path, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")


@pytest.fixture(scope="module")
def stripe_workload():
    """Per column: 60 recorded cells, ``[(topology, source, trace), ...]``."""
    stripes: dict[int, list] = {}
    for num_nodes in GRID_COLUMNS:
        config = DeploymentConfig(
            num_nodes=num_nodes,
            area_side=50.0,
            radius=10.0,
            source_min_ecc=2,
            source_max_ecc=None,
        )
        cells = []
        for lane in range(LANES_PER_STRIPE):
            topology, source = deploy_uniform(config=config, seed=2012 + lane)
            trace = run_broadcast(
                topology, source, EModelPolicy(), validate=False, engine="vectorized"
            )
            cells.append((topology, source, trace))
        stripes[num_nodes] = cells
    return stripes


@pytest.mark.ablation
def test_batched_stripe_parity(stripe_workload):
    """Every stripe's batched records equal the per-cell vectorized traces."""
    for num_nodes, cells in stripe_workload.items():
        tasks = [
            BroadcastTask(topology, source, ReplayPolicy(trace))
            for topology, source, trace in cells
        ]
        results = run_batched(tasks, validate=False)
        for (topology, source, trace), result in zip(cells, results):
            assert result == trace, f"n={num_nodes}: batched stripe diverged"
    # The registered engine entry routes singles through the same kernel.
    topology, source, _ = stripe_workload[GRID_COLUMNS[0]][0]
    batched = run_broadcast(topology, source, EModelPolicy(), engine="batched")
    vectorized = run_broadcast(topology, source, EModelPolicy(), engine="vectorized")
    assert batched == vectorized


def _slot_coordinates(cells):
    """Per macro-slot flat transmitter coordinates + per-lane index lists."""
    views = [bitset_view(topology) for topology, _, _ in cells]
    max_advances = max(len(trace.advances) for _, _, trace in cells)
    slots = []
    for step in range(max_advances):
        lane_parts, tx_parts, per_lane = [], [], []
        for lane, ((_, _, trace), view) in enumerate(zip(cells, views)):
            if step < len(trace.advances):
                tx_idx = view.indices(trace.advances[step].color)
                lane_parts.append(np.full(len(tx_idx), lane))
                tx_parts.append(tx_idx)
                per_lane.append((lane, tx_idx))
        slots.append((np.concatenate(lane_parts), np.concatenate(tx_parts), per_lane))
    initial = np.zeros((len(cells), views[0].num_nodes), dtype=bool)
    for lane, ((_, source, _), view) in enumerate(zip(cells, views)):
        initial[lane, view.index_of(source)] = True
    return views, slots, initial


@pytest.mark.ablation
def test_stacked_kernel_speedup(stripe_workload, results_sink):
    """The stacked kernels beat the per-lane dispatch loop >= 5x on the grid.

    One *pass* replays coverage through every macro-slot of a stripe: the
    per-lane variant calls ``check_and_receivers`` once per active lane per
    slot (what sixty per-cell vectorized runs dispatch), the stacked
    variant folds the whole stripe into one gather + matmul per slot (what
    the batched executor dispatches).  Quick scale records the numbers;
    paper scale enforces the targets.
    """
    columns: dict[str, dict[str, float]] = {}
    for num_nodes, cells in stripe_workload.items():
        views, slots, initial = _slot_coordinates(cells)
        stack = stacked_adjacency(views)

        def per_lane_pass() -> None:
            covered = initial.copy()
            for _, _, per_lane in slots:
                for lane, tx_idx in per_lane:
                    conflict, received = views[lane].check_and_receivers(
                        tx_idx, covered[lane]
                    )
                    assert not conflict
                    covered[lane] |= received

        def stacked_pass() -> None:
            covered = initial.copy()
            for lane_idx, tx_idx, _ in slots:
                counts = stacked_hear_counts_at(stack, lane_idx, tx_idx)
                conflicts, received = stacked_receivers(counts, covered)
                assert not conflicts.any()
                covered |= received

        reps = 20 if _paper_scale() else 3
        per_lane_s = _time_per_call(per_lane_pass, min_reps=reps)
        stacked_s = _time_per_call(stacked_pass, min_reps=reps)
        columns[f"n{num_nodes}"] = {
            "per_lane_ms_per_pass": per_lane_s * 1e3,
            "stacked_ms_per_pass": stacked_s * 1e3,
            "speedup": per_lane_s / stacked_s,
        }
    grid_speedup = math.exp(
        sum(math.log(columns[f"n{n}"]["speedup"]) for n in DISPATCH_BOUND_COLUMNS)
        / len(DISPATCH_BOUND_COLUMNS)
    )
    results_sink["kernel"] = {
        "columns": columns,
        "grid_speedup": grid_speedup,
        "grid_target": GRID_SPEEDUP_TARGET,
        "column_floor": COLUMN_SPEEDUP_FLOOR,
    }
    lines = [
        f"{key:>6}: per-lane {row['per_lane_ms_per_pass']:7.2f} ms  "
        f"stacked {row['stacked_ms_per_pass']:7.2f} ms  ({row['speedup']:.2f}x)"
        for key, row in columns.items()
    ]
    lines.append(
        f"  grid: {grid_speedup:.2f}x over n={DISPATCH_BOUND_COLUMNS} "
        f"(target >= {GRID_SPEEDUP_TARGET}x at paper scale)"
    )
    emit("Stacked-kernel throughput (60-lane paper-grid stripes)", "\n".join(lines))
    if _paper_scale():
        assert grid_speedup >= GRID_SPEEDUP_TARGET, (
            f"stacked kernels only {grid_speedup:.2f}x faster on the "
            f"dispatch-bound grid columns; expected >= {GRID_SPEEDUP_TARGET}x"
        )
        for key, row in columns.items():
            assert row["speedup"] >= COLUMN_SPEEDUP_FLOOR, (
                f"stacked kernels regressed on column {key}: "
                f"{row['speedup']:.2f}x < {COLUMN_SPEEDUP_FLOOR}x"
            )


@pytest.mark.ablation
def test_stripe_latency_end_to_end(stripe_workload, results_sink):
    """Whole-stripe latency: ``run_batched`` vs the per-cell engine loop."""
    per_column: dict[str, dict[str, float]] = {}
    totals = {"per_cell": 0.0, "batched": 0.0}
    reps = 10 if _paper_scale() else 3
    for num_nodes, cells in stripe_workload.items():
        # Policies and tasks are built outside the timed region on both
        # sides ("engine machinery only"): ReplayPolicy is stateless across
        # runs, and timing its constructor would charge identical per-lane
        # policy-building cost to both executors, diluting the comparison.
        per_cell_policies = [ReplayPolicy(trace) for _, _, trace in cells]
        tasks = [
            BroadcastTask(topology, source, ReplayPolicy(trace))
            for topology, source, trace in cells
        ]

        def per_cell_stripe() -> None:
            for (topology, source, _), policy in zip(cells, per_cell_policies):
                run_broadcast(
                    topology,
                    source,
                    policy,
                    validate=False,
                    engine="vectorized",
                )

        def batched_stripe() -> None:
            run_batched(tasks, validate=False)

        # Interleaved timing: the two sides of a ratio measured in disjoint
        # windows would let machine-load drift masquerade as a speedup
        # change (this gate sits at 3x, not 5x — margin matters).
        per_cell_s, batched_s = _time_pair(
            per_cell_stripe, batched_stripe, min_reps=reps
        )
        per_column[f"n{num_nodes}"] = {
            "per_cell_ms": per_cell_s * 1e3,
            "batched_ms": batched_s * 1e3,
            "speedup": per_cell_s / batched_s,
        }
        totals["per_cell"] += per_cell_s
        totals["batched"] += batched_s
    total_speedup = totals["per_cell"] / totals["batched"]
    results_sink["end_to_end"] = {
        "per_column_ms": per_column,
        "total_per_cell_ms": totals["per_cell"] * 1e3,
        "total_batched_ms": totals["batched"] * 1e3,
        "total_speedup": total_speedup,
        "floor": END_TO_END_FLOOR,
        "dispatch_target": END_TO_END_DISPATCH_TARGET,
    }
    lines = [
        f"{key:>6}: per-cell {row['per_cell_ms']:7.1f} ms  "
        f"batched {row['batched_ms']:7.1f} ms  ({row['speedup']:.2f}x)"
        for key, row in per_column.items()
    ]
    lines.append(f" total: {total_speedup:.2f}x")
    emit("Stripe latency end-to-end (engine machinery only)", "\n".join(lines))
    if _paper_scale():
        # Headline gate: the batched decision protocol unlocks the
        # dispatch-bound column end to end (it was ~1.1-1.7x under the
        # per-lane fallback protocol).  Denser columns shift memory-bound,
        # so the whole grid is gated only against regression.
        for num_nodes in DISPATCH_BOUND_COLUMNS:
            speedup = per_column[f"n{num_nodes}"]["speedup"]
            assert speedup >= END_TO_END_DISPATCH_TARGET, (
                f"end-to-end stripe speedup regressed on the dispatch-bound "
                f"n={num_nodes} column: {speedup:.2f}x < "
                f"{END_TO_END_DISPATCH_TARGET}x"
            )
        assert total_speedup >= END_TO_END_FLOOR, (
            f"batched stripes slower than per-cell runs ({total_speedup:.2f}x)"
        )
