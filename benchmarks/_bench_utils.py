"""Small helpers shared by the benchmark modules."""

from __future__ import annotations

import os
import time

__all__ = ["emit", "mean", "paper_scale", "time_per_call"]


def emit(title: str, body: str) -> None:
    """Print a reproduced figure/table (shown with ``pytest -s`` or on failure)."""
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}\n{body}\n")


def mean(values) -> float:
    """Arithmetic mean of a non-empty sequence."""
    values = list(values)
    return sum(values) / len(values)


def paper_scale() -> bool:
    """True when ``REPRO_BENCH_SCALE=paper`` selects the full parameterisation."""
    from repro.experiments.config import SCALE_ENV_VAR

    return os.environ.get(SCALE_ENV_VAR, "quick").strip().lower() == "paper"


def time_per_call(fn, *, min_reps: int, budget_s: float = 1.0) -> float:
    """Best-of-three mean wall time of ``fn`` (seconds per call).

    The shared timing harness of the backend benchmarks — one definition so
    every speedup number is measured the same way.
    """
    fn()  # warm caches: bitset views, activity windows, BFS distances
    best = float("inf")
    for _ in range(3):
        reps = min_reps
        start = time.perf_counter()
        for _ in range(reps):
            fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed / reps)
        if elapsed > budget_s:
            break
    return best
