"""Small helpers shared by the benchmark modules."""

from __future__ import annotations

__all__ = ["emit", "mean"]


def emit(title: str, body: str) -> None:
    """Print a reproduced figure/table (shown with ``pytest -s`` or on failure)."""
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}\n{body}\n")


def mean(values) -> float:
    """Arithmetic mean of a non-empty sequence."""
    values = list(values)
    return sum(values) / len(values)
