"""Small helpers shared by the benchmark modules."""

from __future__ import annotations

import os
import time

__all__ = ["emit", "mean", "paper_scale", "time_pair", "time_per_call"]


def emit(title: str, body: str) -> None:
    """Print a reproduced figure/table (shown with ``pytest -s`` or on failure)."""
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}\n{body}\n")


def mean(values) -> float:
    """Arithmetic mean of a non-empty sequence."""
    values = list(values)
    return sum(values) / len(values)


def paper_scale() -> bool:
    """True when ``REPRO_BENCH_SCALE=paper`` selects the full parameterisation."""
    from repro.experiments.config import SCALE_ENV_VAR

    return os.environ.get(SCALE_ENV_VAR, "quick").strip().lower() == "paper"


def time_per_call(fn, *, min_reps: int, budget_s: float = 1.0) -> float:
    """Best-of-rounds mean wall time of ``fn`` (seconds per call).

    The shared timing harness of the backend benchmarks — one definition so
    every speedup number is measured the same way.  Each round averages
    ``min_reps`` calls (amortising timer overhead); the *minimum* round is
    returned because external interference (noisy CI neighbours, GC
    pauses) only ever adds time — the min is the robust estimator of the
    true cost.  Six rounds make a single interference burst very unlikely
    to pollute every round; ``budget_s`` caps the total measurement time.
    """
    fn()  # warm caches: bitset views, activity windows, BFS distances
    best = float("inf")
    total = 0.0
    for _ in range(6):
        reps = min_reps
        start = time.perf_counter()
        for _ in range(reps):
            fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed / reps)
        total += elapsed
        if total > budget_s:
            break
    return best


def time_pair(fn_a, fn_b, *, min_reps: int, budget_s: float = 2.0) -> tuple[float, float]:
    """Interleaved :func:`time_per_call` for a speedup ratio's two sides.

    Timing the sides in two disjoint windows lets machine-load drift
    between the windows masquerade as a speedup change; alternating the
    rounds gives both sides the same opportunity to catch the machine at
    its fastest, so the ratio of the two minima is stable under drift.
    """

    fn_a()
    fn_b()
    best_a = best_b = float("inf")
    total = 0.0
    for _ in range(6):
        for _ in range(2):  # a/b/a/b ... twice per round
            start = time.perf_counter()
            for _ in range(min_reps):
                fn_a()
            elapsed = time.perf_counter() - start
            best_a = min(best_a, elapsed / min_reps)
            total += elapsed
            start = time.perf_counter()
            for _ in range(min_reps):
                fn_b()
            elapsed = time.perf_counter() - start
            best_b = min(best_b, elapsed / min_reps)
            total += elapsed
        if total > budget_s:
            break
    return best_a, best_b
