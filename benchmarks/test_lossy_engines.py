"""Lossy-backend microbenchmark: reference vs vectorized engines at loss=0.1.

The composable-core refactor lets the vectorized backend run the §VI lossy
link model inside its bitset kernel — previously the loss axis was welded to
the reference engine.  This bench measures what that buys on a paper-shaped
500-node synchronous deployment:

* **parity** — the lossy traces of both backends compare *equal* for the
  same (probability, seed), and both validator backends accept them as
  lossy traces (assertion-only, timing-free; the CI smoke job runs this);
* **lossy engine throughput** — ``run_broadcast`` with
  ``IndependentLossLinks(0.1)`` per backend, driven by a
  :class:`~repro.sim.replay.ReplayPolicy` over the *intended* advances so
  zero policy cost pollutes the comparison.  The reference path draws one
  scalar uniform per candidate delivery pair inside Python set loops; the
  vectorized path draws the identical stream as one array per advance.
  The acceptance target is a >= 3x speedup at 500 nodes.

Results are written as JSON to ``$REPRO_BENCH_LOSSY_JSON`` (default
``BENCH_lossy_engines.json`` in the working directory) so CI can upload
them as an artifact.
"""

from __future__ import annotations

import dataclasses
import json
import os

import pytest

from repro.baselines.flooding import LargestFirstPolicy
from repro.core.policies import EModelPolicy
from repro.network.deployment import DeploymentConfig, deploy_uniform
from repro.sim.broadcast import run_broadcast
from repro.sim.links import IndependentLossLinks
from repro.sim.replay import ReplayPolicy
from repro.sim.validation import validate_broadcast

from _bench_utils import emit, paper_scale as _paper_scale, time_per_call as _time_per_call

NUM_NODES = 500
LOSS_PROBABILITY = 0.1
LOSS_SEED = 2012
POLICIES = {
    "largest-first": LargestFirstPolicy,
    "E-model": EModelPolicy,
}
SPEEDUP_TARGET = 3.0
#: Loose floor enforced even at quick scale on noisy CI runners (the measured
#: margin is ~3.7x on a quiet machine; the full target is asserted at paper
#: scale, mirroring benchmarks/test_engine_backends.py).
QUICK_SPEEDUP_FLOOR = 1.5


def _json_path() -> str:
    return os.environ.get("REPRO_BENCH_LOSSY_JSON", "BENCH_lossy_engines.json")


@pytest.fixture(scope="module")
def results_sink():
    """Accumulates benchmark numbers; written as a JSON artifact at teardown."""
    results: dict = {
        "workload": {
            "num_nodes": NUM_NODES,
            "loss_probability": LOSS_PROBABILITY,
            "policies": sorted(POLICIES),
            "scale": "paper" if _paper_scale() else "quick",
            "speedup_target": SPEEDUP_TARGET,
        }
    }
    yield results
    with open(_json_path(), "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")


@pytest.fixture(scope="module")
def lossy_workload():
    """A 500-node deployment plus one verified lossy trace per policy.

    Each entry carries the recorded (delivered) trace and the *intended*
    trace — the same advances with their reliable-links receivers — whose
    replay through a lossy engine with the same seed reproduces the
    recorded trace exactly, with zero policy cost.
    """
    config = DeploymentConfig(
        num_nodes=NUM_NODES,
        area_side=50.0,
        radius=10.0,
        source_min_ecc=5,
        source_max_ecc=8,
    )
    topology, source = deploy_uniform(config=config, seed=2012)
    entries = []
    for name, make_policy in POLICIES.items():
        trace = run_broadcast(
            topology,
            source,
            make_policy(),
            link_model=IndependentLossLinks(LOSS_PROBABILITY, seed=LOSS_SEED),
            validate=False,
        )
        intended = dataclasses.replace(
            trace,
            advances=tuple(
                dataclasses.replace(
                    advance, receivers=advance.intended, intended_receivers=None
                )
                for advance in trace.advances
            ),
        )
        entries.append((name, trace, intended))
    return topology, source, entries


@pytest.mark.ablation
def test_lossy_backend_parity_on_500_nodes(lossy_workload):
    """Both backends produce equal lossy traces; both validators accept them."""
    topology, source, entries = lossy_workload
    for name, trace, _ in entries:
        vectorized = run_broadcast(
            topology,
            source,
            POLICIES[name](),
            link_model=IndependentLossLinks(LOSS_PROBABILITY, seed=LOSS_SEED),
            engine="vectorized",
            validate=False,
        )
        assert vectorized == trace, f"{name}: lossy traces diverged across backends"
        assert trace.failed_deliveries > 0, f"{name}: the workload exercised no losses"
        for backend in ("reference", "vectorized"):
            violations = validate_broadcast(
                topology, trace, backend=backend, lossy=True
            )
            assert violations == [], f"{name}: {backend} validator objects"


@pytest.mark.ablation
def test_lossy_engine_speedup(lossy_workload, results_sink):
    """The vectorized lossy path beats the reference lossy path by >= 3x.

    One pass replays the intended advances of every recorded trace through
    ``run_broadcast`` with the lossy link model (same seed, so the delivered
    trace is reproduced bit-for-bit) — engine + link-model + trace-validation
    machinery, i.e. exactly what one sweep-cell broadcast costs on each
    backend, with zero policy cost.
    """
    topology, source, entries = lossy_workload
    per_policy: dict[str, dict[str, float]] = {}
    totals = {"reference": 0.0, "vectorized": 0.0}
    reps = 10 if _paper_scale() else 3
    for name, trace, intended in entries:
        replay = ReplayPolicy(intended)
        row: dict[str, float] = {}
        for engine in ("reference", "vectorized"):

            def one_run(engine: str = engine) -> None:
                result = run_broadcast(
                    topology,
                    source,
                    replay,
                    start_time=trace.start_time,
                    link_model=IndependentLossLinks(LOSS_PROBABILITY, seed=LOSS_SEED),
                    engine=engine,
                    validate=False,
                )
                assert result == trace

            seconds = _time_per_call(one_run, min_reps=reps)
            row[engine] = seconds * 1e3
            totals[engine] += seconds
        row["speedup"] = row["reference"] / row["vectorized"]
        per_policy[name] = row
    total_speedup = totals["reference"] / totals["vectorized"]
    results_sink["lossy_engine"] = {
        "per_policy_ms": per_policy,
        "total_reference_ms": totals["reference"] * 1e3,
        "total_vectorized_ms": totals["vectorized"] * 1e3,
        "total_speedup": total_speedup,
    }
    lines = [
        f"{name:>15}: ref {row['reference']:8.3f} ms  vec {row['vectorized']:8.3f} ms"
        f"  ({row['speedup']:.2f}x)"
        for name, row in per_policy.items()
    ]
    lines.append(
        f"{'total':>15}: {total_speedup:.2f}x  (target >= {SPEEDUP_TARGET}x "
        f"at paper scale, >= {QUICK_SPEEDUP_FLOOR}x always)"
    )
    emit(
        f"Lossy engine throughput (500 nodes, loss={LOSS_PROBABILITY})",
        "\n".join(lines),
    )
    # Mirror test_engine_backends.py: enforce the headline target at paper
    # scale only; quick scale (CI smoke, shared runners) gates regressions
    # with a loose floor so timing noise cannot fail the build spuriously.
    floor = SPEEDUP_TARGET if _paper_scale() else QUICK_SPEEDUP_FLOOR
    assert total_speedup >= floor, (
        f"vectorized lossy path only {total_speedup:.2f}x faster than the "
        f"reference lossy path; expected >= {floor}x"
    )
