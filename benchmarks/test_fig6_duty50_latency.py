"""Figure 6: experimental P(A) in the light duty-cycle system (2%, r = 50).

Asserted shape (paper §V-B/V-C): the improvement over the 17-approximation
remains large in the light duty-cycle system; G-OPT and OPT achieve (nearly)
the same performance; latencies are dominated by cycle waiting, i.e. they
are substantially larger than in the r = 10 system for every scheduler.
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import figure6
from repro.sim.metrics import improvement_percent

from _bench_utils import emit, mean


@pytest.mark.figure
def test_figure6_duty50_latency(benchmark, sweep_config, bench_rounds):
    result = benchmark.pedantic(figure6, args=(sweep_config,), **bench_rounds)
    emit("Figure 6 (reproduced, r = 50)", result.to_text())

    baseline = result.series_for("17-approx")
    opt = result.series_for("OPT")
    gopt = result.series_for("G-OPT")
    emodel = result.series_for("E-model")

    for i in range(len(result.x_values)):
        assert opt[i] < baseline[i]
        assert gopt[i] < baseline[i]
        assert emodel[i] < baseline[i]
        # §V-C: in the light duty-cycle system G-OPT matches OPT (allow a
        # fraction of a cycle for the beam approximation at benchmark scale).
        assert abs(gopt[i] - opt[i]) <= 10.0
        # Cycle waiting dominates: every scheduler needs well over one cycle.
        assert gopt[i] > 50.0

    improvement = improvement_percent(mean(baseline), mean(gopt))
    assert improvement >= 50.0
