"""Exact-solver benchmark: branch-and-bound vs ILP wall time, small-n grid.

The exact tier's two value backends are interchangeable by the determinism
contract (identical optima, identical canonical plans), so the only
question left is wall-clock cost — measured here per instance of a small-n
grid in both system models.  Three assertions:

* **agreement** — on every instance both backends report the same optimum
  and extract the identical plan (the contract, re-checked at bench scale);
* **certification** — the admissible lower bound never exceeds the
  optimum, and the plan's latency matches the reported optimum;
* **availability** — the branch-and-bound runs everywhere; the ILP rows
  are recorded only where scipy/HiGHS is importable (the JSON notes which).

Results are written as JSON to ``$REPRO_BENCH_SOLVERS_JSON`` (default
``BENCH_solvers.json`` in the working directory) so CI can upload them as
an artifact alongside the other ``BENCH_*`` files.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.dutycycle.schedule import WakeupSchedule
from repro.network.deployment import DeploymentConfig, deploy_uniform
from repro.solvers import ilp_available, solve_broadcast

from _bench_utils import emit, time_per_call

#: (num_nodes, seed) per grid instance — sparse enough that interference
#: bites (the flood bound is not tight and the search must branch).
INSTANCES = ((6, 11), (8, 12), (10, 3), (12, 5))
SYSTEMS = ("sync", "duty")
DUTY_RATE = 4


def _json_path() -> str:
    return os.environ.get("REPRO_BENCH_SOLVERS_JSON", "BENCH_solvers.json")


def _instance(num_nodes: int, seed: int):
    config = DeploymentConfig(
        num_nodes=num_nodes,
        area_side=16.0 if num_nodes <= 8 else 22.0,
        radius=6.0,
        source_min_ecc=2,
        source_max_ecc=None,
    )
    return deploy_uniform(config=config, seed=seed)


def _schedule_for(topology, system: str) -> WakeupSchedule | None:
    if system == "sync":
        return None
    return WakeupSchedule(topology.node_ids, rate=DUTY_RATE, seed=9)


@pytest.fixture(scope="module")
def results():
    backends = ["branch-and-bound"] + (["ilp"] if ilp_available() else [])
    rows = []
    for num_nodes, seed in INSTANCES:
        topology, source = _instance(num_nodes, seed)
        for system in SYSTEMS:
            schedule = _schedule_for(topology, system)
            plans = {}
            timings = {}
            for backend in backends:
                plans[backend] = solve_broadcast(
                    topology, source, schedule=schedule, backend=backend
                )
                timings[backend] = time_per_call(
                    lambda backend=backend: solve_broadcast(
                        topology, source, schedule=schedule, backend=backend
                    ),
                    min_reps=3,
                    budget_s=0.5,
                )
            reference = plans["branch-and-bound"]
            rows.append(
                {
                    "num_nodes": num_nodes,
                    "seed": seed,
                    "system": system,
                    "optimum": reference.optimum,
                    "lower_bound": reference.lower_bound,
                    "explored": reference.explored,
                    "seconds": {name: timings[name] for name in backends},
                    "plans": plans,
                }
            )
    return {"backends": backends, "rows": rows}


def test_backends_agree_on_every_instance(results):
    for row in results["rows"]:
        plans = row["plans"]
        reference = plans["branch-and-bound"]
        assert reference.lower_bound <= reference.optimum
        assert reference.latency == reference.optimum - reference.start_time + 1
        for plan in plans.values():
            assert plan.optimum == reference.optimum
            assert plan.advances == reference.advances


def test_report_and_emit_json(results):
    header = f"{'instance':<14} {'system':<6} {'optimum':>7} {'explored':>8}"
    for backend in results["backends"]:
        header += f" {backend + ' (ms)':>22}"
    lines = [header]
    payload_rows = []
    for row in results["rows"]:
        line = (
            f"n={row['num_nodes']:<3} s={row['seed']:<6} {row['system']:<6} "
            f"{row['optimum']:>7} {row['explored']:>8}"
        )
        for backend in results["backends"]:
            line += f" {row['seconds'][backend] * 1e3:>22.3f}"
        lines.append(line)
        payload_rows.append({k: v for k, v in row.items() if k != "plans"})
    emit("Exact solver backends: wall time per certified optimum", "\n".join(lines))

    payload = {
        "benchmark": "solver-backends",
        "ilp_available": ilp_available(),
        "backends": results["backends"],
        "duty_rate": DUTY_RATE,
        "rows": payload_rows,
    }
    path = _json_path()
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    print(f"[wrote {path}]")
