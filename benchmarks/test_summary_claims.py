"""Section V-C summary claims, recomputed from the reproduced figures.

This bench runs the three experimental sweeps (Figures 3, 4 and 6) once and
evaluates the paper's quantitative take-aways side by side with the measured
values; the claim table is printed so EXPERIMENTS.md can be refreshed from
the benchmark output.
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import figure3, figure4, figure6
from repro.experiments.report import claims_to_text, summary_claims

from _bench_utils import emit


@pytest.mark.figure
def test_section5c_summary_claims(benchmark, sweep_config, bench_rounds):
    def _run():
        fig3 = figure3(sweep_config)
        fig4 = figure4(sweep_config)
        fig6 = figure6(sweep_config)
        return summary_claims(fig3, fig4, fig6)

    checks = benchmark.pedantic(_run, **bench_rounds)
    emit("Section V-C claims (paper vs measured)", claims_to_text(checks))

    assert len(checks) == 5
    failing = [check.claim for check in checks if not check.holds]
    assert not failing, f"claims not reproduced at benchmark scale: {failing}"
