"""Figure 4: experimental P(A) in the duty-cycle system with r = 10.

Asserted shape (paper §V-B/V-C): the pipeline schedulers dramatically beat
the 17-approximation at every density; G-OPT stays within r slots of OPT in
the heavy duty-cycle system; the E-model remains well below the baseline.
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import figure4
from repro.sim.metrics import improvement_percent

from _bench_utils import emit, mean


@pytest.mark.figure
def test_figure4_duty10_latency(benchmark, sweep_config, bench_rounds):
    result = benchmark.pedantic(figure4, args=(sweep_config,), **bench_rounds)
    emit("Figure 4 (reproduced, r = 10)", result.to_text())

    baseline = result.series_for("17-approx")
    opt = result.series_for("OPT")
    gopt = result.series_for("G-OPT")
    emodel = result.series_for("E-model")
    rate = 10

    for i in range(len(result.x_values)):
        assert opt[i] < baseline[i]
        assert gopt[i] < baseline[i]
        assert emodel[i] < baseline[i]
        # §V-C: in the heavy duty-cycle system the G-OPT / OPT difference is
        # controlled within r slots.
        assert abs(gopt[i] - opt[i]) <= rate

    improvement = improvement_percent(mean(baseline), mean(gopt))
    # Paper: 85-90% improvement; our baseline re-implementation is stronger,
    # require a still-large margin.
    assert improvement >= 50.0
