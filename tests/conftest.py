"""Shared fixtures: the paper's example graphs and small reference deployments."""

from __future__ import annotations

import pytest

from repro.dutycycle.schedule import WakeupSchedule
from repro.network.deployment import DeploymentConfig, deploy_uniform, grid_deployment
from repro.network.graphs import (
    FIGURE1_SOURCE,
    FIGURE2_SOURCE,
    figure1_topology,
    figure2_duty_schedule,
    figure2_topology,
)
from repro.network.topology import WSNTopology


@pytest.fixture
def figure1():
    """The paper's Figure 1 topology and its source."""
    return figure1_topology(), FIGURE1_SOURCE


@pytest.fixture
def figure2():
    """The paper's Figure 2 topology and its source."""
    return figure2_topology(), FIGURE2_SOURCE


@pytest.fixture
def figure2_duty():
    """Figure 2 with the Table IV wake-up schedule (topology, source, schedule)."""
    return figure2_topology(), FIGURE2_SOURCE, figure2_duty_schedule()


@pytest.fixture
def line_topology() -> WSNTopology:
    """A 6-node line graph (no interference choices, latency = eccentricity)."""
    positions = {i: (float(i), 0.0) for i in range(6)}
    edges = [(i, i + 1) for i in range(5)]
    return WSNTopology.from_edges(edges, positions)


@pytest.fixture
def small_grid() -> WSNTopology:
    """A 4x4 jittered grid, 4-connected."""
    return grid_deployment(4, 4, spacing=1.0, radius=1.1, jitter=0.05, seed=11)


@pytest.fixture
def small_deployment():
    """A small connected random deployment (topology, source)."""
    config = DeploymentConfig(
        num_nodes=30,
        area_side=20.0,
        radius=6.0,
        source_min_ecc=3,
        source_max_ecc=None,
    )
    return deploy_uniform(config=config, seed=7)


@pytest.fixture
def medium_deployment():
    """A paper-style deployment at reduced size (topology, source)."""
    config = DeploymentConfig(
        num_nodes=80,
        area_side=50.0,
        radius=12.0,
        source_min_ecc=4,
        source_max_ecc=None,
    )
    return deploy_uniform(config=config, seed=19)


@pytest.fixture
def duty_schedule_factory():
    """Factory building a wake-up schedule for a topology and rate."""

    def _build(topology: WSNTopology, rate: int, seed: int = 5) -> WakeupSchedule:
        return WakeupSchedule(topology.node_ids, rate=rate, seed=seed)

    return _build
