"""Unit tests for the link-model strategy layer (repro.sim.links)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.approx17 import Approx17Policy
from repro.baselines.approx26 import Approx26Policy
from repro.core.policies import EModelPolicy
from repro.network.bitset import bitset_view
from repro.sim.broadcast import run_broadcast
from repro.sim.links import (
    LINK_MODELS,
    IndependentLossLinks,
    ReliableLinks,
    build_link_model,
    link_model_names,
)
from repro.sim.unreliable import LossyRoundEngine, LossySlotEngine


class TestRegistry:
    def test_names_and_build(self):
        assert link_model_names() == ["independent-loss", "reliable"]
        assert set(LINK_MODELS) == {"reliable", "independent-loss"}
        reliable = build_link_model("reliable")
        assert isinstance(reliable, ReliableLinks) and reliable.lossless
        lossy = build_link_model("independent-loss", loss_probability=0.25, seed=7)
        assert isinstance(lossy, IndependentLossLinks)
        assert lossy.loss_probability == 0.25 and lossy.seed == 7

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown link model"):
            build_link_model("carrier-pigeon")

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            IndependentLossLinks(1.5)
        with pytest.raises(ValueError):
            build_link_model("independent-loss", loss_probability=-0.1)


class TestModelProperties:
    def test_zero_loss_is_lossless_with_unit_stretch(self):
        model = IndependentLossLinks(0.0, seed=3)
        assert model.lossless
        assert model.limit_stretch == 1.0

    def test_limit_stretch_grows_with_loss(self):
        assert IndependentLossLinks(0.5).limit_stretch == pytest.approx(2.0)
        # Clamped near p=1 so the limit stays finite.
        assert IndependentLossLinks(0.99).limit_stretch == pytest.approx(20.0)

    def test_reliable_deliver_is_identity(self, line_topology):
        from repro.core.advance import Advance

        model = ReliableLinks()
        advance = Advance(time=1, color=frozenset({0}), receivers=frozenset({1}))
        assert model.deliver(None, line_topology, advance, frozenset({0})) == (
            frozenset({1})
        )
        view = bitset_view(line_topology)
        expected = view.bool_from_nodes({1})
        out = model.deliver_bool(
            None, view, view.indices({0}), expected, view.bool_from_nodes({0})
        )
        assert out is expected


class TestDrawOrderParity:
    def test_set_and_bitset_deliveries_consume_the_same_stream(self, small_grid):
        """Both implementations draw per candidate pair in the same order."""
        from repro.core.advance import Advance
        from repro.network.interference import receivers_of

        topology = small_grid
        covered = frozenset({topology.node_ids[0]})
        color = frozenset({topology.node_ids[0]})
        expected = receivers_of(topology, color, covered)
        advance = Advance(time=1, color=color, receivers=expected)
        model = IndependentLossLinks(0.5, seed=123)

        set_delivered = model.deliver(model.make_state(), topology, advance, covered)
        view = bitset_view(topology)
        delivered_bool = model.deliver_bool(
            model.make_state(),
            view,
            view.indices(color),
            view.bool_from_nodes(expected),
            view.bool_from_nodes(covered),
        )
        assert view.nodes_from_bool(delivered_bool) == set_delivered
        assert set_delivered <= expected

    def test_delivery_candidates_canonical_order(self, small_grid):
        view = bitset_view(small_grid)
        covered = view.bool_from_nodes({small_grid.node_ids[0]})
        tx_idx = view.indices(set(small_grid.node_ids[:3]))
        rows, cols = view.delivery_candidates(tx_idx, covered)
        pairs = list(zip(rows.tolist(), cols.tolist()))
        assert pairs == sorted(pairs)
        # Every pair is a genuine uncovered-neighbour edge.
        for row, col in pairs:
            assert view.adjacency[tx_idx[row], col]
            assert not covered[col]

    def test_empty_transmitter_set(self, small_grid):
        view = bitset_view(small_grid)
        rows, cols = view.delivery_candidates(
            np.zeros(0, dtype=np.int64), np.zeros(view.num_nodes, dtype=bool)
        )
        assert len(rows) == 0 and len(cols) == 0


class TestLossIntolerantPolicies:
    def test_planned_baselines_rejected_on_lossy_links(self, small_deployment):
        topo, source = small_deployment
        for policy in (Approx26Policy(), Approx17Policy()):
            with pytest.raises(ValueError, match="cannot run over lossy links"):
                run_broadcast(
                    topo,
                    source,
                    policy,
                    link_model=IndependentLossLinks(0.2, seed=1),
                )

    def test_planned_baselines_fine_on_zero_loss(self, small_deployment):
        topo, source = small_deployment
        trace = run_broadcast(
            topo, source, Approx26Policy(), link_model=IndependentLossLinks(0.0)
        )
        assert trace.covered == topo.node_set


class TestLossyTraceContents:
    def test_intended_receivers_recorded(self, small_deployment):
        topo, source = small_deployment
        trace = run_broadcast(
            topo,
            source,
            EModelPolicy(),
            link_model=IndependentLossLinks(0.3, seed=7),
        )
        assert all(a.intended_receivers is not None for a in trace.advances)
        for advance in trace.advances:
            assert advance.receivers <= advance.intended
            assert advance.failed_deliveries == len(advance.intended) - len(
                advance.receivers
            )
        assert trace.failed_deliveries == sum(
            a.failed_deliveries for a in trace.advances
        )

    def test_retransmissions_property(self, small_deployment):
        topo, source = small_deployment
        reliable = run_broadcast(topo, source, EModelPolicy())
        assert reliable.retransmissions == 0
        lossy = run_broadcast(
            topo,
            source,
            EModelPolicy(),
            link_model=IndependentLossLinks(0.4, seed=11),
        )
        counts = lossy.transmissions_by_node()
        assert lossy.retransmissions == sum(c - 1 for c in counts.values() if c > 1)
        assert lossy.retransmissions > 0


class TestShims:
    def test_lossy_round_engine_shim(self, small_deployment):
        topo, source = small_deployment
        engine = LossyRoundEngine(topo, loss_probability=0.2, seed=3)
        assert engine.loss_probability == 0.2
        assert isinstance(engine.link_model, IndependentLossLinks)
        policy = EModelPolicy()
        policy.prepare(topo, None, source)
        trace = engine.run(policy, source)
        assert trace.covered == topo.node_set

    def test_lossy_slot_engine_shim(self, small_deployment, duty_schedule_factory):
        topo, source = small_deployment
        schedule = duty_schedule_factory(topo, rate=5)
        engine = LossySlotEngine(topo, schedule, loss_probability=0.1, seed=3)
        assert engine.loss_probability == 0.1
        policy = EModelPolicy()
        policy.prepare(topo, schedule, source)
        trace = engine.run(policy, source, align_start=True)
        assert trace.covered == topo.node_set
