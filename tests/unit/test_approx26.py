"""Unit tests for the 26-approximation baseline (repro.baselines.approx26)."""

from __future__ import annotations

import pytest

from repro.baselines.approx26 import Approx26Policy, layer_color_plan
from repro.baselines.bfs_tree import build_broadcast_tree
from repro.core.advance import BroadcastState
from repro.dutycycle.schedule import WakeupSchedule
from repro.network.interference import conflict_free
from repro.sim.broadcast import run_broadcast


class TestLayerColorPlan:
    def test_each_class_is_conflict_free_at_layer_start(self, medium_deployment):
        topo, source = medium_deployment
        tree = build_broadcast_tree(topo, source)
        plan = layer_color_plan(topo, tree)
        covered: set[int] = set()
        for level, classes in enumerate(plan):
            covered |= set(tree.layers[level])
            for color in classes:
                assert conflict_free(topo, color, frozenset(covered))

    def test_classes_partition_layer_parents(self, medium_deployment):
        topo, source = medium_deployment
        tree = build_broadcast_tree(topo, source)
        plan = layer_color_plan(topo, tree)
        for level, classes in enumerate(plan):
            members = [u for color in classes for u in color]
            assert sorted(members) == sorted(tree.parents_per_layer[level])
            assert len(members) == len(set(members))

    def test_last_layer_has_no_classes(self, figure1):
        topo, source = figure1
        tree = build_broadcast_tree(topo, source)
        plan = layer_color_plan(topo, tree)
        assert plan[-1] == []


class TestApprox26Policy:
    def test_figure1_latency_is_per_layer_synchronised(self, figure1):
        topo, source = figure1
        result = run_broadcast(topo, source, Approx26Policy())
        # 1 round for the source, 2 colour rounds for layer 1, 1 for layer 2.
        assert result.latency == 4

    def test_latency_equals_total_color_classes(self, medium_deployment):
        topo, source = medium_deployment
        policy = Approx26Policy()
        result = run_broadcast(topo, source, policy)
        assert result.latency == policy.planned_rounds
        assert result.num_advances == policy.planned_rounds

    def test_never_faster_than_pipeline_optimum(self, figure1, figure2, small_deployment):
        from repro.core.policies import GreedyOptPolicy

        for topo, source in (figure1, figure2, small_deployment):
            baseline = run_broadcast(topo, source, Approx26Policy())
            gopt = run_broadcast(topo, source, GreedyOptPolicy())
            assert baseline.latency >= gopt.latency

    def test_requires_prepare(self, figure1):
        topo, source = figure1
        policy = Approx26Policy()
        state = BroadcastState(topo, frozenset({source}), time=1)
        with pytest.raises(RuntimeError, match="prepare"):
            policy.select_advance(state)

    def test_rejects_duty_cycle_schedule(self, figure1):
        topo, source = figure1
        schedule = WakeupSchedule(topo.node_ids, rate=10, seed=0)
        with pytest.raises(ValueError, match="round-based"):
            Approx26Policy().prepare(topo, schedule, source)

    def test_schedule_error_points_at_the_solver_registry(self, figure1):
        topo, source = figure1
        schedule = WakeupSchedule(topo.node_ids, rate=10, seed=0)
        with pytest.raises(ValueError, match="SOLVER_TIERS"):
            Approx26Policy().prepare(topo, schedule, source)

    def test_none_when_complete(self, figure1):
        topo, source = figure1
        policy = Approx26Policy()
        policy.prepare(topo, None, source)
        state = BroadcastState(topo, topo.node_set, time=1)
        assert policy.select_advance(state) is None

    def test_tree_exposed_after_prepare(self, figure1):
        topo, source = figure1
        policy = Approx26Policy()
        policy.prepare(topo, None, source)
        assert policy.tree is not None
        assert policy.tree.source == source

    def test_line_latency_is_hand_computable(self, line_topology):
        """On the 6-node line each layer is one conflict-free parent, so
        the layered schedule is one round per hop: latency = 5 = optimum."""
        result = run_broadcast(line_topology, 0, Approx26Policy())
        assert result.latency == 5

    def test_star_latency_is_hand_computable(self):
        """One hub transmission covers every leaf: latency = 1 = optimum."""
        from repro.network.topology import WSNTopology

        positions = {
            0: (0.0, 0.0), 1: (1.0, 0.0), 2: (-1.0, 0.0),
            3: (0.0, 1.0), 4: (0.0, -1.0),
        }
        star = WSNTopology.from_edges([(0, i) for i in range(1, 5)], positions)
        result = run_broadcast(star, 0, Approx26Policy())
        assert result.latency == 1

    def test_latency_within_the_proved_bound(self, small_deployment):
        """The solver catalog's guarantee, measured: latency <= 26 d."""
        topo, source = small_deployment
        result = run_broadcast(topo, source, Approx26Policy())
        depth = max(topo.hop_distances(source).values())
        assert result.latency <= 26 * depth
