"""Unit tests."""
