"""Unit tests for repro.experiments.config."""

from __future__ import annotations

import pytest

from repro.experiments.config import (
    PAPER_SWEEP,
    QUICK_SWEEP,
    SCALE_ENV_VAR,
    ExperimentScale,
    SweepConfig,
    sweep_from_env,
)


class TestSweepConfig:
    def test_paper_defaults_match_section_5a(self):
        assert PAPER_SWEEP.node_counts == (50, 100, 150, 200, 250, 300)
        assert PAPER_SWEEP.area_side == 50.0
        assert PAPER_SWEEP.radius == 10.0
        assert PAPER_SWEEP.source_min_ecc == 5
        assert PAPER_SWEEP.source_max_ecc == 8
        assert PAPER_SWEEP.duty_rates == (10, 50)

    def test_densities_span_paper_range(self):
        densities = PAPER_SWEEP.densities
        assert densities[0] == pytest.approx(0.02)
        assert densities[-1] == pytest.approx(0.12)

    def test_quick_sweep_is_subset(self):
        assert set(QUICK_SWEEP.node_counts) <= set(PAPER_SWEEP.node_counts)
        assert QUICK_SWEEP.repetitions <= PAPER_SWEEP.repetitions

    def test_with_repetitions(self):
        assert QUICK_SWEEP.with_repetitions(7).repetitions == 7
        assert QUICK_SWEEP.repetitions != 7  # original untouched

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            SweepConfig(node_counts=())
        with pytest.raises(ValueError):
            SweepConfig(node_counts=(1,))
        with pytest.raises(ValueError):
            SweepConfig(repetitions=0)
        with pytest.raises(ValueError):
            SweepConfig(batch=-1)
        with pytest.raises(ValueError):
            SweepConfig(engine="warp-drive")

    def test_batch_is_execution_shape_not_cell_identity(self):
        from repro.experiments.config import CELL_KEY_EXCLUDED_FIELDS

        assert "batch" in CELL_KEY_EXCLUDED_FIELDS
        fields = SweepConfig().cell_key_fields()
        assert "batch" not in fields
        # and changing it leaves the digest inputs untouched
        import dataclasses

        assert dataclasses.replace(SweepConfig(), batch=8).cell_key_fields() == fields


class TestSweepFromEnv:
    def test_default_is_quick(self, monkeypatch):
        monkeypatch.delenv(SCALE_ENV_VAR, raising=False)
        assert sweep_from_env() == QUICK_SWEEP

    def test_paper_scale_selected(self, monkeypatch):
        monkeypatch.setenv(SCALE_ENV_VAR, "paper")
        assert sweep_from_env() == PAPER_SWEEP

    def test_unknown_value_falls_back_to_quick(self, monkeypatch):
        monkeypatch.setenv(SCALE_ENV_VAR, "huge")
        assert sweep_from_env() == QUICK_SWEEP

    def test_explicit_default_override(self, monkeypatch):
        monkeypatch.delenv(SCALE_ENV_VAR, raising=False)
        assert sweep_from_env(ExperimentScale.PAPER) == PAPER_SWEEP
