"""Unit tests for the loss axis of the experiment stack (config → CLI)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.time_counter import SearchConfig
from repro.experiments.cli import main
from repro.experiments.config import SweepConfig
from repro.experiments.figures import RETX_SUFFIX, figure_reliability
from repro.experiments.report import claims_to_text, reliability_claims
from repro.experiments.runner import default_policies, run_sweep


def _quick_config(**overrides) -> SweepConfig:
    base = dict(
        node_counts=(24, 30),
        repetitions=2,
        search=SearchConfig(mode="beam", beam_width=2),
        max_color_classes=4,
        source_min_ecc=2,
        source_max_ecc=None,
        area_side=22.0,
        radius=7.0,
    )
    base.update(overrides)
    return SweepConfig(**base)


class TestSweepConfigLossAxis:
    def test_defaults_are_reliable(self):
        config = SweepConfig()
        assert config.link_model == "reliable"
        assert config.loss_probability == 0.0

    def test_unknown_link_model_rejected(self):
        with pytest.raises(ValueError, match="unknown link model"):
            SweepConfig(link_model="smoke-signals")

    def test_loss_on_reliable_links_rejected(self):
        with pytest.raises(ValueError, match="requires link_model"):
            SweepConfig(loss_probability=0.2)

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            SweepConfig(link_model="independent-loss", loss_probability=1.5)

    def test_with_loss_round_trips(self):
        config = SweepConfig().with_loss(0.3)
        assert config.link_model == "independent-loss"
        assert config.loss_probability == 0.3
        back = config.with_loss(0.0)
        assert back.link_model == "reliable"
        assert back.loss_probability == 0.0


class TestDefaultPolicies:
    def test_reliable_line_up_keeps_planned_baselines(self):
        config = _quick_config()
        assert "26-approx" in default_policies(config, "sync")
        assert "17-approx" in default_policies(config, "duty")

    def test_lossy_line_up_drops_planned_baselines(self):
        config = _quick_config(link_model="independent-loss", loss_probability=0.1)
        sync = default_policies(config, "sync")
        duty = default_policies(config, "duty")
        assert "26-approx" not in sync and "17-approx" not in duty
        assert {"OPT", "G-OPT", "E-model"} <= set(sync)
        assert {"OPT", "G-OPT", "E-model"} <= set(duty)


class TestLossySweepRecords:
    def test_record_columns_carry_the_loss_axis(self):
        config = _quick_config(link_model="independent-loss", loss_probability=0.2)
        sweep = run_sweep(config, system="sync")
        assert sweep.records
        for record in sweep.records:
            assert record.link_model == "independent-loss"
            assert record.loss_probability == 0.2
            assert record.retransmissions >= 0
        rows = sweep.to_rows()
        assert all(len(row) == len(sweep.ROW_HEADERS) for row in rows)
        assert "link_model" in sweep.ROW_HEADERS
        assert "loss_probability" in sweep.ROW_HEADERS
        assert "retransmissions" in sweep.ROW_HEADERS


class TestFigureReliability:
    def test_series_shapes_and_claims(self):
        config = _quick_config(node_counts=(24,), repetitions=1)
        figure = figure_reliability(
            config, loss_probabilities=(0.0, 0.3), system="sync"
        )
        assert figure.x_values == (0.0, 0.3)
        policies = [n for n in figure.series if not n.endswith(RETX_SUFFIX)]
        assert policies, "no latency series produced"
        for policy in policies:
            assert len(figure.series_for(policy)) == 2
            assert len(figure.series_for(f"{policy}{RETX_SUFFIX}")) == 2
        # The CSV renderer requires equal-length series at every x.
        csv = figure.to_csv()
        assert csv.count("\n") >= 3
        checks = reliability_claims(figure)
        assert len(checks) == 2 * len(policies)
        assert claims_to_text(checks)

    def test_zero_point_matches_reliable_sweep(self):
        """The figure's 0.0 column is the plain reliable sweep, seed-paired."""
        config = _quick_config(node_counts=(24,), repetitions=1)
        figure = figure_reliability(
            config, loss_probabilities=(0.0, 0.2), system="sync"
        )
        line_up = default_policies(config.with_loss(0.2), "sync")
        reliable = run_sweep(config, system="sync", policies=line_up)
        for policy in reliable.policies:
            expected = sum(r.latency for r in reliable.records_for(policy)) / len(
                reliable.records_for(policy)
            )
            assert figure.series_for(policy)[0] == pytest.approx(expected)


class TestCLI:
    def test_paper_targets_reject_loss_flags(self, capsys):
        with pytest.raises(SystemExit):
            main(["figure3", "--loss", "0.1"])
        assert "--loss" in capsys.readouterr().err
        with pytest.raises(SystemExit):
            main(["table2", "--link-model", "independent-loss"])

    def test_sweep_rejects_loss_lists(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--loss", "0.1,0.2"])
        assert "single probability" in capsys.readouterr().err

    def test_lossy_sweep_emits_loss_columns(self, capsys):
        exit_code = main(
            ["sweep", "--nodes", "50", "--repetitions", "1", "--loss", "0.2"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "link_model=independent-loss" in out
        assert "loss=0.2" in out
        assert "retransmissions" in out

    def test_reliability_target_accepts_loss_list(self, capsys):
        exit_code = main(
            [
                "reliability",
                "--nodes",
                "50",
                "--repetitions",
                "1",
                "--loss",
                "0.0,0.2",
                "--system",
                "sync",
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Reliability" in out
        assert "loss probability" in out

    def test_invalid_loss_value_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--loss", "1.7"])
        assert "must be in [0, 1]" in capsys.readouterr().err


class TestScenarioComposition:
    def test_lossy_scenario_sweep_runs(self):
        config = _quick_config(
            node_counts=(24,),
            repetitions=1,
            scenario="ring",
            link_model="independent-loss",
            loss_probability=0.1,
        )
        config = dataclasses.replace(config, engine="vectorized")
        sweep = run_sweep(config, system="duty", rate=6)
        assert sweep.records
        assert {r.scenario for r in sweep.records} == {"ring"}
