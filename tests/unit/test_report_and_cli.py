"""Unit tests for repro.experiments.report and repro.experiments.cli."""

from __future__ import annotations

import pytest

from repro.experiments.cli import build_parser, main
from repro.experiments.figures import FigureResult
from repro.experiments.report import ClaimCheck, claims_to_text, summary_claims


def _synthetic_fig3() -> FigureResult:
    return FigureResult(
        name="Figure 3",
        title="synthetic",
        x_label="density",
        x_values=(0.02, 0.04),
        series={
            "26-approx": [20.0, 24.0],
            "OPT": [6.0, 7.0],
            "G-OPT": [6.0, 8.0],
            "E-model": [7.0, 9.0],
            "OPT-analysis": [8.0, 9.0],
        },
    )


def _synthetic_duty(name: str) -> FigureResult:
    return FigureResult(
        name=name,
        title="synthetic",
        x_label="density",
        x_values=(0.02, 0.04),
        series={
            "17-approx": [100.0, 120.0],
            "OPT": [15.0, 18.0],
            "G-OPT": [15.0, 19.0],
            "E-model": [20.0, 25.0],
        },
    )


class TestSummaryClaims:
    def test_claims_computed_and_hold_on_synthetic_data(self):
        checks = summary_claims(_synthetic_fig3(), _synthetic_duty("Figure 4"), _synthetic_duty("Figure 6"))
        assert len(checks) == 5
        assert all(isinstance(c, ClaimCheck) for c in checks)
        assert all(c.holds for c in checks)

    def test_improvement_value_matches_hand_computation(self):
        checks = summary_claims(_synthetic_fig3())
        sync_claim = checks[0]
        # mean baseline 22, mean G-OPT 7 -> (22-7)/22 = 68.2%
        assert sync_claim.value == pytest.approx(100 * (22 - 7) / 22, abs=0.1)

    def test_gap_claim_detects_violation(self):
        figure = _synthetic_fig3()
        figure.series["G-OPT"] = [10.0, 12.0]  # gap of 5 rounds vs OPT
        checks = summary_claims(figure)
        gap_claim = next(c for c in checks if "within 2 rounds" in c.claim)
        assert not gap_claim.holds

    def test_claims_text_rendering(self):
        text = claims_to_text(summary_claims(_synthetic_fig3()))
        assert "claim" in text
        assert "26-approximation" in text


class TestCli:
    def test_parser_targets(self):
        parser = build_parser()
        args = parser.parse_args(["figure3", "--scale", "quick"])
        assert args.target == "figure3"
        assert args.scale == "quick"

    def test_invalid_target_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["figure99"])

    def test_main_runs_tables_without_sweeps(self, capsys):
        assert main(["table2"]) == 0
        output = capsys.readouterr().out
        assert "Table II" in output
        assert "P(A) = 2" in output

    def test_main_writes_csv_for_figures(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "quick")
        exit_code = main(
            ["figure3", "--scale", "quick", "--repetitions", "1", "--csv-dir", str(tmp_path)]
        )
        assert exit_code == 0
        csv_path = tmp_path / "figure3.csv"
        assert csv_path.exists()
        assert "G-OPT" in csv_path.read_text()
        assert "Figure 3" in capsys.readouterr().out


class TestScenarioCli:
    def test_list_scenarios(self, capsys):
        assert main(["--list-scenarios"]) == 0
        output = capsys.readouterr().out
        for name in ("uniform", "clustered", "corridor", "ring",
                     "perturbed-grid", "grid-holes", "knn"):
            assert name in output

    def test_list_duty_models(self, capsys):
        assert main(["--list-duty-models"]) == 0
        output = capsys.readouterr().out
        assert "two-tier" in output
        assert "zipf" in output

    def test_default_target_is_sweep(self):
        args = build_parser().parse_args(["--scenario", "clustered"])
        assert args.target == "sweep"
        assert args.scenario == "clustered"

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--scenario", "torus"])

    def test_scenario_rejected_for_paper_targets(self, capsys):
        # Paper figures/claims keep the paper's labels and thresholds, so
        # the scenario axes are restricted to the sweep/scenarios targets.
        with pytest.raises(SystemExit):
            main(["figure4", "--scenario", "corridor"])
        assert "sweep" in capsys.readouterr().err
        with pytest.raises(SystemExit):
            main(["claims", "--duty-model", "zipf"])

    def test_explicit_uniform_allowed_for_paper_targets(self):
        args = build_parser().parse_args(["table2", "--scenario", "uniform"])
        assert main(["table2", "--scenario", "uniform"]) == 0
        assert args.scenario == "uniform"

    def test_malformed_nodes_rejected_cleanly(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--nodes", "50,abc"])
        assert "comma-separated integers" in capsys.readouterr().err
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--nodes", ","])

    def test_sweep_target_prints_records(self, capsys):
        exit_code = main(
            ["sweep", "--scenario", "ring", "--duty-model", "two-tier",
             "--nodes", "24", "--repetitions", "1", "--rate", "5",
             "--engine", "vectorized"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "scenario=ring duty_model=two-tier" in output
        assert "policy,system,rate,scenario,duty_model" in output
        assert ",ring,two-tier," in output

    def test_sweep_profile_prints_phase_split(self, capsys):
        exit_code = main(
            ["sweep", "--nodes", "50", "--repetitions", "1",
             "--engine", "batched", "--profile"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "profile: kernel" in output
        assert "policy decisions" in output
        assert "bookkeeping" in output
        assert "macro-steps" in output

    def test_sweep_profile_without_batched_engine_notes_no_stripes(self, capsys):
        exit_code = main(
            ["sweep", "--nodes", "24", "--repetitions", "1",
             "--engine", "vectorized", "--profile"]
        )
        assert exit_code == 0
        assert "profile: no batched stripes ran" in capsys.readouterr().out

    def test_sweep_output_worker_invariant(self, capsys):
        argv = ["sweep", "--scenario", "clustered", "--nodes", "24",
                "--repetitions", "1", "--rate", "5", "--engine", "vectorized"]
        assert main([*argv, "--workers", "1"]) == 0
        serial = capsys.readouterr().out
        assert main([*argv, "--workers", "2"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel

    def test_scenarios_target_compares_policies(self, capsys, tmp_path):
        # 50 nodes: the paper's minimum density (a 24-node uniform deployment
        # over the full 50x50 area is too sparse to connect).
        exit_code = main(
            ["scenarios", "--nodes", "50", "--repetitions", "1", "--rate", "5",
             "--engine", "vectorized", "--csv-dir", str(tmp_path)]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Scenario comparison" in output
        assert "corridor" in output
        assert (tmp_path / "scenarios.csv").exists()
