"""Unit tests for repro.core.time_counter (the time counter M)."""

from __future__ import annotations

import pytest

from repro.core.coloring import ColorScheme, greedy_color_classes
from repro.core.time_counter import (
    SearchBudgetExceeded,
    SearchConfig,
    TimeCounter,
    UnreachableNodes,
)
from repro.network.graphs import FIGURE2_DUTY_START
from repro.network.topology import WSNTopology


class TestSearchConfig:
    def test_defaults(self):
        config = SearchConfig()
        assert config.mode == "exact"
        assert config.beam_width == 8

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mode": "bogus"},
            {"beam_width": 0},
            {"max_states": 0},
            {"max_slots": 0},
        ],
    )
    def test_invalid_configs(self, kwargs):
        with pytest.raises(ValueError):
            SearchConfig(**kwargs)


class TestSynchronousExact:
    def test_figure2_completion_matches_table2(self, figure2):
        topo, source = figure2
        counter = TimeCounter(topo)
        assert counter.completion_time({source}, 1) == 2

    def test_figure1_completion_matches_table3(self, figure1):
        topo, source = figure1
        counter = TimeCounter(topo)
        assert counter.completion_time({source}, 1) == 3

    def test_complete_coverage_returns_t_minus_one(self, figure2):
        topo, _ = figure2
        counter = TimeCounter(topo)
        assert counter.completion_time(topo.node_set, 7) == 6

    def test_time_shift_invariance(self, figure1):
        topo, source = figure1
        counter = TimeCounter(topo)
        base = counter.completion_time({source}, 1)
        shifted = counter.completion_time({source}, 5)
        assert shifted == base + 4

    def test_monotone_in_coverage(self, figure1):
        topo, source = figure1
        counter = TimeCounter(topo)
        small = frozenset({source})
        large = small | frozenset({0, 1, 2})
        assert counter.completion_time(large, 1) <= counter.completion_time(small, 1)

    def test_rank_colors_prefers_node1_on_figure1(self, figure1):
        """The core motivating decision: selecting {1} beats selecting {0}."""
        topo, source = figure1
        counter = TimeCounter(topo)
        covered = frozenset({source, 0, 1, 2})
        colors = greedy_color_classes(topo, covered)
        ranked = counter.rank_colors(covered, 2, colors)
        assert ranked[0][0] == frozenset({1})
        assert ranked[0][1] == 3
        by_color = dict(ranked)
        assert by_color[frozenset({0})] == 4
        assert by_color[frozenset({2})] == 4

    def test_select_color_agrees_with_rank(self, figure1):
        topo, source = figure1
        counter = TimeCounter(topo)
        covered = frozenset({source, 0, 1, 2})
        colors = greedy_color_classes(topo, covered)
        assert counter.select_color(covered, 2, colors) == counter.rank_colors(
            covered, 2, colors
        )[0]

    def test_best_color_none_when_complete(self, figure2):
        topo, _ = figure2
        counter = TimeCounter(topo)
        assert counter.best_color(topo.node_set, 3) is None

    def test_line_graph_needs_eccentricity_rounds(self, line_topology):
        counter = TimeCounter(line_topology)
        assert counter.completion_time({0}, 1) == line_topology.eccentricity(0)

    def test_exhaustive_scheme_no_worse_than_greedy(self, figure1, small_deployment):
        for topo, source in (figure1, small_deployment):
            greedy = TimeCounter(topo, color_scheme=ColorScheme("greedy"))
            exhaustive = TimeCounter(topo, color_scheme=ColorScheme("exhaustive"))
            assert exhaustive.completion_time({source}, 1) <= greedy.completion_time(
                {source}, 1
            )

    def test_unreachable_nodes_detected(self):
        topo = WSNTopology.from_positions([(0, 0), (1, 0), (50, 50)], radius=2.0)
        counter = TimeCounter(topo)
        with pytest.raises(UnreachableNodes):
            counter.completion_time({0}, 1)

    def test_state_budget_enforced(self, medium_deployment):
        topo, source = medium_deployment
        counter = TimeCounter(topo, config=SearchConfig(mode="exact", max_states=3))
        with pytest.raises(SearchBudgetExceeded):
            counter.completion_time({source}, 1)

    def test_clear_cache_resets_stats(self, figure1):
        topo, source = figure1
        counter = TimeCounter(topo)
        counter.completion_time({source}, 1)
        assert counter.stats.expansions > 0
        counter.clear_cache()
        assert counter.stats.expansions == 0

    def test_invalid_time_rejected(self, figure2):
        topo, source = figure2
        counter = TimeCounter(topo)
        with pytest.raises(ValueError):
            counter.completion_time({source}, 0)

    def test_select_color_requires_candidates(self, figure2):
        topo, source = figure2
        counter = TimeCounter(topo)
        with pytest.raises(ValueError):
            counter.select_color({source}, 1, [])


class TestSynchronousBeam:
    def test_beam_matches_exact_on_paper_examples(self, figure1, figure2):
        for topo, source in (figure1, figure2):
            exact = TimeCounter(topo, config=SearchConfig(mode="exact"))
            beam = TimeCounter(topo, config=SearchConfig(mode="beam", beam_width=4))
            assert beam.completion_time({source}, 1) == exact.completion_time({source}, 1)

    def test_beam_matches_exact_on_small_random(self, small_deployment):
        topo, source = small_deployment
        exact = TimeCounter(topo, config=SearchConfig(mode="exact"))
        beam = TimeCounter(topo, config=SearchConfig(mode="beam", beam_width=8))
        assert beam.completion_time({source}, 1) == exact.completion_time({source}, 1)

    def test_beam_select_color_on_figure1(self, figure1):
        topo, source = figure1
        beam = TimeCounter(topo, config=SearchConfig(mode="beam", beam_width=4))
        covered = frozenset({source, 0, 1, 2})
        colors = greedy_color_classes(topo, covered)
        color, completion = beam.select_color(covered, 2, colors)
        assert color == frozenset({1})
        assert completion == 3

    def test_beam_results_bracketed_by_bounds(self, medium_deployment):
        """Any beam width yields a valid schedule length: >= d and close to d."""
        topo, source = medium_deployment
        eccentricity = topo.eccentricity(source)
        for width in (1, 4, 8):
            counter = TimeCounter(topo, config=SearchConfig(mode="beam", beam_width=width))
            latency = counter.completion_time({source}, 1)
            assert latency >= eccentricity
            assert latency <= eccentricity + 3


class TestDutyCycle:
    def test_figure2_duty_matches_table4(self, figure2_duty):
        topo, source, schedule = figure2_duty
        counter = TimeCounter(topo, schedule=schedule)
        assert counter.completion_time({source}, FIGURE2_DUTY_START) == 4

    def test_deferring_to_node3_is_worse(self, figure2_duty):
        """Table IV: selecting {3} at slot 4 postpones completion past r+3."""
        topo, source, schedule = figure2_duty
        counter = TimeCounter(topo, schedule=schedule)
        covered = frozenset({1, 2, 3})
        ranked = counter.rank_colors(covered, 4, [frozenset({2}), frozenset({3})])
        by_color = dict(ranked)
        assert by_color[frozenset({2})] == 4
        assert by_color[frozenset({3})] > 10

    def test_beam_matches_exact_on_duty_example(self, figure2_duty):
        topo, source, schedule = figure2_duty
        exact = TimeCounter(topo, schedule=schedule, config=SearchConfig(mode="exact"))
        beam = TimeCounter(
            topo, schedule=schedule, config=SearchConfig(mode="beam", beam_width=4)
        )
        assert beam.completion_time({source}, FIGURE2_DUTY_START) == exact.completion_time(
            {source}, FIGURE2_DUTY_START
        )

    def test_duty_completion_at_least_sync(self, small_deployment, duty_schedule_factory):
        topo, source = small_deployment
        schedule = duty_schedule_factory(topo, rate=5)
        sync = TimeCounter(topo, config=SearchConfig(mode="beam", beam_width=4))
        duty = TimeCounter(
            topo, schedule=schedule, config=SearchConfig(mode="beam", beam_width=4)
        )
        start = schedule.next_active_slot(source, 1)
        sync_latency = sync.completion_time({source}, 1)
        duty_latency = duty.completion_time({source}, start) - start + 1
        assert duty_latency >= sync_latency
