"""CLI surface of the experiment store: --store/--resume and the store target."""

from __future__ import annotations

import pytest

from repro.experiments.cli import build_parser, main
from repro.store import STORE_BACKENDS, ExperimentStore

#: Smallest real sweep the CLI can run: one node count, one repetition.
_TINY = ["--nodes", "50", "--repetitions", "1"]


class TestParser:
    def test_store_flags_parse(self, tmp_path):
        args = build_parser().parse_args(
            ["sweep", "--store", str(tmp_path), "--no-resume"]
        )
        assert args.store == tmp_path
        assert args.resume is False
        assert build_parser().parse_args(["sweep"]).resume is True

    def test_store_target_with_action(self, tmp_path):
        args = build_parser().parse_args(
            ["store", "export", "--store", str(tmp_path), "--format", "csv"]
        )
        assert args.target == "store"
        assert args.action == "export"
        assert args.format == "csv"

    def test_action_rejected_for_other_targets(self, capsys):
        with pytest.raises(SystemExit):
            main(["figure3", "stats"])
        assert "'store' target" in capsys.readouterr().err

    def test_store_target_requires_store_and_action(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["store", "stats"])
        assert "--store" in capsys.readouterr().err
        with pytest.raises(SystemExit):
            main(["store", "--store", str(tmp_path)])
        assert "requires an action" in capsys.readouterr().err


class TestStoreWorkflow:
    @pytest.fixture(scope="class")
    def store_dir(self, tmp_path_factory):
        """One store populated by a real (tiny) CLI sweep."""
        path = tmp_path_factory.mktemp("cli-store") / "store"
        assert main(["sweep", *_TINY, "--store", str(path)]) == 0
        return path

    def test_cold_run_populates_then_warm_run_hits(self, store_dir, capsys):
        capsys.readouterr()
        assert main(["sweep", *_TINY, "--store", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "store: 1 hits / 0 misses (100% cached)" in out

    def test_no_resume_forces_resimulation(self, store_dir, capsys):
        capsys.readouterr()
        assert main(["sweep", *_TINY, "--store", str(store_dir), "--no-resume"]) == 0
        out = capsys.readouterr().out
        assert "store: 0 hits / 1 misses (0% cached)" in out

    def test_stats_action(self, store_dir, capsys):
        capsys.readouterr()
        assert main(["store", "stats", "--store", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "cached cells" in out
        assert "duty: 1" in out

    def test_gc_action_is_a_noop_on_a_healthy_store(self, store_dir, capsys):
        capsys.readouterr()
        assert main(["store", "gc", "--store", str(store_dir)]) == 0
        assert "gc: removed 0 items" in capsys.readouterr().out

    @pytest.mark.parametrize("fmt", sorted(STORE_BACKENDS))
    def test_export_round_trip(self, store_dir, tmp_path, capsys, fmt):
        """export -> reload through the backend -> records compare equal."""
        output = tmp_path / f"export.{fmt}"
        capsys.readouterr()
        assert main(
            [
                "store",
                "export",
                "--store",
                str(store_dir),
                "--format",
                fmt,
                "--output",
                str(output),
            ]
        ) == 0
        assert f"[wrote {output}]" in capsys.readouterr().out
        reloaded = STORE_BACKENDS[fmt].loads(output.read_text())
        with ExperimentStore(store_dir) as store:
            expected = [record for _, batch in store.iter_cells() for record in batch]
        assert reloaded == expected
        assert len(reloaded) > 0

    def test_export_to_stdout(self, store_dir, capsys):
        capsys.readouterr()
        assert main(["store", "export", "--store", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith('{"')
