"""Unit tests for the paper example topologies (repro.network.graphs)."""

from __future__ import annotations

import pytest

from repro.network.graphs import (
    FIGURE1_SOURCE,
    FIGURE2_DUTY_RATE,
    FIGURE2_DUTY_START,
    FIGURE2_SOURCE,
    figure1_topology,
    figure2_duty_schedule,
    figure2_topology,
)


class TestFigure1:
    def test_node_set(self, figure1):
        topo, source = figure1
        assert topo.num_nodes == 12
        assert source == FIGURE1_SOURCE
        assert topo.node_set == frozenset(range(11)) | {FIGURE1_SOURCE}

    def test_source_neighbors_are_relay_candidates(self, figure1):
        topo, source = figure1
        assert topo.neighbors(source) == frozenset({0, 1, 2})

    def test_all_candidates_conflict_at_node_3(self, figure1):
        topo, _ = figure1
        assert 3 in topo.neighbors(0)
        assert 3 in topo.neighbors(1)
        assert 3 in topo.neighbors(2)

    def test_relay_coverage_matches_paper(self, figure1):
        """Table III: N(0) reaches {3,5,6,7}, N(1) reaches {3,4,10}, N(2) reaches {3}."""
        topo, source = figure1
        covered = frozenset({source, 0, 1, 2})
        assert topo.uncovered_neighbors(0, covered) == frozenset({3, 5, 6, 7})
        assert topo.uncovered_neighbors(1, covered) == frozenset({3, 4, 10})
        assert topo.uncovered_neighbors(2, covered) == frozenset({3})

    def test_farthest_nodes_are_8_and_9_at_three_hops(self, figure1):
        topo, source = figure1
        distances = topo.hop_distances(source)
        assert distances[8] == 3 and distances[9] == 3
        assert topo.eccentricity(source) == 3
        assert all(d <= 3 for d in distances.values())

    def test_connected(self, figure1):
        topo, _ = figure1
        assert topo.is_connected()

    def test_nodes_zero_and_four_are_interference_free_after_round_two(self, figure1):
        """The Figure 1(c) pipeline: 0 and 4 can relay concurrently."""
        from repro.network.interference import conflict_free

        topo, source = figure1
        covered = frozenset({source, 0, 1, 2, 3, 4, 10})
        assert conflict_free(topo, [0, 4], covered)


class TestFigure2:
    def test_structure(self, figure2):
        topo, source = figure2
        assert topo.num_nodes == 5
        assert source == FIGURE2_SOURCE
        assert topo.neighbors(1) == frozenset({2, 3})
        assert topo.neighbors(2) == frozenset({1, 4, 5})
        assert topo.neighbors(3) == frozenset({1, 4})

    def test_conflict_at_node_4(self, figure2):
        from repro.network.interference import has_conflict

        topo, _ = figure2
        assert has_conflict(topo, 2, 3, covered=frozenset({1, 2, 3}))

    def test_eccentricity(self, figure2):
        topo, source = figure2
        assert topo.eccentricity(source) == 2


class TestFigure2DutySchedule:
    def test_rate_and_constants(self):
        schedule = figure2_duty_schedule()
        assert schedule.rate == FIGURE2_DUTY_RATE == 10
        assert FIGURE2_DUTY_START == 2

    def test_source_awake_at_start(self):
        schedule = figure2_duty_schedule()
        assert schedule.is_active(1, FIGURE2_DUTY_START)

    def test_nodes_2_and_3_wake_together_at_slot_4(self):
        schedule = figure2_duty_schedule()
        assert schedule.is_active(2, 4)
        assert schedule.is_active(3, 4)
        assert not schedule.is_active(2, 3)
        assert not schedule.is_active(3, 3)

    def test_node_2_next_wakeup_is_a_cycle_later(self):
        schedule = figure2_duty_schedule()
        assert schedule.next_active_slot(2, 5) == 14

    def test_covers_every_figure2_node(self, figure2):
        topo, _ = figure2
        schedule = figure2_duty_schedule()
        assert set(schedule.node_ids) == set(topo.node_ids)
