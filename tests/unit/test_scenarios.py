"""The scenario registry and the built-in deployment generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.network.deployment import Deployment, DeploymentConfig
from repro.scenarios import (
    SCENARIOS,
    generate_scenario,
    get_scenario,
    list_scenarios,
    scenario_names,
)

REQUIRED = {
    "uniform",
    "clustered",
    "corridor",
    "ring",
    "perturbed-grid",
    "grid-holes",
    "knn",
}


def _adjacency(deployment: Deployment) -> dict[int, frozenset[int]]:
    topology = deployment.topology
    return {u: topology.neighbors(u) for u in topology.node_ids}


class TestRegistry:
    def test_all_required_scenarios_registered(self):
        assert REQUIRED <= set(scenario_names())
        assert len(scenario_names()) >= 6

    def test_specs_have_summaries(self):
        for spec in list_scenarios():
            assert spec.summary
            assert spec.builder is not None

    def test_get_scenario_unknown_name(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("moebius-strip")

    def test_generate_unknown_parameter_rejected(self):
        with pytest.raises(TypeError, match="unknown parameters"):
            generate_scenario("ring", num_nodes=40, seed=0, wobble=3)

    def test_generate_requires_config_or_num_nodes(self):
        with pytest.raises(ValueError, match="num_nodes or config"):
            generate_scenario("ring")

    def test_scenario_names_sorted(self):
        assert scenario_names() == sorted(SCENARIOS)


@pytest.mark.parametrize("name", sorted(REQUIRED))
class TestEveryScenario:
    CONFIG = DeploymentConfig(num_nodes=60)

    def test_returns_connected_deployment(self, name):
        deployment = generate_scenario(name, self.CONFIG, seed=1)
        assert isinstance(deployment, Deployment)
        assert deployment.scenario == name
        assert deployment.topology.num_nodes == self.CONFIG.num_nodes
        assert deployment.topology.is_connected()
        assert deployment.source in deployment.topology.node_set

    def test_deterministic_under_fixed_seed(self, name):
        a = generate_scenario(name, self.CONFIG, seed=42)
        b = generate_scenario(name, self.CONFIG, seed=42)
        assert np.array_equal(a.topology.positions, b.topology.positions)
        assert _adjacency(a) == _adjacency(b)
        assert a.source == b.source
        assert a.attempts == b.attempts

    def test_different_seeds_differ(self, name):
        a = generate_scenario(name, self.CONFIG, seed=0)
        b = generate_scenario(name, self.CONFIG, seed=1)
        assert not np.array_equal(a.topology.positions, b.topology.positions)

    def test_source_respects_eccentricity_window(self, name):
        deployment = generate_scenario(name, self.CONFIG, seed=3)
        ecc = deployment.topology.eccentricity(deployment.source)
        assert ecc >= deployment.config.source_min_ecc
        if deployment.config.source_max_ecc is not None:
            assert ecc <= deployment.config.source_max_ecc


class TestScenarioGeometry:
    def test_corridor_positions_inside_strip(self):
        config = DeploymentConfig(num_nodes=80)
        deployment = generate_scenario("corridor", config, seed=5, width=0.2)
        positions = deployment.topology.positions
        side = config.area_side
        band = 0.2 * side
        assert positions[:, 1].min() >= (side - band) / 2 - 1e-9
        assert positions[:, 1].max() <= (side + band) / 2 + 1e-9

    def test_ring_positions_inside_annulus(self):
        config = DeploymentConfig(num_nodes=80)
        deployment = generate_scenario("ring", config, seed=5)
        centre = config.area_side / 2
        radii = np.linalg.norm(deployment.topology.positions - centre, axis=1)
        half = config.area_side / 2
        assert radii.min() >= 0.55 * half - 1e-9
        assert radii.max() <= 0.95 * half + 1e-9

    def test_knn_degree_at_least_k(self):
        deployment = generate_scenario("knn", num_nodes=60, seed=2, k=4)
        topology = deployment.topology
        assert min(topology.degree(u) for u in topology.node_ids) >= 4
        # Symmetrised-union degree can exceed k but stays O(k), never O(n).
        assert topology.max_degree() < 4 * 4

    def test_knn_ignores_radius(self):
        deployment = generate_scenario("knn", num_nodes=40, seed=2)
        assert deployment.topology.radius is None

    def test_clustered_respects_cluster_count_param(self):
        a = generate_scenario("clustered", num_nodes=60, seed=9, clusters=2)
        b = generate_scenario("clustered", num_nodes=60, seed=9, clusters=6)
        assert not np.array_equal(a.topology.positions, b.topology.positions)

    def test_perturbed_grid_zero_jitter_is_lattice(self):
        deployment = generate_scenario("perturbed-grid", num_nodes=49, seed=0, jitter=0.0)
        xs = np.unique(np.round(deployment.topology.positions[:, 0], 9))
        assert len(xs) == 7  # 49 nodes factor into a 7x7 lattice

    def test_grid_holes_produces_requested_count_even_with_large_holes(self):
        deployment = generate_scenario(
            "grid-holes", num_nodes=70, seed=4, holes=4, hole_radius=0.2
        )
        assert deployment.topology.num_nodes == 70

    def test_explicit_source_window_override(self):
        deployment = generate_scenario(
            "clustered", num_nodes=60, seed=7, source_min_ecc=1, source_max_ecc=None
        )
        assert deployment.config.source_min_ecc == 1

    def test_uniform_scenario_inherits_config_window(self):
        config = DeploymentConfig(num_nodes=60, source_min_ecc=5, source_max_ecc=8)
        deployment = generate_scenario("uniform", config, seed=1)
        ecc = deployment.topology.eccentricity(deployment.source)
        assert 5 <= ecc <= 8
