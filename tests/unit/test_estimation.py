"""Unit tests for repro.core.estimation (the E-model, Algorithm 2)."""

from __future__ import annotations

import math

import pytest

from repro.core.bounds import emodel_update_cost
from repro.core.estimation import build_edge_estimate
from repro.dutycycle.cwt import expected_cwt
from repro.dutycycle.schedule import WakeupSchedule
from repro.network.quadrant import QUADRANTS, quadrant_neighbors


class TestSynchronousConstruction:
    def test_line_graph_hop_counts(self, line_topology):
        """On a west-east line, E_1 counts hops to the east end, E_3 to the west."""
        estimate = build_edge_estimate(line_topology)
        for node in line_topology.node_ids:
            assert estimate.value(node, 1) == pytest.approx(5 - node)
            assert estimate.value(node, 3) == pytest.approx(node)
            # No neighbours strictly above or below the line.
            assert estimate.value(node, 2) == 0.0
            assert estimate.value(node, 4) == 0.0

    def test_figure1_matches_paper_example(self, figure1):
        """Section IV-E example: the far nodes hold 0, node 1 holds the maximum 2."""
        topo, source = figure1
        estimate = build_edge_estimate(topo)
        # Our layout propagates towards +x, so the paper's "quadrant 2" values
        # appear in quadrant 1 (see repro.network.graphs docstring).
        assert estimate.value(7, 1) == 0.0
        assert estimate.value(8, 1) == 0.0
        assert estimate.value(9, 1) == 0.0
        for node in (0, 3, 4, 10):
            assert estimate.value(node, 1) == 1.0
        assert estimate.value(1, 1) == 2.0

    def test_all_values_finite_on_connected_deployment(self, medium_deployment):
        topo, _ = medium_deployment
        estimate = build_edge_estimate(topo)
        for node in topo.node_ids:
            for quadrant in QUADRANTS:
                assert math.isfinite(estimate.value(node, quadrant))

    def test_empty_quadrant_gives_zero(self, medium_deployment):
        topo, _ = medium_deployment
        estimate = build_edge_estimate(topo)
        for node in topo.node_ids:
            for quadrant in QUADRANTS:
                if not quadrant_neighbors(topo, node, quadrant):
                    assert estimate.value(node, quadrant) == 0.0

    def test_recurrence_holds_after_construction(self, medium_deployment):
        """Eq. (9): every non-seed value is 1 + min over quadrant neighbours."""
        topo, _ = medium_deployment
        estimate = build_edge_estimate(topo)
        for node in topo.node_ids:
            for quadrant in QUADRANTS:
                members = quadrant_neighbors(topo, node, quadrant)
                value = estimate.value(node, quadrant)
                if not members:
                    assert value == 0.0
                    continue
                # Values are assigned once (from infinity) across the two
                # sweeps, so a phase-1 value may exceed ``1 + min`` over the
                # *final* neighbour values when a local minimum was repaired
                # later (the paper's construction shares this property).  The
                # invariant that always holds is the lower bound below, with
                # equality on local-minimum-free instances (line / Figure 1).
                floor = 1.0 + min(estimate.value(v, quadrant) for v in members)
                assert value >= floor - 1e-9

    def test_update_count_within_theorem3_bound(self, medium_deployment):
        topo, _ = medium_deployment
        estimate = build_edge_estimate(topo)
        assert estimate.update_count <= emodel_update_cost(topo.num_nodes)

    def test_invalid_quadrant_rejected(self, line_topology):
        estimate = build_edge_estimate(line_topology)
        with pytest.raises(ValueError):
            estimate.value(0, 5)


class TestDutyCycleConstruction:
    def test_expected_weight_scales_values(self, line_topology):
        schedule = WakeupSchedule(line_topology.node_ids, rate=10, seed=1)
        sync = build_edge_estimate(line_topology)
        duty = build_edge_estimate(line_topology, schedule)
        step = expected_cwt(10)
        for node in line_topology.node_ids:
            assert duty.value(node, 1) == pytest.approx(step * sync.value(node, 1))
        assert duty.mode == "duty"

    def test_unit_weight_matches_sync(self, line_topology):
        schedule = WakeupSchedule(line_topology.node_ids, rate=10, seed=1)
        duty = build_edge_estimate(line_topology, schedule, weight="unit")
        sync = build_edge_estimate(line_topology)
        for node in line_topology.node_ids:
            for quadrant in QUADRANTS:
                assert duty.value(node, quadrant) == sync.value(node, quadrant)


class TestScores:
    def test_node_score_uses_only_quadrants_with_uncovered_work(self, figure1):
        topo, source = figure1
        estimate = build_edge_estimate(topo)
        covered = frozenset({source, 0, 1, 2})
        assert estimate.node_score(topo, 1, covered) == 2.0
        assert estimate.node_score(topo, 0, covered) == 1.0
        # A node with every neighbour covered cannot be the bottleneck.
        fully_served = frozenset(topo.node_ids)
        assert estimate.node_score(topo, 1, fully_served) == -math.inf

    def test_color_score_is_max_over_members(self, figure1):
        topo, source = figure1
        estimate = build_edge_estimate(topo)
        covered = frozenset({source, 0, 1, 2})
        assert estimate.color_score(topo, [0, 1], covered) == 2.0
        assert estimate.color_score(topo, [], covered) == -math.inf

    def test_eq10_selects_node1_color_on_figure1(self, figure1):
        topo, source = figure1
        estimate = build_edge_estimate(topo)
        covered = frozenset({source, 0, 1, 2})
        scores = {
            node: estimate.color_score(topo, [node], covered) for node in (0, 1, 2)
        }
        assert max(scores, key=lambda n: (scores[n], -n)) in (1, 2)
        assert scores[1] > scores[0]


class TestBoundaryOverride:
    def test_custom_boundary_seeds(self, line_topology):
        # Treat only node 5 as the network edge: phase 1 seeds just its empty
        # quadrants, the repair phase still completes every other entry.
        estimate = build_edge_estimate(line_topology, boundary=[5])
        assert estimate.value(5, 1) == 0.0
        assert estimate.value(0, 1) == pytest.approx(5.0)
