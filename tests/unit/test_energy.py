"""Unit tests for the energy accounting (repro.sim.energy)."""

from __future__ import annotations

import pytest

from repro.core.policies import EModelPolicy, GreedyOptPolicy
from repro.sim.broadcast import run_broadcast
from repro.sim.energy import EnergyModel, energy_of_broadcast


class TestEnergyModel:
    def test_defaults_are_positive_and_ordered(self):
        model = EnergyModel()
        assert model.tx_cost >= model.rx_cost > model.idle_cost

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            EnergyModel(tx_cost=-1)


class TestEnergyOfBroadcast:
    def test_figure1_accounting_by_hand(self, figure1):
        topo, source = figure1
        result = run_broadcast(topo, source, GreedyOptPolicy())
        model = EnergyModel(tx_cost=10.0, rx_cost=2.0, idle_cost=0.0)
        report = energy_of_broadcast(topo, result, model)
        # Transmitters: s, 1, 0, 4 -> 4 transmissions.
        assert report.transmissions == 4
        assert report.transmission_energy == pytest.approx(40.0)
        # Receptions: every neighbour of each transmitter hears it.
        expected_receptions = sum(
            topo.degree(u) for advance in result.advances for u in advance.color
        )
        assert report.receptions == expected_receptions
        assert report.total == pytest.approx(
            40.0 + expected_receptions * 2.0
        )

    def test_per_node_sums_to_total(self, small_deployment):
        topo, source = small_deployment
        result = run_broadcast(topo, source, EModelPolicy())
        report = energy_of_broadcast(topo, result)
        assert sum(report.per_node.values()) == pytest.approx(report.total)
        assert set(report.per_node) == set(topo.node_ids)

    def test_idle_energy_counts_window_slots(self, figure2_duty):
        topo, source, schedule = figure2_duty
        result = run_broadcast(
            topo, source, GreedyOptPolicy(), schedule=schedule, start_time=2
        )
        model = EnergyModel(tx_cost=0.0, rx_cost=0.0, idle_cost=1.0)
        report = energy_of_broadcast(topo, result, model)
        # Window is 3 slots and 5 nodes; every listening event replaces one
        # idle slot for that node.
        assert report.idle_slots == 3 * topo.num_nodes - report.receptions
        assert report.total == pytest.approx(report.idle_energy)

    def test_hottest_node_is_a_transmitter_or_busy_receiver(self, small_deployment):
        topo, source = small_deployment
        result = run_broadcast(topo, source, EModelPolicy())
        report = energy_of_broadcast(topo, result)
        node, energy = report.hottest_node()
        assert energy == max(report.per_node.values())
        assert node in topo.node_set

    def test_shorter_schedules_save_idle_energy(self, medium_deployment):
        """The pipeline's shorter broadcast window saves idle-listening energy
        network-wide, even though the minimal-parent-cover baseline may use
        slightly fewer transmissions."""
        from repro.baselines.approx26 import Approx26Policy

        topo, source = medium_deployment
        idle_only = EnergyModel(tx_cost=0.0, rx_cost=0.0, idle_cost=1.0)
        gopt_trace = run_broadcast(topo, source, GreedyOptPolicy())
        baseline_trace = run_broadcast(topo, source, Approx26Policy())
        gopt = energy_of_broadcast(topo, gopt_trace, idle_only)
        baseline = energy_of_broadcast(topo, baseline_trace, idle_only)
        assert gopt_trace.latency < baseline_trace.latency
        assert gopt.total < baseline.total
        assert gopt.transmissions > 0 and baseline.transmissions > 0

    def test_mean_energy_per_node(self, figure2):
        topo, source = figure2
        result = run_broadcast(topo, source, GreedyOptPolicy())
        report = energy_of_broadcast(topo, result)
        assert report.energy_per_node() == pytest.approx(report.total / topo.num_nodes)
