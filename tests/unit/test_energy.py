"""Unit tests for the energy accounting (repro.sim.energy)."""

from __future__ import annotations

import pytest

from repro.core.policies import EModelPolicy, GreedyOptPolicy
from repro.core.time_counter import SearchConfig
from repro.experiments.config import SweepConfig
from repro.experiments.runner import run_sweep
from repro.network.topology import WSNTopology
from repro.sim.broadcast import run_broadcast
from repro.sim.energy import EnergyModel, energy_of_broadcast


class TestEnergyModel:
    def test_defaults_are_positive_and_ordered(self):
        model = EnergyModel()
        assert model.tx_cost >= model.rx_cost > model.idle_cost

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            EnergyModel(tx_cost=-1)


class TestEnergyOfBroadcast:
    def test_figure1_accounting_by_hand(self, figure1):
        topo, source = figure1
        result = run_broadcast(topo, source, GreedyOptPolicy())
        model = EnergyModel(tx_cost=10.0, rx_cost=2.0, idle_cost=0.0)
        report = energy_of_broadcast(topo, result, model)
        # Transmitters: s, 1, 0, 4 -> 4 transmissions.
        assert report.transmissions == 4
        assert report.transmission_energy == pytest.approx(40.0)
        # Receptions: every neighbour of each transmitter hears it.
        expected_receptions = sum(
            topo.degree(u) for advance in result.advances for u in advance.color
        )
        assert report.receptions == expected_receptions
        assert report.total == pytest.approx(
            40.0 + expected_receptions * 2.0
        )

    def test_per_node_sums_to_total(self, small_deployment):
        topo, source = small_deployment
        result = run_broadcast(topo, source, EModelPolicy())
        report = energy_of_broadcast(topo, result)
        assert sum(report.per_node.values()) == pytest.approx(report.total)
        assert set(report.per_node) == set(topo.node_ids)

    def test_idle_energy_counts_window_slots(self, figure2_duty):
        topo, source, schedule = figure2_duty
        result = run_broadcast(
            topo, source, GreedyOptPolicy(), schedule=schedule, start_time=2
        )
        model = EnergyModel(tx_cost=0.0, rx_cost=0.0, idle_cost=1.0)
        report = energy_of_broadcast(topo, result, model)
        # Window is 3 slots and 5 nodes; every listening event replaces one
        # idle slot for that node.
        assert report.idle_slots == 3 * topo.num_nodes - report.receptions
        assert report.total == pytest.approx(report.idle_energy)

    def test_hottest_node_is_a_transmitter_or_busy_receiver(self, small_deployment):
        topo, source = small_deployment
        result = run_broadcast(topo, source, EModelPolicy())
        report = energy_of_broadcast(topo, result)
        node, energy = report.hottest_node()
        assert energy == max(report.per_node.values())
        assert node in topo.node_set

    def test_shorter_schedules_save_idle_energy(self, medium_deployment):
        """The pipeline's shorter broadcast window saves idle-listening energy
        network-wide, even though the minimal-parent-cover baseline may use
        slightly fewer transmissions."""
        from repro.baselines.approx26 import Approx26Policy

        topo, source = medium_deployment
        idle_only = EnergyModel(tx_cost=0.0, rx_cost=0.0, idle_cost=1.0)
        gopt_trace = run_broadcast(topo, source, GreedyOptPolicy())
        baseline_trace = run_broadcast(topo, source, Approx26Policy())
        gopt = energy_of_broadcast(topo, gopt_trace, idle_only)
        baseline = energy_of_broadcast(topo, baseline_trace, idle_only)
        assert gopt_trace.latency < baseline_trace.latency
        assert gopt.total < baseline.total
        assert gopt.transmissions > 0 and baseline.transmissions > 0

    def test_mean_energy_per_node(self, figure2):
        topo, source = figure2
        result = run_broadcast(topo, source, GreedyOptPolicy())
        report = energy_of_broadcast(topo, result)
        assert report.energy_per_node() == pytest.approx(report.total / topo.num_nodes)

    def test_overhearing_charges_covered_neighbours(self):
        """Every neighbour of a transmitter pays rx, covered or not."""
        positions = {i: (float(i), 0.0) for i in range(3)}
        topo = WSNTopology.from_edges([(0, 1), (1, 2)], positions)
        result = run_broadcast(topo, 0, EModelPolicy())
        model = EnergyModel(tx_cost=0.0, rx_cost=5.0, idle_cost=0.0)
        report = energy_of_broadcast(topo, result, model)
        # Advances: {0}->{1}, then {1}->{2}; when 1 relays, the already
        # covered source 0 overhears and is charged one reception.
        assert report.receptions == 3
        assert report.per_node[0] == pytest.approx(5.0)  # pure overhearing
        assert report.per_node[1] == pytest.approx(5.0)
        assert report.per_node[2] == pytest.approx(5.0)

    def test_idle_window_edge_two_node_network(self):
        """One advance, window of one slot: exact per-term accounting."""
        topo = WSNTopology.from_edges([(0, 1)], {0: (0.0, 0.0), 1: (1.0, 0.0)})
        result = run_broadcast(topo, 0, EModelPolicy())
        assert result.latency == 1
        model = EnergyModel(tx_cost=20.0, rx_cost=15.0, idle_cost=1.0)
        report = energy_of_broadcast(topo, result, model)
        assert report.transmissions == 1
        assert report.receptions == 1
        # Node 1 listened during the only slot; node 0 idled through it.
        assert report.idle_slots == 1
        assert report.total == pytest.approx(20.0 + 15.0 + 1.0)

    def test_empty_window_has_zero_energy(self):
        """A single-node network broadcasts nothing and burns nothing."""
        topo = WSNTopology.from_positions([(0.0, 0.0)], radius=1.0)
        result = run_broadcast(topo, 0, EModelPolicy())
        assert result.latency == 0
        report = energy_of_broadcast(topo, result)
        assert report.transmissions == 0
        assert report.receptions == 0
        assert report.idle_slots == 0
        assert report.total == 0.0

    def test_zero_cost_model_identity(self, small_deployment):
        """The all-zero model reports zero energy whatever the trace does."""
        topo, source = small_deployment
        result = run_broadcast(topo, source, EModelPolicy())
        report = energy_of_broadcast(
            topo, result, EnergyModel(0.0, 0.0, 0.0, 0.0)
        )
        assert report.total == 0.0
        assert all(value == 0.0 for value in report.per_node.values())
        # The event counts still describe the trace.
        assert report.transmissions == result.total_transmissions

    def test_multisource_energy_uses_shared_window(self, small_deployment):
        """k messages share one idle window (the makespan), not k windows."""
        topo, source = small_deployment
        other = max(u for u in topo.node_ids if u != source)
        multi = run_broadcast(topo, [source, other], EModelPolicy())
        report = energy_of_broadcast(topo, multi)
        merged_transmissions = sum(len(a.color) for a in multi.advances)
        assert report.transmissions == merged_transmissions
        idle_only = energy_of_broadcast(
            topo, multi, EnergyModel(0.0, 0.0, 1.0, 1.0)
        )
        assert idle_only.idle_slots <= multi.latency * topo.num_nodes


class TestSweepEnergyColumns:
    def _config(self, **overrides) -> SweepConfig:
        base = dict(
            node_counts=(24,),
            repetitions=2,
            search=SearchConfig(mode="beam", beam_width=2),
            max_color_classes=4,
            source_min_ecc=2,
            source_max_ecc=None,
            area_side=22.0,
            radius=7.0,
        )
        base.update(overrides)
        return SweepConfig(**base)

    def test_every_record_carries_energy_columns(self):
        sweep = run_sweep(self._config(), system="sync")
        assert sweep.records
        for record in sweep.records:
            assert record.total_energy == pytest.approx(
                record.tx_energy + record.rx_energy + record.idle_energy
            )
            assert record.tx_energy > 0.0
            assert record.total_energy > 0.0

    def test_multisource_records_carry_energy_columns(self):
        sweep = run_sweep(
            self._config(n_sources=2, source_placement="spread"),
            system="duty",
            rate=6,
        )
        assert sweep.records
        for record in sweep.records:
            assert record.n_sources == 2
            assert record.total_energy == pytest.approx(
                record.tx_energy + record.rx_energy + record.idle_energy
            )
            assert record.mean_message_latency <= record.latency
            assert record.max_message_latency == record.latency
