"""The approximation-ratio study: figure_ratio, ratio_claims, CLI, store.

The acceptance criteria of the solver tier live here: every observed
ratio sits at or above 1 and at or below its proved bound, the exact
tier's own ratio is identically 1, the solver axis is enforced at
configuration time, and ratio cells cache-hit across engines and worker
counts (the solver is workload configuration, not execution mode).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.dutycycle.cwt import max_cwt
from repro.experiments.cli import main as cli_main
from repro.experiments.config import RATIO_SWEEP, SweepConfig
from repro.experiments.figures import BOUND_SUFFIX, figure_ratio
from repro.experiments.report import ratio_claims
from repro.experiments.runner import run_sweep
from repro.store import ExperimentStore

#: One small, fast grid cell: 6-node instances, two repetitions.
TINY = dataclasses.replace(RATIO_SWEEP, node_counts=(6,), repetitions=2)


@pytest.fixture(scope="module")
def duty_figure():
    return figure_ratio(
        TINY, scenarios=("uniform",), duty_models=("uniform",), system="duty"
    )


@pytest.fixture(scope="module")
def sync_figure():
    return figure_ratio(TINY, scenarios=("uniform", "ring"), system="sync")


class TestFigureRatio:
    def test_exact_series_is_identically_one(self, duty_figure, sync_figure):
        for figure in (duty_figure, sync_figure):
            assert all(value == 1.0 for value in figure.series_for("exact"))

    def test_no_ratio_below_one(self, duty_figure, sync_figure):
        for figure in (duty_figure, sync_figure):
            for name, values in figure.series.items():
                if name.endswith(BOUND_SUFFIX):
                    continue
                assert min(values) >= 1.0 - 1e-9, name

    def test_duty_bound_series_is_seventeen_k(self, duty_figure):
        bound = duty_figure.series_for(f"17-approx{BOUND_SUFFIX}")
        assert bound == [17.0 * max_cwt(10)] * len(duty_figure.x_values)

    def test_sync_bound_series_is_twenty_six(self, sync_figure):
        bound = sync_figure.series_for(f"26-approx{BOUND_SUFFIX}")
        assert bound == [26.0] * len(sync_figure.x_values)

    def test_sync_collapses_the_duty_model_axis(self, sync_figure):
        assert sync_figure.x_label == "scenario"
        assert sync_figure.x_values == ("uniform", "ring")

    def test_duty_labels_span_the_grid(self, duty_figure):
        assert duty_figure.x_label == "scenario/duty model"
        assert duty_figure.x_values == ("uniform/uniform",)

    def test_needs_an_exact_tier_to_anchor_the_ratios(self):
        config = dataclasses.replace(TINY, solver="heuristic")
        with pytest.raises(ValueError, match="exact solver tier"):
            figure_ratio(config, scenarios=("uniform",), duty_models=("uniform",))


class TestRatioClaims:
    def test_all_claims_hold_on_both_systems(self, duty_figure, sync_figure):
        for figure in (duty_figure, sync_figure):
            checks = ratio_claims(figure)
            assert checks  # at least floor + exactness + one bound
            failed = [check.claim for check in checks if not check.holds]
            assert not failed

    def test_bound_series_get_a_dedicated_check(self, duty_figure):
        checks = ratio_claims(duty_figure)
        assert any("proved bound" in check.claim for check in checks)

    def test_exactness_check_fails_on_a_doctored_figure(self, duty_figure):
        doctored = dataclasses.replace(
            duty_figure,
            series={**duty_figure.series, "exact": [1.5]},
        )
        checks = ratio_claims(doctored)
        exactness = [c for c in checks if "ratio 1" in c.claim and "exact" in c.claim]
        assert exactness and not exactness[0].holds


class TestSolverAxisConfig:
    def test_unknown_tier_is_rejected(self):
        with pytest.raises(ValueError, match="unknown solver tier"):
            dataclasses.replace(TINY, solver="simplex")

    def test_instance_limit_is_enforced_at_config_time(self):
        with pytest.raises(ValueError, match="at most 16 nodes"):
            dataclasses.replace(TINY, node_counts=(50,))

    def test_exact_tier_rejects_lossy_links(self):
        with pytest.raises(ValueError, match="loss-tolerant tier"):
            dataclasses.replace(
                TINY, link_model="independent-loss", loss_probability=0.2
            )

    def test_exact_tier_rejects_multi_source(self):
        with pytest.raises(ValueError, match="single source"):
            dataclasses.replace(TINY, n_sources=2)

    def test_default_tier_is_the_heuristic(self):
        assert SweepConfig().solver == "heuristic"
        assert RATIO_SWEEP.solver == "exact"

    def test_system_mismatch_is_rejected_loudly(self):
        config = dataclasses.replace(TINY, solver="26-approx", repetitions=1)
        with pytest.raises(ValueError, match="only schedules"):
            run_sweep(config, system="duty", rate=10)

    def test_selected_tier_leads_the_line_up(self):
        config = dataclasses.replace(TINY, solver="branch-and-bound", repetitions=1)
        sweep = run_sweep(config, system="duty", rate=10)
        assert sweep.policies[0] == "branch-and-bound"
        assert sweep.records_for("branch-and-bound")

    def test_heuristic_tier_leaves_the_line_up_unchanged(self):
        config = dataclasses.replace(TINY, solver="heuristic", repetitions=1)
        sweep = run_sweep(config, system="duty", rate=10)
        assert "heuristic" not in sweep.policies
        assert "E-model" in sweep.policies


class TestRatioStoreIntegration:
    def test_cells_cache_hit_across_engines_and_workers(self, tmp_path):
        kwargs = dict(scenarios=("uniform",), duty_models=("uniform",))
        with ExperimentStore(tmp_path / "store") as store:
            cold = figure_ratio(TINY, system="duty", store=store, **kwargs)
            assert cold.sweep.cache_misses > 0
            assert cold.sweep.cache_hits == 0

            warm = figure_ratio(TINY, system="duty", store=store, **kwargs)
            assert warm.sweep.cache_hits == cold.sweep.cache_misses
            assert warm.sweep.cache_misses == 0
            assert warm.series == cold.series

            # The solver is workload configuration; engine and workers are
            # execution modes and must serve the same cached cells.
            other_mode = dataclasses.replace(TINY, engine="vectorized", workers=2)
            across = figure_ratio(other_mode, system="duty", store=store, **kwargs)
            assert across.sweep.cache_hits == cold.sweep.cache_misses
            assert across.sweep.cache_misses == 0
            assert across.series == cold.series

    def test_changing_the_tier_re_simulates(self, tmp_path):
        kwargs = dict(scenarios=("uniform",), duty_models=("uniform",))
        with ExperimentStore(tmp_path / "store") as store:
            figure_ratio(TINY, system="duty", store=store, **kwargs)
            retier = dataclasses.replace(TINY, solver="branch-and-bound")
            refreshed = figure_ratio(retier, system="duty", store=store, **kwargs)
            assert refreshed.sweep.cache_misses > 0


class TestRatioCli:
    def test_list_solvers_prints_the_registry(self, capsys):
        from repro.solvers import solver_names

        assert cli_main(["--list-solvers"]) == 0
        out = capsys.readouterr().out
        assert "Registered solver tiers (--solver):" in out
        for name in solver_names():
            assert name in out

    def test_ratio_target_reports_claims_and_exits_zero(self, capsys):
        code = cli_main(["ratio", "--nodes", "6", "--repetitions", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Approximation ratio" in out
        assert "claims hold (solver=exact system=duty)" in out
        assert f"17-approx{BOUND_SUFFIX}" in out

    def test_solver_flag_is_workload_only(self):
        with pytest.raises(SystemExit):
            cli_main(["figure3", "--solver", "exact"])

    def test_ratio_rejects_oversized_grids(self):
        with pytest.raises(ValueError, match="at most 16 nodes"):
            cli_main(["ratio", "--nodes", "100"])
