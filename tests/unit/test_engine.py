"""Unit tests for repro.sim.engine and repro.sim.broadcast."""

from __future__ import annotations

import pytest

from repro.core.advance import Advance, BroadcastState
from repro.core.policies import EModelPolicy, GreedyOptPolicy, SchedulingPolicy
from repro.dutycycle.schedule import WakeupSchedule
from repro.sim.broadcast import run_broadcast
from repro.sim.engine import RoundEngine, SimulationTimeout, SlotEngine


class _ScriptedPolicy(SchedulingPolicy):
    """Replays a fixed list of transmitter sets (for engine edge cases)."""

    name = "scripted"

    def __init__(self, script):
        self.script = list(script)
        self.cursor = 0

    def select_advance(self, state: BroadcastState) -> Advance | None:
        if self.cursor >= len(self.script):
            return None
        color = self.script[self.cursor]
        self.cursor += 1
        if color is None:
            return None
        return Advance.from_color(state.topology, state.covered, frozenset(color), state.time)


class TestRoundEngine:
    def test_records_advances_and_latency(self, figure2):
        topo, source = figure2
        engine = RoundEngine(topo)
        result = engine.run(GreedyOptPolicy(), source)
        assert result.latency == 2
        assert result.start_time == 1
        assert result.end_time == 2
        assert [a.time for a in result.advances] == [1, 2]

    def test_custom_start_time(self, figure2):
        topo, source = figure2
        result = RoundEngine(topo).run(GreedyOptPolicy(), source, start_time=5)
        assert result.start_time == 5
        assert result.end_time == 6
        assert result.latency == 2

    def test_unknown_source_rejected(self, figure2):
        topo, _ = figure2
        with pytest.raises(ValueError):
            RoundEngine(topo).run(GreedyOptPolicy(), 999)

    def test_timeout_when_policy_idles(self, figure2):
        topo, source = figure2
        idle_policy = _ScriptedPolicy([None] * 100)
        with pytest.raises(SimulationTimeout):
            RoundEngine(topo).run(idle_policy, source, max_rounds=10)

    def test_uncovered_transmitter_rejected(self, figure2):
        topo, source = figure2
        rogue = _ScriptedPolicy([{4}])
        with pytest.raises(ValueError, match="do not hold the message"):
            RoundEngine(topo).run(rogue, source)

    def test_conflicting_transmitters_rejected(self, figure2):
        topo, source = figure2
        # 2 and 3 conflict at node 4 once both hold the message.
        rogue = _ScriptedPolicy([{1}, {2, 3}])
        with pytest.raises(ValueError, match="conflicting"):
            RoundEngine(topo).run(rogue, source)


class TestSlotEngine:
    def test_rejects_schedule_missing_nodes(self, figure2):
        topo, _ = figure2
        schedule = WakeupSchedule([1, 2], rate=5)
        with pytest.raises(ValueError, match="missing nodes"):
            SlotEngine(topo, schedule)

    def test_align_start_moves_to_source_wakeup(self, figure2_duty):
        topo, source, schedule = figure2_duty
        engine = SlotEngine(topo, schedule)
        result = engine.run(GreedyOptPolicy(), source, start_time=1, align_start=True)
        assert result.start_time == 2  # the source's first wake-up slot
        assert result.end_time == 4

    def test_sleeping_transmitter_rejected(self, figure2_duty):
        topo, source, schedule = figure2_duty
        # Node 1 (the source) is not awake at slot 3.
        rogue = _ScriptedPolicy([None, {1}])
        engine = SlotEngine(topo, schedule)
        with pytest.raises(ValueError, match="sleeping"):
            engine.run(rogue, source, start_time=2)

    def test_idle_slots_counted_in_latency(self, figure2_duty):
        topo, source, schedule = figure2_duty
        result = SlotEngine(topo, schedule).run(
            GreedyOptPolicy(), source, start_time=2
        )
        assert result.latency == 3  # slots 2, 3 (idle), 4
        assert result.idle_time == 1


class TestRunBroadcast:
    def test_dispatches_to_round_engine(self, figure2):
        topo, source = figure2
        result = run_broadcast(topo, source, GreedyOptPolicy())
        assert result.synchronous
        assert result.cycle_rate == 1

    def test_dispatches_to_slot_engine(self, figure2_duty):
        topo, source, schedule = figure2_duty
        result = run_broadcast(
            topo, source, GreedyOptPolicy(), schedule=schedule, start_time=2
        )
        assert not result.synchronous
        assert result.cycle_rate == schedule.rate

    def test_prepare_called(self, figure1):
        topo, source = figure1
        policy = EModelPolicy()
        run_broadcast(topo, source, policy)
        assert policy.estimate is not None

    def test_validation_catches_model_violations(self, figure2):
        topo, source = figure2
        # The scripted policy is engine-legal per advance, but we forge the
        # interference_free flag so the engine skips checks and validation
        # must catch the conflict instead.
        rogue = _ScriptedPolicy([{1}, {2, 3}])
        rogue.interference_free = False
        from repro.sim.validation import ScheduleViolation

        with pytest.raises(ScheduleViolation):
            run_broadcast(topo, source, rogue, validate=True)

    def test_max_time_forwarded(self, figure2):
        topo, source = figure2
        idle = _ScriptedPolicy([None] * 50)
        with pytest.raises(SimulationTimeout):
            run_broadcast(topo, source, idle, max_time=5, validate=False)
