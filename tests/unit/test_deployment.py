"""Unit tests for repro.network.deployment."""

from __future__ import annotations

import pytest

from repro.network.deployment import (
    DeploymentConfig,
    DeploymentError,
    deploy_uniform,
    grid_deployment,
)


class TestDeploymentConfig:
    def test_paper_defaults(self):
        config = DeploymentConfig(num_nodes=250)
        assert config.area_side == 50.0
        assert config.radius == 10.0
        assert config.source_min_ecc == 5
        assert config.source_max_ecc == 8

    def test_density_matches_paper_axis(self):
        assert DeploymentConfig(num_nodes=300).density == pytest.approx(0.12)
        assert DeploymentConfig(num_nodes=50).density == pytest.approx(0.02)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_nodes": 1},
            {"num_nodes": 10, "area_side": 0},
            {"num_nodes": 10, "radius": -1},
            {"num_nodes": 10, "source_min_ecc": -1},
            {"num_nodes": 10, "source_min_ecc": 5, "source_max_ecc": 3},
            {"num_nodes": 10, "max_attempts": 0},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DeploymentConfig(**kwargs)


class TestDeployUniform:
    def test_reproducible_for_same_seed(self):
        config = DeploymentConfig(num_nodes=40, area_side=30, radius=8, source_min_ecc=2, source_max_ecc=None)
        topo_a, source_a = deploy_uniform(config=config, seed=5)
        topo_b, source_b = deploy_uniform(config=config, seed=5)
        assert source_a == source_b
        assert list(topo_a.edges()) == list(topo_b.edges())

    def test_different_seeds_differ(self):
        config = DeploymentConfig(num_nodes=40, area_side=30, radius=8, source_min_ecc=2, source_max_ecc=None)
        topo_a, _ = deploy_uniform(config=config, seed=1)
        topo_b, _ = deploy_uniform(config=config, seed=2)
        assert list(topo_a.edges()) != list(topo_b.edges())

    def test_connected_and_in_area(self):
        config = DeploymentConfig(num_nodes=60, area_side=25, radius=7, source_min_ecc=2, source_max_ecc=None)
        topo, _ = deploy_uniform(config=config, seed=3)
        assert topo.is_connected()
        positions = topo.positions
        assert positions.min() >= 0.0
        assert positions.max() <= 25.0

    def test_source_eccentricity_in_range(self):
        config = DeploymentConfig(num_nodes=120, area_side=50, radius=10)
        deployment = deploy_uniform(config=config, seed=9, return_deployment=True)
        assert 5 <= deployment.eccentricity <= 8

    def test_num_nodes_shorthand(self):
        topo, source = deploy_uniform(num_nodes=80, seed=11)
        assert topo.num_nodes == 80
        assert source in topo

    def test_missing_arguments_rejected(self):
        with pytest.raises(ValueError):
            deploy_uniform()

    def test_impossible_constraints_raise_deployment_error(self):
        # Two nodes can never have eccentricity >= 5.
        config = DeploymentConfig(
            num_nodes=2, area_side=5, radius=10, source_min_ecc=5, max_attempts=3
        )
        with pytest.raises(DeploymentError):
            deploy_uniform(config=config, seed=0)


class TestGridDeployment:
    def test_four_connected_grid(self):
        topo = grid_deployment(3, 4, spacing=1.0, radius=1.1)
        assert topo.num_nodes == 12
        # 4-connected grid edge count: rows*(cols-1) + cols*(rows-1)
        assert topo.num_edges == 3 * 3 + 4 * 2

    def test_eight_connected_with_larger_radius(self):
        topo = grid_deployment(3, 3, spacing=1.0, radius=1.5)
        # Diagonals included.
        assert topo.num_edges == 12 + 8

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            grid_deployment(0, 3)
        with pytest.raises(ValueError):
            grid_deployment(3, 3, spacing=-1)
