"""Unit tests for repro.sim.trace and repro.sim.metrics."""

from __future__ import annotations

import math

import pytest

from repro.core.policies import GreedyOptPolicy
from repro.sim.broadcast import run_broadcast
from repro.sim.metrics import BroadcastMetrics, aggregate_latency, improvement_percent
from repro.sim.trace import BroadcastResult


class TestBroadcastResult:
    def test_latency_definition(self, figure2):
        topo, source = figure2
        result = run_broadcast(topo, source, GreedyOptPolicy())
        assert result.latency == result.end_time - result.start_time + 1
        assert result.latency == 2

    def test_counts(self, figure1):
        topo, source = figure1
        result = run_broadcast(topo, source, GreedyOptPolicy())
        assert result.num_advances == 3
        assert result.total_transmissions == 4  # {s}, {1}, {0, 4}
        assert result.idle_time == 0

    def test_is_complete(self, figure1):
        topo, source = figure1
        result = run_broadcast(topo, source, GreedyOptPolicy())
        assert result.is_complete(topo)

    def test_coverage_timeline_monotone_and_complete(self, figure1):
        topo, source = figure1
        result = run_broadcast(topo, source, GreedyOptPolicy())
        timeline = result.coverage_timeline()
        counts = [count for _, count in timeline]
        assert counts == sorted(counts)
        assert counts[0] == 1
        assert counts[-1] == topo.num_nodes

    def test_transmissions_by_node(self, figure1):
        topo, source = figure1
        result = run_broadcast(topo, source, GreedyOptPolicy())
        counts = result.transmissions_by_node()
        assert counts[source] == 1
        assert counts[1] == 1
        assert sum(counts.values()) == result.total_transmissions

    def test_summary_mentions_policy_and_units(self, figure2, figure2_duty):
        topo, source = figure2
        sync_result = run_broadcast(topo, source, GreedyOptPolicy())
        assert "G-OPT" in sync_result.summary()
        assert "rounds" in sync_result.summary()
        topo, source, schedule = figure2_duty
        duty_result = run_broadcast(
            topo, source, GreedyOptPolicy(), schedule=schedule, start_time=2
        )
        assert "slots" in duty_result.summary()

    def test_empty_trace_degenerate_latency(self):
        result = BroadcastResult(
            policy_name="noop",
            source=0,
            start_time=3,
            end_time=2,
            covered=frozenset({0}),
        )
        assert result.latency == 0
        assert result.num_advances == 0


class TestBroadcastMetrics:
    def test_from_result_on_figure1(self, figure1):
        topo, source = figure1
        result = run_broadcast(topo, source, GreedyOptPolicy())
        metrics = BroadcastMetrics.from_result(topo, result)
        assert metrics.latency == 3
        assert metrics.eccentricity == 3
        assert metrics.stretch == pytest.approx(1.0)
        assert metrics.max_concurrency == 2
        assert metrics.total_transmissions == 4
        assert metrics.mean_utilization > 1.0

    def test_duty_metrics_count_idle_slots(self, figure2_duty):
        topo, source, schedule = figure2_duty
        result = run_broadcast(
            topo, source, GreedyOptPolicy(), schedule=schedule, start_time=2
        )
        metrics = BroadcastMetrics.from_result(topo, result)
        assert metrics.idle_time == 1
        assert metrics.latency == 3


class TestHelpers:
    def test_improvement_percent(self):
        assert improvement_percent(10, 3) == pytest.approx(70.0)
        assert improvement_percent(10, 10) == 0.0
        with pytest.raises(ValueError):
            improvement_percent(0, 1)

    def test_aggregate_latency(self):
        stats = aggregate_latency([3, 5, 4])
        assert stats["mean"] == pytest.approx(4.0)
        assert stats["min"] == 3
        assert stats["max"] == 5
        assert stats["count"] == 3

    def test_aggregate_latency_empty(self):
        stats = aggregate_latency([])
        assert math.isnan(stats["mean"])
        assert stats["count"] == 0
