"""Unit tests for repro.experiments.runner."""

from __future__ import annotations

import dataclasses

import pytest

from repro.baselines.approx26 import Approx26Policy
from repro.core.policies import EModelPolicy
from repro.core.time_counter import SearchConfig
from repro.experiments.config import SweepConfig
from repro.experiments.runner import default_policies, run_sweep


@pytest.fixture(scope="module")
def tiny_config() -> SweepConfig:
    return SweepConfig(
        node_counts=(40, 60),
        repetitions=2,
        area_side=30.0,
        radius=9.0,
        source_min_ecc=3,
        source_max_ecc=None,
        search=SearchConfig(mode="beam", beam_width=2),
        max_color_classes=8,
        seed=77,
    )


@pytest.fixture(scope="module")
def fast_policies():
    return {"E-model": EModelPolicy, "26-approx": Approx26Policy}


@pytest.fixture(scope="module")
def sync_sweep(tiny_config, fast_policies):
    return run_sweep(tiny_config, system="sync", policies=fast_policies)


class TestRunSweep:
    def test_record_count(self, sync_sweep, tiny_config):
        expected = len(tiny_config.node_counts) * tiny_config.repetitions * 2
        assert len(sync_sweep.records) == expected

    def test_paired_deployments_across_policies(self, sync_sweep):
        """Both policies see the same deployment (same seed, source, d)."""
        by_key = {}
        for record in sync_sweep.records:
            key = (record.num_nodes, record.repetition)
            by_key.setdefault(key, []).append(record)
        for records in by_key.values():
            assert len({r.seed for r in records}) == 1
            assert len({r.source for r in records}) == 1
            assert len({r.eccentricity for r in records}) == 1

    def test_density_computed_from_area(self, sync_sweep, tiny_config):
        for record in sync_sweep.records:
            expected = record.num_nodes / (tiny_config.area_side ** 2)
            assert record.density == pytest.approx(expected)

    def test_latency_series_shape(self, sync_sweep, tiny_config):
        series = sync_sweep.latency_series()
        assert set(series) == {"E-model", "26-approx"}
        for values in series.values():
            assert len(values) == len(tiny_config.node_counts)
            assert all(v > 0 for v in values)

    def test_mean_latency_consistent_with_records(self, sync_sweep, tiny_config):
        policy = "E-model"
        node_count = tiny_config.node_counts[0]
        values = [r.latency for r in sync_sweep.records_for(policy, node_count)]
        assert sync_sweep.mean_latency(policy, node_count) == pytest.approx(
            sum(values) / len(values)
        )

    def test_eccentricity_series_positive(self, sync_sweep, tiny_config):
        series = sync_sweep.eccentricity_series()
        assert len(series) == len(tiny_config.node_counts)
        assert all(value >= tiny_config.source_min_ecc for value in series)

    def test_to_rows_matches_headers(self, sync_sweep):
        rows = sync_sweep.to_rows()
        assert len(rows) == len(sync_sweep.records)
        assert all(len(row) == len(sync_sweep.ROW_HEADERS) for row in rows)

    def test_duty_sweep_runs(self, tiny_config, fast_policies):
        from repro.baselines.approx17 import Approx17Policy

        policies = {"E-model": EModelPolicy, "17-approx": Approx17Policy}
        sweep = run_sweep(tiny_config, system="duty", rate=5, policies=policies)
        assert sweep.rate == 5
        assert all(r.system == "duty" for r in sweep.records)
        # Duty-cycle latencies are at least the synchronous ones on average.
        assert min(r.latency for r in sweep.records) >= 1

    def test_unknown_system_rejected(self, tiny_config):
        with pytest.raises(ValueError):
            run_sweep(tiny_config, system="half-duplex")


class TestDefaultPolicies:
    def test_sync_lineup(self, tiny_config):
        lineup = default_policies(tiny_config, "sync")
        assert set(lineup) == {"26-approx", "OPT", "G-OPT", "E-model"}
        policy = lineup["OPT"]()
        assert policy.name == "OPT"

    def test_duty_lineup(self, tiny_config):
        lineup = default_policies(tiny_config, "duty")
        assert set(lineup) == {"17-approx", "OPT", "G-OPT", "E-model"}

    def test_unknown_system(self, tiny_config):
        with pytest.raises(ValueError):
            default_policies(tiny_config, "bogus")


class TestBatchedStripes:
    """The batched engine's stripe executor is invisible in the records."""

    @pytest.fixture(scope="class")
    def vectorized_sweep(self, tiny_config, fast_policies):
        config = dataclasses.replace(tiny_config, engine="vectorized")
        return run_sweep(config, system="sync", policies=fast_policies)

    def test_batched_sweep_records_match_vectorized(
        self, tiny_config, fast_policies, vectorized_sweep
    ):
        config = dataclasses.replace(tiny_config, engine="batched")
        batched = run_sweep(config, system="sync", policies=fast_policies)
        assert batched.records == vectorized_sweep.records

    def test_batch_size_does_not_change_records(
        self, tiny_config, fast_policies, vectorized_sweep
    ):
        for batch in (1, 3):
            config = dataclasses.replace(tiny_config, engine="batched", batch=batch)
            batched = run_sweep(config, system="sync", policies=fast_policies)
            assert batched.records == vectorized_sweep.records

    def test_batched_workers_do_not_change_records(
        self, tiny_config, fast_policies, vectorized_sweep
    ):
        config = dataclasses.replace(tiny_config, engine="batched")
        batched = run_sweep(
            config, system="sync", policies=fast_policies, workers=2
        )
        assert batched.records == vectorized_sweep.records

    def test_multisource_grid_bypasses_stripes(self, tiny_config):
        # Multi-source sweeps are stripe-ineligible: the batched engine must
        # fall back to per-cell execution and still match the vectorized run.
        base = dataclasses.replace(tiny_config, n_sources=2)
        policies = {"E-model": EModelPolicy}
        expected = run_sweep(
            dataclasses.replace(base, engine="vectorized"),
            system="sync",
            policies=policies,
        )
        batched = run_sweep(
            dataclasses.replace(base, engine="batched"),
            system="sync",
            policies=policies,
        )
        assert batched.records == expected.records

    def test_profile_accumulates_and_preserves_records(
        self, tiny_config, fast_policies, vectorized_sweep
    ):
        from repro.sim.batched import BatchProfile

        config = dataclasses.replace(tiny_config, engine="batched")
        profile = BatchProfile()
        # workers=2 would normally dispatch stripes to a pool; profiling
        # forces in-process execution so the accumulator sees every batch.
        profiled = run_sweep(
            config,
            system="sync",
            policies=fast_policies,
            workers=2,
            profile=profile,
        )
        assert profiled.records == vectorized_sweep.records
        assert profile.macro_steps > 0
        assert profile.advances > 0
        assert profile.lanes_decided >= profile.advances

    def test_profile_stays_empty_off_the_stripe_path(self, tiny_config):
        from repro.sim.batched import BatchProfile

        profile = BatchProfile()
        run_sweep(
            dataclasses.replace(tiny_config, engine="vectorized"),
            system="sync",
            policies={"E-model": EModelPolicy},
            profile=profile,
        )
        assert profile.macro_steps == 0

    def test_batched_store_roundtrip(self, tiny_config, fast_policies, tmp_path):
        from repro.store import ExperimentStore

        config = dataclasses.replace(tiny_config, engine="batched")
        cold = run_sweep(
            config,
            system="sync",
            policies=fast_policies,
            store=ExperimentStore(tmp_path),
        )
        assert cold.cache_misses == 4 and cold.cache_hits == 0
        # The batch knob is execution shape: a different batch (and even a
        # different engine) must hit every cached cell.
        warm = run_sweep(
            dataclasses.replace(config, batch=2, engine="vectorized"),
            system="sync",
            policies=fast_policies,
            store=ExperimentStore(tmp_path),
        )
        assert warm.cache_hits == 4 and warm.cache_misses == 0
        assert warm.records == cold.records
