"""Unit tests for repro.core.policies (OPT, G-OPT, E-model)."""

from __future__ import annotations

import pytest

from repro.core.advance import BroadcastState
from repro.core.policies import EModelPolicy, GreedyOptPolicy, OptPolicy
from repro.core.time_counter import SearchConfig
from repro.dutycycle.schedule import WakeupSchedule
from repro.sim.broadcast import run_broadcast


ALL_POLICIES = [OptPolicy, GreedyOptPolicy, EModelPolicy]


class TestSelectionOnFigure1:
    @pytest.mark.parametrize("policy_cls", ALL_POLICIES)
    def test_second_advance_selects_node1(self, figure1, policy_cls):
        """All three schedulers make the paper's key decision: launch node 1."""
        topo, source = figure1
        policy = policy_cls()
        policy.prepare(topo, None, source)
        covered = frozenset({source, 0, 1, 2})
        state = BroadcastState(topo, covered, time=2)
        advance = policy.select_advance(state)
        assert advance is not None
        assert advance.color == frozenset({1})
        assert advance.receivers == frozenset({3, 4, 10})
        assert advance.num_colors == 3

    @pytest.mark.parametrize("policy_cls", ALL_POLICIES)
    def test_full_broadcast_is_optimal(self, figure1, policy_cls):
        topo, source = figure1
        result = run_broadcast(topo, source, policy_cls())
        assert result.latency == 3

    @pytest.mark.parametrize("policy_cls", ALL_POLICIES)
    def test_none_when_complete(self, figure1, policy_cls):
        topo, source = figure1
        policy = policy_cls()
        policy.prepare(topo, None, source)
        state = BroadcastState(topo, topo.node_set, time=9)
        assert policy.select_advance(state) is None


class TestTimeCounterPolicies:
    def test_lazy_preparation_from_state(self, figure2):
        topo, source = figure2
        policy = GreedyOptPolicy()
        state = BroadcastState(topo, frozenset({source}), time=1)
        advance = policy.select_advance(state)
        assert advance is not None and advance.color == frozenset({source})
        assert policy.counter is not None

    def test_prepare_rebuilds_on_new_topology(self, figure1, figure2):
        topo1, source1 = figure1
        topo2, source2 = figure2
        policy = GreedyOptPolicy(topo1)
        first_counter = policy.counter
        policy.prepare(topo2, None, source2)
        assert policy.counter is not first_counter
        policy.prepare(topo2, None, source2)
        # Same topology and schedule: the counter is kept (cache cleared).
        assert policy.counter is policy.counter

    def test_search_config_exposed(self):
        config = SearchConfig(mode="beam", beam_width=3)
        policy = GreedyOptPolicy(search=config)
        assert policy.search_config is config

    def test_opt_uses_exhaustive_colors(self, figure1):
        topo, source = figure1
        opt = OptPolicy(topo)
        gopt = GreedyOptPolicy(topo)
        assert opt.name == "OPT"
        assert gopt.name == "G-OPT"
        assert opt._decision_scheme.mode == "exhaustive"
        assert gopt._decision_scheme.mode == "greedy"

    def test_opt_never_worse_than_gopt_on_examples(self, figure1, figure2, small_deployment):
        for topo, source in (figure1, figure2, small_deployment):
            opt = run_broadcast(topo, source, OptPolicy())
            gopt = run_broadcast(topo, source, GreedyOptPolicy())
            assert opt.latency <= gopt.latency


class TestEModelPolicy:
    def test_estimate_built_on_prepare(self, figure1):
        topo, source = figure1
        policy = EModelPolicy()
        assert policy.estimate is None
        policy.prepare(topo, None, source)
        assert policy.estimate is not None
        assert policy.estimate.mode == "sync"

    def test_estimate_rebuilt_for_duty_schedule(self, figure1):
        topo, source = figure1
        schedule = WakeupSchedule(topo.node_ids, rate=10, seed=0)
        policy = EModelPolicy(topo)
        sync_estimate = policy.estimate
        policy.prepare(topo, schedule, source)
        assert policy.estimate is not sync_estimate
        assert policy.estimate.mode == "duty"

    def test_unit_weight_option(self, figure1):
        topo, source = figure1
        schedule = WakeupSchedule(topo.node_ids, rate=10, seed=0)
        policy = EModelPolicy(weight="unit")
        policy.prepare(topo, schedule, source)
        # Unit weights make duty-cycle values integral hop counts.
        assert policy.estimate.value(1, 1) == 2.0

    def test_returns_none_when_no_awake_candidate(self, figure2_duty):
        topo, source, schedule = figure2_duty
        policy = EModelPolicy(topo, schedule)
        state = BroadcastState(topo, frozenset({source}), time=3, schedule=schedule)
        assert policy.select_advance(state) is None

    def test_duty_advance_only_uses_awake_transmitters(self, figure2_duty):
        topo, source, schedule = figure2_duty
        policy = EModelPolicy(topo, schedule)
        state = BroadcastState(topo, frozenset({1, 2, 3}), time=4, schedule=schedule)
        advance = policy.select_advance(state)
        assert advance is not None
        assert all(schedule.is_active(u, 4) for u in advance.color)

    def test_repr_contains_name(self):
        assert "E-model" in repr(EModelPolicy())
