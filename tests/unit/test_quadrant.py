"""Unit tests for repro.network.quadrant."""

from __future__ import annotations

import pytest

from repro.network.quadrant import (
    QUADRANTS,
    quadrant_index,
    quadrant_neighbors,
    quadrant_partition,
)
from repro.network.topology import WSNTopology


@pytest.fixture
def star_topology() -> WSNTopology:
    """A centre node 0 with one neighbour in each quadrant."""
    positions = {
        0: (0.0, 0.0),
        1: (1.0, 0.5),    # Q1
        2: (-1.0, 0.5),   # Q2
        3: (-1.0, -0.5),  # Q3
        4: (1.0, -0.5),   # Q4
    }
    edges = [(0, i) for i in range(1, 5)]
    return WSNTopology.from_edges(edges, positions)


class TestQuadrantIndex:
    @pytest.mark.parametrize(
        "point, expected",
        [
            ((1.0, 0.5), 1),
            ((1.0, 0.0), 1),    # +x axis belongs to Q1
            ((0.0, 1.0), 2),    # +y axis belongs to Q2
            ((-1.0, 0.5), 2),
            ((-1.0, 0.0), 3),   # -x axis belongs to Q3
            ((-1.0, -0.5), 3),
            ((0.0, -1.0), 4),   # -y axis belongs to Q4
            ((1.0, -0.5), 4),
        ],
    )
    def test_boundary_convention(self, point, expected):
        assert quadrant_index((0.0, 0.0), point) == expected

    def test_coincident_point_rejected(self):
        with pytest.raises(ValueError):
            quadrant_index((1.0, 1.0), (1.0, 1.0))

    def test_every_direction_maps_to_exactly_one_quadrant(self):
        import math

        for k in range(32):
            angle = 2 * math.pi * k / 32
            point = (math.cos(angle), math.sin(angle))
            assert quadrant_index((0.0, 0.0), point) in QUADRANTS


class TestQuadrantNeighbors:
    def test_star_assignment(self, star_topology):
        assert quadrant_neighbors(star_topology, 0, 1) == frozenset({1})
        assert quadrant_neighbors(star_topology, 0, 2) == frozenset({2})
        assert quadrant_neighbors(star_topology, 0, 3) == frozenset({3})
        assert quadrant_neighbors(star_topology, 0, 4) == frozenset({4})

    def test_invalid_quadrant_rejected(self, star_topology):
        with pytest.raises(ValueError):
            quadrant_neighbors(star_topology, 0, 5)

    def test_leaf_has_empty_opposite_quadrants(self, star_topology):
        # Node 1 sits in Q1 of the centre, so the centre sits in Q3 of node 1
        # and node 1 has no neighbour in its own Q1.
        assert quadrant_neighbors(star_topology, 1, 1) == frozenset()
        assert quadrant_neighbors(star_topology, 1, 3) == frozenset({0})


class TestQuadrantPartition:
    def test_partition_covers_all_neighbors_disjointly(self, star_topology, small_grid):
        for topo in (star_topology, small_grid):
            for u in topo.node_ids:
                partition = quadrant_partition(topo, u)
                union = frozenset().union(*partition.values())
                assert union == topo.neighbors(u)
                total = sum(len(members) for members in partition.values())
                assert total == len(topo.neighbors(u))

    def test_partition_of_explicit_candidates(self, star_topology):
        partition = quadrant_partition(star_topology, 0, candidates=[1, 3])
        assert partition[1] == frozenset({1})
        assert partition[3] == frozenset({3})
        assert partition[2] == frozenset()
        assert partition[4] == frozenset()
