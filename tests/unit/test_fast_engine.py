"""Unit tests for the vectorized backend: bitset kernels, engines, validator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.flooding import FloodingPolicy, LargestFirstPolicy
from repro.core.advance import Advance, BroadcastState
from repro.core.policies import SchedulingPolicy
from repro.dutycycle.schedule import WakeupSchedule
from repro.network.bitset import BitsetTopology, bitset_view
from repro.network.deployment import DeploymentConfig, deploy_uniform
from repro.network.interference import (
    collision_victims,
    conflicting_pairs,
    has_conflict,
    receivers_of,
)
from repro.network.topology import WSNTopology
from repro.sim.broadcast import run_broadcast
from repro.sim.engine import RoundEngine, SimulationTimeout, SlotEngine
from repro.sim.fast_engine import FastRoundEngine, FastSlotEngine
from repro.sim.replay import ReplayPolicy
from repro.sim.validation import validate_broadcast
from repro.utils.rng import make_rng


@pytest.fixture(scope="module")
def random_deployment():
    config = DeploymentConfig(
        num_nodes=60, area_side=20.0, radius=5.0, source_min_ecc=2, source_max_ecc=None
    )
    return deploy_uniform(config=config, seed=11)


def _random_subsets(topology, seed, count=40):
    rng = make_rng(seed)
    ids = list(topology.node_ids)
    for _ in range(count):
        size = int(rng.integers(1, max(len(ids) // 2, 2)))
        transmitters = frozenset(
            int(u) for u in rng.choice(ids, size=size, replace=False)
        )
        covered_size = int(rng.integers(1, len(ids)))
        covered = frozenset(
            int(u) for u in rng.choice(ids, size=covered_size, replace=False)
        )
        yield transmitters, covered | transmitters


class TestBitsetKernels:
    def test_adjacency_matches_topology(self, random_deployment):
        topology, _ = random_deployment
        view = bitset_view(topology)
        for i, u in enumerate(topology.node_ids):
            neighbours = {topology.node_ids[j] for j in np.flatnonzero(view.adjacency[i])}
            assert neighbours == set(topology.neighbors(u))
        assert view.max_degree() == topology.max_degree()

    def test_view_is_cached_per_topology(self, random_deployment):
        topology, _ = random_deployment
        assert bitset_view(topology) is bitset_view(topology)
        assert isinstance(bitset_view(topology), BitsetTopology)

    def test_receivers_and_conflicts_match_reference(self, random_deployment):
        topology, _ = random_deployment
        view = bitset_view(topology)
        for transmitters, covered in _random_subsets(topology, seed=5):
            covered_bool = view.bool_from_nodes(covered)
            tx_idx = view.indices(transmitters)

            expected_receivers = receivers_of(topology, transmitters, covered)
            assert view.nodes_from_bool(
                view.receivers_bool(tx_idx, covered_bool)
            ) == expected_receivers

            expected_pairs = conflicting_pairs(topology, transmitters, covered)
            assert view.conflicting_pairs(tx_idx, covered_bool) == expected_pairs
            assert view.has_conflict(tx_idx, covered_bool) == bool(expected_pairs)
            assert view.has_conflict(tx_idx, covered_bool) == any(
                has_conflict(topology, u, v, covered)
                for u in transmitters
                for v in transmitters
            )

            conflict, receivers_bool = view.check_and_receivers(tx_idx, covered_bool)
            assert conflict == bool(expected_pairs)
            assert view.nodes_from_bool(receivers_bool) == expected_receivers

            expected_victims = collision_victims(topology, transmitters, covered)
            assert view.nodes_from_bool(
                view.collision_victims_bool(tx_idx, covered_bool)
            ) == expected_victims

    def test_bfs_matches_reference(self, random_deployment):
        topology, source = random_deployment
        view = bitset_view(topology)
        reference = topology.hop_distances(source)
        distances = view.hop_distances_bool(source)
        for i, u in enumerate(topology.node_ids):
            assert distances[i] == reference[u]
        assert view.eccentricity(source) == topology.eccentricity(source)

    def test_eccentricity_raises_on_disconnected(self):
        positions = {0: (0.0, 0.0), 1: (1.0, 0.0), 2: (9.0, 9.0)}
        topology = WSNTopology.from_edges([(0, 1)], positions)
        view = bitset_view(topology)
        with pytest.raises(ValueError, match="disconnected"):
            view.eccentricity(0)
        with pytest.raises(ValueError, match="disconnected"):
            topology.eccentricity(0)

    def test_indices_rejects_unknown_nodes(self, random_deployment):
        topology, _ = random_deployment
        view = bitset_view(topology)
        with pytest.raises(KeyError):
            view.indices(frozenset(range(10_000, 10_040)))
        with pytest.raises(KeyError):
            view.indices([10_000])

    def test_caches_release_collected_keys(self):
        """The weak caches must not pin their keys (no view/window leak)."""
        import gc
        import weakref

        from repro.sim.fast_engine import _window_for

        topology = _line_topology(6)
        schedule = WakeupSchedule(topology.node_ids, rate=3, seed=0)
        view = bitset_view(topology)
        _window_for(schedule, view)
        topology_ref = weakref.ref(topology)
        schedule_ref = weakref.ref(schedule)
        assert view.topology is topology
        del topology, view, schedule
        gc.collect()
        assert topology_ref() is None, "BitsetTopology cache leaked its topology"
        assert schedule_ref() is None, "activity-window cache leaked its schedule"


class TestActivityWindow:
    def test_activity_window_matches_is_active(self):
        schedule = WakeupSchedule(range(8), rate=4, seed=3)
        node_ids = list(range(8))
        window = schedule.activity_window(node_ids, 5, 40)
        for row, node in enumerate(node_ids):
            for slot in range(5, 41):
                assert window[row, slot - 5] == schedule.is_active(node, slot)

    def test_activity_window_empty_and_validation(self):
        schedule = WakeupSchedule(range(3), rate=2, seed=0)
        assert schedule.activity_window([0, 1], 5, 4).shape == (2, 0)
        with pytest.raises(ValueError):
            schedule.activity_window([0], 0, 10)


class _BadAdvancePolicy(SchedulingPolicy):
    """Emits a deliberately invalid advance to exercise engine checks."""

    name = "bad"

    def __init__(self, mutate):
        self._mutate = mutate

    def select_advance(self, state: BroadcastState) -> Advance | None:
        if state.is_complete:
            return None
        good = LargestFirstPolicy().select_advance(state)
        if good is None:
            return None
        return self._mutate(state, good)


def _line_topology(n=7):
    positions = {i: (float(i), 0.0) for i in range(n)}
    return WSNTopology.from_edges([(i, i + 1) for i in range(n - 1)], positions)


class TestFastEngineChecks:
    @pytest.mark.parametrize("engine_cls", [RoundEngine, FastRoundEngine])
    def test_rejects_uncovered_transmitters(self, engine_cls):
        topology = _line_topology()

        def mutate(state, advance):
            outsider = max(state.uncovered)
            return Advance(
                time=advance.time,
                color=advance.color | {outsider},
                receivers=advance.receivers,
            )

        with pytest.raises(ValueError, match="do not hold the message"):
            engine_cls(topology).run(_BadAdvancePolicy(mutate), 0)

    @pytest.mark.parametrize("engine_cls", [RoundEngine, FastRoundEngine])
    def test_rejects_wrong_receivers(self, engine_cls):
        topology = _line_topology()

        def mutate(state, advance):
            return Advance(
                time=advance.time, color=advance.color, receivers=frozenset()
            )

        with pytest.raises(ValueError, match="advance.receivers does not match"):
            engine_cls(topology).run(_BadAdvancePolicy(mutate), 0)

    @pytest.mark.parametrize("engine_cls", [RoundEngine, FastRoundEngine])
    def test_rejects_unknown_receivers_with_same_error(self, engine_cls):
        # Receivers naming a node outside the topology must raise the same
        # ValueError on both backends, not a bare KeyError.
        topology = _line_topology()

        def mutate(state, advance):
            return Advance(
                time=advance.time,
                color=advance.color,
                receivers=advance.receivers | {987_654},
            )

        with pytest.raises(ValueError, match="advance.receivers does not match"):
            engine_cls(topology).run(_BadAdvancePolicy(mutate), 0)

    @pytest.mark.parametrize("engine_cls", [RoundEngine, FastRoundEngine])
    def test_rejects_conflicting_transmitters(self, engine_cls):
        # Diamond 0-{1,2}-3: after the source covers 1 and 2, those two share
        # the uncovered neighbour 3, so transmitting together must be rejected.
        positions = {0: (0.0, 0.0), 1: (1.0, 1.0), 2: (1.0, -1.0), 3: (2.0, 0.0)}
        edges = [(0, 1), (0, 2), (1, 3), (2, 3)]
        topology = WSNTopology.from_edges(edges, positions)

        class Conflicting(SchedulingPolicy):
            name = "conflicting"

            def select_advance(self, state):
                if state.time == 1:
                    return Advance.from_color(
                        state.topology, state.covered, frozenset({0}), 1
                    )
                if state.time == 2:
                    covered = state.covered
                    return Advance(
                        time=2,
                        color=frozenset({1, 2}),
                        receivers=receivers_of(state.topology, {1, 2}, covered),
                    )
                return None

        with pytest.raises(ValueError, match="conflicting transmitters"):
            engine_cls(topology).run(Conflicting(), 0)

    @pytest.mark.parametrize("engine_cls", [SlotEngine, FastSlotEngine])
    def test_rejects_sleeping_transmitters(self, engine_cls):
        topology = _line_topology(4)
        schedule = WakeupSchedule.from_explicit(
            {0: [3], 1: [5], 2: [7], 3: [9]}, rate=2
        )

        class SleepTalker(SchedulingPolicy):
            name = "sleep-talker"
            frontier_driven = False

            def select_advance(self, state):
                if state.time == 1:
                    return Advance.from_color(
                        state.topology, state.covered, frozenset({0}), 1
                    )
                return None

        with pytest.raises(ValueError, match="sleeping transmitters"):
            engine_cls(topology, schedule).run(SleepTalker(), 0)

    @pytest.mark.parametrize("engine_cls", [SlotEngine, FastSlotEngine])
    def test_timeout_messages_match(self, engine_cls):
        topology = _line_topology(4)
        schedule = WakeupSchedule(topology.node_ids, rate=3, seed=1)

        class Mute(SchedulingPolicy):
            name = "mute"

            def select_advance(self, state):
                return None

        with pytest.raises(SimulationTimeout, match="did not complete by time"):
            engine_cls(topology, schedule).run(Mute(), 0, max_slots=9)

    def test_missing_schedule_nodes_rejected(self):
        topology = _line_topology(5)
        schedule = WakeupSchedule([0, 1, 2], rate=2, seed=0)
        with pytest.raises(ValueError, match="missing nodes"):
            FastSlotEngine(topology, schedule)
        with pytest.raises(ValueError, match="missing nodes"):
            SlotEngine(topology, schedule)


class TestEngineParityFixtures:
    def test_round_parity_on_fixture_graphs(self, figure1, small_grid):
        for topology, source in [figure1, (small_grid, small_grid.node_ids[0])]:
            a = run_broadcast(topology, source, LargestFirstPolicy(), engine="reference")
            b = run_broadcast(topology, source, LargestFirstPolicy(), engine="vectorized")
            assert a == b

    def test_duty_parity_on_figure2(self, figure2_duty):
        topology, source, schedule = figure2_duty
        a = run_broadcast(
            topology, source, LargestFirstPolicy(), schedule=schedule,
            align_start=True, engine="reference",
        )
        b = run_broadcast(
            topology, source, LargestFirstPolicy(), schedule=schedule,
            align_start=True, engine="vectorized",
        )
        assert a == b

    def test_flooding_parity_without_conflict_checks(self, small_grid):
        source = small_grid.node_ids[0]
        a = run_broadcast(
            small_grid, source, FloodingPolicy(), validate=False, engine="reference"
        )
        b = run_broadcast(
            small_grid, source, FloodingPolicy(), validate=False, engine="vectorized"
        )
        assert a == b

    def test_replay_hint_fast_forwards(self, random_deployment):
        topology, source = random_deployment
        schedule = WakeupSchedule(topology.node_ids, rate=6, seed=9)
        trace = run_broadcast(
            topology, source, LargestFirstPolicy(), schedule=schedule, align_start=True
        )
        calls = 0

        class CountingReplay(ReplayPolicy):
            def select_advance(self, state):
                nonlocal calls
                calls += 1
                return super().select_advance(state)

        replayed = run_broadcast(
            topology,
            source,
            CountingReplay(trace),
            schedule=schedule,
            start_time=trace.start_time,
            engine="vectorized",
        )
        assert replayed == trace
        # The hint lets the vectorized engine consult the policy only at the
        # recorded decision slots.
        assert calls == trace.num_advances


class TestVectorizedValidator:
    def test_validators_agree_on_valid_traces(self, random_deployment):
        topology, source = random_deployment
        schedule = WakeupSchedule(topology.node_ids, rate=5, seed=2)
        trace = run_broadcast(
            topology, source, LargestFirstPolicy(), schedule=schedule, align_start=True
        )
        assert validate_broadcast(topology, trace, schedule=schedule) == []
        assert (
            validate_broadcast(topology, trace, schedule=schedule, backend="vectorized")
            == []
        )

    @pytest.mark.parametrize(
        "corrupt",
        [
            "drop_first_advance",
            "duplicate_delivery",
            "sleeping_transmitter",
            "wrong_covered",
            "wrong_end_time",
        ],
    )
    def test_validators_agree_on_corrupted_traces(self, random_deployment, corrupt):
        import dataclasses

        topology, source = random_deployment
        schedule = WakeupSchedule(topology.node_ids, rate=5, seed=2)
        trace = run_broadcast(
            topology, source, LargestFirstPolicy(), schedule=schedule, align_start=True
        )
        advances = list(trace.advances)
        if corrupt == "drop_first_advance":
            bad = dataclasses.replace(trace, advances=tuple(advances[1:]))
        elif corrupt == "duplicate_delivery":
            first = advances[0]
            advances[1] = dataclasses.replace(
                advances[1], receivers=advances[1].receivers | first.receivers
            )
            bad = dataclasses.replace(trace, advances=tuple(advances))
        elif corrupt == "sleeping_transmitter":
            target = advances[1]
            asleep_slot = target.time + 1
            while any(
                schedule.is_active(u, asleep_slot) for u in target.color
            ) or any(a.time == asleep_slot for a in advances):
                asleep_slot += 1
            advances[1] = dataclasses.replace(target, time=asleep_slot)
            advances.sort(key=lambda a: a.time)
            bad = dataclasses.replace(
                trace, advances=tuple(advances), end_time=max(a.time for a in advances)
            )
        elif corrupt == "wrong_covered":
            bad = dataclasses.replace(
                trace, covered=trace.covered - {max(trace.covered)}
            )
        else:
            bad = dataclasses.replace(trace, end_time=trace.end_time + 3)

        reference = validate_broadcast(topology, bad, schedule=schedule)
        vectorized = validate_broadcast(
            topology, bad, schedule=schedule, backend="vectorized"
        )
        assert reference, f"corruption {corrupt!r} was not detected"
        assert vectorized == reference

    def test_unknown_backend_rejected(self, random_deployment):
        topology, source = random_deployment
        trace = run_broadcast(topology, source, LargestFirstPolicy())
        with pytest.raises(ValueError, match="unknown validation backend"):
            validate_broadcast(topology, trace, backend="quantum")

    def test_unknown_covered_ids_fall_back_to_reference(self, random_deployment):
        import dataclasses

        topology, source = random_deployment
        trace = run_broadcast(topology, source, LargestFirstPolicy())
        bad = dataclasses.replace(trace, covered=trace.covered | {987_654})
        reference = validate_broadcast(topology, bad)
        vectorized = validate_broadcast(topology, bad, backend="vectorized")
        assert reference
        assert vectorized == reference
