"""Unit tests for the reference policies in repro.baselines.flooding."""

from __future__ import annotations

from repro.baselines.flooding import FloodingPolicy, LargestFirstPolicy
from repro.core.advance import BroadcastState
from repro.core.coloring import greedy_color_classes
from repro.sim.broadcast import run_broadcast


class TestFloodingPolicy:
    def test_latency_equals_eccentricity(self, figure1, figure2, small_deployment):
        for topo, source in (figure1, figure2, small_deployment):
            result = run_broadcast(topo, source, FloodingPolicy(), validate=False)
            assert result.latency == topo.eccentricity(source)

    def test_every_frontier_node_transmits(self, figure1):
        topo, source = figure1
        policy = FloodingPolicy()
        covered = frozenset({source, 0, 1, 2})
        state = BroadcastState(topo, covered, time=2)
        advance = policy.select_advance(state)
        assert advance is not None
        assert advance.color == frozenset({0, 1, 2})

    def test_none_when_complete(self, figure2):
        topo, _ = figure2
        state = BroadcastState(topo, topo.node_set, time=4)
        assert FloodingPolicy().select_advance(state) is None


class TestLargestFirstPolicy:
    def test_selects_first_greedy_class(self, figure1):
        topo, source = figure1
        covered = frozenset({source, 0, 1, 2})
        state = BroadcastState(topo, covered, time=2)
        advance = LargestFirstPolicy().select_advance(state)
        assert advance is not None
        assert advance.color == greedy_color_classes(topo, covered)[0]
        assert advance.color == frozenset({0})

    def test_figure1_naive_choice_costs_an_extra_round(self, figure1):
        """The paper's motivating observation: most-receivers-first is not optimal."""
        topo, source = figure1
        result = run_broadcast(topo, source, LargestFirstPolicy())
        assert result.latency == 4

    def test_valid_on_random_deployment(self, small_deployment):
        topo, source = small_deployment
        result = run_broadcast(topo, source, LargestFirstPolicy())
        assert result.covered == topo.node_set
        assert result.latency >= topo.eccentricity(source)
