"""Unit tests for repro.network.topology."""

from __future__ import annotations

import numpy as np
import pytest

from repro.network.topology import Node, WSNTopology


def triangle_with_tail() -> WSNTopology:
    """0-1-2 triangle plus a tail 2-3."""
    positions = {0: (0.0, 0.0), 1: (1.0, 0.0), 2: (0.5, 0.8), 3: (0.5, 2.0)}
    edges = [(0, 1), (1, 2), (0, 2), (2, 3)]
    return WSNTopology.from_edges(edges, positions)


class TestNode:
    def test_position_property(self):
        node = Node(node_id=3, x=1.5, y=-2.0)
        assert node.position == (1.5, -2.0)

    def test_ordering_by_id(self):
        assert Node(1, 5, 5) < Node(2, 0, 0)


class TestConstruction:
    def test_from_positions_udg_edges(self):
        positions = [(0.0, 0.0), (1.0, 0.0), (2.5, 0.0)]
        topo = WSNTopology.from_positions(positions, radius=1.0)
        assert topo.has_edge(0, 1)
        assert not topo.has_edge(1, 2)
        assert not topo.has_edge(0, 2)

    def test_udg_radius_inclusive(self):
        topo = WSNTopology.from_positions([(0.0, 0.0), (1.0, 0.0)], radius=1.0)
        assert topo.has_edge(0, 1)

    def test_custom_node_ids(self):
        topo = WSNTopology.from_positions(
            [(0.0, 0.0), (0.5, 0.0)], radius=1.0, node_ids=[10, 20]
        )
        assert set(topo.node_ids) == {10, 20}
        assert topo.has_edge(10, 20)

    def test_from_edges_symmetry_enforced(self):
        topo = triangle_with_tail()
        for u, v in topo.edges():
            assert topo.has_edge(v, u)

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            WSNTopology(
                [Node(0, 0, 0), Node(0, 1, 1)],
                {0: set()},
            )

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            WSNTopology.from_edges([(0, 0)], {0: (0.0, 0.0)})

    def test_unknown_neighbour_rejected(self):
        with pytest.raises(ValueError):
            WSNTopology([Node(0, 0, 0)], {0: {5}})

    def test_asymmetric_adjacency_rejected(self):
        with pytest.raises(ValueError, match="not symmetric"):
            WSNTopology([Node(0, 0, 0), Node(1, 1, 1)], {0: {1}, 1: set()})

    def test_mismatched_node_ids_length(self):
        with pytest.raises(ValueError):
            WSNTopology.from_positions([(0, 0), (1, 1)], radius=1, node_ids=[1])


class TestBasicQueries:
    def test_counts(self):
        topo = triangle_with_tail()
        assert topo.num_nodes == 4
        assert topo.num_edges == 4
        assert len(topo) == 4

    def test_neighbors_and_degree(self):
        topo = triangle_with_tail()
        assert topo.neighbors(2) == frozenset({0, 1, 3})
        assert topo.degree(2) == 3
        assert topo.closed_neighbors(3) == frozenset({2, 3})

    def test_max_and_average_degree(self):
        topo = triangle_with_tail()
        assert topo.max_degree() == 3
        assert topo.average_degree() == pytest.approx((2 + 2 + 3 + 1) / 4)

    def test_membership_and_iteration(self):
        topo = triangle_with_tail()
        assert 0 in topo and 9 not in topo
        assert sorted(topo) == [0, 1, 2, 3]

    def test_positions_read_only(self):
        topo = triangle_with_tail()
        with pytest.raises(ValueError):
            topo.positions[0, 0] = 99.0

    def test_uncovered_neighbors(self):
        topo = triangle_with_tail()
        assert topo.uncovered_neighbors(2, frozenset({0, 1, 2})) == frozenset({3})

    def test_edges_listed_once(self):
        topo = triangle_with_tail()
        edges = list(topo.edges())
        assert len(edges) == 4
        assert all(u < v for u, v in edges)


class TestGraphQueries:
    def test_hop_distances(self):
        topo = triangle_with_tail()
        distances = topo.hop_distances(3)
        assert distances == {3: 0, 2: 1, 0: 2, 1: 2}

    def test_bfs_layers(self):
        topo = triangle_with_tail()
        layers = topo.bfs_layers(3)
        assert layers[0] == frozenset({3})
        assert layers[1] == frozenset({2})
        assert layers[2] == frozenset({0, 1})

    def test_eccentricity_and_diameter(self):
        topo = triangle_with_tail()
        assert topo.eccentricity(3) == 2
        assert topo.eccentricity(2) == 1
        assert topo.diameter() == 2

    def test_eccentricity_raises_when_disconnected(self):
        topo = WSNTopology.from_positions([(0, 0), (10, 10)], radius=1.0)
        assert not topo.is_connected()
        with pytest.raises(ValueError, match="disconnected"):
            topo.eccentricity(0)

    def test_is_connected(self):
        assert triangle_with_tail().is_connected()

    def test_hop_distance_unknown_source(self):
        with pytest.raises(KeyError):
            triangle_with_tail().hop_distances(42)

    def test_matches_networkx_shortest_paths(self, small_grid):
        nx = pytest.importorskip("networkx")
        graph = small_grid.to_networkx()
        source = small_grid.node_ids[0]
        expected = nx.single_source_shortest_path_length(graph, source)
        assert small_grid.hop_distances(source) == dict(expected)


class TestMasks:
    def test_neighbor_mask_matches_neighbors(self):
        topo = triangle_with_tail()
        for u in topo.node_ids:
            assert topo.nodes_from_mask(topo.neighbor_mask(u)) == topo.neighbors(u)

    def test_mask_round_trip(self):
        topo = triangle_with_tail()
        subset = frozenset({0, 3})
        assert topo.nodes_from_mask(topo.mask_from_nodes(subset)) == subset

    def test_full_mask_covers_all_nodes(self):
        topo = triangle_with_tail()
        assert topo.nodes_from_mask(topo.full_mask) == topo.node_set
        assert topo.full_mask.bit_count() == topo.num_nodes

    def test_index_of_consistent_with_masks(self):
        topo = triangle_with_tail()
        for u in topo.node_ids:
            assert topo.mask_from_nodes([u]) == 1 << topo.index_of(u)


class TestDensityAndInterop:
    def test_density_with_explicit_area(self):
        topo = triangle_with_tail()
        assert topo.density(area=4.0) == pytest.approx(1.0)

    def test_to_networkx_preserves_structure(self):
        nx = pytest.importorskip("networkx")
        topo = triangle_with_tail()
        graph = topo.to_networkx()
        assert graph.number_of_nodes() == topo.num_nodes
        assert graph.number_of_edges() == topo.num_edges

    def test_positions_shape(self):
        topo = triangle_with_tail()
        assert topo.positions.shape == (4, 2)
        assert np.allclose(topo.positions[2], [0.5, 0.8])
