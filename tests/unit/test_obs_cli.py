"""CLI surface of the telemetry spine: --trace, --telemetry and 'monitor'."""

from __future__ import annotations

import pytest

from repro.experiments.cli import build_parser, main
from repro.obs.bus import EVENT_BUS
from repro.obs.events import event_from_json
from repro.obs.sinks import read_trace

#: Smallest real sweep the CLI can run: one node count, one repetition.
_TINY = ["--nodes", "50", "--repetitions", "1"]


@pytest.fixture(autouse=True)
def quiet_bus():
    assert EVENT_BUS.sinks == (), "a previous test leaked a sink"
    yield
    for sink in EVENT_BUS.sinks:
        EVENT_BUS.detach(sink)


class TestParser:
    def test_telemetry_flags_parse(self, tmp_path):
        args = build_parser().parse_args(
            ["sweep", "--trace", str(tmp_path / "t.jsonl"), "--telemetry"]
        )
        assert args.trace == tmp_path / "t.jsonl"
        assert args.telemetry is True

    def test_monitor_flags_parse(self, tmp_path):
        args = build_parser().parse_args(
            [
                "monitor",
                "--store", str(tmp_path),
                "--interval", "0.5",
                "--frames", "3",
            ]
        )
        assert args.target == "monitor"
        assert args.interval == 0.5
        assert args.frames == 3

    def test_monitor_requires_a_feed(self, capsys):
        with pytest.raises(SystemExit):
            main(["monitor"])
        assert "at least one feed" in capsys.readouterr().err


class TestSweepTrace:
    def test_sweep_writes_a_decodable_trace_and_reports_it(self, tmp_path, capsys):
        trace = tmp_path / "sweep.jsonl"
        assert main(["sweep", *_TINY, "--trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert f"events -> {trace}" in out
        kinds = [event_from_json(p).kind for p in read_trace(trace)]
        assert kinds[0] == "sweep_started"
        assert kinds[-1] == "sweep_finished"
        assert "cell_finished" in kinds
        # The sink is detached again: the bus is quiet after the run.
        assert EVENT_BUS.sinks == ()

    def test_sweep_with_store_traces_the_cache_partition(self, tmp_path, capsys):
        store = tmp_path / "store"
        trace = tmp_path / "sweep.jsonl"
        assert main(["sweep", *_TINY, "--store", str(store)]) == 0
        capsys.readouterr()
        assert main(
            ["sweep", *_TINY, "--store", str(store), "--trace", str(trace)]
        ) == 0
        assert "store: 1 hits / 0 misses" in capsys.readouterr().out
        events = [event_from_json(p) for p in read_trace(trace)]
        started = next(e for e in events if e.kind == "sweep_started")
        assert started.cached_cells == 1 and started.missing_cells == 0
        assert any(e.kind == "store_hit" for e in events)


class TestMonitorTarget:
    def test_monitor_renders_store_and_trace_frames(self, tmp_path, capsys):
        store = tmp_path / "store"
        trace = tmp_path / "sweep.jsonl"
        assert main(
            ["sweep", *_TINY, "--store", str(store), "--trace", str(trace)]
        ) == 0
        capsys.readouterr()
        assert main(
            [
                "monitor",
                "--store", str(store),
                "--trace", str(trace),
                "--frames", "1",
                "--interval", "0",
            ]
        ) == 0
        frame = capsys.readouterr().out
        assert "repro monitor" in frame
        assert "store ·" in frame and "1 cells" in frame
        assert "trace ·" in frame and "1/1 cells" in frame
