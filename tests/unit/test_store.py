"""Unit tests for the persistent experiment store (repro.store)."""

from __future__ import annotations

import dataclasses
import json
import os
import time

import pytest

from repro.core.time_counter import SearchConfig
from repro.experiments.config import SweepConfig
from repro.experiments.runner import RunRecord
from repro.store import (
    STORE_BACKENDS,
    STORE_SCHEMA_VERSION,
    CellKey,
    ExperimentStore,
    cell_key_for,
    get_store_backend,
    open_store,
    store_backend_names,
)


@pytest.fixture(scope="module")
def config() -> SweepConfig:
    return SweepConfig(
        node_counts=(16, 24),
        area_side=10.0,
        radius=4.0,
        repetitions=2,
        source_min_ecc=1,
        source_max_ecc=None,
        search=SearchConfig(mode="beam", beam_width=2),
        max_color_classes=4,
    )


def _record(**overrides) -> RunRecord:
    values = dict(
        policy="E-model",
        system="duty",
        rate=10,
        scenario="uniform",
        duty_model="uniform",
        link_model="reliable",
        loss_probability=0.0,
        num_nodes=16,
        density=0.16,
        repetition=0,
        seed=12345,
        source=3,
        eccentricity=4,
        latency=40,
        end_time=41,
        num_advances=9,
        total_transmissions=11,
        retransmissions=0,
        mean_message_latency=40.0,
        max_message_latency=40,
        tx_energy=220.0,
        rx_energy=1 / 3,  # exercise a float that needs exact round-tripping
        idle_energy=17.5,
        total_energy=220.0 + 1 / 3 + 17.5,
    )
    values.update(overrides)
    return RunRecord(**values)


def _key(config: SweepConfig, **overrides) -> CellKey:
    values = dict(
        system="duty",
        rate=10,
        num_nodes=16,
        repetition=0,
        policies=("17-approx", "E-model"),
    )
    values.update(overrides)
    return cell_key_for(config, **values)


class TestCellKey:
    def test_digest_is_hex_and_deterministic(self, config):
        key = _key(config)
        assert len(key.digest) == 64
        assert int(key.digest, 16) >= 0
        assert key.digest == _key(config).digest

    def test_key_embeds_schema_version(self, config):
        assert _key(config).schema_version == STORE_SCHEMA_VERSION

    def test_coordinates_change_the_digest(self, config):
        base = _key(config).digest
        assert _key(config, num_nodes=24).digest != base
        assert _key(config, repetition=1).digest != base
        assert _key(config, system="sync", rate=1).digest != base
        assert _key(config, rate=50).digest != base
        assert _key(config, policies=("E-model",)).digest != base

    def test_params_are_canonical_json_of_cell_fields(self, config):
        key = _key(config)
        assert json.loads(key.params) == json.loads(
            json.dumps(config.cell_key_fields())
        )


class TestBackends:
    def test_registry_names(self):
        assert store_backend_names() == ["csv", "jsonl"]
        assert set(STORE_BACKENDS) == {"jsonl", "csv"}

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown store backend"):
            get_store_backend("parquet")

    @pytest.mark.parametrize("name", ["jsonl", "csv"])
    def test_round_trip_is_bit_identical(self, name):
        backend = STORE_BACKENDS[name]
        records = [
            _record(),
            _record(policy="17-approx", latency=77, rx_energy=0.1 + 0.2),
        ]
        assert backend.loads(backend.dumps(records)) == records

    @pytest.mark.parametrize("name", ["jsonl", "csv"])
    def test_empty_batch_round_trips(self, name):
        backend = STORE_BACKENDS[name]
        assert backend.loads(backend.dumps([])) == []


class TestExperimentStore:
    def test_miss_then_hit(self, tmp_path, config):
        key = _key(config)
        records = [_record(), _record(policy="17-approx")]
        with ExperimentStore(tmp_path / "store") as store:
            assert store.get(key) is None
            assert not store.contains(key)
            digest = store.put(key, records)
            assert digest == key.digest
            assert store.contains(key)
            assert store.get(key) == records

    def test_reopen_persists(self, tmp_path, config):
        key = _key(config)
        with ExperimentStore(tmp_path / "store") as store:
            store.put(key, [_record()])
        with ExperimentStore(tmp_path / "store") as store:
            assert store.get(key) == [_record()]

    def test_shard_is_content_addressed(self, tmp_path, config):
        key = _key(config)
        with ExperimentStore(tmp_path / "store") as store:
            store.put(key, [_record()])
            shards = list((tmp_path / "store" / "shards").glob("*/*"))
            assert [path.name for path in shards] == [f"{key.digest}.jsonl"]
            # No temp files survive the atomic write.
            assert not [p for p in shards if p.name.startswith(".")]

    def test_missing_shard_degrades_to_miss(self, tmp_path, config):
        key = _key(config)
        with ExperimentStore(tmp_path / "store") as store:
            store.put(key, [_record()])
            for shard in (tmp_path / "store" / "shards").glob("*/*"):
                shard.unlink()
            assert store.get(key) is None
            # The dangling row was reaped along the way.
            assert store.stats().cells == 0

    def test_mixed_backends_stay_readable(self, tmp_path, config):
        jsonl_key = _key(config)
        csv_key = _key(config, repetition=1)
        root = tmp_path / "store"
        with ExperimentStore(root, backend="jsonl") as store:
            store.put(jsonl_key, [_record()])
        with ExperimentStore(root, backend="csv") as store:
            store.put(csv_key, [_record(repetition=1)])
            assert store.get(jsonl_key) == [_record()]
            assert store.get(csv_key) == [_record(repetition=1)]

    def test_stats_counts_cells_and_records(self, tmp_path, config):
        with ExperimentStore(tmp_path / "store") as store:
            store.put(_key(config), [_record(), _record(policy="17-approx")])
            store.put(_key(config, repetition=1), [_record(repetition=1)])
            stats = store.stats()
        assert stats.cells == 2
        assert stats.records == 3
        assert stats.shard_bytes > 0
        assert stats.systems == {"duty": 2}
        assert stats.scenarios == {"uniform": 2}
        assert stats.schema_versions == {STORE_SCHEMA_VERSION: 2}

    def test_gc_reaps_orphans_dangling_and_stale_schema(self, tmp_path, config):
        root = tmp_path / "store"
        with ExperimentStore(root) as store:
            kept = _key(config)
            store.put(kept, [_record()])
            # Dangling row: shard removed behind the store's back.
            dangling = _key(config, repetition=1)
            store.put(dangling, [_record(repetition=1)])
            (root / "shards" / dangling.digest[:2] / f"{dangling.digest}.jsonl").unlink()
            # Stale schema version: digest can never be requested again.
            stale = _key(config, num_nodes=24)
            stale = dataclasses.replace(stale, schema_version=STORE_SCHEMA_VERSION + 1)
            store.put(stale, [_record(num_nodes=24)])
            # Orphan shard + stale temp file (a *fresh* temp is a live
            # atomic write and must survive gc; backdate this one).
            orphan_dir = root / "shards" / "ff"
            orphan_dir.mkdir(parents=True)
            (orphan_dir / ("f" * 64 + ".jsonl")).write_text("")
            stale_temp = orphan_dir / ".leftover.jsonl.tmp-1"
            stale_temp.write_text("")
            two_hours_ago = time.time() - 7200
            os.utime(stale_temp, (two_hours_ago, two_hours_ago))
            fresh_temp = orphan_dir / ".inflight.jsonl.tmp-2"
            fresh_temp.write_text("")

            removed = store.gc()
            assert removed.dangling_rows == 1
            assert removed.orphan_shards == 1
            assert removed.stale_schema_cells == 1
            assert removed.temp_files == 1
            assert removed.total == 4
            # The reachable cell survived untouched, and so did the
            # in-flight temp file of a (hypothetical) concurrent writer.
            assert store.get(kept) == [_record()]
            assert fresh_temp.exists()
            assert store.gc().total == 0

    def test_export_round_trip(self, tmp_path, config):
        records_a = [_record(), _record(policy="17-approx")]
        records_b = [_record(repetition=1)]
        with ExperimentStore(tmp_path / "store") as store:
            store.put(_key(config, repetition=1), records_b)
            store.put(_key(config), records_a)
            for fmt in store_backend_names():
                exported = store.export(fmt)
                reloaded = STORE_BACKENDS[fmt].loads(exported)
                # Canonical order: repetition 0's cell before repetition 1's.
                assert reloaded == records_a + records_b

    def test_open_store_passthrough(self, tmp_path):
        assert open_store(None) is None
        store = open_store(tmp_path / "store")
        assert isinstance(store, ExperimentStore)
        store.close()


class TestQuery:
    @pytest.fixture()
    def populated(self, tmp_path, config):
        store = ExperimentStore(tmp_path / "store")
        for num_nodes in (16, 24):
            for repetition in range(2):
                key = _key(config, num_nodes=num_nodes, repetition=repetition)
                store.put(
                    key,
                    [
                        _record(
                            num_nodes=num_nodes,
                            repetition=repetition,
                            policy=policy,
                        )
                        for policy in ("17-approx", "E-model")
                    ],
                )
        yield store
        store.close()

    def test_query_all(self, populated, config):
        result = populated.query()
        assert result.system == "duty"
        assert result.rate == 10
        assert len(result.records) == 8
        assert result.config.node_counts == (16, 24)
        assert result.config.repetitions == 2
        assert result.config.scenario == config.scenario
        assert result.config.search == config.search

    def test_query_filters_cells_and_policies(self, populated):
        result = populated.query(num_nodes=24, policy="E-model")
        assert [r.num_nodes for r in result.records] == [24, 24]
        assert all(r.policy == "E-model" for r in result.records)

    def test_query_canonical_record_order(self, populated):
        result = populated.query()
        coordinates = [(r.num_nodes, r.repetition) for r in result.records]
        assert coordinates == sorted(coordinates)

    def test_empty_query_raises(self, populated):
        with pytest.raises(LookupError, match="no cached cells match"):
            populated.query(scenario="ring")
        with pytest.raises(LookupError, match="no records of policy"):
            populated.query(policy="OPT")

    def test_unknown_filter_rejected(self, populated):
        with pytest.raises(ValueError, match="unknown query filters"):
            populated.query(flavour="spicy")
