"""Unit tests for the localized contention scheduler (repro.core.localized)."""

from __future__ import annotations

import pytest

from repro.core.advance import BroadcastState
from repro.core.coloring import frontier_candidates
from repro.core.estimation import build_edge_estimate
from repro.core.localized import LocalizedEModelPolicy, local_contention_winners
from repro.core.policies import EModelPolicy
from repro.network.interference import conflict_free
from repro.sim.broadcast import run_broadcast
from repro.sim.validation import validate_broadcast


class TestLocalContentionWinners:
    def test_winners_are_interference_free(self, figure1, medium_deployment):
        for topo, source in (figure1, medium_deployment):
            estimate = build_edge_estimate(topo)
            covered = frozenset({source}) | topo.neighbors(source)
            candidates = frontier_candidates(topo, covered)
            winners = local_contention_winners(topo, covered, candidates, estimate)
            assert winners
            assert conflict_free(topo, winners, covered)

    def test_global_best_candidate_always_wins(self, figure1):
        topo, source = figure1
        estimate = build_edge_estimate(topo)
        covered = frozenset({source, 0, 1, 2})
        candidates = frontier_candidates(topo, covered)
        winners = local_contention_winners(topo, covered, candidates, estimate)
        # Node 1 carries the largest edge estimate among the candidates
        # (Section IV-E), so it must be among the winners.
        assert 1 in winners

    def test_non_conflicting_candidates_all_win(self, figure1):
        """Once {3, 4, 10} are covered, nodes 0 and 4 do not conflict and both win."""
        topo, source = figure1
        estimate = build_edge_estimate(topo)
        covered = frozenset({source, 0, 1, 2, 3, 4, 10})
        candidates = frontier_candidates(topo, covered)
        winners = local_contention_winners(topo, covered, candidates, estimate)
        assert {0, 4} <= winners

    def test_empty_candidates_give_empty_winners(self, figure2):
        topo, _ = figure2
        estimate = build_edge_estimate(topo)
        assert (
            local_contention_winners(topo, topo.node_set, [], estimate) == frozenset()
        )


class TestLocalizedEModelPolicy:
    def test_optimal_on_figure1(self, figure1):
        topo, source = figure1
        result = run_broadcast(topo, source, LocalizedEModelPolicy())
        assert result.latency == 3
        assert result.covered == topo.node_set

    def test_valid_on_random_deployments(self, small_deployment, medium_deployment):
        for topo, source in (small_deployment, medium_deployment):
            result = run_broadcast(topo, source, LocalizedEModelPolicy(), validate=False)
            assert result.covered == topo.node_set
            assert validate_broadcast(topo, result) == []
            assert result.latency >= topo.eccentricity(source)

    def test_duty_cycle_operation(self, small_deployment, duty_schedule_factory):
        topo, source = small_deployment
        schedule = duty_schedule_factory(topo, rate=8)
        result = run_broadcast(
            topo,
            source,
            LocalizedEModelPolicy(),
            schedule=schedule,
            align_start=True,
            validate=False,
        )
        assert result.covered == topo.node_set
        assert validate_broadcast(topo, result, schedule=schedule) == []

    def test_more_parallel_than_centralised_emodel(self, medium_deployment):
        """Local contention fires independent regions concurrently, so it never
        needs more advances-with-transmissions than the one-colour-per-round rule."""
        topo, source = medium_deployment
        localized = run_broadcast(topo, source, LocalizedEModelPolicy())
        centralised = run_broadcast(topo, source, EModelPolicy())
        assert localized.num_advances <= centralised.num_advances
        max_parallel_local = max(len(a.color) for a in localized.advances)
        max_parallel_central = max(len(a.color) for a in centralised.advances)
        assert max_parallel_local >= max_parallel_central

    def test_estimate_prepared_lazily(self, figure2):
        topo, source = figure2
        policy = LocalizedEModelPolicy()
        assert policy.estimate is None
        state = BroadcastState(topo, frozenset({source}), time=1)
        advance = policy.select_advance(state)
        assert advance is not None
        assert policy.estimate is not None

    def test_none_when_complete_or_asleep(self, figure2_duty):
        topo, source, schedule = figure2_duty
        policy = LocalizedEModelPolicy(topo, schedule)
        complete = BroadcastState(topo, topo.node_set, time=5, schedule=schedule)
        assert policy.select_advance(complete) is None
        asleep = BroadcastState(topo, frozenset({source}), time=3, schedule=schedule)
        assert policy.select_advance(asleep) is None
