"""Unit tests of the batched multi-lane executor and its stacked kernels."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.flooding import FloodingPolicy, LargestFirstPolicy
from repro.core.policies import EModelPolicy, GreedyOptPolicy
from repro.dutycycle.models import build_wakeup_schedule
from repro.network.bitset import (
    bitset_view,
    stacked_adjacency,
    stacked_hear_counts,
    stacked_receivers,
)
from repro.network.deployment import DeploymentConfig, deploy_uniform
from repro.network.topology import WSNTopology
from repro.sim import (
    BroadcastTask,
    ScheduleViolation,
    run_batched,
    run_broadcast,
)
from repro.sim.links import IndependentLossLinks


def _deployment(seed: int = 3, num_nodes: int = 30):
    config = DeploymentConfig(
        num_nodes=num_nodes,
        area_side=26.0,
        radius=9.0,
        source_min_ecc=2,
        source_max_ecc=None,
    )
    return deploy_uniform(config=config, seed=seed)


# ---------------------------------------------------------------------------
# Stacked bitset kernels


def _path_topology(n: int) -> WSNTopology:
    positions = {i: (float(i), 0.0) for i in range(n)}
    return WSNTopology.from_edges([(i, i + 1) for i in range(n - 1)], positions)


def test_stacked_adjacency_stacks_views() -> None:
    topo = _path_topology(4)
    views = [bitset_view(topo), bitset_view(topo)]
    stack = stacked_adjacency(views)
    assert stack.shape == (2, 4, 4)
    assert (stack[0] == stack[1]).all()
    assert stack[0, 0, 1] == 1 and stack[0, 0, 2] == 0


def test_stacked_adjacency_rejects_mixed_node_counts() -> None:
    views = [bitset_view(_path_topology(4)), bitset_view(_path_topology(5))]
    with pytest.raises(ValueError, match="node count"):
        stacked_adjacency(views)


def test_stacked_hear_counts_and_receivers_hand_example() -> None:
    # Two lanes over a 4-node path 0-1-2-3.
    topo = _path_topology(4)
    stack = stacked_adjacency([bitset_view(topo), bitset_view(topo)])
    tx = np.zeros((2, 4), dtype=np.uint8)
    tx[0, 1] = 1  # lane 0: node 1 transmits -> 0 and 2 hear once
    tx[1, 0] = 1  # lane 1: nodes 0 and 2 transmit -> 1 hears twice (conflict)
    tx[1, 2] = 1
    counts = stacked_hear_counts(stack, tx)
    assert counts[0].tolist() == [1, 0, 1, 0]
    assert counts[1].tolist() == [0, 2, 0, 1]
    covered = np.zeros((2, 4), dtype=bool)
    covered[:, 0] = True  # source covered in both lanes
    conflicts, receivers = stacked_receivers(counts, covered)
    assert conflicts.tolist() == [False, True]
    assert receivers[0].tolist() == [False, False, True, False]
    assert receivers[1].tolist() == [False, True, False, True]


# ---------------------------------------------------------------------------
# run_batched semantics


def test_run_batched_preserves_task_order_and_matches_per_task() -> None:
    tasks, expected = [], []
    for seed in (5, 6):
        topology, source = _deployment(seed=seed)
        schedule = build_wakeup_schedule(topology.node_ids, rate=4, seed=seed)
        for factory in (EModelPolicy, LargestFirstPolicy):
            tasks.append(
                BroadcastTask(
                    topology, source, factory(), schedule=schedule, align_start=True
                )
            )
            expected.append(
                run_broadcast(
                    topology,
                    source,
                    factory(),
                    schedule=schedule,
                    align_start=True,
                    engine="vectorized",
                )
            )
    results = run_batched(tasks, batch=3)
    assert results == expected


def test_run_batched_is_batch_size_invariant() -> None:
    topology, source = _deployment(seed=9)
    link = IndependentLossLinks(0.2, seed=9)
    def make_tasks():
        return [
            BroadcastTask(topology, source, factory(), link_model=link)
            for factory in (EModelPolicy, GreedyOptPolicy, LargestFirstPolicy)
        ]
    baseline = run_batched(make_tasks(), batch=0)
    for batch in (1, 2, 5):
        assert run_batched(make_tasks(), batch=batch) == baseline


def test_run_batched_groups_mixed_node_counts() -> None:
    """Tasks of different shapes run in one call, grouped internally."""
    small_topology, small_source = _deployment(seed=4, num_nodes=20)
    large_topology, large_source = _deployment(seed=4, num_nodes=30)
    tasks = [
        BroadcastTask(small_topology, small_source, EModelPolicy()),
        BroadcastTask(large_topology, large_source, EModelPolicy()),
        BroadcastTask(small_topology, small_source, LargestFirstPolicy()),
    ]
    results = run_batched(tasks)
    for task, result in zip(tasks, results):
        assert result == run_broadcast(
            task.topology, task.source, type(task.policy)(), engine="vectorized"
        )


def test_run_batched_validates_interfering_traces() -> None:
    topology, source = _deployment(seed=7)
    task = BroadcastTask(topology, source, FloodingPolicy())
    with pytest.raises(ScheduleViolation):
        run_batched([task], validate=True)
    # The same trace is accepted when validation is off (flooding is not
    # interference-free by design; the engine itself doesn't reject it).
    (result,) = run_batched([task], validate=False)
    assert result.covered == frozenset(topology.node_ids)


def test_run_batched_rejects_planned_policies_on_lossy_links() -> None:
    from repro.baselines.approx26 import Approx26Policy

    topology, source = _deployment(seed=8)
    task = BroadcastTask(
        topology,
        source,
        Approx26Policy(),
        link_model=IndependentLossLinks(0.3, seed=1),
    )
    with pytest.raises(ValueError, match="cannot run over lossy links"):
        run_batched([task])


def test_run_batched_rejects_unknown_source() -> None:
    topology, _ = _deployment(seed=2)
    bogus = max(topology.node_ids) + 1000
    with pytest.raises(ValueError, match="unknown source node"):
        run_batched([BroadcastTask(topology, bogus, EModelPolicy())])


def test_batched_engine_timeout_message_matches_vectorized() -> None:
    topology, source = _deployment(seed=12)
    with pytest.raises(Exception) as batched_err:
        run_broadcast(
            topology, source, EModelPolicy(), engine="batched", max_time=1
        )
    with pytest.raises(Exception) as vectorized_err:
        run_broadcast(
            topology, source, EModelPolicy(), engine="vectorized", max_time=1
        )
    assert str(batched_err.value) == str(vectorized_err.value)


def test_lane_state_view_duck_types_broadcast_state() -> None:
    """A view answers the policy-facing read surface exactly like a state."""
    from repro.core.advance import BroadcastState, LaneStateView

    topology, source = _deployment(seed=21)
    schedule = build_wakeup_schedule(topology.node_ids, rate=3, seed=21)
    covered = frozenset(list(sorted(topology.node_ids))[:5]) | {source}
    time = schedule.next_active_slot(source, 1)
    state = BroadcastState(topology, covered, time, schedule=schedule)
    policy = EModelPolicy()
    view = LaneStateView(
        topology, schedule, policy, covered=covered, time=time
    )
    assert view.uncovered == state.uncovered
    assert view.is_complete == state.is_complete
    assert not view.is_synchronous and not state.is_synchronous
    assert view.awake(covered) == state.awake(covered)
    assert LaneStateView(topology, None, policy).is_synchronous
    # The fallback decision through the view equals the state-based one.
    policy.prepare(topology, schedule, source)
    assert policy.select_advance(view) == policy.select_advance(state)


def test_select_advance_batch_default_dispatches_per_view_policy() -> None:
    """The default batch decider consults ``view.policy``, not ``self``."""
    from repro.core.advance import BroadcastState, LaneStateView

    topology, source = _deployment(seed=22)
    covered = frozenset({source})
    policies = [EModelPolicy(), LargestFirstPolicy()]
    for policy in policies:
        policy.prepare(topology, None, source)
    views = [
        LaneStateView(topology, None, policy, covered=covered, time=1)
        for policy in policies
    ]
    # Dispatch the whole mixed group through the *first* policy's default.
    decisions = policies[0].select_advance_batch(views)
    expected = [policy.select_advance(views[i]) for i, policy in enumerate(policies)]
    assert decisions == expected
    # Plain states carry no ``policy`` attribute: the default decides with
    # ``self``.
    state = BroadcastState(topology, covered, 1)
    assert policies[0].select_advance_batch([state]) == [
        policies[0].select_advance(state)
    ]


def test_run_batched_rejects_wrong_length_batch_decisions() -> None:
    """A decider returning the wrong number of decisions is an error, not a
    silently truncated ``zip``."""

    class ShortDecider(EModelPolicy):
        def select_advance_batch(self, views):
            return super().select_advance_batch(views)[:-1]

    topology, source = _deployment(seed=23)
    tasks = [
        BroadcastTask(topology, source, ShortDecider()),
        BroadcastTask(topology, source, ShortDecider()),
    ]
    with pytest.raises(ValueError, match="decisions"):
        run_batched(tasks, validate=False)


def test_run_batched_fallback_protocol_matches_batched_decisions() -> None:
    topology, source = _deployment(seed=24)
    schedule = build_wakeup_schedule(topology.node_ids, rate=4, seed=24)

    def make_tasks():
        return [
            BroadcastTask(
                topology, source, factory(), schedule=schedule, align_start=True
            )
            for factory in (EModelPolicy, GreedyOptPolicy, LargestFirstPolicy)
        ]

    assert run_batched(make_tasks(), batch_decisions=False) == run_batched(
        make_tasks()
    )


def test_run_batched_honors_next_decision_slot() -> None:
    """The fast-forward hint prunes decisions without changing the trace."""
    from repro.sim.batched import BatchProfile
    from repro.sim.replay import ReplayPolicy

    # Both variants opt out of the frontier idle-scan so the wake-time
    # hint is the only pruning mechanism under test.
    class HintedReplay(ReplayPolicy):
        def __init__(self, trace):
            super().__init__(trace)
            self.frontier_driven = False

    class UnhintedReplay(HintedReplay):
        def next_decision_slot(self, time):
            return None

    topology, source = _deployment(seed=25)
    schedule = build_wakeup_schedule(topology.node_ids, rate=6, seed=25)
    trace = run_broadcast(
        topology,
        source,
        EModelPolicy(),
        schedule=schedule,
        align_start=True,
        engine="vectorized",
    )
    kwargs = dict(schedule=schedule, align_start=True)
    hinted_profile, unhinted_profile = BatchProfile(), BatchProfile()
    (hinted,) = run_batched(
        [BroadcastTask(topology, source, HintedReplay(trace), **kwargs)],
        profile=hinted_profile,
    )
    (unhinted,) = run_batched(
        [BroadcastTask(topology, source, UnhintedReplay(trace), **kwargs)],
        profile=unhinted_profile,
    )
    assert hinted == unhinted == trace
    # The replay knows its transmission slots exactly, so the hinted lane
    # is decided once per advance; the unhinted lane is offered every slot.
    assert hinted_profile.lanes_decided == hinted_profile.advances
    assert unhinted_profile.lanes_decided > hinted_profile.lanes_decided


def test_batch_profile_accounts_phases_and_merges() -> None:
    from repro.sim.batched import BatchProfile

    topology, source = _deployment(seed=26)
    profile = BatchProfile()
    run_batched(
        [BroadcastTask(topology, source, EModelPolicy())], profile=profile
    )
    assert profile.macro_steps > 0
    assert profile.advances > 0
    assert profile.lanes_decided >= profile.advances
    assert profile.total_s == profile.offer_s + profile.decide_s + profile.apply_s
    assert profile.bookkeeping_s >= 0.0
    merged = BatchProfile()
    merged.merge(profile)
    merged.merge(profile)
    assert merged.macro_steps == 2 * profile.macro_steps
    assert merged.lanes_decided == 2 * profile.lanes_decided
    assert merged.advances == 2 * profile.advances
    assert merged.total_s == pytest.approx(2 * profile.total_s)


def test_batched_engine_multi_source_inherits_vectorized_path() -> None:
    topology, source = _deployment(seed=14)
    others = sorted(set(topology.node_ids) - {source})
    sources = [source, others[0]]
    batched = run_broadcast(
        topology, sources, EModelPolicy(), engine="batched"
    )
    vectorized = run_broadcast(
        topology, sources, EModelPolicy(), engine="vectorized"
    )
    assert batched == vectorized
