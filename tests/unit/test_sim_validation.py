"""Unit tests for repro.sim.validation (independent trace validation)."""

from __future__ import annotations

import pytest

from repro.core.advance import Advance
from repro.core.policies import GreedyOptPolicy
from repro.sim.broadcast import run_broadcast
from repro.sim.trace import BroadcastResult
from repro.sim.validation import ScheduleViolation, assert_valid, validate_broadcast


def _make_result(topology, source, advances, start=1, end=None):
    covered = {source}
    for advance in advances:
        covered |= advance.receivers
    return BroadcastResult(
        policy_name="manual",
        source=source,
        start_time=start,
        end_time=end if end is not None else (advances[-1].time if advances else start - 1),
        covered=frozenset(covered),
        advances=tuple(advances),
    )


class TestValidTraces:
    def test_engine_traces_are_valid(self, figure1, figure2, small_deployment):
        for topo, source in (figure1, figure2, small_deployment):
            result = run_broadcast(topo, source, GreedyOptPolicy(), validate=False)
            assert validate_broadcast(topo, result) == []
            assert_valid(topo, result)

    def test_incomplete_allowed_when_requested(self, figure2):
        topo, source = figure2
        advance = Advance.from_color(topo, frozenset({source}), frozenset({source}), time=1)
        result = _make_result(topo, source, [advance])
        assert validate_broadcast(topo, result, require_complete=True)
        assert validate_broadcast(topo, result, require_complete=False) == []


class TestViolationsDetected:
    def test_transmitter_without_message(self, figure2):
        topo, source = figure2
        bogus = Advance(time=1, color=frozenset({4}), receivers=frozenset({2}))
        result = _make_result(topo, source, [bogus])
        violations = validate_broadcast(topo, result, require_complete=False)
        assert any("without the message" in v for v in violations)

    def test_conflicting_transmitters(self, figure2):
        topo, source = figure2
        first = Advance.from_color(topo, frozenset({source}), frozenset({source}), time=1)
        conflicting = Advance.from_color(
            topo, frozenset({source, 2, 3}), frozenset({2, 3}), time=2
        )
        result = _make_result(topo, source, [first, conflicting])
        violations = validate_broadcast(topo, result)
        assert any("conflicting" in v for v in violations)

    def test_wrong_receivers_detected(self, figure2):
        topo, source = figure2
        wrong = Advance(time=1, color=frozenset({source}), receivers=frozenset({2}))
        result = _make_result(topo, source, [wrong])
        violations = validate_broadcast(topo, result, require_complete=False)
        assert any("differ" in v for v in violations)

    def test_duplicate_delivery_detected(self, figure2):
        topo, source = figure2
        first = Advance.from_color(topo, frozenset({source}), frozenset({source}), time=1)
        duplicate = Advance(time=2, color=frozenset({2}), receivers=frozenset({3, 4, 5}))
        result = _make_result(topo, source, [first, duplicate])
        violations = validate_broadcast(topo, result)
        assert any("twice" in v for v in violations)

    def test_non_increasing_times_detected(self, figure2):
        topo, source = figure2
        first = Advance.from_color(topo, frozenset({source}), frozenset({source}), time=2)
        second = Advance.from_color(
            topo, frozenset({source, 2, 3}), frozenset({2}), time=2
        )
        result = _make_result(topo, source, [first, second], start=2, end=2)
        violations = validate_broadcast(topo, result)
        assert any("strictly increasing" in v for v in violations)

    def test_incomplete_coverage_detected(self, figure2):
        topo, source = figure2
        advance = Advance.from_color(topo, frozenset({source}), frozenset({source}), time=1)
        result = _make_result(topo, source, [advance])
        violations = validate_broadcast(topo, result)
        assert any("incomplete" in v for v in violations)

    def test_sleeping_transmitter_detected(self, figure2_duty):
        topo, source, schedule = figure2_duty
        advance = Advance.from_color(topo, frozenset({source}), frozenset({source}), time=3)
        result = _make_result(topo, source, [advance], start=3)
        violations = validate_broadcast(
            topo, result, schedule=schedule, require_complete=False
        )
        assert any("sleeping" in v for v in violations)

    def test_assert_valid_raises_with_details(self, figure2):
        topo, source = figure2
        bogus = Advance(time=1, color=frozenset({4}), receivers=frozenset({2}))
        result = _make_result(topo, source, [bogus])
        with pytest.raises(ScheduleViolation, match="manual"):
            assert_valid(topo, result, require_complete=False)
