"""Unit tests for the text renderers (repro.sim.render)."""

from __future__ import annotations

import pytest

from repro.core.policies import GreedyOptPolicy
from repro.network.topology import WSNTopology
from repro.sim.broadcast import run_broadcast
from repro.sim.render import render_schedule_timeline, render_topology_ascii


class TestRenderTopologyAscii:
    def test_contains_every_node_marker(self, figure2):
        topo, source = figure2
        art = render_topology_ascii(topo, width=20, height=10, highlight=source)
        assert art.count("*") + art.count("#") + art.count("S") >= 1
        assert "S = node 1" in art
        assert f"{topo.num_nodes} nodes" in art

    def test_grid_dimensions_respected(self, small_grid):
        art = render_topology_ascii(small_grid, width=30, height=12)
        lines = art.splitlines()
        # border + height rows + border + legend
        assert len(lines) == 12 + 3
        assert all(len(line) == 32 for line in lines[: 12 + 2])

    def test_empty_topology(self):
        topo = WSNTopology([], {})
        assert "empty" in render_topology_ascii(topo)

    def test_invalid_dimensions(self, figure2):
        topo, _ = figure2
        with pytest.raises(ValueError):
            render_topology_ascii(topo, width=1, height=1)


class TestRenderScheduleTimeline:
    def test_synchronous_timeline(self, figure1):
        topo, source = figure1
        result = run_broadcast(topo, source, GreedyOptPolicy())
        text = render_schedule_timeline(result)
        assert "P(A) = 3 rounds" in text
        assert "round    1" in text
        assert "round    3" in text
        assert "covered 12 nodes" in text

    def test_duty_timeline_marks_idle_slots(self, figure2_duty):
        topo, source, schedule = figure2_duty
        result = run_broadcast(
            topo, source, GreedyOptPolicy(), schedule=schedule, start_time=2
        )
        text = render_schedule_timeline(result)
        assert "slot" in text
        assert "idle" in text  # slot 3 has no awake frontier node

    def test_truncation_of_long_traces(self, medium_deployment):
        topo, source = medium_deployment
        result = run_broadcast(topo, source, GreedyOptPolicy())
        text = render_schedule_timeline(result, max_entries=2)
        assert "omitted" in text

    def test_invalid_max_entries(self, figure2):
        topo, source = figure2
        result = run_broadcast(topo, source, GreedyOptPolicy())
        with pytest.raises(ValueError):
            render_schedule_timeline(result, max_entries=0)
