"""Unit tests for the exact solver tier (repro.solvers).

The load-bearing checks: the branch-and-bound matches the exhaustive
brute-force oracle on every small instance of the grid (which
independently verifies its two dominance arguments), the ILP backend —
when scipy is importable — agrees with both, and the extracted plan
replays bit-identically through both simulation engines regardless of
which value backend produced the optimum (the determinism contract of
``docs/solvers.md``).
"""

from __future__ import annotations

import pytest

from repro.core.policies import EModelPolicy, GreedyOptPolicy
from repro.dutycycle.schedule import WakeupSchedule
from repro.network.deployment import DeploymentConfig, deploy_uniform
from repro.network.topology import WSNTopology
from repro.sim.broadcast import run_broadcast
from repro.sim.links import IndependentLossLinks
from repro.solvers import (
    SOLVER_TIERS,
    BranchAndBoundPolicy,
    ExactPolicy,
    SolverError,
    SolverLimitExceeded,
    brute_force_completion,
    extract_plan,
    flood_completion_bound,
    greedy_completion,
    ilp_available,
    minimum_completion,
    minimum_completion_ilp,
    solve_broadcast,
    solver_catalog,
    solver_names,
)


def _line(num_nodes: int) -> WSNTopology:
    positions = {i: (float(i), 0.0) for i in range(num_nodes)}
    return WSNTopology.from_edges(
        [(i, i + 1) for i in range(num_nodes - 1)], positions
    )


def _sparse(num_nodes: int, seed: int) -> tuple[WSNTopology, int]:
    """A sparse connected deployment where interference actually bites
    (the flood bound is not tight, so the branch-and-bound must search)."""
    config = DeploymentConfig(
        num_nodes=num_nodes,
        area_side=16.0,
        radius=6.0,
        source_min_ecc=2,
        source_max_ecc=None,
    )
    return deploy_uniform(config=config, seed=seed)


def _small_instances() -> list[tuple[str, WSNTopology, int]]:
    """The brute-forceable verification grid: every instance has <= 8 nodes."""
    dense_config = DeploymentConfig(
        num_nodes=5,
        area_side=10.0,
        radius=6.0,
        source_min_ecc=1,
        source_max_ecc=None,
    )
    cases = [("dense-5", *deploy_uniform(config=dense_config, seed=1))]
    for num_nodes, seed in ((6, 11), (6, 21), (8, 12), (8, 21)):
        cases.append((f"sparse-{num_nodes}-s{seed}", *_sparse(num_nodes, seed)))
    cases.append(("line-6", _line(6), 0))
    return cases


GRID = _small_instances()
GRID_IDS = [name for name, _, _ in GRID]
SYSTEMS = ("sync", "duty")


def _schedule_for(topology: WSNTopology, system: str) -> WakeupSchedule | None:
    if system == "sync":
        return None
    return WakeupSchedule(topology.node_ids, rate=4, seed=9)


@pytest.mark.parametrize("system", SYSTEMS)
@pytest.mark.parametrize("name,topology,source", GRID, ids=GRID_IDS)
class TestExactValueMatchesOracle:
    def test_branch_and_bound_matches_brute_force(self, name, topology, source, system):
        schedule = _schedule_for(topology, system)
        covered = frozenset({source})
        optimum, lower_bound, explored = minimum_completion(
            topology, covered, schedule=schedule
        )
        assert optimum == brute_force_completion(topology, covered, schedule=schedule)
        assert lower_bound <= optimum  # the flood bound is admissible
        assert explored >= 0

    def test_greedy_is_feasible_hence_an_upper_bound(
        self, name, topology, source, system
    ):
        schedule = _schedule_for(topology, system)
        covered = frozenset({source})
        optimum, _, _ = minimum_completion(topology, covered, schedule=schedule)
        greedy = greedy_completion(topology, covered, 1, schedule)
        assert greedy is not None
        assert optimum <= greedy

    @pytest.mark.skipif(not ilp_available(), reason="scipy/HiGHS not importable")
    def test_ilp_agrees_with_branch_and_bound(self, name, topology, source, system):
        schedule = _schedule_for(topology, system)
        covered = frozenset({source})
        optimum, _, _ = minimum_completion(topology, covered, schedule=schedule)
        assert minimum_completion_ilp(topology, covered, schedule=schedule) == optimum


@pytest.mark.parametrize("system", SYSTEMS)
@pytest.mark.parametrize("name,topology,source", GRID, ids=GRID_IDS)
class TestDeterminismContract:
    def test_plan_is_backend_independent(self, name, topology, source, system):
        """Any exact value backend yields the identical canonical plan."""
        schedule = _schedule_for(topology, system)
        plan_bb = solve_broadcast(
            topology, source, schedule=schedule, backend="branch-and-bound"
        )
        assert plan_bb.backend == "branch-and-bound"
        assert plan_bb.lower_bound <= plan_bb.optimum
        if ilp_available():
            plan_ilp = solve_broadcast(
                topology, source, schedule=schedule, backend="ilp"
            )
            assert plan_ilp.backend == "ilp"
            assert plan_ilp.optimum == plan_bb.optimum
            assert plan_ilp.advances == plan_bb.advances

    def test_plan_replays_bit_identically_on_both_engines(
        self, name, topology, source, system
    ):
        schedule = _schedule_for(topology, system)
        reference = run_broadcast(
            topology,
            source,
            ExactPolicy(),
            schedule=schedule,
            align_start=schedule is not None,
            engine="reference",
        )
        vectorized = run_broadcast(
            topology,
            source,
            ExactPolicy(),
            schedule=schedule,
            align_start=schedule is not None,
            engine="vectorized",
        )
        assert reference == vectorized
        assert reference.covered == topology.node_set

    def test_exact_and_pinned_fallback_produce_equal_traces(
        self, name, topology, source, system
    ):
        schedule = _schedule_for(topology, system)
        auto = run_broadcast(
            topology,
            source,
            ExactPolicy(),
            schedule=schedule,
            align_start=schedule is not None,
        )
        pinned = run_broadcast(
            topology,
            source,
            BranchAndBoundPolicy(),
            schedule=schedule,
            align_start=schedule is not None,
        )
        assert auto.advances == pinned.advances
        assert auto.latency == pinned.latency

    def test_replayed_latency_never_beaten_by_heuristics(
        self, name, topology, source, system
    ):
        schedule = _schedule_for(topology, system)
        exact = run_broadcast(
            topology,
            source,
            ExactPolicy(),
            schedule=schedule,
            align_start=schedule is not None,
        )
        for make_policy in (GreedyOptPolicy, EModelPolicy):
            other = run_broadcast(
                topology,
                source,
                make_policy(),
                schedule=schedule,
                align_start=schedule is not None,
            )
            assert exact.latency <= other.latency


class TestSolverEdges:
    def test_already_covered_instance_is_trivial(self):
        topology = _line(4)
        covered = topology.node_set
        assert minimum_completion(topology, covered)[0] == 0
        assert brute_force_completion(topology, covered) == 0
        assert extract_plan(topology, covered, 0) == ((), 0)

    def test_disconnected_topology_raises(self):
        positions = {0: (0.0, 0.0), 1: (1.0, 0.0), 2: (9.0, 9.0), 3: (10.0, 9.0)}
        topology = WSNTopology.from_edges([(0, 1), (2, 3)], positions)
        assert flood_completion_bound(topology, frozenset({0}), 1, None) is None
        with pytest.raises(SolverError, match="disconnected"):
            minimum_completion(topology, frozenset({0}))
        with pytest.raises(SolverError, match="disconnected"):
            brute_force_completion(topology, frozenset({0}))

    def test_grid_is_not_trivially_bounded(self):
        """At least one grid instance forces the search to branch (otherwise
        the grid would never exercise the dominance arguments)."""
        explored_total = 0
        for _, topology, source in GRID:
            for system in SYSTEMS:
                schedule = _schedule_for(topology, system)
                explored_total += minimum_completion(
                    topology, frozenset({source}), schedule=schedule
                )[2]
        assert explored_total > 0

    def test_state_budget_is_enforced(self):
        topology, source = _sparse(8, 12)
        with pytest.raises(SolverLimitExceeded, match="search states"):
            minimum_completion(topology, frozenset({source}), max_states=0)

    def test_wrong_deadline_is_rejected(self):
        topology = _line(6)
        optimum, _, _ = minimum_completion(topology, frozenset({0}))
        with pytest.raises(SolverError, match="deadline"):
            extract_plan(topology, frozenset({0}), optimum - 1)

    def test_unknown_backend_is_rejected(self):
        topology = _line(4)
        with pytest.raises(ValueError, match="unknown solver backend"):
            solve_broadcast(topology, 0, backend="simplex")

    def test_line_optimum_is_the_eccentricity(self):
        """Hand-checkable: on a line, one hop per slot is optimal (sync)."""
        topology = _line(6)
        plan = solve_broadcast(topology, 0)
        assert plan.latency == 5
        assert plan.lower_bound == plan.optimum  # the flood bound is tight here


class TestSolverPolicies:
    def test_policy_requires_prepare(self):
        from repro.core.advance import BroadcastState

        topology = _line(5)
        state = BroadcastState(topology, frozenset({0}), time=1)
        with pytest.raises(RuntimeError, match="prepare"):
            ExactPolicy().select_advance(state)

    def test_plan_exposed_after_first_decision(self):
        topology = _line(5)
        policy = BranchAndBoundPolicy()
        assert policy.plan is None
        result = run_broadcast(topology, 0, policy)
        assert policy.plan is not None
        assert policy.plan.backend == "branch-and-bound"
        assert result.latency == policy.plan.latency

    @pytest.mark.parametrize("make_policy", [ExactPolicy, BranchAndBoundPolicy])
    def test_rejected_for_lossy_links(self, make_policy):
        topology = _line(5)
        with pytest.raises(ValueError, match="cannot run over lossy links"):
            run_broadcast(
                topology,
                0,
                make_policy(),
                link_model=IndependentLossLinks(0.2, seed=1),
            )

    @pytest.mark.parametrize("make_policy", [ExactPolicy, BranchAndBoundPolicy])
    def test_rejected_for_multi_source(self, make_policy):
        topology = _line(6)
        with pytest.raises(ValueError, match="solver registry"):
            run_broadcast(topology, [0, 5], make_policy())


class TestSolverRegistry:
    def test_names_match_catalog_and_registry(self):
        assert solver_names() == tuple(SOLVER_TIERS)
        assert [name for name, _ in solver_catalog()] == list(solver_names())
        assert set(solver_names()) == {
            "exact", "branch-and-bound", "17-approx", "26-approx", "heuristic"
        }

    def test_strongest_guarantee_first(self):
        guarantees = [tier.guarantee for tier in SOLVER_TIERS.values()]
        assert guarantees[:2] == ["optimal", "optimal"]
        assert guarantees[-1] == "heuristic"

    def test_exact_tiers_carry_an_instance_limit(self):
        for tier in SOLVER_TIERS.values():
            if tier.guarantee == "optimal":
                assert tier.max_nodes is not None
            else:
                assert tier.max_nodes is None

    def test_factories_realise_the_tier(self):
        for name, tier in SOLVER_TIERS.items():
            policy = tier.factory()
            # The heuristic tier is the paper's E-model already present in
            # every line-up; every other tier records under its own name.
            expected = "E-model" if name == "heuristic" else name
            assert policy.name == expected
            assert policy.loss_tolerant == tier.loss_tolerant

    def test_only_the_heuristic_tier_spans_the_loss_axis(self):
        lossy = [n for n, tier in SOLVER_TIERS.items() if tier.loss_tolerant]
        assert lossy == ["heuristic"]

    def test_system_support_matches_the_baselines(self):
        assert SOLVER_TIERS["17-approx"].systems == ("duty",)
        assert SOLVER_TIERS["26-approx"].systems == ("sync",)
        for name in ("exact", "branch-and-bound", "heuristic"):
            assert SOLVER_TIERS[name].systems == ("sync", "duty")
