"""Unit tests for the 17-approximation duty-cycle baseline."""

from __future__ import annotations

import pytest

from repro.baselines.approx17 import Approx17Policy
from repro.core.advance import BroadcastState
from repro.core.policies import GreedyOptPolicy
from repro.core.time_counter import SearchConfig
from repro.dutycycle.schedule import WakeupSchedule
from repro.sim.broadcast import run_broadcast


class TestApprox17Policy:
    def test_requires_schedule(self, figure1):
        topo, source = figure1
        with pytest.raises(ValueError, match="duty-cycle"):
            Approx17Policy().prepare(topo, None, source)

    def test_requires_prepare_before_use(self, figure1):
        topo, source = figure1
        schedule = WakeupSchedule(topo.node_ids, rate=5, seed=0)
        policy = Approx17Policy()
        state = BroadcastState(topo, frozenset({source}), time=1, schedule=schedule)
        with pytest.raises(RuntimeError, match="prepare"):
            policy.select_advance(state)

    def test_completes_and_is_valid(self, small_deployment, duty_schedule_factory):
        topo, source = small_deployment
        schedule = duty_schedule_factory(topo, rate=10)
        result = run_broadcast(
            topo, source, Approx17Policy(), schedule=schedule, align_start=True
        )
        assert result.covered == topo.node_set

    def test_transmitters_only_at_their_wakeup_slots(self, small_deployment, duty_schedule_factory):
        topo, source = small_deployment
        schedule = duty_schedule_factory(topo, rate=10)
        result = run_broadcast(
            topo, source, Approx17Policy(), schedule=schedule, align_start=True
        )
        for advance in result.advances:
            for node in advance.color:
                assert schedule.is_active(node, advance.time)

    def test_layer_synchronisation_never_pipelines(self, small_deployment, duty_schedule_factory):
        """A node at hop distance h never transmits before every parent of
        layer h-1 has transmitted (the defining property of the baseline)."""
        topo, source = small_deployment
        schedule = duty_schedule_factory(topo, rate=10)
        policy = Approx17Policy()
        result = run_broadcast(
            topo, source, policy, schedule=schedule, align_start=True
        )
        tree = policy.tree
        assert tree is not None
        first_tx: dict[int, int] = {}
        for advance in result.advances:
            for node in advance.color:
                first_tx.setdefault(node, advance.time)
        last_tx_per_layer: dict[int, int] = {}
        for level, parents in enumerate(tree.parents_per_layer):
            times = [first_tx[p] for p in parents if p in first_tx]
            if times:
                last_tx_per_layer[level] = max(times)
        distances = topo.hop_distances(source)
        for node, time in first_tx.items():
            level = distances[node]
            if level == 0:
                continue
            assert time > last_tx_per_layer.get(level - 1, 0) - 1
            # Strictly: a layer-h parent transmits only after layer h-1 closed.
            assert time >= last_tx_per_layer.get(level - 1, 0)

    def test_slower_than_pipeline_schedulers(self, small_deployment, duty_schedule_factory):
        topo, source = small_deployment
        schedule = duty_schedule_factory(topo, rate=10)
        baseline = run_broadcast(
            topo, source, Approx17Policy(), schedule=schedule, align_start=True
        )
        gopt = run_broadcast(
            topo,
            source,
            GreedyOptPolicy(search=SearchConfig(mode="beam", beam_width=4)),
            schedule=schedule,
            align_start=True,
        )
        assert baseline.latency >= gopt.latency

    def test_figure2_duty_example(self, figure2_duty):
        topo, source, schedule = figure2_duty
        result = run_broadcast(
            topo, source, Approx17Policy(), schedule=schedule, start_time=2
        )
        assert result.covered == topo.node_set
        assert result.end_time >= 4  # can never beat the optimum of Table IV
