"""Unit tests for the 17-approximation duty-cycle baseline."""

from __future__ import annotations

import pytest

from repro.baselines.approx17 import Approx17Policy
from repro.core.advance import BroadcastState
from repro.core.policies import GreedyOptPolicy
from repro.core.time_counter import SearchConfig
from repro.dutycycle.schedule import WakeupSchedule
from repro.sim.broadcast import run_broadcast


class TestApprox17Policy:
    def test_requires_schedule(self, figure1):
        topo, source = figure1
        with pytest.raises(ValueError, match="duty-cycle"):
            Approx17Policy().prepare(topo, None, source)

    def test_schedule_error_points_at_the_solver_registry(self, figure1):
        topo, source = figure1
        with pytest.raises(ValueError, match="SOLVER_TIERS"):
            Approx17Policy().prepare(topo, None, source)

    def test_requires_prepare_before_use(self, figure1):
        topo, source = figure1
        schedule = WakeupSchedule(topo.node_ids, rate=5, seed=0)
        policy = Approx17Policy()
        state = BroadcastState(topo, frozenset({source}), time=1, schedule=schedule)
        with pytest.raises(RuntimeError, match="prepare"):
            policy.select_advance(state)

    def test_completes_and_is_valid(self, small_deployment, duty_schedule_factory):
        topo, source = small_deployment
        schedule = duty_schedule_factory(topo, rate=10)
        result = run_broadcast(
            topo, source, Approx17Policy(), schedule=schedule, align_start=True
        )
        assert result.covered == topo.node_set

    def test_transmitters_only_at_their_wakeup_slots(self, small_deployment, duty_schedule_factory):
        topo, source = small_deployment
        schedule = duty_schedule_factory(topo, rate=10)
        result = run_broadcast(
            topo, source, Approx17Policy(), schedule=schedule, align_start=True
        )
        for advance in result.advances:
            for node in advance.color:
                assert schedule.is_active(node, advance.time)

    def test_layer_synchronisation_never_pipelines(self, small_deployment, duty_schedule_factory):
        """A node at hop distance h never transmits before every parent of
        layer h-1 has transmitted (the defining property of the baseline)."""
        topo, source = small_deployment
        schedule = duty_schedule_factory(topo, rate=10)
        policy = Approx17Policy()
        result = run_broadcast(
            topo, source, policy, schedule=schedule, align_start=True
        )
        tree = policy.tree
        assert tree is not None
        first_tx: dict[int, int] = {}
        for advance in result.advances:
            for node in advance.color:
                first_tx.setdefault(node, advance.time)
        last_tx_per_layer: dict[int, int] = {}
        for level, parents in enumerate(tree.parents_per_layer):
            times = [first_tx[p] for p in parents if p in first_tx]
            if times:
                last_tx_per_layer[level] = max(times)
        distances = topo.hop_distances(source)
        for node, time in first_tx.items():
            level = distances[node]
            if level == 0:
                continue
            assert time > last_tx_per_layer.get(level - 1, 0) - 1
            # Strictly: a layer-h parent transmits only after layer h-1 closed.
            assert time >= last_tx_per_layer.get(level - 1, 0)

    def test_slower_than_pipeline_schedulers(self, small_deployment, duty_schedule_factory):
        topo, source = small_deployment
        schedule = duty_schedule_factory(topo, rate=10)
        baseline = run_broadcast(
            topo, source, Approx17Policy(), schedule=schedule, align_start=True
        )
        gopt = run_broadcast(
            topo,
            source,
            GreedyOptPolicy(search=SearchConfig(mode="beam", beam_width=4)),
            schedule=schedule,
            align_start=True,
        )
        assert baseline.latency >= gopt.latency

    def test_figure2_duty_example(self, figure2_duty):
        topo, source, schedule = figure2_duty
        result = run_broadcast(
            topo, source, Approx17Policy(), schedule=schedule, start_time=2
        )
        assert result.covered == topo.node_set
        assert result.end_time >= 4  # can never beat the optimum of Table IV

    def test_line_latency_is_hand_computable(self, line_topology):
        """At rate 1 every node is awake each slot, so the duty-cycle layers
        degenerate to the synchronous ones: one slot per hop on the 6-node
        line, latency = 5 = optimum."""
        schedule = WakeupSchedule(line_topology.node_ids, rate=1, seed=0)
        result = run_broadcast(
            line_topology, 0, Approx17Policy(), schedule=schedule, align_start=True
        )
        assert result.latency == 5

    def test_star_latency_is_hand_computable(self):
        """One always-awake hub transmission covers every leaf: latency 1."""
        from repro.network.topology import WSNTopology

        positions = {
            0: (0.0, 0.0), 1: (1.0, 0.0), 2: (-1.0, 0.0),
            3: (0.0, 1.0), 4: (0.0, -1.0),
        }
        star = WSNTopology.from_edges([(0, i) for i in range(1, 5)], positions)
        schedule = WakeupSchedule(star.node_ids, rate=1, seed=0)
        result = run_broadcast(
            star, 0, Approx17Policy(), schedule=schedule, align_start=True
        )
        assert result.latency == 1

    def test_latency_within_the_proved_bound(self, small_deployment, duty_schedule_factory):
        """The solver catalog's guarantee, measured: latency <= 17 k d."""
        from repro.dutycycle.cwt import max_cwt

        topo, source = small_deployment
        schedule = duty_schedule_factory(topo, rate=10)
        result = run_broadcast(
            topo, source, Approx17Policy(), schedule=schedule, align_start=True
        )
        depth = max(topo.hop_distances(source).values())
        assert result.latency <= 17 * max_cwt(10) * depth


class TestNextDecisionSlot:
    """The fast-forward hint's promise: no advance strictly before it."""

    def test_unprepared_policy_makes_no_promise(self, figure1):
        assert Approx17Policy().next_decision_slot(1) is None

    def test_hint_is_first_pending_parent_wakeup(self, small_deployment, duty_schedule_factory):
        topo, source = small_deployment
        schedule = duty_schedule_factory(topo, rate=10)
        policy = Approx17Policy()
        policy.prepare(topo, schedule, source)
        hint = policy.next_decision_slot(1)
        # Right after prepare the only pending layer-0 parent is the source,
        # so the hint is exactly the source's first wake-up slot.
        assert hint == schedule.next_active_slot(source, 1)
        # The promise: select_advance answers None on every slot before the
        # hint (the pending parent is asleep there).
        for slot in range(1, hint):
            state = BroadcastState(
                topo, frozenset({source}), time=slot, schedule=schedule
            )
            assert policy.select_advance(state) is None

    def test_hinted_trace_matches_unhinted_engines(self, small_deployment, duty_schedule_factory):
        """Engines honoring the hint reproduce the reference trace exactly."""
        topo, source = small_deployment
        schedule = duty_schedule_factory(topo, rate=10)
        reference = run_broadcast(
            topo, source, Approx17Policy(), schedule=schedule,
            align_start=True, engine="reference",
        )
        for engine in ("vectorized", "batched"):
            assert run_broadcast(
                topo, source, Approx17Policy(), schedule=schedule,
                align_start=True, engine=engine,
            ) == reference
