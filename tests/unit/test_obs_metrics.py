"""The metrics registry and the event-folding MetricsSink."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs import events
from repro.obs.bus import EVENT_BUS
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    MetricsSink,
    profile_to_metrics,
)


class TestInstruments:
    def test_counter_accumulates_and_rejects_decrease(self):
        counter = MetricsRegistry().counter("cells")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1)

    def test_gauge_holds_the_latest_value(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(4)
        gauge.set(2)
        assert gauge.value == 2

    def test_histogram_buckets_are_cumulative(self):
        histogram = MetricsRegistry().histogram("latency", bounds=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.bucket_counts == [1, 2, 3]  # +Inf is implicit: count=4
        assert histogram.count == 4
        assert histogram.total == pytest.approx(55.55)
        assert histogram.mean == pytest.approx(55.55 / 4)

    def test_histogram_rejects_unsorted_or_empty_bounds(self):
        lock = threading.Lock()
        with pytest.raises(ValueError, match="sorted"):
            Histogram("bad", (1.0, 0.5), lock)
        with pytest.raises(ValueError, match="sorted"):
            Histogram("bad", (), lock)


class TestMetricsRegistry:
    def test_instruments_are_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_a_name_carries_one_instrument_type(self):
        registry = MetricsRegistry()
        registry.counter("fabric.lease_retries")
        with pytest.raises(ValueError, match="already registered as a counter"):
            registry.gauge("fabric.lease_retries")
        with pytest.raises(ValueError, match="already registered as a counter"):
            registry.histogram("fabric.lease_retries")

    def test_snapshot_is_json_safe_and_sorted(self):
        registry = MetricsRegistry()
        registry.counter("z").inc(3)
        registry.counter("a").inc()
        registry.gauge("depth").set(7)
        registry.histogram("wall_s").observe(0.02)
        snapshot = json.loads(json.dumps(registry.snapshot()))
        assert list(snapshot["counters"]) == ["a", "z"]
        assert snapshot["counters"]["z"] == 3
        assert snapshot["gauges"] == {"depth": 7}
        histogram = snapshot["histograms"]["wall_s"]
        assert histogram["bounds"] == list(DEFAULT_LATENCY_BUCKETS)
        assert histogram["count"] == 1 and histogram["sum"] == 0.02
        assert histogram["bucket_counts"][1] == 1  # 0.02 <= 0.05


class TestProfileToMetrics:
    def test_folds_the_batched_timing_split(self):
        from repro.sim.batched import BatchProfile

        profile = BatchProfile()
        profile.kernel_s, profile.decide_s = 0.5, 0.25
        profile.offer_s, profile.apply_s = 0.1, 0.525  # bookkeeping_s == 0.125
        profile.macro_steps, profile.advances = 9, 17
        registry = MetricsRegistry()
        profile_to_metrics(profile, registry)
        counters = registry.snapshot()["counters"]
        assert counters["stripe.kernel_s"] == 0.5
        assert counters["stripe.decide_s"] == 0.25
        assert counters["stripe.bookkeeping_s"] == pytest.approx(0.125)
        assert counters["stripe.macro_steps"] == 9
        assert counters["stripe.advances"] == 17


class TestMetricsSink:
    def _fold(self, sink: MetricsSink, *folded: events.Event) -> dict:
        for event in folded:
            sink.consume(event)
        return sink.registry.snapshot()

    def test_sweep_throughput_uses_the_injected_clock(self):
        now = [100.0]
        sink = MetricsSink(clock=lambda: now[0])
        sink.consume(events.SweepStarted("duty", 10, "batched", 4, 1, 3))
        now[0] = 102.0
        sink.consume(events.CellFinished(0, 50, 0, 4))
        sink.consume(events.CellFinished(1, 50, 1, 4))
        snapshot = sink.registry.snapshot()
        assert snapshot["gauges"]["sweep.total_cells"] == 4
        assert snapshot["gauges"]["sweep.cached_cells"] == 1
        assert snapshot["gauges"]["sweep.missing_cells"] == 3
        assert snapshot["counters"]["sweep.cells_finished"] == 2
        assert snapshot["counters"]["sweep.records"] == 8
        assert snapshot["gauges"]["sweep.cells_per_s"] == pytest.approx(1.0)

    def test_storeless_sweep_records_no_cached_gauge(self):
        snapshot = self._fold(
            MetricsSink(), events.SweepStarted("duty", 10, "reference", 2, -1, 2)
        )
        assert "sweep.cached_cells" not in snapshot["gauges"]

    def test_cache_hit_rate(self):
        digest = "00" * 32
        snapshot = self._fold(
            MetricsSink(),
            events.StoreHit(digest, 4),
            events.StoreHit(digest, 4),
            events.StoreMiss(digest),
            events.StorePut(digest, 4),
        )
        assert snapshot["counters"]["store.hits"] == 2
        assert snapshot["counters"]["store.misses"] == 1
        assert snapshot["counters"]["store.puts"] == 1
        assert snapshot["gauges"]["store.hit_rate"] == pytest.approx(2 / 3)

    def test_lease_retry_pressure(self):
        snapshot = self._fold(
            MetricsSink(),
            events.LeaseClaimed(0, "w1", "lease-1"),
            events.LeaseExpired(0, "w1", 1),
            events.LeaseFailed(0, "w2", "bad digest", 2),
            events.CellQuarantined(0, "bad digest — attempt 5/5", 5),
        )
        assert snapshot["counters"]["fabric.lease_claims"] == 1
        assert snapshot["counters"]["fabric.lease_retries"] == 2
        assert snapshot["counters"]["fabric.lease_expiries"] == 1
        assert snapshot["counters"]["fabric.lease_failures"] == 1
        assert snapshot["counters"]["fabric.quarantined"] == 1

    def test_worker_liveness_gauges(self):
        now = [50.0]
        sink = MetricsSink(clock=lambda: now[0])
        sink.consume(events.WorkerHeartbeat("w1", "lease-1", True))
        now[0] = 60.0
        sink.consume(events.WorkerHeartbeat("w2", "lease-2", True))
        gauges = sink.registry.snapshot()["gauges"]
        assert gauges["worker.w1.last_seen_ts"] == 50.0
        assert gauges["worker.w2.last_seen_ts"] == 60.0

    def test_stripe_split_and_engine_counters(self):
        snapshot = self._fold(
            MetricsSink(),
            events.StripeFinished(50, 2, 0.5, 0.25, 0.125, 9, 17),
            events.SlotAdvanced(3, 2, 5),
            events.SlotAdvanced(4, 3, 1),
            events.LaneWoke(0, 3),
        )
        counters = snapshot["counters"]
        assert counters["stripe.kernel_s"] == 0.5
        assert counters["stripe.lanes"] == 2
        assert counters["engine.slot_advances"] == 2
        assert counters["engine.transmissions"] == 5
        assert counters["engine.lane_wakeups"] == 1

    def test_every_kind_lands_in_an_events_counter(self):
        sink = MetricsSink()
        sink.consume(events.StoreMiss("00" * 32))
        sink.consume(events.LaneWoke(0, 1))
        counters = sink.registry.snapshot()["counters"]
        assert counters["events.store_miss"] == 1
        assert counters["events.lane_woke"] == 1

    def test_folds_a_real_sweep_from_the_bus(self):
        from dataclasses import replace

        from repro.experiments.config import QUICK_SWEEP
        from repro.experiments.runner import run_sweep

        config = replace(QUICK_SWEEP, node_counts=(50,), repetitions=1)
        sink = MetricsSink()
        with EVENT_BUS.attached(sink):
            result = run_sweep(config, system="sync")
        snapshot = sink.registry.snapshot()
        assert snapshot["counters"]["sweep.cells_finished"] == 1
        assert snapshot["counters"]["sweep.records"] == len(result.records)
        assert snapshot["counters"]["events.sweep_started"] == 1
        assert snapshot["counters"]["events.sweep_finished"] == 1
        assert snapshot["gauges"]["sweep.cells_per_s"] > 0
