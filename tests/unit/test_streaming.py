"""Streaming execution: trace parity and the no-materialization guarantee."""

from __future__ import annotations

import gc
import weakref

import pytest

from repro.baselines.flooding import LargestFirstPolicy
from repro.core.policies import EModelPolicy
from repro.dutycycle.models import build_wakeup_schedule
from repro.network.deployment import DeploymentConfig, deploy_uniform
from repro.sim import StreamSummary, run_broadcast, stream_broadcast
from repro.sim.links import IndependentLossLinks
from repro.sim.streaming import STREAMING_BACKENDS


def _deployment(seed: int = 3):
    config = DeploymentConfig(
        num_nodes=30,
        area_side=26.0,
        radius=9.0,
        source_min_ecc=2,
        source_max_ecc=None,
    )
    return deploy_uniform(config=config, seed=seed)


def _assert_summary_matches(summary: StreamSummary, result) -> None:
    assert summary.policy_name == result.policy_name
    assert summary.source == result.source
    assert summary.start_time == result.start_time
    assert summary.end_time == result.end_time
    assert summary.latency == result.latency
    assert summary.covered_count == len(result.covered)
    assert summary.num_advances == result.num_advances
    assert summary.total_transmissions == result.total_transmissions
    assert summary.failed_deliveries == result.failed_deliveries
    assert summary.idle_time == result.idle_time
    assert summary.synchronous == result.synchronous
    assert summary.cycle_rate == result.cycle_rate


@pytest.mark.parametrize("engine", sorted(STREAMING_BACKENDS))
def test_streamed_advances_equal_materialized_trace(engine) -> None:
    topology, source = _deployment()
    schedule = build_wakeup_schedule(topology.node_ids, rate=5, seed=11)
    result = run_broadcast(
        topology,
        source,
        EModelPolicy(),
        schedule=schedule,
        align_start=True,
        engine="vectorized",
    )
    streamed = []
    summary = stream_broadcast(
        topology,
        source,
        EModelPolicy(),
        schedule=schedule,
        align_start=True,
        engine=engine,
        sink=streamed.append,
    )
    assert tuple(streamed) == result.advances
    _assert_summary_matches(summary, result)


def test_streamed_lossy_run_matches_materialized() -> None:
    topology, source = _deployment(seed=5)
    link = IndependentLossLinks(0.25, seed=5)
    result = run_broadcast(
        topology, source, EModelPolicy(), engine="vectorized", link_model=link
    )
    assert result.failed_deliveries > 0  # the loss axis is actually exercised
    summary = stream_broadcast(topology, source, EModelPolicy(), link_model=link)
    _assert_summary_matches(summary, result)


def test_streaming_does_not_materialize_advances() -> None:
    """Memory regression: a counting sink keeps no advance alive.

    Weak references stand in for a memory profiler: if the engine (or the
    streaming driver) retained the advance list, the referents would
    survive the run.  Every yielded advance must be collectable once the
    sink returns and the run completes.
    """
    topology, source = _deployment(seed=7)
    schedule = build_wakeup_schedule(topology.node_ids, rate=4, seed=7)
    refs: list[weakref.ref] = []

    def counting_sink(advance) -> None:
        refs.append(weakref.ref(advance))

    summary = stream_broadcast(
        topology,
        source,
        EModelPolicy(),
        schedule=schedule,
        align_start=True,
        sink=counting_sink,
    )
    assert summary.num_advances == len(refs) > 0
    gc.collect()
    alive = [ref for ref in refs if ref() is not None]
    assert not alive, f"{len(alive)}/{len(refs)} streamed advances still alive"


def test_streaming_with_default_sink_discards_advances() -> None:
    topology, source = _deployment(seed=9)
    result = run_broadcast(topology, source, LargestFirstPolicy(), engine="vectorized")
    summary = stream_broadcast(topology, source, LargestFirstPolicy())
    _assert_summary_matches(summary, result)


def test_streaming_rejects_reference_engine() -> None:
    topology, source = _deployment(seed=2)
    with pytest.raises(ValueError, match="cannot stream"):
        stream_broadcast(topology, source, EModelPolicy(), engine="reference")


def test_streaming_rejects_planned_policies_on_lossy_links() -> None:
    from repro.baselines.approx26 import Approx26Policy

    topology, source = _deployment(seed=4)
    with pytest.raises(ValueError, match="cannot run over lossy links"):
        stream_broadcast(
            topology,
            source,
            Approx26Policy(),
            link_model=IndependentLossLinks(0.2, seed=1),
        )


def test_streaming_rejects_unknown_source() -> None:
    topology, _ = _deployment(seed=6)
    with pytest.raises(ValueError, match="unknown source node"):
        stream_broadcast(topology, max(topology.node_ids) + 99, EModelPolicy())


class TestStreamSinkError:
    """A raising sink aborts the run loudly, with the failing slot attached."""

    def test_sink_exception_carries_the_failing_advance(self):
        from repro.sim.streaming import StreamSinkError

        topology, source = _deployment(seed=3)
        seen = []

        def fragile_sink(advance) -> None:
            if len(seen) == 2:
                raise OSError("disk full")
            seen.append(advance)

        with pytest.raises(StreamSinkError) as info:
            stream_broadcast(topology, source, EModelPolicy(), sink=fragile_sink)
        error = info.value
        assert error.num_advances == 3  # failed consuming the third advance
        assert error.advance.time >= seen[-1].time
        assert len(error.advance.color) >= 1
        assert isinstance(error.__cause__, OSError)
        message = str(error)
        assert "advance 3" in message
        assert f"time {error.advance.time}" in message
        assert "transmitter(s)" in message and "receiver(s)" in message
        assert "OSError: disk full" in message

    def test_failure_on_the_first_advance(self):
        from repro.sim.streaming import StreamSinkError

        topology, source = _deployment(seed=5)

        def broken_sink(advance) -> None:
            raise ValueError("bad consumer")

        with pytest.raises(StreamSinkError, match="advance 1 at time"):
            stream_broadcast(topology, source, EModelPolicy(), sink=broken_sink)

    def test_healthy_sinks_are_unaffected(self):
        topology, source = _deployment(seed=7)
        advances = []
        summary = stream_broadcast(
            topology, source, EModelPolicy(), sink=advances.append
        )
        assert summary.num_advances == len(advances)


class TestStreamingTelemetry:
    def test_slot_advanced_events_mirror_the_advances(self):
        from repro.obs.bus import EVENT_BUS
        from repro.obs.events import SlotAdvanced
        from repro.obs.sinks import RingBufferSink

        topology, source = _deployment(seed=4)
        streamed = []
        ring = RingBufferSink()
        with EVENT_BUS.attached(ring):
            summary = stream_broadcast(
                topology, source, EModelPolicy(), sink=streamed.append
            )
        slots = [e for e in ring.events() if isinstance(e, SlotAdvanced)]
        assert len(slots) == summary.num_advances
        assert [s.time for s in slots] == [a.time for a in streamed]
        assert [s.transmitters for s in slots] == [len(a.color) for a in streamed]
        assert [s.receivers for s in slots] == [len(a.receivers) for a in streamed]
