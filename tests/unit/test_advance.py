"""Unit tests for repro.core.advance (BroadcastState and Advance)."""

from __future__ import annotations

import pytest

from repro.core.advance import Advance, BroadcastState
from repro.dutycycle.schedule import WakeupSchedule


class TestBroadcastState:
    def test_basic_properties(self, figure2):
        topo, source = figure2
        state = BroadcastState(topo, frozenset({source}), time=1)
        assert state.uncovered == topo.node_set - {source}
        assert not state.is_complete
        assert state.is_synchronous

    def test_complete_state(self, figure2):
        topo, _ = figure2
        state = BroadcastState(topo, topo.node_set, time=5)
        assert state.is_complete
        assert state.uncovered == frozenset()

    def test_unknown_covered_node_rejected(self, figure2):
        topo, _ = figure2
        with pytest.raises(ValueError):
            BroadcastState(topo, frozenset({99}), time=1)

    def test_time_must_be_positive(self, figure2):
        topo, source = figure2
        with pytest.raises(ValueError):
            BroadcastState(topo, frozenset({source}), time=0)

    def test_awake_synchronous_returns_everything(self, figure2):
        topo, source = figure2
        state = BroadcastState(topo, frozenset({source}), time=1)
        assert state.awake(frozenset({1, 2, 3})) == frozenset({1, 2, 3})

    def test_awake_duty_filters_by_schedule(self, figure2):
        topo, source = figure2
        schedule = WakeupSchedule.from_explicit({u: [u + 1] for u in topo.node_ids}, rate=10)
        state = BroadcastState(topo, topo.node_set, time=2, schedule=schedule)
        assert not state.is_synchronous
        assert state.awake(topo.node_set) == frozenset({1})

    def test_advanced_produces_successor(self, figure2):
        topo, source = figure2
        state = BroadcastState(topo, frozenset({source}), time=1)
        advance = Advance.from_color(topo, state.covered, frozenset({source}), time=1)
        nxt = state.advanced(advance, new_time=2)
        assert nxt.covered == frozenset({1, 2, 3})
        assert nxt.time == 2
        # No advance: coverage unchanged.
        idle = nxt.advanced(None, new_time=3)
        assert idle.covered == nxt.covered


class TestAdvance:
    def test_from_color_computes_receivers(self, figure2):
        topo, source = figure2
        advance = Advance.from_color(topo, frozenset({source}), frozenset({source}), time=1)
        assert advance.receivers == frozenset({2, 3})

    def test_utilization(self, figure1):
        topo, source = figure1
        covered = frozenset({source, 0, 1, 2, 3, 4, 10})
        advance = Advance.from_color(topo, covered, frozenset({0, 4}), time=3)
        assert advance.receivers == frozenset({5, 6, 7, 8, 9})
        assert advance.utilization == pytest.approx(2.5)

    def test_empty_color_rejected(self):
        with pytest.raises(ValueError):
            Advance(time=1, color=frozenset(), receivers=frozenset())

    def test_time_must_be_positive(self):
        with pytest.raises(ValueError):
            Advance(time=0, color=frozenset({1}), receivers=frozenset())

    def test_note_not_part_of_equality(self):
        a = Advance(time=1, color=frozenset({1}), receivers=frozenset({2}), note="x")
        b = Advance(time=1, color=frozenset({1}), receivers=frozenset({2}), note="y")
        assert a == b
