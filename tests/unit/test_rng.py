"""Unit tests for repro.utils.rng."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import derive_seed, make_rng, shuffled, spawn_seeds


class TestMakeRng:
    def test_deterministic_for_same_seed(self):
        a = make_rng(42).integers(0, 1_000_000, size=10)
        b = make_rng(42).integers(0, 1_000_000, size=10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = make_rng(1).integers(0, 1_000_000, size=10)
        b = make_rng(2).integers(0, 1_000_000, size=10)
        assert not np.array_equal(a, b)

    def test_none_seed_returns_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "wakeup", 3) == derive_seed(7, "wakeup", 3)

    def test_component_sensitivity(self):
        assert derive_seed(7, "wakeup", 3) != derive_seed(7, "wakeup", 4)
        assert derive_seed(7, "wakeup", 3) != derive_seed(7, "deploy", 3)

    def test_base_seed_sensitivity(self):
        assert derive_seed(7, "x") != derive_seed(8, "x")

    def test_adjacent_seeds_not_correlated_trivially(self):
        # Hash-based derivation should not map consecutive bases to
        # consecutive outputs.
        assert abs(derive_seed(1) - derive_seed(2)) > 1

    def test_non_negative_63bit(self):
        for base in (0, 1, 2**31, 2**62):
            value = derive_seed(base, "component")
            assert 0 <= value < 2**63


class TestSpawnSeeds:
    def test_count(self):
        assert len(spawn_seeds(3, 5, "path")) == 5

    def test_unique(self):
        seeds = spawn_seeds(3, 50, "path")
        assert len(set(seeds)) == 50

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(3, -1)


class TestShuffled:
    def test_is_permutation(self):
        items = list(range(20))
        result = shuffled(items, make_rng(0))
        assert sorted(result) == items

    def test_does_not_mutate_input(self):
        items = list(range(10))
        original = list(items)
        shuffled(items, make_rng(0))
        assert items == original
