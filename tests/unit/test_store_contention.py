"""Concurrent-writer safety of the experiment store.

The fabric coordinator commits results from its HTTP server's executor
threads while status reads and the serve loop touch the same store, so the
store must tolerate concurrent ``put``/``get``/``stats`` on one shared
connection — and ``gc`` must *report*, not delete, another writer's
in-flight atomic-write temp files.
"""

from __future__ import annotations

import threading
import time
from dataclasses import replace

import pytest

from repro.experiments.config import QUICK_SWEEP
from repro.experiments.runner import _run_cell, default_policies, sweep_cells
from repro.store import ExperimentStore, cell_key_for
from repro.store.store import _SHARDS_DIR, _TEMP_FILE_MAX_AGE_S

_CONFIG = replace(QUICK_SWEEP, node_counts=(50,), repetitions=4)


@pytest.fixture(scope="module")
def cells_with_records():
    cells = sweep_cells(_CONFIG, system="sync")
    return [(cell, _run_cell(cell)) for cell in cells]


def _key_for(cell):
    return cell_key_for(
        cell.config,
        system=cell.system,
        rate=cell.rate,
        num_nodes=cell.num_nodes,
        repetition=cell.repetition,
        policies=tuple(default_policies(cell.config, cell.system)),
    )


class TestConcurrentCommitters:
    def test_two_committers_interleave_without_corruption(
        self, tmp_path, cells_with_records
    ):
        """Two threads hammer put/get/contains on one store: every cell must
        end up complete and readable, with no torn shard or index row."""
        store = ExperimentStore(tmp_path / "store")
        keyed = [(_key_for(cell), records) for cell, records in cells_with_records]
        errors: list[BaseException] = []
        start = threading.Barrier(2)

        def committer(name: str) -> None:
            try:
                start.wait(timeout=10.0)
                for _ in range(25):
                    for key, records in keyed:
                        store.put(key, records)
                        assert store.contains(key)
                        assert store.get(key) == records
                        store.stats()
            except BaseException as error:  # pragma: no cover - surfaced below
                errors.append(error)

        threads = [
            threading.Thread(target=committer, args=(f"c{i}",)) for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120.0)
        assert errors == []
        stats = store.stats()
        assert stats.cells == len(keyed)
        for key, records in keyed:
            assert store.get(key) == records
        # The interleaved re-puts of identical content left nothing to gc.
        removed = store.gc()
        assert removed.total == 0
        store.close()

    def test_same_digest_from_two_threads_is_idempotent(
        self, tmp_path, cells_with_records
    ):
        """The fabric's duplicate-commit case: both writers race the *same*
        cell; content addressing makes the second commit a no-op rewrite."""
        store = ExperimentStore(tmp_path / "store")
        cell, records = cells_with_records[0]
        key = _key_for(cell)
        start = threading.Barrier(2)

        def committer() -> None:
            start.wait(timeout=10.0)
            for _ in range(50):
                assert store.put(key, records) == key.digest

        threads = [threading.Thread(target=committer) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120.0)
        assert store.stats().cells == 1
        assert store.get(key) == records
        store.close()


class TestGcInFlightReporting:
    def test_gc_reports_but_keeps_young_temp_files(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        shard_dir = store.root / _SHARDS_DIR / "ab"
        shard_dir.mkdir(parents=True)
        fresh = shard_dir / ".inflight-commit.tmp"
        fresh.write_text("a concurrent writer's half-written shard")
        removed = store.gc()
        assert removed.in_flight_temp_files == 1
        assert removed.temp_files == 0
        assert removed.total == 0  # reported items are not removed items
        assert fresh.exists()
        store.close()

    def test_gc_still_reaps_crash_leftovers(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        shard_dir = store.root / _SHARDS_DIR / "cd"
        shard_dir.mkdir(parents=True)
        stale = shard_dir / ".crashed-commit.tmp"
        stale.write_text("orphaned by a dead process")
        old = time.time() - (_TEMP_FILE_MAX_AGE_S + 60.0)
        import os

        os.utime(stale, (old, old))
        removed = store.gc()
        assert removed.temp_files == 1
        assert removed.in_flight_temp_files == 0
        assert removed.total == 1
        assert not stale.exists()
        store.close()
