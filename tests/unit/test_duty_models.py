"""Heterogeneous duty-cycle models and per-node rates in WakeupSchedule."""

from __future__ import annotations

import pytest

from repro.dutycycle.models import (
    assign_rates,
    build_wakeup_schedule,
    duty_model_names,
    get_duty_model,
    list_duty_models,
)
from repro.dutycycle.schedule import WakeupSchedule

NODES = tuple(range(40))


class TestRegistry:
    def test_builtin_models_registered(self):
        assert {"uniform", "two-tier", "zipf"} <= set(duty_model_names())

    def test_specs_have_summaries(self):
        for spec in list_duty_models():
            assert spec.summary

    def test_unknown_model(self):
        with pytest.raises(KeyError, match="unknown duty model"):
            get_duty_model("fibonacci")

    def test_unknown_parameter_rejected(self):
        with pytest.raises(TypeError, match="unknown parameters"):
            assign_rates("two-tier", NODES, 10, seed=0, tiers=3)


class TestAssignments:
    def test_uniform_assigns_base_rate_everywhere(self):
        rates = assign_rates("uniform", NODES, 10, seed=0)
        assert rates == {u: 10 for u in NODES}

    @pytest.mark.parametrize("model", ["uniform", "two-tier", "zipf"])
    def test_deterministic_under_fixed_seed(self, model):
        assert assign_rates(model, NODES, 10, seed=5) == assign_rates(
            model, NODES, 10, seed=5
        )

    @pytest.mark.parametrize("model", ["two-tier", "zipf"])
    def test_rates_positive_and_heterogeneous(self, model):
        rates = assign_rates(model, NODES, 10, seed=1)
        assert all(r >= 1 for r in rates.values())
        assert len(set(rates.values())) > 1

    def test_two_tier_fraction_and_rates(self):
        rates = assign_rates(
            "two-tier", NODES, 10, seed=3, fast_fraction=0.25, fast_factor=0.2
        )
        fast = [u for u, r in rates.items() if r == 2]
        slow = [u for u, r in rates.items() if r == 10]
        assert len(fast) == round(0.25 * len(NODES))
        assert len(fast) + len(slow) == len(NODES)

    def test_zipf_rates_capped(self):
        rates = assign_rates("zipf", NODES, 10, seed=2, max_factor=3.0)
        assert max(rates.values()) <= 30
        assert min(rates.values()) == 10  # factor 1 keeps the base rate


class TestScheduleRates:
    def test_schedule_exposes_per_node_rates(self):
        rates = {u: (5 if u % 2 else 20) for u in NODES}
        schedule = WakeupSchedule(NODES, 10, seed=0, rates=rates)
        assert schedule.rate == 10
        assert schedule.max_rate == 20
        assert schedule.is_heterogeneous
        assert schedule.rate_of(1) == 5
        assert schedule.rate_of(0) == 20
        assert schedule.rates == rates

    def test_one_wakeup_per_cycle_per_node(self):
        rates = {u: (4 if u < 20 else 12) for u in NODES}
        schedule = WakeupSchedule(NODES, 8, seed=1, rates=rates)
        for u in (0, 5, 25, 39):
            r = schedule.rate_of(u)
            slots = schedule.active_slots_until(u, 10 * r)
            assert len(slots) == 10
            for k, slot in enumerate(slots):
                assert k * r + 1 <= slot <= (k + 1) * r

    def test_rates_for_unknown_node_rejected(self):
        with pytest.raises(ValueError, match="unknown nodes"):
            WakeupSchedule(NODES, 10, rates={999: 5})

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError, match="must be >= 1"):
            WakeupSchedule(NODES, 10, rates={0: 0})

    def test_homogeneous_schedule_unchanged_by_rates_api(self):
        plain = WakeupSchedule(NODES, 10, seed=7)
        via_model = build_wakeup_schedule(NODES, 10, seed=7, model="uniform")
        for u in NODES:
            assert plain.active_slots_until(u, 300) == via_model.active_slots_until(u, 300)
        assert plain.max_rate == plain.rate == 10
        assert not plain.is_heterogeneous

    def test_node_stream_independent_of_other_nodes_rates(self):
        # The wake-up stream of a node depends on (seed, node, its rate)
        # only, never on the rest of the assignment.
        a = WakeupSchedule(NODES, 10, seed=3, rates={0: 10, 1: 40})
        b = WakeupSchedule(NODES, 10, seed=3)
        assert a.active_slots_until(0, 400) == b.active_slots_until(0, 400)

    def test_build_wakeup_schedule_model_seed_split(self):
        a = build_wakeup_schedule(NODES, 10, seed=1, model="two-tier", model_seed=2)
        b = build_wakeup_schedule(NODES, 10, seed=1, model="two-tier", model_seed=3)
        assert a.rates != b.rates  # different assignment ...
        shared = [u for u in NODES if a.rate_of(u) == b.rate_of(u)]
        for u in shared[:5]:  # ... but identical streams where rates agree
            assert a.active_slots_until(u, 200) == b.active_slots_until(u, 200)
