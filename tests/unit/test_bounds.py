"""Unit tests for repro.core.bounds (Theorems 1 and 3, baseline bounds)."""

from __future__ import annotations

import pytest

from repro.core.bounds import (
    duty_cycle_17_bound,
    duty_cycle_opt_bound,
    emodel_update_cost,
    sync_26_bound,
    sync_opt_bound,
)


class TestSyncOptBound:
    def test_theorem1_values(self):
        assert sync_opt_bound(3) == 4
        assert sync_opt_bound(0) == 1

    def test_figure1_schedule_respects_bound(self, figure1):
        topo, source = figure1
        d = topo.eccentricity(source)
        # The reproduced optimal schedule needs 3 rounds < d + 2 = 5.
        assert 3 <= sync_opt_bound(d)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            sync_opt_bound(-1)


class TestDutyCycleOptBound:
    def test_formula(self):
        assert duty_cycle_opt_bound(10, 3) == 2 * 10 * 5 - 1
        assert duty_cycle_opt_bound(50, 6) == 2 * 50 * 8 - 1

    def test_monotone_in_both_arguments(self):
        assert duty_cycle_opt_bound(10, 4) > duty_cycle_opt_bound(10, 3)
        assert duty_cycle_opt_bound(20, 3) > duty_cycle_opt_bound(10, 3)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            duty_cycle_opt_bound(0, 3)
        with pytest.raises(ValueError):
            duty_cycle_opt_bound(10, -1)


class TestBaselineBounds:
    def test_sync_26(self):
        assert sync_26_bound(5) == 130
        assert sync_26_bound(0) == 26  # degenerate radius clamped to one hop

    def test_duty_17(self):
        assert duty_cycle_17_bound(5, 20) == 17 * 20 * 5

    def test_baseline_bounds_dominate_theorem1(self):
        for d in range(1, 10):
            assert sync_26_bound(d) > sync_opt_bound(d)
            for rate in (10, 50):
                assert duty_cycle_17_bound(d, 2 * rate) > duty_cycle_opt_bound(rate, d)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            sync_26_bound(-1)
        with pytest.raises(ValueError):
            duty_cycle_17_bound(3, 0)


class TestEmodelUpdateCost:
    def test_four_per_node(self):
        assert emodel_update_cost(300) == 1200
        assert emodel_update_cost(0) == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            emodel_update_cost(-1)
