"""Unit tests for repro.network.interference."""

from __future__ import annotations

import pytest

from repro.network.interference import (
    collision_victims,
    conflict_free,
    conflicting_pairs,
    has_conflict,
    receivers_of,
)
from repro.network.topology import WSNTopology


@pytest.fixture
def diamond() -> WSNTopology:
    """Transmitters 0 and 1 share the uncovered neighbour 2; node 3 hangs off 1."""
    positions = {0: (0.0, 0.0), 1: (2.0, 0.0), 2: (1.0, 1.0), 3: (3.0, 0.0)}
    edges = [(0, 2), (1, 2), (1, 3)]
    return WSNTopology.from_edges(edges, positions)


class TestHasConflict:
    def test_shared_uncovered_neighbor_conflicts(self, diamond):
        assert has_conflict(diamond, 0, 1, covered=frozenset({0, 1}))

    def test_shared_covered_neighbor_is_fine(self, diamond):
        assert not has_conflict(diamond, 0, 1, covered=frozenset({0, 1, 2}))

    def test_no_common_neighbor(self, diamond):
        assert not has_conflict(diamond, 0, 3, covered=frozenset({0, 3}))

    def test_node_never_conflicts_with_itself(self, diamond):
        assert not has_conflict(diamond, 0, 0, covered=frozenset())

    def test_matches_paper_definition_on_figure1(self, figure1):
        topo, source = figure1
        covered = frozenset({source, 0, 1, 2})
        # Nodes 0, 1 and 2 all conflict pairwise at the uncovered node 3.
        assert has_conflict(topo, 0, 1, covered)
        assert has_conflict(topo, 1, 2, covered)
        assert has_conflict(topo, 0, 2, covered)
        # Nodes 0 and 4 share only node 3; once 3 is covered they are free.
        covered2 = covered | frozenset({3, 4, 10})
        assert not has_conflict(topo, 0, 4, covered2)


class TestConflictFree:
    def test_empty_and_singleton_sets_are_free(self, diamond):
        assert conflict_free(diamond, [], frozenset())
        assert conflict_free(diamond, [0], frozenset({0}))

    def test_detects_conflicting_pair(self, diamond):
        assert not conflict_free(diamond, [0, 1], frozenset({0, 1}))

    def test_consistent_with_conflicting_pairs(self, figure1):
        topo, source = figure1
        covered = frozenset({source, 0, 1, 2})
        transmitters = [0, 1, 2]
        pairs = conflicting_pairs(topo, transmitters, covered)
        assert pairs == [(0, 1), (0, 2), (1, 2)]
        assert not conflict_free(topo, transmitters, covered)


class TestReceiversOf:
    def test_union_of_uncovered_neighbors(self, diamond):
        covered = frozenset({0, 1})
        assert receivers_of(diamond, [0, 1], covered) == frozenset({2, 3})

    def test_excludes_covered(self, diamond):
        covered = frozenset({0, 1, 2})
        assert receivers_of(diamond, [0], covered) == frozenset()

    def test_figure1_optimal_second_advance(self, figure1):
        topo, source = figure1
        covered = frozenset({source, 0, 1, 2})
        assert receivers_of(topo, [1], covered) == frozenset({3, 4, 10})


class TestCollisionVictims:
    def test_victims_hear_two_transmissions(self, diamond):
        covered = frozenset({0, 1})
        assert collision_victims(diamond, [0, 1], covered) == frozenset({2})

    def test_no_victims_for_disjoint_neighborhoods(self, diamond):
        covered = frozenset({0, 3})
        assert collision_victims(diamond, [0, 3], covered) == frozenset()

    def test_covered_nodes_never_victims(self, diamond):
        covered = frozenset({0, 1, 2})
        assert collision_victims(diamond, [0, 1], covered) == frozenset()
