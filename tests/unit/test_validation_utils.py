"""Unit tests for repro.utils.validation."""

from __future__ import annotations

import pytest

from repro.utils.validation import (
    check_non_negative,
    check_positive,
    check_probability,
    check_type,
    require,
)


class TestRequire:
    def test_passes_when_true(self):
        require(True, "never raised")

    def test_raises_with_message(self):
        with pytest.raises(ValueError, match="boom"):
            require(False, "boom")


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 1.5) == 1.5

    @pytest.mark.parametrize("value", [0, -1, -0.001])
    def test_rejects_non_positive(self, value):
        with pytest.raises(ValueError, match="x must be > 0"):
            check_positive("x", value)


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative("x", 0) == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative("x", -1)


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, value):
        assert check_probability("p", value) == value

    @pytest.mark.parametrize("value", [-0.1, 1.1])
    def test_rejects_outside(self, value):
        with pytest.raises(ValueError):
            check_probability("p", value)


class TestCheckType:
    def test_accepts_matching_type(self):
        assert check_type("x", 3, int) == 3

    def test_rejects_wrong_type(self):
        with pytest.raises(TypeError):
            check_type("x", "3", int)
