"""Unit tests for broadcasting over unreliable links (repro.sim.unreliable)."""

from __future__ import annotations

import warnings

import pytest

from repro.baselines.flooding import LargestFirstPolicy
from repro.core.policies import EModelPolicy, GreedyOptPolicy
from repro.core.time_counter import SearchConfig
from repro.sim.broadcast import ENGINE_BACKENDS, run_broadcast
from repro.sim.links import IndependentLossLinks
from repro.sim.unreliable import (
    LossyRoundEngine,
    LossySlotEngine,
    reliability_sweep,
    run_lossy_broadcast,
)


class TestLossFreeEquivalence:
    def test_zero_loss_matches_reliable_engine(self, figure1, small_deployment):
        for topo, source in (figure1, small_deployment):
            reliable = run_broadcast(topo, source, EModelPolicy())
            lossy = run_lossy_broadcast(
                topo, source, EModelPolicy(), loss_probability=0.0
            )
            assert lossy.latency == reliable.latency
            assert lossy.covered == reliable.covered
            assert [a.color for a in lossy.advances] == [
                a.color for a in reliable.advances
            ]


class TestLossyBehaviour:
    def test_broadcast_completes_despite_losses(self, small_deployment):
        topo, source = small_deployment
        result = run_lossy_broadcast(
            topo,
            source,
            EModelPolicy(),
            loss_probability=0.3,
            seed=5,
        )
        assert result.covered == topo.node_set

    def test_losses_never_speed_up_coverage(self, small_deployment):
        topo, source = small_deployment
        clean = run_lossy_broadcast(
            topo, source, EModelPolicy(), loss_probability=0.0
        )
        lossy = run_lossy_broadcast(
            topo, source, EModelPolicy(), loss_probability=0.4, seed=3
        )
        assert lossy.latency >= clean.latency

    def test_retransmissions_appear_in_trace(self, small_deployment):
        """With losses a node may transmit again in a later round."""
        topo, source = small_deployment
        result = run_lossy_broadcast(
            topo, source, LargestFirstPolicy(), loss_probability=0.5, seed=11
        )
        counts = result.transmissions_by_node()
        assert any(count > 1 for count in counts.values())

    def test_receivers_subset_of_intended(self, small_deployment):
        topo, source = small_deployment
        result = run_lossy_broadcast(
            topo, source, EModelPolicy(), loss_probability=0.3, seed=7
        )
        covered = {source}
        for advance in result.advances:
            intended = set()
            for u in advance.color:
                intended |= set(topo.neighbors(u))
            intended -= covered
            assert set(advance.receivers) <= intended
            covered |= advance.receivers

    def test_duty_cycle_lossy_broadcast(self, small_deployment, duty_schedule_factory):
        topo, source = small_deployment
        schedule = duty_schedule_factory(topo, rate=6)
        result = run_lossy_broadcast(
            topo,
            source,
            GreedyOptPolicy(search=SearchConfig(mode="beam", beam_width=3)),
            schedule=schedule,
            loss_probability=0.2,
            seed=2,
            align_start=True,
        )
        assert result.covered == topo.node_set
        for advance in result.advances:
            for node in advance.color:
                assert schedule.is_active(node, advance.time)

    def test_invalid_probability_rejected(self, figure2):
        topo, source = figure2
        with pytest.raises(ValueError):
            run_lossy_broadcast(topo, source, EModelPolicy(), loss_probability=1.5)
        with pytest.raises(ValueError):
            LossyRoundEngine(topo, loss_probability=-0.1)

    def test_deterministic_given_seed(self, small_deployment):
        topo, source = small_deployment
        first = run_lossy_broadcast(
            topo, source, EModelPolicy(), loss_probability=0.3, seed=9
        )
        second = run_lossy_broadcast(
            topo, source, EModelPolicy(), loss_probability=0.3, seed=9
        )
        assert first.latency == second.latency
        assert [a.receivers for a in first.advances] == [
            a.receivers for a in second.advances
        ]


class TestDeprecatedShims:
    """The PR-3 compatibility shims: loud deprecation, registry resolution."""

    def test_round_shim_emits_deprecation_warning(self, small_deployment):
        topo, _ = small_deployment
        with pytest.warns(DeprecationWarning, match="LossyRoundEngine"):
            LossyRoundEngine(topo, loss_probability=0.2, seed=4)

    def test_slot_shim_emits_deprecation_warning(
        self, small_deployment, duty_schedule_factory
    ):
        topo, _ = small_deployment
        schedule = duty_schedule_factory(topo, rate=6)
        with pytest.warns(DeprecationWarning, match="LossySlotEngine"):
            LossySlotEngine(topo, schedule, loss_probability=0.2, seed=4)

    def test_shims_resolve_through_engine_backends(
        self, small_deployment, duty_schedule_factory
    ):
        """The shims are the registry's reference engines, not private forks."""
        topo, _ = small_deployment
        reference_round, reference_slot = ENGINE_BACKENDS["reference"]
        assert issubclass(LossyRoundEngine, reference_round)
        assert issubclass(LossySlotEngine, reference_slot)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            round_shim = LossyRoundEngine(topo, loss_probability=0.25, seed=4)
            slot_shim = LossySlotEngine(
                topo, duty_schedule_factory(topo, rate=6), loss_probability=0.25, seed=4
            )
        for shim in (round_shim, slot_shim):
            assert isinstance(shim.link_model, IndependentLossLinks)
            assert shim.loss_probability == 0.25

    def test_round_shim_matches_canonical_entry_point(self, small_deployment):
        """A shim run is bit-identical to run_broadcast with the link model."""
        topo, source = small_deployment
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            shim = LossyRoundEngine(topo, loss_probability=0.3, seed=7)
        via_shim = shim.run(EModelPolicy(), source)
        canonical = run_broadcast(
            topo,
            source,
            EModelPolicy(),
            link_model=IndependentLossLinks(0.3, seed=7),
            validate=False,
        )
        assert via_shim == canonical


class TestReliabilitySweep:
    def test_sweep_structure_and_monotone_baseline(self, small_deployment):
        topo, source = small_deployment
        points = reliability_sweep(
            topo,
            source,
            EModelPolicy,
            loss_probabilities=(0.0, 0.2, 0.4),
            repetitions=2,
            base_seed=1,
        )
        assert [p.loss_probability for p in points] == [0.0, 0.2, 0.4]
        assert points[0].mean_extra_rounds == 0.0
        assert all(p.completed == p.attempts == 2 for p in points)
        # Latency under losses is never better than the loss-free latency.
        assert all(p.mean_latency >= points[0].mean_latency for p in points)
