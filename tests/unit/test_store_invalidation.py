"""Cache-invalidation contract: what must (and must not) change a digest.

The store is only safe if every record-affecting configuration axis moves
the :class:`~repro.store.CellKey` digest (a stale cell must never be
returned for a changed workload) while the execution-only knobs leave it
alone (a cached cell must be reusable across engines, worker counts and
grid extensions).  A digest is also only useful if it is stable across
*processes* — two sweeps of the same config in different interpreters must
converge on the same addresses.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import pickle

import pytest

from repro.core.time_counter import SearchConfig
from repro.experiments.config import CELL_KEY_EXCLUDED_FIELDS, SweepConfig
from repro.store import STORE_SCHEMA_VERSION, cell_key_for


@pytest.fixture(scope="module")
def config() -> SweepConfig:
    return SweepConfig(
        node_counts=(16, 24),
        area_side=10.0,
        radius=4.0,
        repetitions=2,
        source_min_ecc=1,
        source_max_ecc=None,
        search=SearchConfig(mode="beam", beam_width=2),
        max_color_classes=4,
    )


def _digest(config: SweepConfig, **overrides) -> str:
    values = dict(
        system="duty",
        rate=10,
        num_nodes=16,
        repetition=0,
        policies=("17-approx", "E-model"),
    )
    values.update(overrides)
    return cell_key_for(config, **values).digest


#: One record-affecting change per axis of the workload space.
_INVALIDATING_CHANGES = {
    "loss axis": dict(link_model="independent-loss", loss_probability=0.2),
    "loss probability": dict(link_model="independent-loss", loss_probability=0.3),
    "duty model": dict(duty_model="two-tier"),
    "scenario": dict(scenario="clustered"),
    "n_sources": dict(n_sources=4),
    "source placement": dict(source_placement="spread"),
    "base seed": dict(seed=2013),
    "geometry (radius)": dict(radius=5.0),
    "geometry (area)": dict(area_side=12.0),
    "source eccentricity": dict(source_min_ecc=2),
    "search beam": dict(search=SearchConfig(mode="beam", beam_width=3)),
    "colour cap": dict(max_color_classes=8),
    # The solver tier changes the policy line-up (17-approx fits this
    # config's 24-node grid; the exact tiers would reject it at 16).
    "solver tier": dict(solver="17-approx"),
}


@pytest.mark.parametrize("axis", sorted(_INVALIDATING_CHANGES))
def test_config_axis_change_forces_rerun(config, axis):
    changed = dataclasses.replace(config, **_INVALIDATING_CHANGES[axis])
    assert _digest(changed) != _digest(config), f"{axis} did not invalidate"


def test_schema_version_bump_forces_rerun(config):
    base = _digest(config)
    bumped = cell_key_for(
        config,
        system="duty",
        rate=10,
        num_nodes=16,
        repetition=0,
        policies=("17-approx", "E-model"),
        schema_version=STORE_SCHEMA_VERSION + 1,
    ).digest
    assert bumped != base


def test_execution_knobs_do_not_invalidate(config):
    """Engine, workers, batch size and the grid shape are excluded by contract."""
    base = _digest(config)
    assert _digest(dataclasses.replace(config, engine="vectorized")) == base
    assert _digest(dataclasses.replace(config, engine="batched")) == base
    assert _digest(dataclasses.replace(config, workers=8)) == base
    assert _digest(dataclasses.replace(config, batch=16)) == base
    assert _digest(dataclasses.replace(config, node_counts=(16, 24, 32))) == base
    assert _digest(dataclasses.replace(config, repetitions=7)) == base
    excluded = {"engine", "workers", "batch", "node_counts", "repetitions"}
    assert CELL_KEY_EXCLUDED_FIELDS == frozenset(excluded)


def _digest_in_child(payload: bytes) -> str:
    config, kwargs = pickle.loads(payload)
    return cell_key_for(config, **kwargs).digest


def test_identical_configs_share_digests_across_processes(config):
    """Two processes with the same config converge on the same address."""
    kwargs = dict(
        system="duty",
        rate=10,
        num_nodes=16,
        repetition=0,
        policies=("17-approx", "E-model"),
    )
    payload = pickle.dumps((config, kwargs))
    # "spawn" gives a fresh interpreter, the strongest cross-process check
    # (no inherited hash seeds or module state).
    context = multiprocessing.get_context("spawn")
    with context.Pool(processes=1) as pool:
        child_digest = pool.apply(_digest_in_child, (payload,))
    assert child_digest == cell_key_for(config, **kwargs).digest
