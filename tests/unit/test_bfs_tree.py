"""Unit tests for repro.baselines.bfs_tree."""

from __future__ import annotations

import pytest

from repro.baselines.bfs_tree import build_broadcast_tree, greedy_parent_cover
from repro.network.topology import WSNTopology


class TestGreedyParentCover:
    def test_single_candidate_covers_all(self, figure2):
        topo, _ = figure2
        parents = greedy_parent_cover(topo, {2, 3}, {4, 5})
        assert parents == [2]

    def test_multiple_parents_when_needed(self, figure1):
        topo, source = figure1
        parents = greedy_parent_cover(topo, {0, 1, 2}, {3, 4, 5, 6, 7, 10})
        covered = set()
        for parent in parents:
            covered |= topo.neighbors(parent)
        assert {3, 4, 5, 6, 7, 10} <= covered
        assert set(parents) <= {0, 1, 2}

    def test_greedy_prefers_largest_gain(self, figure1):
        topo, _ = figure1
        parents = greedy_parent_cover(topo, {0, 1, 2}, {3, 4, 5, 6, 7, 10})
        assert parents[0] == 0  # covers four targets, the most

    def test_impossible_cover_raises(self, figure2):
        topo, _ = figure2
        with pytest.raises(ValueError):
            greedy_parent_cover(topo, {5}, {3})


class TestBuildBroadcastTree:
    def test_layers_match_bfs(self, figure1):
        topo, source = figure1
        tree = build_broadcast_tree(topo, source)
        assert tree.layers == tuple(topo.bfs_layers(source))
        assert tree.depth == topo.eccentricity(source)

    def test_every_non_source_node_has_a_parent_one_layer_up(self, figure1):
        topo, source = figure1
        tree = build_broadcast_tree(topo, source)
        distances = topo.hop_distances(source)
        assert set(tree.parent_of) == topo.node_set - {source}
        for child, parent in tree.parent_of.items():
            assert topo.has_edge(child, parent)
            assert distances[parent] == distances[child] - 1

    def test_parents_cover_their_layer(self, medium_deployment):
        topo, source = medium_deployment
        tree = build_broadcast_tree(topo, source)
        for level, parents in enumerate(tree.parents_per_layer):
            if level + 1 >= len(tree.layers):
                assert parents == ()
                continue
            reached = set()
            for parent in parents:
                reached |= topo.neighbors(parent)
            assert set(tree.layers[level + 1]) <= reached

    def test_children_of(self, figure2):
        topo, source = figure2
        tree = build_broadcast_tree(topo, source)
        assert tree.children_of(source) == frozenset({2, 3})
        all_children = set()
        for parent in set(tree.parent_of.values()):
            all_children |= tree.children_of(parent)
        assert all_children == topo.node_set - {source}

    def test_disconnected_topology_rejected(self):
        topo = WSNTopology.from_positions([(0, 0), (1, 0), (30, 30)], radius=2.0)
        with pytest.raises(ValueError, match="disconnected"):
            build_broadcast_tree(topo, 0)
