"""Unit tests for repro.dutycycle.clock."""

from __future__ import annotations

import pytest

from repro.dutycycle.clock import SlotClock


class TestSlotClock:
    def test_initial_state(self):
        clock = SlotClock(rate=10)
        assert clock.slot == 1
        assert clock.cycle == 0
        assert clock.slot_in_cycle == 1

    def test_cycle_arithmetic(self):
        clock = SlotClock(rate=10, start=10)
        assert clock.cycle == 0
        assert clock.slot_in_cycle == 10
        clock.tick()
        assert clock.slot == 11
        assert clock.cycle == 1
        assert clock.slot_in_cycle == 1

    def test_tick_multiple(self):
        clock = SlotClock(rate=5)
        assert clock.tick(7) == 8
        assert clock.cycle == 1
        assert clock.slot_in_cycle == 3

    def test_advance_to(self):
        clock = SlotClock(rate=5)
        clock.advance_to(23)
        assert clock.slot == 23

    def test_cannot_move_backwards(self):
        clock = SlotClock(rate=5, start=10)
        with pytest.raises(ValueError):
            clock.advance_to(9)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            SlotClock(rate=0)
        with pytest.raises(ValueError):
            SlotClock(rate=3, start=0)

    def test_invalid_tick(self):
        clock = SlotClock()
        with pytest.raises(ValueError):
            clock.tick(0)
