"""Unit tests for repro.dutycycle.schedule."""

from __future__ import annotations

import pytest

from repro.dutycycle.schedule import WakeupSchedule


class TestConstruction:
    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            WakeupSchedule([0, 1], rate=0)

    def test_explicit_unknown_node_rejected(self):
        with pytest.raises(ValueError):
            WakeupSchedule([0, 1], rate=5, explicit={7: [1]})

    def test_explicit_empty_slots_rejected(self):
        with pytest.raises(ValueError):
            WakeupSchedule([0], rate=5, explicit={0: []})

    def test_node_membership(self):
        schedule = WakeupSchedule([3, 1, 2], rate=4)
        assert schedule.node_ids == (1, 2, 3)
        assert 2 in schedule and 9 not in schedule


class TestPseudoRandomSchedules:
    def test_exactly_one_wakeup_per_cycle(self):
        schedule = WakeupSchedule([0], rate=10, seed=1)
        slots = schedule.active_slots_until(0, 100)
        assert len(slots) == 10
        for cycle in range(10):
            in_cycle = [s for s in slots if cycle * 10 < s <= (cycle + 1) * 10]
            assert len(in_cycle) == 1

    def test_reproducible_per_seed(self):
        a = WakeupSchedule([0, 1], rate=10, seed=3)
        b = WakeupSchedule([0, 1], rate=10, seed=3)
        assert a.active_slots_until(0, 50) == b.active_slots_until(0, 50)
        assert a.active_slots_until(1, 50) == b.active_slots_until(1, 50)

    def test_nodes_have_independent_streams(self):
        schedule = WakeupSchedule(list(range(20)), rate=10, seed=3)
        patterns = {tuple(schedule.active_slots_until(u, 100)) for u in range(20)}
        assert len(patterns) > 1

    def test_is_active_consistent_with_slot_list(self):
        schedule = WakeupSchedule([0], rate=7, seed=5)
        slots = set(schedule.active_slots_until(0, 70))
        for slot in range(1, 71):
            assert schedule.is_active(0, slot) == (slot in slots)

    def test_next_active_slot_is_active_and_minimal(self):
        schedule = WakeupSchedule([0], rate=9, seed=2)
        for slot in (1, 5, 13, 40):
            nxt = schedule.next_active_slot(0, slot)
            assert nxt >= slot
            assert schedule.is_active(0, nxt)
            assert not any(schedule.is_active(0, s) for s in range(slot, nxt))

    def test_slot_queries_are_one_based(self):
        schedule = WakeupSchedule([0], rate=5, seed=0)
        with pytest.raises(ValueError):
            schedule.is_active(0, 0)
        with pytest.raises(ValueError):
            schedule.next_active_slot(0, 0)


class TestExplicitSchedules:
    def test_explicit_slots_respected(self):
        schedule = WakeupSchedule.from_explicit({0: [2, 12], 1: [4, 14]}, rate=10)
        assert schedule.is_active(0, 2)
        assert schedule.is_active(1, 14)
        assert not schedule.is_active(1, 2)

    def test_pattern_repeats_beyond_horizon(self):
        schedule = WakeupSchedule.from_explicit({0: [3]}, rate=10)
        # Horizon is one cycle (10 slots); the pattern repeats afterwards.
        assert schedule.is_active(0, 13)
        assert schedule.next_active_slot(0, 4) == 13

    def test_mixed_explicit_and_random(self):
        schedule = WakeupSchedule([0, 1], rate=5, seed=1, explicit={0: [2]})
        assert schedule.is_active(0, 2)
        assert len(schedule.active_slots_until(1, 25)) == 5


class TestHelpers:
    def test_awake_nodes_filters(self):
        schedule = WakeupSchedule.from_explicit({0: [1], 1: [2], 2: [1]}, rate=3)
        assert schedule.awake_nodes([0, 1, 2], 1) == frozenset({0, 2})
        assert schedule.awake_nodes([0, 1, 2], 2) == frozenset({1})

    def test_next_awake_slot_over_candidates(self):
        schedule = WakeupSchedule.from_explicit({0: [5], 1: [3]}, rate=10)
        assert schedule.next_awake_slot([0, 1], 1) == 3
        assert schedule.next_awake_slot([0], 1) == 5
        assert schedule.next_awake_slot([], 1) is None

    def test_iter_active_yields_increasing_slots(self):
        schedule = WakeupSchedule([0], rate=6, seed=4)
        iterator = schedule.iter_active(0)
        slots = [next(iterator) for _ in range(5)]
        assert slots == sorted(slots)
        assert all(schedule.is_active(0, s) for s in slots)

    def test_synchronous_degenerate_schedule(self):
        schedule = WakeupSchedule.synchronous([0, 1, 2])
        assert schedule.rate == 1
        for slot in range(1, 10):
            assert schedule.awake_nodes([0, 1, 2], slot) == frozenset({0, 1, 2})

    def test_active_slots_until_zero_horizon(self):
        schedule = WakeupSchedule([0], rate=3, seed=0)
        assert schedule.active_slots_until(0, 0) == []
