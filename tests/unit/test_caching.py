"""Unit tests for repro.utils.caching."""

from __future__ import annotations

import pytest

from repro.utils.caching import BoundedCache


class TestBoundedCache:
    def test_put_get_roundtrip(self):
        cache: BoundedCache[str, int] = BoundedCache()
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert "a" in cache

    def test_miss_returns_default(self):
        cache: BoundedCache[str, int] = BoundedCache()
        assert cache.get("missing") is None
        assert cache.get("missing", -1) == -1

    def test_eviction_is_lru(self):
        cache: BoundedCache[int, int] = BoundedCache(max_entries=2)
        cache.put(1, 1)
        cache.put(2, 2)
        cache.get(1)  # touch 1 so 2 becomes the LRU entry
        cache.put(3, 3)
        assert 1 in cache
        assert 2 not in cache
        assert 3 in cache
        assert cache.stats.evictions == 1

    def test_unbounded_never_evicts(self):
        cache: BoundedCache[int, int] = BoundedCache(max_entries=None)
        for i in range(1000):
            cache.put(i, i)
        assert len(cache) == 1000
        assert cache.stats.evictions == 0

    def test_stats_hit_rate(self):
        cache: BoundedCache[str, int] = BoundedCache()
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)
        assert cache.stats.lookups == 2

    def test_hit_rate_zero_when_unused(self):
        cache: BoundedCache[str, int] = BoundedCache()
        assert cache.stats.hit_rate == 0.0

    def test_clear_preserves_stats(self):
        cache: BoundedCache[str, int] = BoundedCache()
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1

    def test_invalid_max_entries(self):
        with pytest.raises(ValueError):
            BoundedCache(max_entries=0)
