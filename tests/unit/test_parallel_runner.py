"""The parallel sweep runner: determinism, chunking, engine switch."""

from __future__ import annotations

import pickle

import pytest

from repro.baselines.approx17 import Approx17Policy
from repro.baselines.approx26 import Approx26Policy
from repro.core.policies import EModelPolicy
from repro.core.time_counter import SearchConfig
from repro.experiments.config import SweepConfig
from repro.experiments.runner import SweepCell, _run_cell, default_policies, run_sweep


@pytest.fixture(scope="module")
def tiny_config() -> SweepConfig:
    return SweepConfig(
        node_counts=(16, 24),
        area_side=10.0,
        radius=4.0,
        repetitions=2,
        source_min_ecc=1,
        source_max_ecc=None,
        search=SearchConfig(mode="beam", beam_width=2),
        max_color_classes=4,
    )


@pytest.fixture(scope="module")
def cheap_policies():
    return {"17-approx": Approx17Policy, "E-model": EModelPolicy}


def test_parallel_records_match_serial(tiny_config, cheap_policies):
    serial = run_sweep(
        tiny_config, system="duty", rate=5, policies=cheap_policies, workers=1
    )
    parallel = run_sweep(
        tiny_config, system="duty", rate=5, policies=cheap_policies, workers=2
    )
    assert serial.records == parallel.records
    assert len(serial.records) == 2 * 2 * len(cheap_policies)


def test_vectorized_engine_matches_reference(tiny_config, cheap_policies):
    reference = run_sweep(
        tiny_config, system="duty", rate=5, policies=cheap_policies, workers=1
    )
    vectorized = run_sweep(
        tiny_config,
        system="duty",
        rate=5,
        policies=cheap_policies,
        workers=2,
        engine="vectorized",
    )
    assert reference.records == vectorized.records


def test_sync_parallel_matches_serial(tiny_config):
    policies = {"26-approx": Approx26Policy, "E-model": EModelPolicy}
    serial = run_sweep(tiny_config, system="sync", policies=policies, workers=1)
    parallel = run_sweep(tiny_config, system="sync", policies=policies, workers=3)
    assert serial.records == parallel.records
    assert all(record.rate == 1 for record in serial.records)


def test_config_drives_workers_and_engine(tiny_config, cheap_policies):
    import dataclasses

    configured = dataclasses.replace(tiny_config, workers=2, engine="vectorized")
    implicit = run_sweep(configured, system="duty", rate=5, policies=cheap_policies)
    explicit = run_sweep(
        tiny_config, system="duty", rate=5, policies=cheap_policies,
        workers=1, engine="reference",
    )
    assert implicit.records == explicit.records


def test_default_policies_are_picklable(tiny_config):
    for system in ("sync", "duty"):
        policies = default_policies(tiny_config, system)
        assert len(policies) == 4
        revived = pickle.loads(pickle.dumps(tuple(policies.items())))
        for (name, factory), (name2, factory2) in zip(policies.items(), revived):
            assert name == name2
            assert type(factory2()) is type(factory())


def test_cells_are_picklable_and_self_contained(tiny_config, cheap_policies):
    cell = SweepCell(
        config=tiny_config,
        system="duty",
        rate=5,
        num_nodes=16,
        repetition=0,
        engine="reference",
        policies=tuple(cheap_policies.items()),
    )
    records = _run_cell(pickle.loads(pickle.dumps(cell)))
    assert {r.policy for r in records} == set(cheap_policies)
    assert all(r.num_nodes == 16 and r.repetition == 0 for r in records)


def test_invalid_arguments_rejected(tiny_config):
    with pytest.raises(ValueError, match="unknown system"):
        run_sweep(tiny_config, system="hybrid")
    with pytest.raises(ValueError, match="unknown engine"):
        SweepConfig(node_counts=(16,), engine="warp")
    with pytest.raises(ValueError, match="workers"):
        SweepConfig(node_counts=(16,), workers=-1)
