"""Unit tests for the multi-source broadcast kernel and its trace/validators."""

from __future__ import annotations

import pytest

from repro.baselines.approx17 import Approx17Policy
from repro.baselines.approx26 import Approx26Policy
from repro.core.advance import Advance
from repro.core.policies import EModelPolicy, GreedyOptPolicy
from repro.dutycycle.schedule import WakeupSchedule
from repro.network.topology import WSNTopology
from repro.sim.broadcast import run_broadcast
from repro.sim.engine import RoundEngine
from repro.sim.metrics import MultiBroadcastMetrics
from repro.sim.trace import BroadcastResult, MultiBroadcastResult
from repro.sim.validation import (
    ScheduleViolation,
    assert_valid_multi,
    validate_multi_broadcast,
)


@pytest.fixture
def path5() -> WSNTopology:
    positions = {i: (float(i), 0.0) for i in range(5)}
    edges = [(i, i + 1) for i in range(4)]
    return WSNTopology.from_edges(edges, positions)


class TestRunMulti:
    def test_opposite_wavefronts_complete_on_a_path(self, path5):
        result = run_broadcast(path5, [0, 4], EModelPolicy())
        assert isinstance(result, MultiBroadcastResult)
        assert result.sources == (0, 4)
        assert result.is_complete(path5)
        # Per-message traces are complete single-source traces of their own.
        for message in result.messages:
            assert message.covered == path5.node_set

    def test_contention_defers_but_never_overlaps(self, path5):
        """Wavefronts meeting in the middle must take turns at node 2."""
        result = run_broadcast(path5, [0, 4], EModelPolicy())
        by_time: dict[int, set[int]] = {}
        for message in result.messages:
            for advance in message.advances:
                engaged = set(advance.color) | set(advance.intended)
                previous = by_time.setdefault(advance.time, set())
                assert not (previous & engaged), (
                    f"t={advance.time}: node engaged by two messages"
                )
                previous |= engaged
        # Contention makes the makespan exceed the best per-message latency.
        assert result.latency >= max(
            message.latency for message in result.messages
        )

    def test_makespan_at_least_single_source(self, small_deployment):
        topology, source = small_deployment
        single = run_broadcast(topology, source, EModelPolicy())
        other = max(u for u in topology.node_ids if u != source)
        multi = run_broadcast(topology, [source, other], EModelPolicy())
        assert multi.latency >= single.latency

    def test_policy_sequence_one_per_message(self, path5):
        result = run_broadcast(
            path5, [0, 4], [EModelPolicy(), GreedyOptPolicy()]
        )
        assert result.messages[0].policy_name == "E-model"
        assert result.messages[1].policy_name == "G-OPT"

    def test_policy_count_mismatch_rejected(self, path5):
        with pytest.raises(ValueError, match="one policy per source"):
            run_broadcast(path5, [0, 4], [EModelPolicy()])

    def test_non_policy_rejected(self, path5):
        with pytest.raises(TypeError, match="not a SchedulingPolicy"):
            run_broadcast(path5, [0, 4], [EModelPolicy(), object()])

    def test_duplicate_sources_rejected(self, path5):
        with pytest.raises(ValueError, match="duplicate sources"):
            run_broadcast(path5, [0, 0], EModelPolicy())

    def test_unknown_source_rejected(self, path5):
        with pytest.raises(ValueError, match="unknown source"):
            run_broadcast(path5, [0, 99], EModelPolicy())

    def test_empty_sources_rejected(self, path5):
        with pytest.raises(ValueError, match=">= 1 source"):
            run_broadcast(path5, [], EModelPolicy())

    def test_string_source_rejected_loudly(self, path5):
        # A stray "12" must not explode char-by-char into sources (1, 2).
        with pytest.raises(TypeError, match="node id"):
            run_broadcast(path5, "12", EModelPolicy())

    def test_planned_baselines_rejected_for_multi_source(self, path5):
        with pytest.raises(ValueError, match="multi-source"):
            run_broadcast(path5, [0, 4], Approx26Policy())

    def test_planned_duty_baseline_rejected_for_multi_source(self, figure2_duty):
        topology, source, schedule = figure2_duty
        other = max(u for u in topology.node_ids if u != source)
        with pytest.raises(ValueError, match="multi-source"):
            run_broadcast(
                topology, [source, other], Approx17Policy(), schedule=schedule
            )

    def test_engine_run_multi_directly(self, path5):
        policies = [EModelPolicy(), EModelPolicy()]
        for policy, source in zip(policies, (0, 4)):
            policy.prepare(path5, None, source)
        result = RoundEngine(path5).run_multi(policies, (0, 4))
        assert result.is_complete(path5)

    def test_duty_multi_aligns_to_earliest_source_slot(self, path5):
        schedule = WakeupSchedule(path5.node_ids, rate=4, seed=3)
        result = run_broadcast(
            path5, [0, 4], EModelPolicy(), schedule=schedule, align_start=True
        )
        expected = min(
            schedule.next_active_slot(0, 1), schedule.next_active_slot(4, 1)
        )
        assert result.start_time == expected
        assert result.is_complete(path5)


class TestMultiBroadcastResult:
    def _result(self, path5) -> MultiBroadcastResult:
        return run_broadcast(path5, [0, 4], EModelPolicy())

    def test_per_message_latency_and_makespan(self, path5):
        result = self._result(path5)
        assert result.per_message_latency == tuple(
            message.latency for message in result.messages
        )
        assert result.makespan == result.latency == max(
            message.end_time for message in result.messages
        ) - result.start_time + 1

    def test_merged_advances_are_chronological(self, path5):
        result = self._result(path5)
        times = [advance.time for advance in result.advances]
        assert times == sorted(times)
        assert len(result.advances) == result.num_advances

    def test_totals_sum_over_messages(self, path5):
        result = self._result(path5)
        assert result.total_transmissions == sum(
            message.total_transmissions for message in result.messages
        )
        assert result.retransmissions == sum(
            message.retransmissions for message in result.messages
        )
        assert result.failed_deliveries == 0

    def test_message_for(self, path5):
        result = self._result(path5)
        assert result.message_for(4).source == 4
        with pytest.raises(KeyError):
            result.message_for(2)

    def test_summary_mentions_messages_and_makespan(self, path5):
        result = self._result(path5)
        text = result.summary()
        assert "2 messages" in text
        assert "makespan" in text

    def test_metrics_aggregation(self, path5):
        result = self._result(path5)
        metrics = MultiBroadcastMetrics.from_result(path5, result)
        assert metrics.num_messages == 2
        assert metrics.makespan == result.latency
        assert metrics.max_message_latency == max(result.per_message_latency)
        assert metrics.min_message_latency == min(result.per_message_latency)
        assert metrics.mean_message_latency == pytest.approx(
            sum(result.per_message_latency) / 2
        )
        assert len(metrics.per_message) == 2


class TestMultiValidation:
    def test_engine_traces_validate(self, path5):
        result = run_broadcast(path5, [0, 4], EModelPolicy(), validate=False)
        assert validate_multi_broadcast(path5, result) == []
        assert_valid_multi(path5, result)

    def test_overlapping_receivers_rejected(self, path5):
        # Both messages intend node 1 at t=1: individually valid, jointly not.
        a = BroadcastResult(
            policy_name="manual", source=0, start_time=1, end_time=1,
            covered=frozenset({0, 1}),
            advances=(Advance(time=1, color=frozenset({0}), receivers=frozenset({1})),),
        )
        b = BroadcastResult(
            policy_name="manual", source=2, start_time=1, end_time=1,
            covered=frozenset({1, 2, 3}),
            advances=(
                Advance(time=1, color=frozenset({2}), receivers=frozenset({1, 3})),
            ),
        )
        result = MultiBroadcastResult(sources=(0, 2), start_time=1, messages=(a, b))
        violations = validate_multi_broadcast(path5, result, require_complete=False)
        assert any("serve messages" in violation for violation in violations)

    def test_cross_message_collision_rejected(self):
        # Graph: 0-1, 1-2, 1-3, 2-3, 3-4.  Message B covers 1 at t=1 from 2,
        # then transmits from 3 (a neighbour of 1) at t=2 — exactly when
        # message A tries to deliver to 1.  No node serves two messages, but
        # A's receiver is jammed by B's transmitter.
        positions = {i: (float(i), float(i % 2)) for i in range(5)}
        edges = [(0, 1), (1, 2), (1, 3), (2, 3), (3, 4)]
        topology = WSNTopology.from_edges(edges, positions)
        a = BroadcastResult(
            policy_name="manual", source=0, start_time=1, end_time=2,
            covered=frozenset({0, 1}),
            advances=(Advance(time=2, color=frozenset({0}), receivers=frozenset({1})),),
        )
        b = BroadcastResult(
            policy_name="manual", source=2, start_time=1, end_time=2,
            covered=frozenset({1, 2, 3, 4}),
            advances=(
                Advance(time=1, color=frozenset({2}), receivers=frozenset({1, 3})),
                Advance(time=2, color=frozenset({3}), receivers=frozenset({4})),
            ),
        )
        result = MultiBroadcastResult(sources=(0, 2), start_time=1, messages=(a, b))
        violations = validate_multi_broadcast(topology, result, require_complete=False)
        assert any("cross-message collision" in violation for violation in violations)

    def test_source_mismatch_rejected(self, path5):
        message = BroadcastResult(
            policy_name="manual", source=1, start_time=1, end_time=0,
            covered=frozenset({1}),
        )
        result = MultiBroadcastResult(sources=(0,), start_time=1, messages=(message,))
        violations = validate_multi_broadcast(path5, result, require_complete=False)
        assert any("does not match" in violation for violation in violations)

    def test_assert_valid_multi_raises_with_details(self, path5):
        message = BroadcastResult(
            policy_name="manual", source=1, start_time=1, end_time=0,
            covered=frozenset({1}),
        )
        result = MultiBroadcastResult(sources=(0,), start_time=1, messages=(message,))
        with pytest.raises(ScheduleViolation, match="multi-source"):
            assert_valid_multi(path5, result, require_complete=False)
