"""Unit tests for the source-placement registry (repro.network.sources)."""

from __future__ import annotations

import pytest

from repro.network.deployment import grid_deployment
from repro.network.sources import (
    SOURCE_PLACEMENTS,
    placement_names,
    select_sources,
)
from repro.network.topology import WSNTopology


@pytest.fixture
def line6() -> WSNTopology:
    positions = {i: (float(i), 0.0) for i in range(6)}
    edges = [(i, i + 1) for i in range(5)]
    return WSNTopology.from_edges(edges, positions)


@pytest.fixture
def grid() -> WSNTopology:
    return grid_deployment(5, 5, spacing=1.0, radius=1.1, jitter=0.0, seed=7)


class TestRegistry:
    def test_registry_names(self):
        assert placement_names() == sorted(SOURCE_PLACEMENTS)
        assert {"random", "spread", "corner"} == set(placement_names())

    def test_unknown_placement_rejected(self, line6):
        with pytest.raises(ValueError, match="unknown source placement"):
            select_sources(line6, 2, placement="nope")


class TestSelectSources:
    @pytest.mark.parametrize("placement", sorted(SOURCE_PLACEMENTS))
    def test_distinct_and_deterministic(self, grid, placement):
        first = select_sources(grid, 5, placement=placement, seed=11)
        again = select_sources(grid, 5, placement=placement, seed=11)
        assert first == again
        assert len(set(first)) == 5
        assert all(u in grid for u in first)

    def test_random_seed_changes_selection(self, grid):
        a = select_sources(grid, 4, placement="random", seed=1)
        b = select_sources(grid, 4, placement="random", seed=2)
        assert a != b  # astronomically unlikely to collide on 25 nodes

    def test_anchor_always_first(self, grid):
        for placement in sorted(SOURCE_PLACEMENTS):
            sources = select_sources(grid, 3, placement=placement, seed=0, anchor=12)
            assert sources[0] == 12

    def test_spread_maximises_distance_on_a_line(self, line6):
        # Farthest-point traversal from node 0 must pick the far end next.
        sources = select_sources(line6, 2, placement="spread", anchor=0)
        assert sources == (0, 5)
        # k = 3 adds the midpoint region next (hop distance >= 2 from both).
        three = select_sources(line6, 3, placement="spread", anchor=0)
        assert three[2] in (2, 3)

    def test_corner_snaps_to_grid_corners(self, grid):
        sources = select_sources(grid, 4, placement="corner")
        positions = [grid.position(u) for u in sources]
        xs = {round(x) for x, _ in positions}
        ys = {round(y) for _, y in positions}
        # Four corners of a 5x5 grid: extreme coordinates only.
        assert xs <= {0, 4} and ys <= {0, 4}

    def test_single_source_with_anchor_is_identity(self, grid):
        assert select_sources(grid, 1, placement="random", anchor=7) == (7,)

    def test_k_larger_than_network_rejected(self, line6):
        with pytest.raises(ValueError, match="cannot place"):
            select_sources(line6, 7)

    def test_zero_sources_rejected(self, line6):
        with pytest.raises(ValueError, match="at least one source"):
            select_sources(line6, 0)

    def test_unknown_anchor_rejected(self, line6):
        with pytest.raises(ValueError, match="unknown anchor"):
            select_sources(line6, 2, anchor=42)
