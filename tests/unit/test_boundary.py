"""Unit tests for repro.network.boundary."""

from __future__ import annotations

import pytest

from repro.network.boundary import boundary_nodes, hull_nodes, is_exposed
from repro.network.deployment import grid_deployment
from repro.network.topology import WSNTopology


@pytest.fixture
def dense_grid() -> WSNTopology:
    """A 5x5 8-connected grid: interior nodes have neighbours all around."""
    return grid_deployment(5, 5, spacing=1.0, radius=1.5, jitter=0.0, seed=0)


class TestHullNodes:
    def test_grid_corners_on_hull(self, dense_grid):
        hull = hull_nodes(dense_grid)
        # Corners of the 5x5 grid: ids 0, 4, 20, 24 (row-major layout).
        assert {0, 4, 20, 24} <= hull

    def test_interior_not_on_hull(self, dense_grid):
        hull = hull_nodes(dense_grid)
        assert 12 not in hull  # the centre node

    def test_empty_topology(self):
        topo = WSNTopology([], {})
        assert hull_nodes(topo) == frozenset()


class TestIsExposed:
    def test_corner_exposed(self, dense_grid):
        assert is_exposed(dense_grid, 0)

    def test_centre_not_exposed(self, dense_grid):
        assert not is_exposed(dense_grid, 12)

    def test_isolated_node_exposed(self):
        topo = WSNTopology.from_positions([(0, 0), (10, 10)], radius=1.0)
        assert is_exposed(topo, 0)


class TestBoundaryNodes:
    def test_contains_hull(self, dense_grid):
        assert hull_nodes(dense_grid) <= boundary_nodes(dense_grid)

    def test_grid_perimeter_detected(self, dense_grid):
        boundary = boundary_nodes(dense_grid)
        perimeter = {
            u
            for u in dense_grid.node_ids
            if dense_grid.position(u)[0] in (0.0, 4.0)
            or dense_grid.position(u)[1] in (0.0, 4.0)
        }
        assert perimeter <= boundary

    def test_centre_of_dense_grid_is_interior(self, dense_grid):
        assert 12 not in boundary_nodes(dense_grid)

    def test_line_graph_every_node_on_boundary(self, line_topology):
        assert boundary_nodes(line_topology) == line_topology.node_set

    def test_random_deployment_has_interior_and_boundary(self, medium_deployment):
        topo, _ = medium_deployment
        boundary = boundary_nodes(topo)
        assert boundary
        assert boundary != topo.node_set
