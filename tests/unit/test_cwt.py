"""Unit tests for repro.dutycycle.cwt."""

from __future__ import annotations

import pytest

from repro.dutycycle.cwt import cycle_waiting_time, expected_cwt, max_cwt
from repro.dutycycle.schedule import WakeupSchedule


class TestCycleWaitingTime:
    def test_matches_explicit_schedule(self):
        schedule = WakeupSchedule.from_explicit({0: [2], 1: [7]}, rate=10)
        # u=0 sends at slot 2; v=1 forwards at its next wake-up, slot 7.
        assert cycle_waiting_time(schedule, 0, 1, slot=2) == 5

    def test_minimum_is_one_slot(self):
        schedule = WakeupSchedule.from_explicit({0: [2], 1: [3]}, rate=10)
        assert cycle_waiting_time(schedule, 0, 1, slot=2) == 1

    def test_same_schedule_waits_a_full_cycle(self):
        # Both ends wake at the same slot of each cycle: the successor's next
        # opportunity is one cycle after the sender's slot.
        schedule = WakeupSchedule.from_explicit({0: [5, 15], 1: [5, 15]}, rate=10)
        assert cycle_waiting_time(schedule, 0, 1, slot=5) == 10

    def test_bounded_by_two_cycles(self):
        schedule = WakeupSchedule(list(range(10)), rate=10, seed=3)
        for u in range(5):
            slot = schedule.next_active_slot(u, 1)
            wait = cycle_waiting_time(schedule, u, u + 5, slot)
            assert 1 <= wait <= max_cwt(10)

    def test_rejects_non_positive_slot(self):
        schedule = WakeupSchedule([0, 1], rate=5, seed=0)
        with pytest.raises(ValueError):
            cycle_waiting_time(schedule, 0, 1, slot=0)


class TestExpectedCwt:
    def test_formula(self):
        assert expected_cwt(10) == pytest.approx(5.5)
        assert expected_cwt(50) == pytest.approx(25.5)
        assert expected_cwt(1) == pytest.approx(1.0)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            expected_cwt(0)


class TestMaxCwt:
    def test_two_cycles(self):
        assert max_cwt(10) == 20
        assert max_cwt(50) == 100

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            max_cwt(0)
