"""Unit tests for repro.core.coloring (Algorithm 1 and Eq. 1/2/3)."""

from __future__ import annotations

import pytest

from repro.core.coloring import (
    ColorScheme,
    cached_greedy_color_classes,
    conflict_graph,
    enumerate_color_classes,
    frontier_candidates,
    greedy_color_classes,
)
from repro.network.interference import conflict_free, has_conflict


class TestFrontierCandidates:
    def test_only_source_at_start(self, figure1):
        topo, source = figure1
        assert frontier_candidates(topo, frozenset({source})) == [source]

    def test_sorted_by_uncovered_receivers(self, figure1):
        topo, source = figure1
        covered = frozenset({source, 0, 1, 2})
        assert frontier_candidates(topo, covered) == [0, 1, 2]

    def test_nodes_without_uncovered_neighbors_excluded(self, figure2):
        topo, _ = figure2
        covered = frozenset({1, 2, 3, 4, 5})
        assert frontier_candidates(topo, covered) == []

    def test_awake_filter(self, figure1):
        topo, source = figure1
        covered = frozenset({source, 0, 1, 2})
        assert frontier_candidates(topo, covered, awake=[1, 2]) == [1, 2]
        assert frontier_candidates(topo, covered, awake=[]) == []

    def test_uncovered_nodes_never_candidates(self, figure1):
        topo, source = figure1
        covered = frozenset({source, 0})
        candidates = frontier_candidates(topo, covered)
        assert set(candidates) <= covered


class TestConflictGraph:
    def test_figure1_clique_at_node3(self, figure1):
        topo, source = figure1
        covered = frozenset({source, 0, 1, 2})
        graph = conflict_graph(topo, [0, 1, 2], covered)
        assert graph[0] == {1, 2}
        assert graph[1] == {0, 2}
        assert graph[2] == {0, 1}

    def test_symmetric(self, figure1, small_deployment):
        for topo, source in (figure1, small_deployment):
            covered = frozenset({source}) | topo.neighbors(source)
            candidates = frontier_candidates(topo, covered)
            graph = conflict_graph(topo, candidates, covered)
            for u, conflicts in graph.items():
                for v in conflicts:
                    assert u in graph[v]

    def test_matches_pairwise_predicate(self, small_deployment):
        topo, source = small_deployment
        covered = frozenset({source}) | topo.neighbors(source)
        candidates = frontier_candidates(topo, covered)
        graph = conflict_graph(topo, candidates, covered)
        for u in candidates:
            for v in candidates:
                if u == v:
                    continue
                assert (v in graph[u]) == has_conflict(topo, u, v, covered)


class TestGreedyColorClasses:
    def test_figure1_round_two_classes(self, figure1):
        topo, source = figure1
        covered = frozenset({source, 0, 1, 2})
        assert greedy_color_classes(topo, covered) == [
            frozenset({0}),
            frozenset({1}),
            frozenset({2}),
        ]

    def test_figure1_pipeline_class(self, figure1):
        """After {3, 4, 10} are covered, nodes 0 and 4 share the first colour."""
        topo, source = figure1
        covered = frozenset({source, 0, 1, 2, 3, 4, 10})
        classes = greedy_color_classes(topo, covered)
        assert classes[0] == frozenset({0, 4})

    def test_empty_when_complete(self, figure2):
        topo, _ = figure2
        assert greedy_color_classes(topo, topo.node_set) == []

    def test_classes_partition_candidates(self, medium_deployment):
        topo, source = medium_deployment
        covered = frozenset({source}) | topo.neighbors(source)
        candidates = set(frontier_candidates(topo, covered))
        classes = greedy_color_classes(topo, covered)
        union = set().union(*classes)
        assert union == candidates
        assert sum(len(c) for c in classes) == len(candidates)

    def test_classes_are_interference_free(self, medium_deployment):
        topo, source = medium_deployment
        covered = frozenset({source}) | topo.neighbors(source)
        for color in greedy_color_classes(topo, covered):
            assert conflict_free(topo, color, covered)

    def test_later_class_nodes_conflict_with_previous_class(self, medium_deployment):
        """Eq. (1) constraint 4: a node is deferred only because of a conflict."""
        topo, source = medium_deployment
        covered = frozenset({source}) | topo.neighbors(source)
        classes = greedy_color_classes(topo, covered)
        for index in range(1, len(classes)):
            previous = classes[index - 1]
            for u in classes[index]:
                assert any(has_conflict(topo, u, v, covered) for v in previous)

    def test_duty_cycle_awake_restriction(self, figure1):
        topo, source = figure1
        covered = frozenset({source, 0, 1, 2})
        classes = greedy_color_classes(topo, covered, awake=[1])
        assert classes == [frozenset({1})]

    def test_first_class_has_most_receivers(self, medium_deployment):
        topo, source = medium_deployment
        covered = frozenset({source}) | topo.neighbors(source)
        classes = greedy_color_classes(topo, covered)
        counts = [len(topo.uncovered_neighbors(u, covered)) for u in classes[0]]
        best = max(
            len(topo.uncovered_neighbors(u, covered))
            for u in frontier_candidates(topo, covered)
        )
        assert max(counts) == best


class TestEnumerateColorClasses:
    def test_every_class_is_maximal_and_conflict_free(self, figure1):
        topo, source = figure1
        covered = frozenset({source, 0, 1, 2})
        candidates = set(frontier_candidates(topo, covered))
        classes = enumerate_color_classes(topo, covered)
        assert classes  # at least one admissible colour
        for color in classes:
            assert conflict_free(topo, color, covered)
            for extra in candidates - color:
                assert not conflict_free(topo, color | {extra}, covered)

    def test_figure1_enumeration_is_the_conflict_clique(self, figure1):
        topo, source = figure1
        covered = frozenset({source, 0, 1, 2})
        classes = enumerate_color_classes(topo, covered)
        assert sorted(classes, key=lambda c: tuple(sorted(c))) == [
            frozenset({0}),
            frozenset({1}),
            frozenset({2}),
        ]

    def test_cap_keeps_greedy_classes_available(self, medium_deployment):
        topo, source = medium_deployment
        covered = frozenset({source}) | topo.neighbors(source)
        capped = enumerate_color_classes(topo, covered, max_classes=2)
        greedy_first = greedy_color_classes(topo, covered)[0]
        assert greedy_first in capped

    def test_empty_for_complete_coverage(self, figure2):
        topo, _ = figure2
        assert enumerate_color_classes(topo, topo.node_set) == []


class TestColorScheme:
    def test_greedy_mode_delegates(self, figure1):
        topo, source = figure1
        covered = frozenset({source, 0, 1, 2})
        scheme = ColorScheme(mode="greedy")
        assert scheme.color_classes(topo, covered) == greedy_color_classes(topo, covered)

    def test_exhaustive_mode_delegates(self, figure1):
        topo, source = figure1
        covered = frozenset({source, 0, 1, 2})
        scheme = ColorScheme(mode="exhaustive")
        assert set(scheme.color_classes(topo, covered)) == set(
            enumerate_color_classes(topo, covered)
        )

    def test_unknown_mode_rejected(self, figure1):
        topo, source = figure1
        scheme = ColorScheme(mode="bogus")  # type: ignore[arg-type]
        with pytest.raises(ValueError):
            scheme.color_classes(topo, frozenset({source}))

    def test_num_colors_is_lambda(self, figure1):
        topo, source = figure1
        covered = frozenset({source, 0, 1, 2})
        assert ColorScheme().num_colors(topo, covered) == 3


class TestCachedGreedyColorClasses:
    def test_matches_uncached_result(self, figure1):
        topo, source = figure1
        covered = frozenset({source, 0})
        assert cached_greedy_color_classes(topo, covered) == greedy_color_classes(
            topo, covered
        )

    def test_repeat_call_returns_cached_object(self, figure1):
        topo, source = figure1
        covered = frozenset({source, 1})
        first = cached_greedy_color_classes(topo, covered)
        assert cached_greedy_color_classes(topo, covered) is first
        # A mutable covered set hits the same entry as its frozen twin.
        assert cached_greedy_color_classes(topo, set(covered)) is first

    def test_awake_restriction_is_part_of_the_key(self, figure1):
        topo, source = figure1
        covered = frozenset({source, 0, 1})
        unrestricted = cached_greedy_color_classes(topo, covered)
        restricted = cached_greedy_color_classes(topo, covered, awake={source})
        assert restricted == greedy_color_classes(topo, covered, awake={source})
        assert cached_greedy_color_classes(topo, covered) is unrestricted
