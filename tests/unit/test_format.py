"""Unit tests for repro.utils.format."""

from __future__ import annotations

from repro.utils.format import format_series_table, format_table, to_csv


class TestFormatTable:
    def test_contains_headers_and_cells(self):
        text = format_table(["name", "value"], [["alpha", 1], ["beta", 2.5]])
        assert "name" in text and "value" in text
        assert "alpha" in text and "beta" in text
        assert "2.50" in text  # floats use the default 2-decimal format

    def test_alignment_consistent_widths(self):
        text = format_table(["a"], [["short"], ["much-longer-cell"]])
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1

    def test_custom_float_format(self):
        text = format_table(["x"], [[3.14159]], float_format="{:.4f}")
        assert "3.1416" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text


class TestFormatSeriesTable:
    def test_one_row_per_x(self):
        text = format_series_table(
            "density", [0.02, 0.04], {"OPT": [3.0, 4.0], "E": [4.0, 5.0]}
        )
        lines = text.splitlines()
        # header + separator + 2 data rows
        assert len(lines) == 4
        assert "OPT" in lines[0] and "E" in lines[0]

    def test_short_series_padded_with_nan(self):
        text = format_series_table("x", [1, 2], {"s": [1.0]})
        assert "nan" in text


class TestToCsv:
    def test_round_trip_structure(self):
        csv = to_csv(["a", "b"], [[1, 2], [3, 4]])
        lines = csv.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,2"
        assert lines[2] == "3,4"

    def test_empty(self):
        assert to_csv(["a"], []).strip() == "a"
