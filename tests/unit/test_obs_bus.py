"""The event bus, the event taxonomy and the built-in sinks."""

from __future__ import annotations

import json

import pytest

from repro.obs import events as events_mod
from repro.obs.bus import EVENT_BUS, EventBus, TelemetrySinkError
from repro.obs.events import (
    EVENT_KINDS,
    CellFinished,
    Event,
    LeaseClaimed,
    SlotAdvanced,
    StoreHit,
    StoreMiss,
    SweepStarted,
    WorkerHeartbeat,
    event_from_json,
    event_to_json,
)
from repro.obs.sinks import (
    OBS_SINKS,
    CallbackSink,
    JsonlTraceSink,
    RingBufferSink,
    build_sink,
    read_trace,
    sink_names,
)


def _sample_events() -> list[Event]:
    """One instance of every registered event kind."""
    samples = [
        events_mod.SweepStarted("duty", 10, "batched", 4, 1, 3),
        events_mod.SweepFinished(16, 1, 3),
        events_mod.CellStarted("duty", 10, 50, 0),
        events_mod.CellFinished(0, 50, 0, 4),
        events_mod.StripeStarted(50, 2),
        events_mod.StripeFinished(50, 2, 0.1, 0.2, 0.3, 7, 11),
        events_mod.SlotAdvanced(3, 2, 5),
        events_mod.LaneWoke(1, 3),
        events_mod.StoreHit("ab" * 32, 4),
        events_mod.StoreMiss("cd" * 32),
        events_mod.StorePut("ef" * 32, 4),
        events_mod.LeaseClaimed(2, "w1", "lease-1"),
        events_mod.LeaseExpired(2, "w1", 1),
        events_mod.LeaseFailed(2, "w1", "bad digest", 2),
        events_mod.CellQuarantined(2, "bad digest — attempt 5/5", 5),
        events_mod.WorkerHeartbeat("w1", "lease-1", True),
    ]
    assert {event.kind for event in samples} == set(EVENT_KINDS)
    return samples


@pytest.fixture(autouse=True)
def quiet_bus():
    """Every test starts and ends with nothing attached to the global bus."""
    assert EVENT_BUS.sinks == (), "a previous test leaked a sink"
    yield
    for sink in EVENT_BUS.sinks:
        EVENT_BUS.detach(sink)


class TestEvents:
    def test_every_kind_round_trips_through_json(self):
        for event in _sample_events():
            payload = json.loads(json.dumps(event_to_json(event)))
            assert event_from_json(payload) == event

    def test_from_json_tolerates_sink_timestamp(self):
        payload = event_to_json(StoreMiss("00" * 32))
        payload["ts"] = 123.456
        assert event_from_json(payload) == StoreMiss("00" * 32)

    def test_from_json_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            event_from_json({"event": "frobnicated"})

    def test_events_are_frozen_values(self):
        event = SlotAdvanced(3, 2, 5)
        with pytest.raises(Exception):
            event.time = 4  # type: ignore[misc]
        assert event == SlotAdvanced(3, 2, 5)
        assert hash(event) == hash(SlotAdvanced(3, 2, 5))


class TestEventBus:
    def test_attach_detach_toggle_active(self):
        bus = EventBus()
        assert bus.active is False
        ring = bus.attach(RingBufferSink())
        assert bus.active is True and bus.sinks == (ring,)
        bus.detach(ring)
        assert bus.active is False and bus.sinks == ()

    def test_attach_is_idempotent_per_instance(self):
        bus = EventBus()
        ring = RingBufferSink()
        bus.attach(ring)
        bus.attach(ring)
        assert bus.sinks == (ring,)

    def test_detach_unknown_sink_is_ignored(self):
        bus = EventBus()
        bus.detach(RingBufferSink())
        assert bus.active is False

    def test_emit_fans_out_in_attach_order(self):
        bus = EventBus()
        order: list[str] = []
        bus.attach(CallbackSink(lambda e: order.append("first")))
        bus.attach(CallbackSink(lambda e: order.append("second")))
        bus.emit(StoreMiss("00" * 32))
        assert order == ["first", "second"]

    def test_attached_contextmanager_scopes_sinks(self):
        bus = EventBus()
        ring = RingBufferSink()
        with bus.attached(ring):
            assert bus.active is True
            bus.emit(StoreHit("00" * 32, 1))
        assert bus.active is False
        assert ring.events() == [StoreHit("00" * 32, 1)]

    def test_sink_exception_wraps_in_telemetry_sink_error(self):
        bus = EventBus()

        def boom(event: Event) -> None:
            raise KeyError("broken consumer")

        sink = bus.attach(CallbackSink(boom))
        event = CellFinished(0, 50, 0, 4)
        with pytest.raises(TelemetrySinkError, match="cell_finished") as info:
            bus.emit(event)
        assert info.value.sink is sink
        assert info.value.event is event
        assert isinstance(info.value.__cause__, KeyError)

    def test_reset_after_fork_detaches_everything(self):
        bus = EventBus()
        bus.attach(RingBufferSink())
        bus._reset_after_fork()
        assert bus.active is False and bus.sinks == ()


class TestZeroCostWhenOff:
    """The zero-cost contract: no sink => hot paths never construct events.

    Every event class is swapped for a raiser; instrumented code that
    constructs an event with the bus inactive explodes immediately.
    """

    @pytest.fixture()
    def raising_events(self, monkeypatch):
        class Boom:
            def __init__(self, *args, **kwargs):
                raise AssertionError("event constructed while telemetry is off")

        for name in EVENT_KINDS.values():
            monkeypatch.setattr(events_mod, name.__name__, Boom)
        return Boom

    @staticmethod
    def _cell_key():
        from repro.experiments.config import QUICK_SWEEP
        from repro.store import cell_key_for

        return cell_key_for(
            QUICK_SWEEP,
            system="duty",
            rate=10,
            num_nodes=16,
            repetition=0,
            policies=("17-approx", "E-model"),
        )

    def test_store_paths_construct_nothing_when_off(self, tmp_path, raising_events):
        from repro.store import ExperimentStore

        with ExperimentStore(tmp_path / "store") as store:
            assert store.get(self._cell_key()) is None  # miss path

    def test_streaming_constructs_nothing_when_off(self, raising_events):
        from repro.core.policies import EModelPolicy
        from repro.network.deployment import DeploymentConfig, deploy_uniform
        from repro.sim import stream_broadcast

        topology, source = deploy_uniform(
            config=DeploymentConfig(
                num_nodes=30,
                area_side=26.0,
                radius=9.0,
                source_min_ecc=2,
                source_max_ecc=None,
            ),
            seed=3,
        )
        summary = stream_broadcast(topology, source, EModelPolicy())
        assert summary.num_advances > 0

    def test_lease_queue_constructs_nothing_when_off(self, raising_events):
        from repro.fabric.queue import LeaseQueue

        queue = LeaseQueue([0, 1], clock=lambda: 0.0)
        lease = queue.claim("w1")
        queue.fail(lease.lease_id, "synthetic")

    def test_the_raisers_do_fire_once_a_sink_attaches(self, tmp_path, raising_events):
        # Control experiment: the monkeypatch really covers the call sites.
        from repro.store import ExperimentStore

        with ExperimentStore(tmp_path / "store") as store:
            with EVENT_BUS.attached(RingBufferSink()):
                with pytest.raises(AssertionError, match="telemetry is off"):
                    store.get(self._cell_key())


class TestRingBufferSink:
    def test_keeps_the_last_capacity_events(self):
        ring = RingBufferSink(capacity=2)
        for time in range(3):
            ring.consume(SlotAdvanced(time, 1, 1))
        assert ring.events() == [SlotAdvanced(1, 1, 1), SlotAdvanced(2, 1, 1)]
        assert ring.total == 3

    def test_counts_by_kind_and_clear(self):
        ring = RingBufferSink()
        ring.consume(StoreMiss("00" * 32))
        ring.consume(StoreHit("00" * 32, 1))
        ring.consume(StoreHit("11" * 32, 2))
        assert ring.counts() == {"store_miss": 1, "store_hit": 2}
        ring.clear()
        assert ring.events() == [] and ring.total == 3

    def test_timestamped_pairs_are_ordered(self):
        ring = RingBufferSink()
        ring.consume(StoreMiss("00" * 32))
        ring.consume(StoreMiss("11" * 32))
        stamps = [stamp for stamp, _ in ring.timestamped()]
        assert stamps == sorted(stamps)

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            RingBufferSink(capacity=0)


class TestJsonlTraceSink:
    def test_trace_round_trips(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlTraceSink(path) as sink:
            for event in (SweepStarted("duty", 10, "reference", 2, 0, 2),
                          CellFinished(0, 50, 0, 4)):
                sink.consume(event)
            assert sink.written == 2
        decoded = [event_from_json(payload) for payload in read_trace(path)]
        assert decoded == [
            SweepStarted("duty", 10, "reference", 2, 0, 2),
            CellFinished(0, 50, 0, 4),
        ]
        for payload in read_trace(path):
            assert isinstance(payload["ts"], float)

    def test_read_trace_skips_torn_tail(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlTraceSink(path) as sink:
            sink.consume(StoreMiss("00" * 32))
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"event": "store_hit", "digest"')  # writer mid-line
        assert [p["event"] for p in read_trace(path)] == ["store_miss"]

    def test_read_trace_of_missing_file_is_empty(self, tmp_path):
        assert list(read_trace(tmp_path / "nope.jsonl")) == []

    def test_close_is_idempotent(self, tmp_path):
        sink = JsonlTraceSink(tmp_path / "trace.jsonl")
        sink.close()
        sink.close()


class TestSinkRegistry:
    def test_catalog_names(self):
        assert sink_names() == ["callback", "jsonl", "ring"]
        assert set(OBS_SINKS) == {"ring", "jsonl", "callback"}

    def test_build_sink_instantiates_by_name(self, tmp_path):
        assert isinstance(build_sink("ring", capacity=8), RingBufferSink)
        jsonl = build_sink("jsonl", path=tmp_path / "t.jsonl")
        assert isinstance(jsonl, JsonlTraceSink)
        jsonl.close()
        assert isinstance(build_sink("callback", callback=print), CallbackSink)

    def test_build_sink_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="unknown sink"):
            build_sink("syslog")


class TestBusIntegration:
    def test_lease_lifecycle_emits_typed_events(self):
        from repro.fabric.queue import LeaseQueue

        now = [0.0]
        queue = LeaseQueue(
            [7], max_attempts=2, backoff_s=0.0, clock=lambda: now[0]
        )
        ring = RingBufferSink()
        with EVENT_BUS.attached(ring):
            first = queue.claim("w1")
            queue.fail(first.lease_id, "rejected result")
            second = queue.claim("w2")
            now[0] = 1e9  # expire the second lease => quarantine (budget of 2)
            queue.expire()
        kinds = [event.kind for event in ring.events()]
        assert kinds == [
            "lease_claimed",
            "lease_failed",
            "lease_claimed",
            "lease_expired",
            "cell_quarantined",
        ]
        claimed = ring.events()[0]
        assert claimed == LeaseClaimed(7, "w1", first.lease_id)
        quarantined = ring.events()[-1]
        assert quarantined.attempts == 2 and "attempt 2/2" in quarantined.reason

    def test_worker_heartbeats_are_emitted_worker_side(self, monkeypatch):
        import time
        from dataclasses import replace

        import repro.fabric.worker as worker_mod
        from repro.experiments.config import QUICK_SWEEP
        from repro.experiments.runner import sweep_cells
        from repro.fabric import FabricCoordinator, FabricWorker, LocalTransport

        cells = sweep_cells(
            replace(QUICK_SWEEP, node_counts=(50,), repetitions=1), system="sync"
        )
        coordinator = FabricCoordinator(cells)
        worker = FabricWorker(
            LocalTransport(coordinator), name="hb-test", heartbeat_interval=0.02
        )
        grant = coordinator.handle_request("claim", {"worker": "hb-test"})
        # A slow stand-in cell guarantees the beater thread gets to fire.
        monkeypatch.setattr(worker_mod, "_run_cell", lambda cell: time.sleep(0.2) or [])
        ring = RingBufferSink()
        with EVENT_BUS.attached(ring):
            worker.simulate(cells[grant["index"]], grant)
        beats = [e for e in ring.events() if isinstance(e, WorkerHeartbeat)]
        assert beats, "no heartbeat emitted during a 0.2s cell at 0.02s interval"
        assert beats[0] == WorkerHeartbeat("hb-test", grant["lease"], True)
