"""The live sweep monitor: frame rendering from store, trace and fabric feeds."""

from __future__ import annotations

import io

import pytest

from repro.obs import events
from repro.obs.metrics import MetricsRegistry, MetricsSink
from repro.obs.monitor import STALE_WORKER_S, SweepMonitor, render_metrics
from repro.obs.sinks import JsonlTraceSink


def _folded(*folded: events.Event, clock=lambda: 100.0) -> dict:
    sink = MetricsSink(MetricsRegistry(), clock=clock)
    for event in folded:
        sink.consume(event)
    return sink.registry.snapshot()


class TestRenderMetrics:
    def test_sweep_progress_bar(self):
        snapshot = _folded(
            events.SweepStarted("duty", 10, "batched", 4, 0, 4),
            events.CellFinished(0, 50, 0, 4),
            events.CellFinished(1, 50, 1, 4),
        )
        [line] = [l for l in render_metrics(snapshot) if "sweep" in l]
        assert "2/4 cells" in line
        assert "[###############---------------]" in line  # half of width 30

    def test_cache_line_shows_hit_rate(self):
        snapshot = _folded(
            events.StoreHit("00" * 32, 4),
            events.StoreMiss("11" * 32),
        )
        [line] = [l for l in render_metrics(snapshot) if "cache" in l]
        assert "1 hits / 1 misses (50% hit rate)" in line

    def test_lease_line(self):
        snapshot = _folded(
            events.LeaseClaimed(0, "w1", "lease-1"),
            events.LeaseExpired(0, "w1", 1),
            events.CellQuarantined(0, "gone", 5),
        )
        [line] = [l for l in render_metrics(snapshot) if "leases" in l]
        assert "1 claims, 1 retries, 1 quarantined" in line

    def test_worker_health_from_heartbeat_stamps(self):
        snapshot = _folded(
            events.WorkerHeartbeat("fresh", "lease-1", True),
            clock=lambda: 100.0,
        )
        snapshot["gauges"]["worker.old.last_seen_ts"] = 100.0 - STALE_WORKER_S - 10.0
        lines = render_metrics(snapshot, clock=lambda: 100.0)
        fresh = next(l for l in lines if "fresh" in l)
        old = next(l for l in lines if "old" in l)
        assert "[ok]" in fresh
        assert "STALE 25s" in old

    def test_worker_health_from_ready_made_ages(self):
        # The coordinator's /metrics ships ages, not stamps (monotonic clock
        # cannot cross the wire) — both gauge spellings must render.
        snapshot = {"counters": {}, "gauges": {"worker.w1.last_seen_age_s": 2.0}}
        [line] = render_metrics(snapshot, clock=lambda: 100.0)
        assert "w1" in line and "2.0s ago" in line and "[ok]" in line

    def test_empty_snapshot_renders_nothing(self):
        assert render_metrics({"counters": {}, "gauges": {}}) == []


class TestSweepMonitor:
    def test_requires_at_least_one_feed(self):
        with pytest.raises(ValueError, match="at least one of"):
            SweepMonitor()

    def test_store_panel(self, tmp_path):
        from dataclasses import replace

        from repro.experiments.config import QUICK_SWEEP
        from repro.experiments.runner import run_sweep
        from repro.store import ExperimentStore

        config = replace(QUICK_SWEEP, node_counts=(50,), repetitions=1)
        with ExperimentStore(tmp_path / "store") as store:
            result = run_sweep(config, system="sync", store=store)
            frame = SweepMonitor(store=store, clock=lambda: 100.0).render()
        assert "store ·" in frame
        assert f"1 cells / {len(result.records)} records" in frame

    def test_trace_panel_folds_the_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlTraceSink(path) as sink:
            sink.consume(events.SweepStarted("duty", 10, "reference", 2, 0, 2))
            sink.consume(events.CellFinished(0, 50, 0, 4))
        frame = SweepMonitor(trace=path).render()
        assert f"trace · {path}" in frame
        assert "1/2 cells" in frame

    def test_trace_panel_tolerates_an_empty_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.touch()
        assert "(no events yet)" in SweepMonitor(trace=path).render()

    def test_trace_heartbeat_ages_use_event_stamps(self, tmp_path):
        # Replaying a heartbeat written 60s ago must read as a 60s-old
        # worker, not a fresh one stamped at fold time.
        import json

        path = tmp_path / "trace.jsonl"
        with JsonlTraceSink(path) as sink:
            sink.consume(events.WorkerHeartbeat("w1", "lease-1", True))
        # Rewrite the stamp to 60s before the monitor's frozen clock.
        payload = json.loads(path.read_text())
        payload["ts"] = 940.0
        path.write_text(json.dumps(payload) + "\n")
        frame = SweepMonitor(trace=path, clock=lambda: 1000.0).render()
        assert "STALE 60s" in frame

    def test_fabric_panel_renders_status_and_metrics(self, monkeypatch):
        monitor = SweepMonitor(url="http://127.0.0.1:1", clock=lambda: 100.0)
        status = {
            "total": 8,
            "counts": {"completed": 5, "pending": 1, "leased": 1, "quarantined": 1},
            "queue_depth": 1,
            "oldest_lease_age_s": 4.5,
            "attempts": {"3": 4, "5": 2, "6": 1},
            "workers": {
                "w1": {"completed": 5, "failures": 0, "last_seen_age_s": 1.0},
                "w2": {"completed": 0, "failures": 4},
            },
        }
        metrics = {"counters": {"fabric.heartbeats": 12.0}, "gauges": {}}
        monkeypatch.setattr(
            monitor, "_fabric_snapshot", lambda: (status, metrics, None)
        )
        frame = monitor.render()
        assert "cells     5/8 done" in frame
        assert "queue     depth 1, oldest lease 4.5s" in frame
        assert "retries   cell 3×4, cell 5×2" in frame  # attempts > 1 only
        assert "cell 6" not in frame
        assert "w1" in frame and "[ok]" in frame
        assert "w2" in frame and "[seen]" in frame

    def test_fabric_panel_reports_unreachable_coordinator(self, monkeypatch):
        monitor = SweepMonitor(url="http://127.0.0.1:1")
        monkeypatch.setattr(
            monitor, "_fabric_snapshot", lambda: (None, None, "connection refused")
        )
        assert "unreachable: connection refused" in monitor.render()

    def test_fabric_panel_without_telemetry_omits_metrics(self, monkeypatch):
        monitor = SweepMonitor(url="http://127.0.0.1:1")
        status = {
            "total": 1,
            "counts": {"completed": 1, "pending": 0, "leased": 0, "quarantined": 0},
            "workers": {},
        }
        monkeypatch.setattr(monitor, "_fabric_snapshot", lambda: (status, None, None))
        frame = monitor.render()
        assert "cells     1/1 done" in frame

    def test_fabric_snapshot_against_a_live_server(self):
        from dataclasses import replace

        from repro.experiments.config import QUICK_SWEEP
        from repro.experiments.runner import sweep_cells
        from repro.fabric import FabricCoordinator, FabricHTTPServer

        cells = sweep_cells(
            replace(QUICK_SWEEP, node_counts=(50,), repetitions=1), system="sync"
        )
        coordinator = FabricCoordinator(cells)
        with FabricHTTPServer(coordinator, expose_metrics=True) as server:
            monitor = SweepMonitor(url=server.url)
            status, metrics, error = monitor._fabric_snapshot()
        assert error is None
        assert status["counts"]["pending"] == 1
        assert "counters" in metrics

    def test_watch_writes_frames_to_non_tty(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlTraceSink(path) as sink:
            sink.consume(events.CellFinished(0, 50, 0, 4))
        out = io.StringIO()
        code = SweepMonitor(trace=path).watch(interval=0.0, frames=2, out=out)
        assert code == 0
        frames = out.getvalue().strip().split("\n\n")
        assert len(frames) == 2
        assert all("trace ·" in frame for frame in frames)
        assert "\x1b" not in out.getvalue()  # no ANSI clear off-TTY
