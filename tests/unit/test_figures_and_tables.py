"""Unit tests for repro.experiments.figures and repro.experiments.tables."""

from __future__ import annotations

import pytest

from repro.core.time_counter import SearchConfig
from repro.experiments.config import SweepConfig
from repro.experiments.figures import FigureResult, figure3, figure4, figure5
from repro.experiments.tables import table2, table3, table4


@pytest.fixture(scope="module")
def tiny_config() -> SweepConfig:
    """A deliberately tiny sweep so figure generators stay fast in unit tests."""
    return SweepConfig(
        node_counts=(40, 60),
        repetitions=1,
        area_side=30.0,
        radius=9.0,
        source_min_ecc=3,
        source_max_ecc=None,
        search=SearchConfig(mode="beam", beam_width=2),
        max_color_classes=8,
        seed=5,
    )


@pytest.fixture(scope="module")
def fig3(tiny_config) -> FigureResult:
    return figure3(tiny_config)


@pytest.fixture(scope="module")
def fig4(tiny_config) -> FigureResult:
    return figure4(tiny_config)


class TestFigure3:
    def test_series_present(self, fig3):
        assert set(fig3.series) == {
            "26-approx",
            "OPT",
            "G-OPT",
            "E-model",
            "OPT-analysis",
        }

    def test_x_axis_is_density(self, fig3, tiny_config):
        assert fig3.x_values == tiny_config.densities
        assert "density" in fig3.x_label

    def test_scheduler_ordering(self, fig3):
        """OPT <= G-OPT <= E-model <= 26-approx at every density (means)."""
        for index in range(len(fig3.x_values)):
            opt = fig3.series_for("OPT")[index]
            gopt = fig3.series_for("G-OPT")[index]
            emodel = fig3.series_for("E-model")[index]
            baseline = fig3.series_for("26-approx")[index]
            assert opt <= gopt + 1e-9
            assert gopt <= emodel + 1e-9
            assert emodel <= baseline + 1e-9

    def test_text_and_csv_rendering(self, fig3):
        text = fig3.to_text()
        assert "Figure 3" in text and "G-OPT" in text
        csv = fig3.to_csv()
        assert csv.splitlines()[0].startswith("density")
        assert len(csv.strip().splitlines()) == 1 + len(fig3.x_values)

    def test_unknown_series_error_lists_names(self, fig3):
        with pytest.raises(KeyError, match="available"):
            fig3.series_for("nonexistent")


class TestFigure4And5:
    def test_duty_series_present(self, fig4):
        assert set(fig4.series) == {"17-approx", "OPT", "G-OPT", "E-model"}

    def test_duty_ordering(self, fig4):
        for index in range(len(fig4.x_values)):
            assert fig4.series_for("OPT")[index] <= fig4.series_for("G-OPT")[index] + 1e-9
            assert (
                fig4.series_for("G-OPT")[index]
                <= fig4.series_for("17-approx")[index] + 1e-9
            )

    def test_figure5_bounds_dominate_experiments(self, tiny_config, fig4):
        fig5 = figure5(tiny_config, sweep=fig4.sweep)
        bound = fig5.series_for("OPT-analysis (2r(d+2))")
        baseline_bound = fig5.series_for("17-approx bound (17kd)")
        for index in range(len(fig5.x_values)):
            assert bound[index] >= fig4.series_for("OPT")[index]
            assert baseline_bound[index] >= bound[index]


class TestTables:
    def test_table2_matches_paper(self):
        result = table2()
        assert result.end_time == 2
        assert result.matches_paper
        assert result.rows[0].selected_color == (1,)
        assert result.rows[1].selected_color == (2,)

    def test_table3_matches_paper(self):
        result = table3()
        assert result.end_time == 3
        assert result.matches_paper
        assert result.rows[1].selected_color == (1,)
        assert result.rows[2].selected_color == (0, 4)
        assert set(result.rows[2].receivers) == {5, 6, 7, 8, 9}

    def test_table4_matches_paper(self):
        result = table4()
        assert result.end_time == 4
        assert result.matches_paper
        assert result.rows[-1].time == 4

    def test_table_text_rendering(self):
        text = table3().to_text()
        assert "Table III" in text
        assert "P(A) = 3" in text
