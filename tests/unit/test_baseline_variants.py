"""Unit tests for the baseline parent-selection variants (cover vs tree)."""

from __future__ import annotations

import pytest

from repro.baselines.approx17 import Approx17Policy
from repro.baselines.approx26 import Approx26Policy
from repro.baselines.bfs_tree import build_broadcast_tree
from repro.dutycycle.schedule import WakeupSchedule
from repro.sim.broadcast import run_broadcast
from repro.sim.validation import validate_broadcast


class TestTreeParentMode:
    def test_invalid_mode_rejected(self, figure1):
        topo, source = figure1
        with pytest.raises(ValueError, match="parent_mode"):
            build_broadcast_tree(topo, source, parent_mode="magic")

    def test_tree_mode_assigns_smallest_id_parent(self, figure1):
        topo, source = figure1
        tree = build_broadcast_tree(topo, source, parent_mode="tree")
        distances = topo.hop_distances(source)
        for child, parent in tree.parent_of.items():
            candidates = {
                u for u in topo.neighbors(child) if distances[u] == distances[child] - 1
            }
            assert parent == min(candidates)

    def test_tree_mode_never_fewer_parents_than_cover(self, medium_deployment):
        topo, source = medium_deployment
        cover = build_broadcast_tree(topo, source, parent_mode="cover")
        tree = build_broadcast_tree(topo, source, parent_mode="tree")
        for level in range(len(cover.layers)):
            assert len(tree.parents_per_layer[level]) >= len(
                cover.parents_per_layer[level]
            )

    def test_both_modes_cover_every_layer(self, medium_deployment):
        topo, source = medium_deployment
        for mode in ("cover", "tree"):
            tree = build_broadcast_tree(topo, source, parent_mode=mode)
            for level, parents in enumerate(tree.parents_per_layer):
                if level + 1 >= len(tree.layers):
                    continue
                reached = set()
                for parent in parents:
                    reached |= topo.neighbors(parent)
                assert set(tree.layers[level + 1]) <= reached


class TestBaselineStrength:
    def test_weak_baseline_is_never_faster(self, figure1, medium_deployment):
        """The literal BFS-tree baseline needs at least as many rounds as the
        strong (set-cover) variant — quantifying the fidelity note of
        EXPERIMENTS.md."""
        for topo, source in (figure1, medium_deployment):
            strong = run_broadcast(topo, source, Approx26Policy(parent_mode="cover"))
            weak = run_broadcast(topo, source, Approx26Policy(parent_mode="tree"))
            assert weak.latency >= strong.latency
            assert weak.covered == strong.covered == topo.node_set

    def test_weak_variant_traces_are_still_valid(self, medium_deployment):
        topo, source = medium_deployment
        result = run_broadcast(
            topo, source, Approx26Policy(parent_mode="tree"), validate=False
        )
        assert validate_broadcast(topo, result) == []

    def test_duty_cycle_variant(self, small_deployment, duty_schedule_factory):
        topo, source = small_deployment
        schedule = duty_schedule_factory(topo, rate=8)
        strong = run_broadcast(
            topo,
            source,
            Approx17Policy(parent_mode="cover"),
            schedule=schedule,
            align_start=True,
        )
        weak = run_broadcast(
            topo,
            source,
            Approx17Policy(parent_mode="tree"),
            schedule=schedule,
            align_start=True,
        )
        assert strong.covered == weak.covered == topo.node_set
        assert validate_broadcast(topo, weak, schedule=schedule) == []
