"""Unit tests for the multi-source experiment wiring (figure, claims, CLI)."""

from __future__ import annotations

import pytest

from repro.core.time_counter import SearchConfig
from repro.experiments.cli import build_parser, main
from repro.experiments.config import SweepConfig
from repro.experiments.figures import (
    DEFAULT_SOURCE_COUNTS,
    ENERGY_SUFFIX,
    FigureResult,
    figure_multisource,
)
from repro.experiments.report import multisource_claims
from repro.experiments.runner import default_policies, run_sweep


def _config(**overrides) -> SweepConfig:
    base = dict(
        node_counts=(24,),
        repetitions=1,
        search=SearchConfig(mode="beam", beam_width=2),
        max_color_classes=4,
        source_min_ecc=2,
        source_max_ecc=None,
        area_side=22.0,
        radius=7.0,
    )
    base.update(overrides)
    return SweepConfig(**base)


class TestConfig:
    def test_defaults_are_single_source(self):
        config = SweepConfig()
        assert config.n_sources == 1
        assert config.source_placement == "random"

    def test_with_sources(self):
        config = _config().with_sources(3, placement="corner")
        assert config.n_sources == 3
        assert config.source_placement == "corner"

    def test_invalid_source_count_rejected(self):
        with pytest.raises(ValueError):
            _config(n_sources=0)
        with pytest.raises(ValueError):
            _config(n_sources=25)  # exceeds the 24-node smallest count

    def test_unknown_placement_rejected(self):
        with pytest.raises(ValueError, match="source placement"):
            _config(source_placement="nope")

    def test_multi_source_drops_planned_baselines(self):
        single = default_policies(_config(), "duty")
        multi = default_policies(_config(n_sources=2), "duty")
        assert "17-approx" in single
        assert "17-approx" not in multi
        assert {"OPT", "G-OPT", "E-model"} <= set(multi)


class TestFigureMultisource:
    def test_latency_and_energy_series_per_policy(self):
        figure = figure_multisource(
            _config(), source_counts=(1, 2), system="duty", rate=6
        )
        assert figure.x_values == (1.0, 2.0)
        policies = [n for n in figure.series if not n.endswith(ENERGY_SUFFIX)]
        assert policies  # at least the frontier schedulers
        for policy in policies:
            assert f"{policy}{ENERGY_SUFFIX}" in figure.series
            assert len(figure.series[policy]) == 2
        # Claims hold on a real (if tiny) figure.
        checks = multisource_claims(figure)
        assert len(checks) == 2 * len(policies)
        assert all(check.holds for check in checks)

    def test_k1_column_matches_plain_sweep(self):
        config = _config()
        figure = figure_multisource(
            config, source_counts=(1,), system="sync", placement="spread"
        )
        line_up = default_policies(config.with_sources(2), "sync")
        plain = run_sweep(
            config.with_sources(1, placement="spread"),
            system="sync",
            policies=line_up,
        )
        for policy in plain.policies:
            expected = sum(
                r.latency for r in plain.records_for(policy)
            ) / len(plain.records_for(policy))
            assert figure.series_for(policy)[0] == pytest.approx(expected)

    def test_default_source_counts(self):
        assert DEFAULT_SOURCE_COUNTS == (1, 2, 4)


class TestMultisourceClaims:
    def _figure(self, makespans, energies) -> FigureResult:
        return FigureResult(
            name="Multi-source",
            title="synthetic",
            x_label="concurrent messages k",
            x_values=(1.0, 2.0, 4.0),
            series={"E-model": makespans, f"E-model{ENERGY_SUFFIX}": energies},
        )

    def test_claims_hold_on_monotone_series(self):
        checks = multisource_claims(
            self._figure([10.0, 14.0, 21.0], [100.0, 180.0, 350.0])
        )
        assert len(checks) == 2
        assert all(check.holds for check in checks)

    def test_shrinking_makespan_flagged(self):
        checks = multisource_claims(
            self._figure([10.0, 9.0, 8.0], [100.0, 180.0, 350.0])
        )
        makespan_claim = next(c for c in checks if "makespan" in c.claim)
        assert not makespan_claim.holds


class TestCli:
    def test_parser_accepts_sources_and_placement(self):
        args = build_parser().parse_args(
            ["--sources", "3", "--source-placement", "spread"]
        )
        assert args.sources == (3,)
        assert args.source_placement == "spread"

    def test_sources_list_for_multisource_target(self):
        args = build_parser().parse_args(["multisource", "--sources", "1,2,4"])
        assert args.sources == (1, 2, 4)

    def test_malformed_sources_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--sources", "two"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--sources", "0"])

    def test_sources_rejected_for_paper_targets(self, capsys):
        with pytest.raises(SystemExit):
            main(["figure3", "--sources", "2"])
        error = capsys.readouterr().err
        assert "--sources" in error

    def test_plural_sources_rejected_for_sweep(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--sources", "1,2"])
        error = capsys.readouterr().err
        assert "multisource" in error

    def test_single_source_count_allowed_for_paper_targets(self):
        # --sources 1 is exactly the paper's workload (like --loss 0.0).
        args = build_parser().parse_args(["figure3", "--sources", "1"])
        assert args.sources == (1,)

    def test_sweep_records_carry_multisource_columns(self, capsys):
        exit_code = main(
            [
                "sweep",
                "--nodes",
                "50",
                "--repetitions",
                "1",
                "--sources",
                "2",
                "--source-placement",
                "corner",
                "--rate",
                "6",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "sources=2" in output
        assert "placement=corner" in output
        assert "n_sources" in output
        assert "total_energy" in output

    def test_multisource_target_prints_figure(self, capsys, tmp_path):
        exit_code = main(
            [
                "multisource",
                "--sources",
                "1,2",
                "--nodes",
                "50",
                "--repetitions",
                "1",
                "--rate",
                "6",
                "--csv-dir",
                str(tmp_path),
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Multi-source" in output
        assert ENERGY_SUFFIX.strip() in output
        assert (tmp_path / "multisource.csv").exists()
