"""Unit tests for the fabric coordinator, wire protocol and HTTP server."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.policies import EModelPolicy
from repro.experiments.config import QUICK_SWEEP
from repro.experiments.runner import _run_cell, run_sweep, sweep_cells
from repro.fabric import (
    FabricCoordinator,
    FabricError,
    FabricHTTPServer,
    HttpTransport,
    LocalTransport,
    cell_from_payload,
    cell_to_payload,
    config_from_payload,
    config_to_payload,
    records_from_payload,
    records_to_payload,
)
from repro.fabric.coordinator import STATE_FILE_NAME
from repro.store import ExperimentStore

_CONFIG = replace(QUICK_SWEEP, node_counts=(50,), repetitions=2)
_CELLS = sweep_cells(_CONFIG, system="sync")


@pytest.fixture(scope="module")
def cell_records():
    """Each cell's true records, simulated once for the whole module."""
    return [_run_cell(cell) for cell in _CELLS]


class TestProtocolPayloads:
    def test_config_round_trips_through_json(self):
        import json

        payload = json.loads(json.dumps(config_to_payload(_CONFIG)))
        assert config_from_payload(payload) == _CONFIG

    def test_cell_round_trips_through_json(self):
        import json

        for cell in _CELLS:
            payload = json.loads(json.dumps(cell_to_payload(cell)))
            assert cell_from_payload(payload) == cell

    def test_records_round_trip_through_json(self, cell_records):
        import json

        payload = json.loads(json.dumps(records_to_payload(cell_records[0])))
        assert records_from_payload(payload) == cell_records[0]

    def test_custom_policy_factories_cannot_cross_the_wire(self):
        cell = replace(_CELLS[0], policies=(("custom", EModelPolicy),))
        with pytest.raises(FabricError, match="custom policy factories"):
            cell_to_payload(cell)


def _post_result(coordinator, grant, records, **overrides):
    payload = {
        "worker": "w1",
        "lease": grant["lease"],
        "index": grant["index"],
        "digest": grant["digest"],
        "records": records_to_payload(records),
    }
    payload.update(overrides)
    return coordinator.handle_request("result", payload)


class TestCoordinator:
    def test_claim_simulate_post_happy_path(self, cell_records):
        coordinator = FabricCoordinator(_CELLS)
        grant = coordinator.handle_request("claim", {"worker": "w1"})
        assert grant["status"] == "lease"
        cell = cell_from_payload(grant["cell"])
        assert cell == _CELLS[grant["index"]]
        response = _post_result(coordinator, grant, cell_records[grant["index"]])
        assert response == {"status": "committed"}
        assert coordinator.records_for(grant["index"]) == cell_records[grant["index"]]

    def test_duplicate_post_acknowledged_not_recommitted(self, cell_records):
        coordinator = FabricCoordinator(_CELLS)
        grant = coordinator.handle_request("claim", {"worker": "w1"})
        records = cell_records[grant["index"]]
        assert _post_result(coordinator, grant, records)["status"] == "committed"
        assert _post_result(coordinator, grant, records)["status"] == "duplicate"

    def test_digest_mismatch_is_rejected_and_charged(self, cell_records):
        coordinator = FabricCoordinator(_CELLS, max_attempts=1)
        grant = coordinator.handle_request("claim", {"worker": "w1"})
        response = _post_result(
            coordinator, grant, cell_records[grant["index"]], digest="f" * 64
        )
        assert response["status"] == "rejected"
        assert "digest mismatch" in response["reason"]
        # max_attempts=1: the single rejection quarantined the cell.
        assert grant["index"] in coordinator.quarantined

    def test_wrong_cells_records_are_rejected(self, cell_records):
        coordinator = FabricCoordinator(_CELLS)
        grant = coordinator.handle_request("claim", {"worker": "w1"})
        other = (grant["index"] + 1) % len(_CELLS)
        response = _post_result(coordinator, grant, cell_records[other])
        assert response["status"] == "rejected"
        assert "do not match cell" in response["reason"]

    def test_done_and_wait_responses(self, cell_records):
        coordinator = FabricCoordinator(_CELLS, lease_ttl=5.0)
        grants = [
            coordinator.handle_request("claim", {"worker": "w1"})
            for _ in range(len(_CELLS))
        ]
        wait = coordinator.handle_request("claim", {"worker": "w2"})
        assert wait["status"] == "wait"
        assert 0.0 < wait["retry_after"] <= 5.0
        for grant in grants:
            _post_result(coordinator, grant, cell_records[grant["index"]])
        done = coordinator.handle_request("claim", {"worker": "w2"})
        assert done == {
            "status": "done", "completed": len(_CELLS), "quarantined": 0,
        }
        assert coordinator.done is True

    def test_heartbeat_reports_validity(self):
        coordinator = FabricCoordinator(_CELLS)
        grant = coordinator.handle_request("claim", {"worker": "w1"})
        beat = coordinator.handle_request("heartbeat", {"lease": grant["lease"]})
        assert beat == {"status": "ok", "valid": True}
        stale = coordinator.handle_request("heartbeat", {"lease": "lease-404"})
        assert stale == {"status": "ok", "valid": False}

    def test_unknown_action_raises_fabric_error(self):
        coordinator = FabricCoordinator(_CELLS)
        with pytest.raises(FabricError, match="unknown fabric action"):
            coordinator.handle_request("shutdown", {})

    def test_status_snapshot_shape(self):
        coordinator = FabricCoordinator(_CELLS)
        grant = coordinator.handle_request("claim", {"worker": "w1"})
        status = coordinator.handle_request("status", {})
        assert status["total"] == len(_CELLS)
        assert status["done"] is False
        assert status["counts"]["leased"] == 1
        [lease] = status["active_leases"]
        assert lease["lease"] == grant["lease"]
        assert lease["worker"] == "w1"
        assert status["workers"]["w1"]["claims"] == 1

    def test_records_for_unfinished_cell_raises(self):
        coordinator = FabricCoordinator(_CELLS)
        with pytest.raises(KeyError):
            coordinator.records_for(0)


class TestRestart:
    def test_restart_resumes_from_store_delta(self, tmp_path, cell_records):
        with ExperimentStore(tmp_path / "store") as store:
            first = FabricCoordinator(_CELLS, store=store)
            grant = first.handle_request("claim", {"worker": "w1"})
            _post_result(first, grant, cell_records[grant["index"]])

            # A brand-new coordinator (the restart) sees the committed cell
            # as already done and only serves the remainder.
            second = FabricCoordinator(_CELLS, store=store)
            assert second.status()["counts"]["completed"] == 1
            assert second.records_for(grant["index"]) == cell_records[grant["index"]]
            remaining = {
                second.handle_request("claim", {"worker": "w2"})["index"]
                for _ in range(len(_CELLS) - 1)
            }
            assert grant["index"] not in remaining

    def test_restart_restores_failure_journal(self, tmp_path, cell_records):
        with ExperimentStore(tmp_path / "store") as store:
            first = FabricCoordinator(_CELLS, store=store, max_attempts=1)
            grant = first.handle_request("claim", {"worker": "w1"})
            _post_result(first, grant, cell_records[grant["index"]], digest="0" * 64)
            assert grant["index"] in first.quarantined
            assert (tmp_path / "store" / STATE_FILE_NAME).is_file()

            second = FabricCoordinator(_CELLS, store=store, max_attempts=1)
            assert second.quarantined.keys() == first.quarantined.keys()

    def test_no_resume_reserves_cached_cells_too(self, tmp_path):
        with ExperimentStore(tmp_path / "store") as store:
            run_sweep(_CONFIG, system="sync", store=store)
            coordinator = FabricCoordinator(_CELLS, store=store, resume=False)
            assert coordinator.status()["counts"]["pending"] == len(_CELLS)


class TestHTTPServer:
    def test_full_protocol_over_loopback(self, cell_records):
        coordinator = FabricCoordinator(_CELLS)
        with FabricHTTPServer(coordinator) as server:
            transport = HttpTransport(server.url)
            grant = transport.request("claim", {"worker": "w1"})
            assert grant["status"] == "lease"
            assert cell_from_payload(grant["cell"]) == _CELLS[grant["index"]]
            response = transport.request(
                "result",
                {
                    "worker": "w1",
                    "lease": grant["lease"],
                    "index": grant["index"],
                    "digest": grant["digest"],
                    "records": records_to_payload(cell_records[grant["index"]]),
                },
            )
            assert response == {"status": "committed"}
            status = transport.request("status", {})
            assert status["counts"]["completed"] == 1
            transport.close()

    def test_unknown_action_is_a_404(self):
        from repro.fabric import TransportError

        coordinator = FabricCoordinator(_CELLS)
        with FabricHTTPServer(coordinator) as server:
            transport = HttpTransport(server.url)
            with pytest.raises(TransportError, match="404"):
                transport.request("frobnicate", {})
            transport.close()

    def test_local_transport_matches_direct_calls(self):
        coordinator = FabricCoordinator(_CELLS)
        transport = LocalTransport(coordinator)
        assert transport.request("status", {}) == coordinator.status()


class TestCoordinatorTelemetry:
    """The extended status fields and the /metrics endpoint (docs/telemetry.md)."""

    def test_status_reports_queue_depth_and_attempts(self, cell_records):
        coordinator = FabricCoordinator(_CELLS, max_attempts=3)
        grant = coordinator.handle_request("claim", {"worker": "w1"})
        # One rejected result charges the cell's budget and requeues it.
        _post_result(coordinator, grant, cell_records[grant["index"]], digest="0" * 64)
        status = coordinator.status()
        assert status["queue_depth"] == status["counts"]["pending"]
        assert status["attempts"] == {str(grant["index"]): 1}
        assert status["oldest_lease_age_s"] is None  # nothing leased right now

    def test_status_reports_oldest_lease_age(self):
        coordinator = FabricCoordinator(_CELLS)
        coordinator.handle_request("claim", {"worker": "w1"})
        status = coordinator.status()
        assert status["oldest_lease_age_s"] is not None
        assert status["oldest_lease_age_s"] >= 0.0
        for stats in status["workers"].values():
            assert stats["last_seen_age_s"] >= 0.0

    def test_metrics_action_serves_the_registry(self, cell_records):
        coordinator = FabricCoordinator(_CELLS)
        grant = coordinator.handle_request("claim", {"worker": "w1"})
        _post_result(coordinator, grant, cell_records[grant["index"]])
        snapshot = coordinator.handle_request("metrics", {})
        assert snapshot["counters"]["fabric.claim_requests"] == 1
        assert snapshot["counters"]["fabric.lease_claims"] == 1
        assert snapshot["counters"]["fabric.results_committed"] == 1
        assert snapshot["gauges"]["fabric.completed_cells"] == 1
        assert snapshot["gauges"]["fabric.queue_depth"] == len(_CELLS) - 1
        assert "worker.w1.last_seen_age_s" in snapshot["gauges"]

    def test_duplicate_and_rejected_results_are_counted(self, cell_records):
        coordinator = FabricCoordinator(_CELLS, max_attempts=5)
        grant = coordinator.handle_request("claim", {"worker": "w1"})
        _post_result(coordinator, grant, cell_records[grant["index"]])
        _post_result(coordinator, grant, cell_records[grant["index"]])
        bad = coordinator.handle_request("claim", {"worker": "w1"})
        _post_result(coordinator, bad, cell_records[bad["index"]], digest="0" * 64)
        counters = coordinator.handle_request("metrics", {})["counters"]
        assert counters["fabric.results_committed"] == 1
        assert counters["fabric.results_duplicate"] == 1
        assert counters["fabric.results_rejected"] == 1

    def test_metrics_endpoint_is_gated_behind_telemetry_flag(self):
        from repro.fabric import TransportError

        coordinator = FabricCoordinator(_CELLS)
        with FabricHTTPServer(coordinator) as server:
            transport = HttpTransport(server.url)
            with pytest.raises(TransportError, match="fabric serve --telemetry"):
                transport.request("metrics", {})
            transport.close()

    def test_metrics_endpoint_served_when_exposed(self):
        coordinator = FabricCoordinator(_CELLS)
        with FabricHTTPServer(coordinator, expose_metrics=True) as server:
            transport = HttpTransport(server.url)
            transport.request("claim", {"worker": "w1"})
            snapshot = transport.request("metrics", {})
            transport.close()
        assert snapshot["counters"]["fabric.lease_claims"] == 1
        assert snapshot["gauges"]["fabric.leased_cells"] == 1
