"""Unit tests for repro.network.geometry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.network.geometry import convex_hull, cross, euclidean_distance, pairwise_distances


class TestEuclideanDistance:
    def test_axis_aligned(self):
        assert euclidean_distance((0, 0), (3, 4)) == pytest.approx(5.0)

    def test_zero_distance(self):
        assert euclidean_distance((1.5, -2.0), (1.5, -2.0)) == 0.0

    def test_symmetry(self):
        assert euclidean_distance((1, 2), (4, 6)) == euclidean_distance((4, 6), (1, 2))


class TestCross:
    def test_counter_clockwise_positive(self):
        assert cross((0, 0), (1, 0), (0, 1)) > 0

    def test_clockwise_negative(self):
        assert cross((0, 0), (0, 1), (1, 0)) < 0

    def test_collinear_zero(self):
        assert cross((0, 0), (1, 1), (2, 2)) == 0


class TestConvexHull:
    def test_square_with_interior_point(self):
        points = [(0, 0), (0, 1), (1, 0), (1, 1), (0.5, 0.5)]
        hull = convex_hull(points)
        assert set(hull) == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_collinear_points_reduce_to_extremes(self):
        points = [(0, 0), (1, 0), (2, 0), (3, 0)]
        hull = convex_hull(points)
        assert set(hull) == {(0.0, 0.0), (3.0, 0.0)}

    def test_duplicates_tolerated(self):
        points = [(0, 0), (0, 0), (1, 0), (0, 1)]
        hull = convex_hull(points)
        assert set(hull) == {(0.0, 0.0), (1.0, 0.0), (0.0, 1.0)}

    def test_fewer_than_three_points(self):
        assert convex_hull([(2, 3)]) == [(2.0, 3.0)]
        assert convex_hull([(2, 3), (1, 1)]) == [(1.0, 1.0), (2.0, 3.0)]

    def test_counter_clockwise_orientation(self):
        points = [(0, 0), (4, 0), (4, 4), (0, 4), (2, 2)]
        hull = convex_hull(points)
        # Sum of cross products around the polygon must be positive (CCW).
        area2 = 0.0
        for i in range(len(hull)):
            x1, y1 = hull[i]
            x2, y2 = hull[(i + 1) % len(hull)]
            area2 += x1 * y2 - x2 * y1
        assert area2 > 0

    def test_matches_scipy_qhull_vertices(self):
        scipy_spatial = pytest.importorskip("scipy.spatial")
        rng = np.random.default_rng(3)
        points = rng.uniform(0, 10, size=(60, 2))
        ours = set(convex_hull([tuple(p) for p in points]))
        qhull = scipy_spatial.ConvexHull(points)
        theirs = {tuple(points[i]) for i in qhull.vertices}
        assert ours == theirs


class TestPairwiseDistances:
    def test_matches_manual_computation(self):
        positions = np.array([[0.0, 0.0], [3.0, 4.0], [6.0, 8.0]])
        matrix = pairwise_distances(positions)
        assert matrix[0, 1] == pytest.approx(5.0)
        assert matrix[1, 2] == pytest.approx(5.0)
        assert matrix[0, 2] == pytest.approx(10.0)

    def test_symmetric_zero_diagonal(self):
        rng = np.random.default_rng(0)
        positions = rng.uniform(0, 5, size=(20, 2))
        matrix = pairwise_distances(positions)
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 0.0)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            pairwise_distances(np.zeros((3, 3)))
