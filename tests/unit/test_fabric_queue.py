"""Unit tests for the fabric lease state machine (deterministic clock)."""

from __future__ import annotations

import pytest

from repro.fabric import DEFAULT_LEASE_TTL, LeaseQueue


class Clock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return Clock()


def make_queue(clock, **kwargs):
    kwargs.setdefault("lease_ttl", 10.0)
    kwargs.setdefault("max_attempts", 3)
    kwargs.setdefault("backoff_s", 1.0)
    return LeaseQueue(range(3), clock=clock, **kwargs)


class TestClaiming:
    def test_grants_lowest_pending_index_first(self, clock):
        queue = make_queue(clock)
        assert queue.claim("w1").index == 0
        assert queue.claim("w2").index == 1
        assert queue.claim("w1").index == 2
        assert queue.claim("w1") is None  # everything leased

    def test_lease_carries_worker_deadline_and_unique_id(self, clock):
        queue = make_queue(clock)
        first = queue.claim("w1")
        second = queue.claim("w1")
        assert first.worker == "w1"
        assert first.deadline == pytest.approx(first.granted_at + 10.0)
        assert first.lease_id != second.lease_id

    def test_completed_cells_are_never_granted_again(self, clock):
        queue = make_queue(clock)
        lease = queue.claim("w1")
        queue.complete(lease.index)
        granted = {queue.claim("w1").index, queue.claim("w1").index}
        assert lease.index not in granted

    def test_default_ttl_is_the_module_constant(self):
        queue = LeaseQueue(range(1))
        assert queue.lease_ttl == DEFAULT_LEASE_TTL


class TestExpiry:
    def test_expired_lease_requeues_the_cell(self, clock):
        queue = make_queue(clock)
        lease = queue.claim("w1")
        clock.advance(10.5)
        reaped = queue.expire()
        assert [l.lease_id for l in reaped] == [lease.lease_id]
        assert queue.state_of(lease.index) == "pending"
        assert queue.attempts[lease.index] == 1

    def test_heartbeat_extends_the_deadline(self, clock):
        queue = make_queue(clock)
        lease = queue.claim("w1")
        clock.advance(8.0)
        assert queue.heartbeat(lease.lease_id) is True
        clock.advance(8.0)  # 16s since grant, but only 8 since the beat
        assert queue.expire() == []
        assert queue.state_of(lease.index) == "leased"

    def test_heartbeat_on_expired_lease_reports_false(self, clock):
        queue = make_queue(clock)
        lease = queue.claim("w1")
        clock.advance(11.0)
        assert queue.heartbeat(lease.lease_id) is False

    def test_requeued_cell_backs_off_exponentially(self, clock):
        queue = make_queue(clock, backoff_s=2.0, max_attempts=5)
        index = queue.claim("w1").index
        clock.advance(10.5)
        queue.expire()  # attempt 1 -> not_before now+2
        # The other two pending cells are still immediately claimable; the
        # requeued one comes back only after its backoff.
        granted = [queue.claim("w"), queue.claim("w"), queue.claim("w")]
        assert [lease.index for lease in granted if lease is not None] != [index]
        assert queue.claim("w") is None
        assert 0.0 < queue.next_event_in() <= 2.0

    def test_single_polling_worker_drives_requeue(self, clock):
        """claim() reaps expired leases itself — no tick thread required."""
        queue = make_queue(clock)
        first = queue.claim("w1")
        clock.advance(10.5)
        clock.advance(1.0)  # past the backoff of the expired cell
        again = queue.claim("w1")
        assert again is not None
        assert queue.attempts[first.index] == 1


class TestCompletion:
    def test_complete_is_idempotent(self, clock):
        queue = make_queue(clock)
        lease = queue.claim("w1")
        assert queue.complete(lease.index) == "committed"
        assert queue.complete(lease.index) == "duplicate"
        assert queue.state_of(lease.index) == "completed"

    def test_late_post_after_expiry_still_commits(self, clock):
        queue = make_queue(clock)
        lease = queue.claim("w1")
        clock.advance(11.0)
        queue.expire()
        assert queue.complete(lease.index) == "committed"
        assert queue.state_of(lease.index) == "completed"

    def test_late_post_after_requeue_to_another_worker_commits_once(self, clock):
        queue = LeaseQueue(
            range(1), lease_ttl=10.0, max_attempts=3, backoff_s=1.0, clock=clock
        )
        lease = queue.claim("w1")
        clock.advance(12.0)  # past the TTL: the claim reaps the dead lease...
        assert queue.claim("w2") is None
        clock.advance(queue.next_event_in())  # ...and the backoff elapses
        release = queue.claim("w2")
        assert release.index == lease.index
        assert queue.complete(lease.index) == "committed"  # the slow original
        assert queue.complete(release.index) == "duplicate"  # the re-runner

    def test_unknown_index_raises(self, clock):
        queue = make_queue(clock)
        with pytest.raises(KeyError):
            queue.complete(99)

    def test_done_when_every_cell_terminal(self, clock):
        queue = make_queue(clock)
        assert queue.done is False
        for _ in range(3):
            queue.complete(queue.claim("w").index)
        assert queue.done is True
        assert queue.counts() == {
            "pending": 0, "leased": 0, "completed": 3, "quarantined": 0,
        }


class TestQuarantine:
    def test_poison_cell_quarantines_after_max_attempts(self, clock):
        queue = LeaseQueue(
            range(2), lease_ttl=10.0, max_attempts=2, backoff_s=0.1, clock=clock
        )
        queue.complete(1)  # leave a single claimable cell
        for _ in range(2):
            lease = queue.claim("w1")
            queue.fail(lease.lease_id, "bad records")
            clock.advance(1.0)
        index = lease.index
        assert queue.state_of(index) == "quarantined"
        assert "bad records — attempt 2/2" in queue.quarantined[index]
        # Quarantined cells are fenced off: never granted again.
        assert queue.claim("w1") is None
        assert queue.done is True

    def test_valid_late_result_rescues_a_quarantined_cell(self, clock):
        queue = make_queue(clock, max_attempts=1)
        lease = queue.claim("w1")
        clock.advance(11.0)
        queue.expire()
        assert queue.state_of(lease.index) == "quarantined"
        assert queue.complete(lease.index) == "committed"
        assert queue.state_of(lease.index) == "completed"
        assert queue.quarantined == {}

    def test_fail_on_unknown_lease_is_ignored(self, clock):
        queue = make_queue(clock)
        queue.fail("lease-404", "whatever")
        assert queue.counts()["pending"] == 3


class TestPreload:
    def test_restores_attempts_and_quarantine(self, clock):
        queue = make_queue(clock, max_attempts=3)
        queue.preload({0: 2}, {1: "poison from a past life"})
        assert queue.state_of(1) == "quarantined"
        # Cell 0 has one attempt left before quarantine.
        lease = queue.claim("w1")
        assert lease.index == 0
        queue.fail(lease.lease_id, "again")
        assert queue.state_of(0) == "quarantined"

    def test_preload_ignores_unknown_indices(self, clock):
        queue = make_queue(clock)
        queue.preload({42: 1}, {43: "gone"})
        assert queue.counts()["pending"] == 3


class TestValidation:
    def test_rejects_nonpositive_ttl_and_attempts(self, clock):
        with pytest.raises(ValueError, match="lease_ttl"):
            LeaseQueue(range(1), lease_ttl=0.0, clock=clock)
        with pytest.raises(ValueError, match="max_attempts"):
            LeaseQueue(range(1), max_attempts=0, clock=clock)

    def test_next_event_in_zero_when_claimable_or_done(self, clock):
        queue = make_queue(clock)
        assert queue.next_event_in() == 0.0
        for _ in range(3):
            queue.complete(queue.claim("w").index)
        assert queue.next_event_in() == 0.0
