"""CLI surface of the sweep fabric: the ``fabric serve|work|status`` target."""

from __future__ import annotations

import json
import threading
from dataclasses import replace

import pytest

from repro.experiments.cli import build_parser, main
from repro.experiments.config import QUICK_SWEEP
from repro.experiments.runner import run_sweep, sweep_cells
from repro.fabric import FabricCoordinator, FabricHTTPServer
from repro.store import ExperimentStore

_TINY = ["--nodes", "50", "--repetitions", "1"]
_TINY_CONFIG = replace(QUICK_SWEEP, node_counts=(50,), repetitions=1)
#: The exact grid a ``fabric serve`` of ``_TINY`` builds (duty/rate 10 are
#: the CLI's --system/--rate defaults).
_TINY_CELLS = sweep_cells(_TINY_CONFIG, system="duty", rate=10)


class TestParser:
    def test_fabric_flags_parse(self, tmp_path):
        args = build_parser().parse_args(
            [
                "fabric", "serve", "--store", str(tmp_path),
                "--port", "8123", "--lease-ttl", "2.5", "--max-attempts", "7",
                "--linger", "0", "--status-file", str(tmp_path / "s.json"),
            ]
        )
        assert (args.target, args.action) == ("fabric", "serve")
        assert args.port == 8123
        assert args.lease_ttl == 2.5
        assert args.max_attempts == 7
        assert args.linger == 0.0

    def test_fabric_requires_an_action(self, capsys):
        with pytest.raises(SystemExit):
            main(["fabric"])
        assert "serve, work or status" in capsys.readouterr().err

    def test_serve_requires_a_store(self, capsys):
        with pytest.raises(SystemExit):
            main(["fabric", "serve"])
        assert "--store" in capsys.readouterr().err

    def test_work_and_status_require_a_url(self, capsys):
        for action in ("work", "status"):
            with pytest.raises(SystemExit):
                main(["fabric", action])
            assert "--url" in capsys.readouterr().err


class TestWorkAndStatus:
    @pytest.fixture()
    def coordinator(self):
        return FabricCoordinator(_TINY_CELLS)

    def test_work_drains_a_coordinator(self, coordinator, capsys):
        with FabricHTTPServer(coordinator) as server:
            assert main(["fabric", "work", "--url", server.url,
                         "--worker-name", "cli-w1"]) == 0
        out = capsys.readouterr().out
        assert "cli-w1 completed 1 cell(s)" in out
        assert coordinator.done is True

    def test_status_prints_and_writes_json(self, coordinator, tmp_path, capsys):
        status_file = tmp_path / "status.json"
        with FabricHTTPServer(coordinator) as server:
            assert main(["fabric", "status", "--url", server.url,
                         "--status-file", str(status_file)]) == 0
        printed = json.loads(capsys.readouterr().out)
        on_disk = json.loads(status_file.read_text())
        for status in (printed, on_disk):
            assert status["total"] == len(_TINY_CELLS)
            assert status["counts"]["pending"] == len(_TINY_CELLS)

    def test_work_against_a_dead_coordinator_fails_cleanly(self, capsys):
        assert main(["fabric", "status", "--url", "http://127.0.0.1:9"]) == 1
        assert "fabric status:" in capsys.readouterr().err


class TestServe:
    def test_serve_runs_a_grid_to_completion(self, tmp_path, capsys):
        """serve + one in-thread CLI worker: records land in the store."""
        store_dir = tmp_path / "store"
        status_file = tmp_path / "status.json"
        exit_codes: dict[str, int] = {}

        def serve():
            exit_codes["serve"] = main(
                [
                    "fabric", "serve", *_TINY, "--store", str(store_dir),
                    "--port", "18472", "--linger", "0.5",
                    "--status-file", str(status_file),
                ]
            )

        thread = threading.Thread(target=serve, name="serve-cli")
        thread.start()
        try:
            assert main(
                ["fabric", "work", "--url", "http://127.0.0.1:18472"]
            ) == 0
        finally:
            thread.join(timeout=60.0)
        assert not thread.is_alive()
        assert exit_codes["serve"] == 0
        status = json.loads(status_file.read_text())
        assert status["done"] is True
        assert status["counts"]["completed"] == status["total"] == 1
        # The grid landed in the store: a plain CLI sweep is fully cached.
        capsys.readouterr()
        assert main(["sweep", *_TINY, "--store", str(store_dir)]) == 0
        assert "1 hits / 0 misses (100% cached)" in capsys.readouterr().out

    def test_fully_cached_grid_serves_without_workers(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        with ExperimentStore(store_dir) as store:
            run_sweep(_TINY_CONFIG, system="duty", rate=10, store=store)
        assert main(
            ["fabric", "serve", *_TINY, "--store", str(store_dir), "--linger", "0"]
        ) == 0
        out = capsys.readouterr().out
        assert "1/1 cells done" in out
