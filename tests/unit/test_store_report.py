"""Report layer over the store: claims and stats from cached records only."""

from __future__ import annotations

import pytest

from repro.core.time_counter import SearchConfig
from repro.experiments.config import SweepConfig
from repro.experiments.figures import figure3
from repro.experiments.report import (
    store_summary_text,
    summary_claims,
    summary_claims_from_store,
)
from repro.experiments.runner import run_sweep
from repro.store import ExperimentStore


@pytest.fixture(scope="module")
def config() -> SweepConfig:
    return SweepConfig(
        node_counts=(16, 24),
        area_side=10.0,
        radius=4.0,
        repetitions=2,
        source_min_ecc=1,
        source_max_ecc=None,
        search=SearchConfig(mode="beam", beam_width=2),
        max_color_classes=4,
    )


@pytest.fixture(scope="module")
def populated(tmp_path_factory, config):
    """A store holding one sync sweep of the full default line-up."""
    store = ExperimentStore(tmp_path_factory.mktemp("report") / "store")
    run_sweep(config, system="sync", store=store)
    yield store
    store.close()


def test_summary_claims_recompute_from_cache(populated, config):
    """The §V-C checks come back from disk — no simulation, sync-only."""
    checks = summary_claims_from_store(populated)
    # Only the synchronous figure is cached: its three claims, no duty ones.
    assert len(checks) == 3
    assert all("Synchronous" in check.claim for check in checks)
    # Same numbers as recomputing the claims from a fresh sweep.
    direct = summary_claims(figure3(config))
    assert [check.value for check in checks] == [check.value for check in direct]


def test_claims_require_the_sync_figure(tmp_path):
    with ExperimentStore(tmp_path / "empty") as store:
        with pytest.raises(LookupError):
            summary_claims_from_store(store)


def test_store_summary_text_renders_stats(populated):
    text = store_summary_text(populated)
    assert "cached cells" in text
    assert "sync: 4" in text
    assert str(populated.root) in text
