"""End-to-end fabric run: coordinator + three workers over loopback HTTP.

The real thing, no manual clocks: a :class:`FabricHTTPServer` on an
ephemeral loopback port, three worker threads speaking actual HTTP through
:class:`HttpTransport`, and one of them killed mid-cell while holding a
lease.  The surviving workers absorb the re-queued cell after its (short)
lease TTL expires, the sweep converges, and the records — reassembled in
serial cell order — are bit-identical to a plain local ``run_sweep``.  A
second, store-backed rerun is then 100% cached: the fabric committed
through exactly the digests a local sweep derives.
"""

from __future__ import annotations

import threading
from dataclasses import replace

import pytest

from repro.experiments.config import QUICK_SWEEP
from repro.experiments.runner import run_sweep, sweep_cells
from repro.fabric import FabricWorker, LocalFleet, WorkerCrashed
from repro.store import ExperimentStore

_CONFIG = replace(QUICK_SWEEP, node_counts=(50, 100), repetitions=2)
_LEASE_TTL = 0.75  # short enough that lease recovery happens in test time


class _CrashOnceWorker(FabricWorker):
    """Dies (via :class:`WorkerCrashed`) on its first simulation, holding
    the lease — the mid-cell crash the lease TTL exists to survive."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._crashed = False

    def simulate(self, cell, grant):
        if not self._crashed:
            self._crashed = True
            raise WorkerCrashed(f"{self.name}: killed mid-cell")
        return super().simulate(cell, grant)  # pragma: no cover - never revived


@pytest.fixture(scope="module")
def baseline():
    return run_sweep(_CONFIG, system="sync", workers=1)


def test_fleet_survives_worker_death_over_http(tmp_path, baseline):
    killed = []

    def factory(index: int, transport) -> FabricWorker:
        if index == 0:
            worker = _CrashOnceWorker(
                transport, name="doomed-worker", poll_interval=0.01
            )
            killed.append(worker)
            return worker
        return FabricWorker(transport, name=f"survivor-{index}", poll_interval=0.01)

    fleet = LocalFleet(
        workers=3,
        transport="http",
        lease_ttl=_LEASE_TTL,
        worker_factory=factory,
    )
    with ExperimentStore(tmp_path / "store") as store:
        result = run_sweep(_CONFIG, system="sync", store=store, fabric=fleet)
        assert result.records == baseline.records

        # The doomed worker really did die holding a lease...
        assert killed and killed[0]._crashed
        assert killed[0].stats.claims == 1
        assert killed[0].stats.completed == 0
        # ...its cell was recovered by the survivors (an expiry charged one
        # failed attempt against exactly one cell)...
        status = fleet.last_status
        assert status["done"] is True
        assert status["counts"]["completed"] == status["total"]
        assert status["counts"]["quarantined"] == 0
        survivors = [stats for stats in fleet.last_stats if stats.claims > 0]
        assert sum(stats.completed for stats in fleet.last_stats) == status["total"]
        assert len(survivors) >= 2  # the dead worker's cell went elsewhere

        # ...and a plain rerun against the fabric-written store is fully
        # cached and bit-identical — the determinism contract, end to end.
        rerun = run_sweep(_CONFIG, system="sync", store=store)
        assert rerun.cache_misses == 0
        assert rerun.cache_hits == len(sweep_cells(_CONFIG, system="sync"))
        assert rerun.records == baseline.records

    # No stray threads left behind (server and heartbeat threads joined).
    lingering = [
        thread.name
        for thread in threading.enumerate()
        if thread.name.startswith(("fabric-http", "fleet-worker", "survivor"))
    ]
    assert lingering == []
