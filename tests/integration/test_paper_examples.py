"""Integration tests reproducing the paper's worked examples end to end.

These are the closest thing the paper offers to ground truth: the motivating
example of Figure 1 / Table III, the small example of Figure 2 / Table II and
its duty-cycle variant of Figure 2(e) / Table IV.  Each test runs the full
pipeline (topology -> policy -> engine -> validation) and checks the
published numbers.
"""

from __future__ import annotations

import pytest

from repro.baselines.approx26 import Approx26Policy
from repro.baselines.flooding import LargestFirstPolicy
from repro.core.policies import EModelPolicy, GreedyOptPolicy, OptPolicy
from repro.core.time_counter import SearchConfig
from repro.experiments.tables import table2, table3, table4
from repro.network.graphs import FIGURE2_DUTY_START
from repro.sim.broadcast import run_broadcast


class TestFigure1Story:
    """Section II: the motivating example."""

    def test_optimal_broadcast_takes_three_rounds(self, figure1):
        topo, source = figure1
        for policy in (OptPolicy(), GreedyOptPolicy(), EModelPolicy()):
            result = run_broadcast(topo, source, policy)
            assert result.latency == 3, policy.name

    def test_optimal_schedule_follows_figure1c(self, figure1):
        """s -> {1} -> {0, 4}: the magenta relay first, then the pipeline."""
        topo, source = figure1
        result = run_broadcast(topo, source, GreedyOptPolicy())
        colors = [advance.color for advance in result.advances]
        assert colors[0] == frozenset({source})
        assert colors[1] == frozenset({1})
        assert colors[2] == frozenset({0, 4})
        assert result.advances[1].receivers == frozenset({3, 4, 10})
        assert result.advances[2].receivers == frozenset({5, 6, 7, 8, 9})

    def test_naive_most_receivers_choice_defers_broadcast(self, figure1):
        """Figure 1(b): launching the cyan relay (node 0) first costs a round."""
        topo, source = figure1
        result = run_broadcast(topo, source, LargestFirstPolicy())
        assert result.advances[1].color == frozenset({0})
        assert result.latency == 4

    def test_hop_distance_baseline_is_slower(self, figure1):
        topo, source = figure1
        baseline = run_broadcast(topo, source, Approx26Policy())
        optimum = run_broadcast(topo, source, GreedyOptPolicy())
        assert baseline.latency > optimum.latency

    def test_theorem1_bound_holds(self, figure1):
        topo, source = figure1
        d = topo.eccentricity(source)
        result = run_broadcast(topo, source, OptPolicy())
        assert result.latency < d + 2


class TestFigure2Story:
    def test_round_based_optimum_is_two_rounds(self, figure2):
        topo, source = figure2
        for policy in (OptPolicy(), GreedyOptPolicy(), EModelPolicy()):
            assert run_broadcast(topo, source, policy).latency == 2

    def test_selected_relay_is_node_2(self, figure2):
        topo, source = figure2
        result = run_broadcast(topo, source, GreedyOptPolicy())
        assert result.advances[1].color == frozenset({2})

    def test_duty_cycle_optimum_ends_at_slot_4(self, figure2_duty):
        topo, source, schedule = figure2_duty
        result = run_broadcast(
            topo,
            source,
            GreedyOptPolicy(),
            schedule=schedule,
            start_time=FIGURE2_DUTY_START,
        )
        assert result.end_time == 4
        assert result.advances[-1].color == frozenset({2})

    def test_duty_cycle_wrong_choice_waits_a_full_cycle(self, figure2_duty):
        """Selecting node 3 at slot 4 forces a wait for node 2's next wake-up."""
        from repro.core.time_counter import TimeCounter

        topo, _, schedule = figure2_duty
        counter = TimeCounter(topo, schedule=schedule)
        wrong = counter.completion_time(frozenset({1, 2, 3, 4}), 5)
        assert wrong >= 14  # node 2 wakes again at slot 14


class TestPaperTables:
    @pytest.mark.parametrize(
        "table_factory, expected_end",
        [(table2, 2), (table3, 3), (table4, 4)],
        ids=["table2", "table3", "table4"],
    )
    def test_tables_match_published_latency(self, table_factory, expected_end):
        table = table_factory()
        assert table.end_time == expected_end
        assert table.matches_paper

    def test_table3_walkthrough_matches_figure1c(self):
        table = table3()
        assert [row.selected_color for row in table.rows] == [(11,), (1,), (0, 4)]
        assert [row.num_colors for row in table.rows] == [1, 3, 3]


class TestCrossPolicyConsistency:
    def test_exact_and_beam_policies_agree_on_examples(self, figure1, figure2):
        for topo, source in (figure1, figure2):
            exact = run_broadcast(
                topo, source, GreedyOptPolicy(search=SearchConfig(mode="exact"))
            )
            beam = run_broadcast(
                topo,
                source,
                GreedyOptPolicy(search=SearchConfig(mode="beam", beam_width=4)),
            )
            assert exact.latency == beam.latency

    def test_opt_never_worse_than_gopt_never_worse_than_baseline(self, figure1):
        topo, source = figure1
        opt = run_broadcast(topo, source, OptPolicy()).latency
        gopt = run_broadcast(topo, source, GreedyOptPolicy()).latency
        emodel = run_broadcast(topo, source, EModelPolicy()).latency
        baseline = run_broadcast(topo, source, Approx26Policy()).latency
        assert opt <= gopt <= emodel <= baseline
