"""End-to-end tests on random paper-style deployments (round-based system)."""

from __future__ import annotations

import pytest

from repro.baselines.approx26 import Approx26Policy
from repro.core.policies import EModelPolicy, GreedyOptPolicy, OptPolicy
from repro.core.time_counter import SearchConfig
from repro.sim.broadcast import run_broadcast
from repro.sim.metrics import BroadcastMetrics, improvement_percent
from repro.sim.validation import validate_broadcast


BEAM = SearchConfig(mode="beam", beam_width=6)


@pytest.fixture(scope="module")
def deployment(request):
    from repro.network.deployment import DeploymentConfig, deploy_uniform

    config = DeploymentConfig(
        num_nodes=120,
        area_side=50.0,
        radius=10.0,
        source_min_ecc=5,
        source_max_ecc=8,
    )
    return deploy_uniform(config=config, seed=2012)


@pytest.fixture(scope="module")
def results(deployment):
    topo, source = deployment
    policies = {
        "OPT": OptPolicy(search=BEAM, max_color_classes=16),
        "G-OPT": GreedyOptPolicy(search=BEAM),
        "E-model": EModelPolicy(),
        "26-approx": Approx26Policy(),
    }
    return topo, source, {
        name: run_broadcast(topo, source, policy, validate=False)
        for name, policy in policies.items()
    }


class TestSynchronousEndToEnd:
    def test_all_schedules_valid(self, results):
        topo, _, traces = results
        for name, trace in traces.items():
            assert validate_broadcast(topo, trace) == [], name

    def test_all_nodes_covered(self, results):
        topo, _, traces = results
        for trace in traces.values():
            assert trace.covered == topo.node_set

    def test_latency_ordering(self, results):
        _, _, traces = results
        assert traces["OPT"].latency <= traces["G-OPT"].latency + 1
        assert traces["G-OPT"].latency <= traces["E-model"].latency
        assert traces["E-model"].latency < traces["26-approx"].latency

    def test_pipeline_improvement_is_substantial(self, results):
        """Section V-C: there is large room for improvement over the baseline."""
        _, _, traces = results
        improvement = improvement_percent(
            traces["26-approx"].latency, traces["G-OPT"].latency
        )
        assert improvement >= 30.0

    def test_gopt_close_to_opt(self, results):
        """Section V-C: G-OPT within 2 rounds of OPT."""
        _, _, traces = results
        assert abs(traces["G-OPT"].latency - traces["OPT"].latency) <= 2

    def test_latency_at_least_eccentricity_and_within_bound(self, results, deployment):
        topo, source = deployment
        _, _, traces = results
        d = topo.eccentricity(source)
        # The search-based schedulers land within a few rounds of the hop
        # floor; the E-model is a coarse estimate and only promises to stay
        # well below the layer-synchronised baseline.
        for name in ("OPT", "G-OPT"):
            assert traces[name].latency >= d
            assert traces[name].latency <= d + 4
        assert traces["E-model"].latency >= d
        assert traces["E-model"].latency < traces["26-approx"].latency

    def test_metrics_consistency(self, results, deployment):
        topo, _ = deployment
        _, _, traces = results
        for trace in traces.values():
            metrics = BroadcastMetrics.from_result(topo, trace)
            assert metrics.latency == trace.latency
            assert metrics.total_transmissions >= metrics.num_advances
            assert metrics.stretch >= 1.0

    def test_baseline_latency_equals_sum_of_layer_colors(self, deployment):
        topo, source = deployment
        policy = Approx26Policy()
        trace = run_broadcast(topo, source, policy)
        assert trace.latency == policy.planned_rounds

    def test_source_transmits_first(self, results, deployment):
        _, source, traces = results
        for trace in traces.values():
            assert trace.advances[0].color == frozenset({source})
