"""End-to-end tests on random deployments under the duty-cycle system."""

from __future__ import annotations

import pytest

from repro.baselines.approx17 import Approx17Policy
from repro.core.policies import EModelPolicy, GreedyOptPolicy
from repro.core.time_counter import SearchConfig
from repro.dutycycle.schedule import WakeupSchedule
from repro.network.deployment import DeploymentConfig, deploy_uniform
from repro.sim.broadcast import run_broadcast
from repro.sim.metrics import improvement_percent
from repro.sim.validation import validate_broadcast


BEAM = SearchConfig(mode="beam", beam_width=4)


@pytest.fixture(scope="module")
def deployment():
    config = DeploymentConfig(
        num_nodes=90,
        area_side=50.0,
        radius=11.0,
        source_min_ecc=4,
        source_max_ecc=None,
    )
    return deploy_uniform(config=config, seed=41)


def _run_all(topo, source, rate, seed=17):
    schedule = WakeupSchedule(topo.node_ids, rate=rate, seed=seed)
    traces = {}
    for name, policy in (
        ("17-approx", Approx17Policy()),
        ("G-OPT", GreedyOptPolicy(search=BEAM)),
        ("E-model", EModelPolicy()),
    ):
        traces[name] = run_broadcast(
            topo, source, policy, schedule=schedule, align_start=True, validate=False
        )
    return schedule, traces


@pytest.fixture(scope="module")
def heavy_duty(deployment):
    topo, source = deployment
    return deployment, _run_all(topo, source, rate=10)


@pytest.fixture(scope="module")
def light_duty(deployment):
    topo, source = deployment
    return deployment, _run_all(topo, source, rate=50)


class TestDutyCycleEndToEnd:
    @pytest.mark.parametrize("fixture_name", ["heavy_duty", "light_duty"])
    def test_all_schedules_valid_and_complete(self, fixture_name, request):
        (topo, _), (schedule, traces) = request.getfixturevalue(fixture_name)
        for name, trace in traces.items():
            assert trace.covered == topo.node_set, name
            assert validate_broadcast(topo, trace, schedule=schedule) == [], name

    @pytest.mark.parametrize("fixture_name", ["heavy_duty", "light_duty"])
    def test_pipeline_beats_layer_synchronised_baseline(self, fixture_name, request):
        _, (_, traces) = request.getfixturevalue(fixture_name)
        assert traces["G-OPT"].latency < traces["17-approx"].latency
        assert traces["E-model"].latency < traces["17-approx"].latency

    def test_heavy_duty_improvement_substantial(self, heavy_duty):
        """Section V-C claims 85-90%; our re-implemented baseline is stronger,
        so we require a still-substantial 50% improvement."""
        _, (_, traces) = heavy_duty
        improvement = improvement_percent(
            traces["17-approx"].latency, traces["G-OPT"].latency
        )
        assert improvement >= 50.0

    def test_light_duty_latency_larger_than_heavy_duty(self, heavy_duty, light_duty):
        """Longer cycles mean longer waits for every scheduler (same deployment)."""
        _, (_, heavy) = heavy_duty
        _, (_, light) = light_duty
        for name in ("17-approx", "G-OPT", "E-model"):
            assert light[name].latency > heavy[name].latency

    @pytest.mark.parametrize("fixture_name", ["heavy_duty", "light_duty"])
    def test_transmitters_respect_wakeup_schedule(self, fixture_name, request):
        _, (schedule, traces) = request.getfixturevalue(fixture_name)
        for trace in traces.values():
            for advance in trace.advances:
                for node in advance.color:
                    assert schedule.is_active(node, advance.time)

    def test_idle_time_grows_with_cycle_length(self, heavy_duty, light_duty):
        _, (_, heavy) = heavy_duty
        _, (_, light) = light_duty
        assert light["G-OPT"].idle_time > heavy["G-OPT"].idle_time
