"""Integration tests."""
