"""Test suite for the conf_icpp_JiangWGWKW12 reproduction."""
