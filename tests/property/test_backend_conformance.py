"""Backend conformance: every registered engine × link model vs the oracle.

The batched executor made the backend registry three deep, so engine parity
is no longer a single pairwise test — it is a *conformance contract*: for
every entry of :data:`repro.sim.ENGINE_BACKENDS` and every entry of
:data:`repro.sim.links.LINK_MODELS`, ``run_broadcast`` must return a trace
equal to the reference engines' for the same inputs, across the full
deployment-scenario × duty-model × loss matrix.  The fixtures live in
``conftest.py`` and are parameterized over the registries themselves, so a
newly registered backend or link model is enrolled automatically — there
is no name list here to forget to extend.

The full matrices carry the ``slow_property`` marker: they always run in
the default suite, and CI's backend fast-path job selects them with
``-m slow_property`` to re-check conformance alone when engine or kernel
code changes.
"""

from __future__ import annotations

import pytest

from repro.baselines.approx17 import Approx17Policy
from repro.baselines.flooding import FloodingPolicy
from repro.core.policies import EModelPolicy
from repro.dutycycle.models import build_wakeup_schedule, duty_model_names
from repro.network.deployment import DeploymentConfig
from repro.scenarios import generate_scenario, scenario_names
from repro.sim.batched import BroadcastTask, run_batched
from repro.sim.broadcast import run_broadcast
from repro.sim.links import IndependentLossLinks
from repro.sim.replay import ReplayPolicy
from repro.sim.validation import validate_broadcast

from .conftest import conformance_link_model

#: One compact deployment per scenario: large enough for multi-hop traces
#: and real interference, small enough that the full matrix stays fast.
_DEPLOY = DeploymentConfig(
    num_nodes=20,
    area_side=22.0,
    radius=8.0,
    source_min_ecc=2,
    source_max_ecc=None,
)


def _run_matrix_cell(engine, link_name, scenario, duty_model, *, seed):
    """One conformance comparison: ``engine`` vs the reference oracle.

    Returns the reference trace so callers can pile on extra invariants.
    """
    deployment = generate_scenario(scenario, _DEPLOY, seed=seed)
    topology, source = deployment.topology, deployment.source
    schedule = None
    if duty_model is not None:
        schedule = build_wakeup_schedule(
            topology.node_ids,
            rate=5,
            seed=seed + 1,
            model=duty_model,
            model_seed=seed + 2,
        )
    kwargs = dict(schedule=schedule, align_start=schedule is not None)
    reference = run_broadcast(
        topology,
        source,
        EModelPolicy(),
        engine="reference",
        link_model=conformance_link_model(link_name, seed=seed),
        **kwargs,
    )
    checked = run_broadcast(
        topology,
        source,
        EModelPolicy(),
        engine=engine,
        link_model=conformance_link_model(link_name, seed=seed),
        **kwargs,
    )
    assert checked == reference, (
        f"backend {engine!r} diverged from the reference oracle "
        f"(scenario={scenario}, duty_model={duty_model}, link={link_name})"
    )
    return reference


@pytest.mark.slow_property
@pytest.mark.parametrize("scenario", scenario_names())
def test_sync_matrix_matches_reference(engine_backend, link_model_name, scenario):
    """Round-based system: every backend × link model × scenario."""
    _run_matrix_cell(engine_backend, link_model_name, scenario, None, seed=101)


@pytest.mark.slow_property
@pytest.mark.parametrize("duty_model", duty_model_names())
@pytest.mark.parametrize("scenario", scenario_names())
def test_duty_matrix_matches_reference(
    engine_backend, link_model_name, scenario, duty_model
):
    """Duty-cycle system: every backend × link model × scenario × duty model."""
    _run_matrix_cell(engine_backend, link_model_name, scenario, duty_model, seed=202)


def test_conformance_smoke(engine_backend, link_model_name):
    """Unmarked fast subset: uniform scenario, both systems, one seed each.

    This keeps a conformance signal in every plain ``pytest`` run even when
    the slow matrices are deselected.
    """
    _run_matrix_cell(engine_backend, link_model_name, "uniform", None, seed=7)
    _run_matrix_cell(engine_backend, link_model_name, "uniform", "uniform", seed=7)


def _decision_stripe(seed: int) -> list[BroadcastTask]:
    """A heterogeneous stripe exercising every decision path of the executor.

    Policies are stateful across a run, and ``IndependentLossLinks`` draws
    from a seeded stream, so callers rebuild the stripe per execution —
    the same seed always yields the bit-identical workload.  Per scenario:
    a replay lane (vectorized batch decider), a 17-approx duty lane
    (per-lane decider + ``next_decision_slot`` fast-forward), a flooding
    lane under each link model (vectorized frontier decider, lossless and
    lossy apply paths), and a frontier-policy duty lane (the per-lane
    default fallback).
    """
    tasks: list[BroadcastTask] = []
    for offset, scenario in enumerate(scenario_names()):
        deployment = generate_scenario(scenario, _DEPLOY, seed=seed + offset)
        topology, source = deployment.topology, deployment.source
        schedule = build_wakeup_schedule(
            topology.node_ids, rate=4, seed=seed + 50 + offset
        )
        trace = run_broadcast(
            topology, source, EModelPolicy(), validate=False, engine="vectorized"
        )
        duty = dict(schedule=schedule, align_start=True)
        tasks.extend(
            (
                BroadcastTask(topology, source, ReplayPolicy(trace)),
                BroadcastTask(topology, source, Approx17Policy(), **duty),
                BroadcastTask(topology, source, FloodingPolicy(), **duty),
                BroadcastTask(
                    topology,
                    source,
                    FloodingPolicy(),
                    link_model=IndependentLossLinks(0.2, seed=seed + 90 + offset),
                    **duty,
                ),
                BroadcastTask(topology, source, EModelPolicy(), **duty),
            )
        )
    return tasks


@pytest.mark.slow_property
def test_batched_decisions_match_fallback():
    """``batch_decisions=True`` is bit-identical to the per-lane fallback.

    The contract of the batched decision protocol: any batch size, lane
    grouping, or decision path returns the per-lane traces exactly.  The
    chunkings pin the edge cases — one whole-group batch, lane batches of
    one (every decider sees singleton views), and ``L - 1`` (one group is
    split mid-stripe).
    """
    seed = 31
    lane_count = len(_decision_stripe(seed))
    for batch in (0, 1, lane_count - 1):
        expected = run_batched(
            _decision_stripe(seed),
            batch=batch,
            batch_decisions=False,
            validate=False,
        )
        actual = run_batched(
            _decision_stripe(seed), batch=batch, validate=False
        )
        assert actual == expected, (
            f"batched decisions diverged from the per-lane fallback "
            f"(batch={batch})"
        )


def test_reference_matrix_traces_validate(link_model_name):
    """The oracle's own traces pass the validator on a matrix sample.

    Conformance equality is only meaningful if the reference side is itself
    clean; this pins the validator agreement for both link models.
    """
    deployment = generate_scenario("clustered", _DEPLOY, seed=11)
    topology, source = deployment.topology, deployment.source
    schedule = build_wakeup_schedule(topology.node_ids, rate=4, seed=12)
    link = conformance_link_model(link_model_name, seed=13)
    trace = run_broadcast(
        topology,
        source,
        EModelPolicy(),
        schedule=schedule,
        align_start=True,
        engine="reference",
        link_model=link,
    )
    lossy = not link.lossless
    for backend in ("reference", "vectorized"):
        assert (
            validate_broadcast(
                topology, trace, schedule=schedule, backend=backend, lossy=lossy
            )
            == []
        )
