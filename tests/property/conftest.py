"""Hypothesis strategies and conformance fixtures shared by the property tests."""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, settings
from hypothesis import strategies as st

from repro.network.topology import WSNTopology
from repro.sim.broadcast import ENGINE_BACKENDS
from repro.sim.links import LINK_MODELS, build_link_model

# Connected-UDG generation rejects disconnected draws, which trips the
# default filter-rate health check on small node counts; the rejection rate
# is expected and harmless for these structural properties.
settings.register_profile(
    "repro",
    suppress_health_check=[HealthCheck.filter_too_much, HealthCheck.too_slow],
    deadline=None,
)
settings.load_profile("repro")


@st.composite
def udg_topologies(draw, min_nodes: int = 4, max_nodes: int = 18, connected: bool = True):
    """Random connected unit-disc-graph topologies on a small area.

    Positions are drawn on a coarse grid (two decimals) to avoid
    degenerate floating-point edge cases; the radius is chosen large enough
    that connectivity is common, and disconnected draws are rejected via
    ``hypothesis.assume``-style filtering in the caller when required.
    """
    from hypothesis import assume

    count = draw(st.integers(min_nodes, max_nodes))
    side = 7.0
    coords = draw(
        st.lists(
            st.tuples(
                st.integers(0, 70).map(lambda v: v * side / 70),
                st.integers(0, 70).map(lambda v: v * side / 70),
            ),
            min_size=count,
            max_size=count,
            unique=True,
        )
    )
    radius = draw(st.sampled_from([3.0, 4.0, 5.0]))
    topology = WSNTopology.from_positions(coords, radius=radius)
    if connected:
        assume(topology.is_connected())
    return topology


@st.composite
def topologies_with_source(draw, **kwargs):
    """A connected topology plus a source node drawn from it."""
    topology = draw(udg_topologies(**kwargs))
    source = draw(st.sampled_from(sorted(topology.node_ids)))
    return topology, source


@st.composite
def coverage_states(draw, **kwargs):
    """A connected topology plus a covered set that grew from a source by BFS.

    Mirrors how real broadcast states look: the covered set is always
    connected and contains the source, which is what the colouring engine
    encounters in practice.
    """
    topology, source = draw(topologies_with_source(**kwargs))
    distances = topology.hop_distances(source)
    order = sorted(distances, key=lambda u: (distances[u], u))
    prefix = draw(st.integers(1, len(order)))
    covered = frozenset(order[:prefix])
    return topology, source, covered


def is_power_of_two_area(value: float) -> bool:  # pragma: no cover - helper
    return math.isfinite(value)


# ---------------------------------------------------------------------------
# Backend conformance fixtures
#
# Every engine backend must be bit-identical to the reference oracle for
# every link model — that is the contract new backends sign by registering
# in ENGINE_BACKENDS.  The fixtures below parameterize conformance suites
# over the *registries* (not hand-written name lists), so registering a new
# backend or link model automatically enrolls it in the whole matrix.

#: Loss probability used whenever a conformance run needs a lossy model;
#: high enough that failed deliveries actually occur on small topologies.
CONFORMANCE_LOSS = 0.25


@pytest.fixture(params=sorted(ENGINE_BACKENDS))
def engine_backend(request) -> str:
    """Every registered engine backend, including the reference oracle."""
    return request.param


@pytest.fixture(params=sorted(name for name in ENGINE_BACKENDS if name != "reference"))
def fast_backend(request) -> str:
    """Every non-reference backend (the ones checked against the oracle)."""
    return request.param


@pytest.fixture(params=sorted(LINK_MODELS))
def link_model_name(request) -> str:
    """Every registered link model name."""
    return request.param


def conformance_link_model(name: str, seed: int = 0):
    """A concrete link model for a conformance run.

    The lossy models get a fixed, test-controlled seed: backends must be
    bit-identical per (model, seed), so the same seed goes to every backend
    of one comparison.
    """
    loss = 0.0 if name == "reliable" else CONFORMANCE_LOSS
    return build_link_model(name, loss_probability=loss, seed=seed)
