"""Hypothesis strategies and conformance fixtures shared by the property tests."""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, settings
from hypothesis import strategies as st

from repro.network.topology import WSNTopology
from repro.sim.broadcast import ENGINE_BACKENDS
from repro.sim.links import LINK_MODELS, build_link_model

# Connected-UDG generation rejects disconnected draws, which trips the
# default filter-rate health check on small node counts; the rejection rate
# is expected and harmless for these structural properties.
settings.register_profile(
    "repro",
    suppress_health_check=[HealthCheck.filter_too_much, HealthCheck.too_slow],
    deadline=None,
)
settings.load_profile("repro")


@st.composite
def udg_topologies(draw, min_nodes: int = 4, max_nodes: int = 18, connected: bool = True):
    """Random connected unit-disc-graph topologies on a small area.

    Positions are drawn on a coarse grid (two decimals) to avoid
    degenerate floating-point edge cases; the radius is chosen large enough
    that connectivity is common, and disconnected draws are rejected via
    ``hypothesis.assume``-style filtering in the caller when required.
    """
    from hypothesis import assume

    count = draw(st.integers(min_nodes, max_nodes))
    side = 7.0
    coords = draw(
        st.lists(
            st.tuples(
                st.integers(0, 70).map(lambda v: v * side / 70),
                st.integers(0, 70).map(lambda v: v * side / 70),
            ),
            min_size=count,
            max_size=count,
            unique=True,
        )
    )
    radius = draw(st.sampled_from([3.0, 4.0, 5.0]))
    topology = WSNTopology.from_positions(coords, radius=radius)
    if connected:
        assume(topology.is_connected())
    return topology


@st.composite
def topologies_with_source(draw, **kwargs):
    """A connected topology plus a source node drawn from it."""
    topology = draw(udg_topologies(**kwargs))
    source = draw(st.sampled_from(sorted(topology.node_ids)))
    return topology, source


@st.composite
def coverage_states(draw, **kwargs):
    """A connected topology plus a covered set that grew from a source by BFS.

    Mirrors how real broadcast states look: the covered set is always
    connected and contains the source, which is what the colouring engine
    encounters in practice.
    """
    topology, source = draw(topologies_with_source(**kwargs))
    distances = topology.hop_distances(source)
    order = sorted(distances, key=lambda u: (distances[u], u))
    prefix = draw(st.integers(1, len(order)))
    covered = frozenset(order[:prefix])
    return topology, source, covered


def is_power_of_two_area(value: float) -> bool:  # pragma: no cover - helper
    return math.isfinite(value)


# ---------------------------------------------------------------------------
# Backend conformance fixtures
#
# Every engine backend must be bit-identical to the reference oracle for
# every link model — that is the contract new backends sign by registering
# in ENGINE_BACKENDS.  The fixtures below parameterize conformance suites
# over the *registries* (not hand-written name lists), so registering a new
# backend or link model automatically enrolls it in the whole matrix.

#: Loss probability used whenever a conformance run needs a lossy model;
#: high enough that failed deliveries actually occur on small topologies.
CONFORMANCE_LOSS = 0.25


@pytest.fixture(params=sorted(ENGINE_BACKENDS))
def engine_backend(request) -> str:
    """Every registered engine backend, including the reference oracle."""
    return request.param


@pytest.fixture(params=sorted(name for name in ENGINE_BACKENDS if name != "reference"))
def fast_backend(request) -> str:
    """Every non-reference backend (the ones checked against the oracle)."""
    return request.param


@pytest.fixture(params=sorted(LINK_MODELS))
def link_model_name(request) -> str:
    """Every registered link model name."""
    return request.param


def conformance_link_model(name: str, seed: int = 0):
    """A concrete link model for a conformance run.

    The lossy models get a fixed, test-controlled seed: backends must be
    bit-identical per (model, seed), so the same seed goes to every backend
    of one comparison.
    """
    loss = 0.0 if name == "reliable" else CONFORMANCE_LOSS
    return build_link_model(name, loss_probability=loss, seed=seed)


# ---------------------------------------------------------------------------
# Fabric fault-injection harness
#
# The fixtures below are the fault vocabulary of the fabric suites
# (test_fabric_faults.py, test_fabric_lease_fuzz.py): a manual clock that
# only moves when a test says so, a transport wrapper that drops / delays /
# duplicates messages on a seeded schedule, and a worker that crashes at
# precise points of its claim-simulate-post loop.  Every fault decision
# comes from a seeded ``random.Random``, so a failing schedule replays
# exactly from its seed.


class ManualClock:
    """A monotonic clock that advances only on request.

    Injected as ``LeaseQueue(clock=...)`` and as workers' ``sleep=`` (via
    :meth:`advance`), it makes lease expiry a deterministic function of the
    test script rather than of wall time.
    """

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"the clock only moves forward, got {seconds}")
        self.now += seconds


class FlakyTransport:
    """A fault-injecting wrapper around any fabric transport.

    Each request draws a fixed number of values from the seeded RNG (so
    fault schedules are a pure function of the seed, independent of which
    faults fire) and then either:

    * delivers normally,
    * **drops the request** (raises before the coordinator sees it),
    * **delays** it (advances the manual clock past the lease TTL before
      delivery — the slow-worker / lease-expiry schedule),
    * **duplicates** it (delivers twice, returning the second response —
      the at-least-once schedule), or
    * **drops the response** (delivers, then raises — the worker retries a
      result the coordinator already committed).

    Probabilities are per fault; whatever remains is a normal delivery.
    """

    def __init__(
        self,
        inner,
        rng,
        clock: ManualClock,
        *,
        drop_request: float = 0.0,
        drop_response: float = 0.0,
        duplicate: float = 0.0,
        delay: float = 0.0,
        delay_by: float = 0.0,
    ) -> None:
        from repro.fabric import TransportError

        self._inner = inner
        self._rng = rng
        self._clock = clock
        self._drop_request = drop_request
        self._drop_response = drop_response
        self._duplicate = duplicate
        self._delay = delay
        self._delay_by = delay_by
        self._error = TransportError
        self.faults: dict[str, int] = {
            "drop_request": 0,
            "drop_response": 0,
            "duplicate": 0,
            "delay": 0,
        }

    def request(self, action: str, payload: dict) -> dict:
        # Fixed draw count per request: the schedule depends only on the
        # seed and the request sequence, never on which branches fire.
        draws = [self._rng.random() for _ in range(4)]
        if draws[0] < self._drop_request:
            self.faults["drop_request"] += 1
            raise self._error(f"injected: dropped {action} request")
        if draws[1] < self._delay:
            self.faults["delay"] += 1
            self._clock.advance(self._delay_by)
        response = self._inner.request(action, payload)
        if draws[2] < self._duplicate:
            self.faults["duplicate"] += 1
            response = self._inner.request(action, payload)
        if draws[3] < self._drop_response:
            self.faults["drop_response"] += 1
            raise self._error(f"injected: dropped {action} response")
        return response

    def close(self) -> None:
        self._inner.close()


def make_flaky_worker_class():
    """Build ``FlakyWorker`` lazily so importing conftest stays cheap."""
    from repro.fabric import FabricWorker, WorkerCrashed

    class FlakyWorker(FabricWorker):
        """A worker that crashes at seeded points of its loop.

        ``crash_after_claim`` dies holding a fresh lease (the mid-cell
        crash the lease TTL exists for); ``crash_before_post`` dies with
        the simulation done but the result unposted; ``crash_after_post``
        dies after the coordinator committed — the next worker's claim
        must still converge.  Crashes raise :class:`WorkerCrashed`, which
        the run loop never catches.
        """

        def __init__(
            self,
            transport,
            rng,
            *,
            crash_after_claim: float = 0.0,
            crash_before_post: float = 0.0,
            crash_after_post: float = 0.0,
            **kwargs,
        ) -> None:
            super().__init__(transport, **kwargs)
            self._rng = rng
            self._crash_after_claim = crash_after_claim
            self._crash_before_post = crash_before_post
            self._crash_after_post = crash_after_post

        def simulate(self, cell, grant):
            if self._rng.random() < self._crash_after_claim:
                raise WorkerCrashed(f"{self.name}: crashed holding {grant['lease']}")
            return super().simulate(cell, grant)

        def post(self, payload):
            if self._rng.random() < self._crash_before_post:
                raise WorkerCrashed(f"{self.name}: crashed before posting")
            super().post(payload)
            if self._rng.random() < self._crash_after_post:
                raise WorkerCrashed(f"{self.name}: crashed after posting")

    return FlakyWorker
