"""Hypothesis strategies shared by the property-based tests."""

from __future__ import annotations

import math

from hypothesis import HealthCheck, settings
from hypothesis import strategies as st

from repro.network.topology import WSNTopology

# Connected-UDG generation rejects disconnected draws, which trips the
# default filter-rate health check on small node counts; the rejection rate
# is expected and harmless for these structural properties.
settings.register_profile(
    "repro",
    suppress_health_check=[HealthCheck.filter_too_much, HealthCheck.too_slow],
    deadline=None,
)
settings.load_profile("repro")


@st.composite
def udg_topologies(draw, min_nodes: int = 4, max_nodes: int = 18, connected: bool = True):
    """Random connected unit-disc-graph topologies on a small area.

    Positions are drawn on a coarse grid (two decimals) to avoid
    degenerate floating-point edge cases; the radius is chosen large enough
    that connectivity is common, and disconnected draws are rejected via
    ``hypothesis.assume``-style filtering in the caller when required.
    """
    from hypothesis import assume

    count = draw(st.integers(min_nodes, max_nodes))
    side = 7.0
    coords = draw(
        st.lists(
            st.tuples(
                st.integers(0, 70).map(lambda v: v * side / 70),
                st.integers(0, 70).map(lambda v: v * side / 70),
            ),
            min_size=count,
            max_size=count,
            unique=True,
        )
    )
    radius = draw(st.sampled_from([3.0, 4.0, 5.0]))
    topology = WSNTopology.from_positions(coords, radius=radius)
    if connected:
        assume(topology.is_connected())
    return topology


@st.composite
def topologies_with_source(draw, **kwargs):
    """A connected topology plus a source node drawn from it."""
    topology = draw(udg_topologies(**kwargs))
    source = draw(st.sampled_from(sorted(topology.node_ids)))
    return topology, source


@st.composite
def coverage_states(draw, **kwargs):
    """A connected topology plus a covered set that grew from a source by BFS.

    Mirrors how real broadcast states look: the covered set is always
    connected and contains the source, which is what the colouring engine
    encounters in practice.
    """
    topology, source = draw(topologies_with_source(**kwargs))
    distances = topology.hop_distances(source)
    order = sorted(distances, key=lambda u: (distances[u], u))
    prefix = draw(st.integers(1, len(order)))
    covered = frozenset(order[:prefix])
    return topology, source, covered


def is_power_of_two_area(value: float) -> bool:  # pragma: no cover - helper
    return math.isfinite(value)
