"""Property-based (hypothesis) tests."""
