"""Determinism under telemetry: observation must never perturb the records.

The telemetry contract (docs/telemetry.md): attaching any sink set to the
event bus changes *nothing* about a sweep's output — records are byte-equal
with no sink, a ring buffer, a jsonl trace, or the full metrics fold, for
every engine and for threaded fleet execution.  Events carry no RNG state
and no instrumented code path reads the bus, so the only way this property
can break is an instrumentation bug; this suite is the tripwire.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import SearchConfig, SweepConfig
from repro.experiments.runner import SweepResult, run_sweep
from repro.fabric import LocalFleet
from repro.obs.bus import EVENT_BUS
from repro.obs.metrics import MetricsSink
from repro.obs.sinks import JsonlTraceSink, RingBufferSink, read_trace
from repro.utils.format import to_csv

ENGINES = ("reference", "vectorized", "batched")


def _config() -> SweepConfig:
    return SweepConfig(
        node_counts=(16, 24),
        area_side=10.0,
        radius=4.0,
        repetitions=2,
        source_min_ecc=1,
        source_max_ecc=None,
        search=SearchConfig(mode="beam", beam_width=2),
        max_color_classes=4,
    )


def _sweep(engine: str, **kwargs) -> SweepResult:
    return run_sweep(_config(), system="duty", rate=5, engine=engine, **kwargs)


def _csv(result: SweepResult) -> str:
    """The byte-level record serialization the equality claim is made on."""
    return to_csv(SweepResult.ROW_HEADERS, result.to_rows())


@pytest.fixture(autouse=True)
def quiet_bus():
    assert EVENT_BUS.sinks == (), "a previous test leaked a sink"
    yield
    for sink in EVENT_BUS.sinks:
        EVENT_BUS.detach(sink)


@pytest.mark.parametrize("engine", ENGINES)
def test_records_are_byte_identical_with_every_sink_set(engine, tmp_path):
    bare = _sweep(engine)

    ring = RingBufferSink()
    with EVENT_BUS.attached(ring):
        ringed = _sweep(engine)

    jsonl = JsonlTraceSink(tmp_path / f"{engine}.jsonl")
    metrics = MetricsSink()
    with EVENT_BUS.attached(jsonl, metrics):
        folded = _sweep(engine)
    jsonl.close()

    assert ringed.records == bare.records
    assert folded.records == bare.records
    assert _csv(ringed) == _csv(bare)
    assert _csv(folded) == _csv(bare)
    # The observation itself actually happened (no vacuous pass):
    assert ring.counts().get("cell_finished") == 4
    assert jsonl.written > 0
    assert sum(1 for _ in read_trace(jsonl.path)) == jsonl.written
    fold = metrics.registry.snapshot()
    assert fold["counters"]["sweep.cells_finished"] == 4


@pytest.mark.parametrize("engine", ("reference", "batched"))
def test_pool_workers_stay_byte_identical_under_telemetry(engine):
    # Forked pool children reset their inherited bus (fork-safety), so the
    # parent still observes every cell finish and the records stay equal.
    bare = _sweep(engine, workers=2)
    ring = RingBufferSink()
    with EVENT_BUS.attached(ring):
        observed = _sweep(engine, workers=2)
    assert observed.records == bare.records
    assert _csv(observed) == _csv(bare)
    assert ring.counts().get("cell_finished") == 4


def test_threaded_fleet_stays_byte_identical_under_telemetry():
    bare = _sweep("reference")
    ring = RingBufferSink()
    with EVENT_BUS.attached(ring):
        fleet = _sweep("reference", fabric=LocalFleet(workers=2))
    assert fleet.records == bare.records
    assert _csv(fleet) == _csv(bare)
    kinds = ring.counts()
    assert kinds.get("lease_claimed", 0) >= 4  # the fleet path was observed
    assert kinds.get("cell_finished") == 4


def test_trace_replays_into_the_same_metrics_as_live_folding(tmp_path):
    # The monitor's --trace feed folds the jsonl back through MetricsSink;
    # counters must match a live in-process fold of the same run.
    from repro.obs.events import event_from_json

    live = MetricsSink()
    jsonl = JsonlTraceSink(tmp_path / "trace.jsonl")
    with EVENT_BUS.attached(live, jsonl):
        _sweep("vectorized")
    jsonl.close()
    replayed = MetricsSink()
    for payload in read_trace(jsonl.path):
        replayed.consume(event_from_json(payload))
    live_counters = live.registry.snapshot()["counters"]
    replayed_counters = replayed.registry.snapshot()["counters"]
    assert replayed_counters == live_counters
