"""Property-based tests for the UDG topology substrate."""

from __future__ import annotations

from hypothesis import given, settings

from repro.network.boundary import boundary_nodes, hull_nodes
from repro.network.geometry import euclidean_distance
from repro.network.quadrant import QUADRANTS, quadrant_partition

from .conftest import topologies_with_source, udg_topologies


@settings(max_examples=60, deadline=None)
@given(udg_topologies(connected=False))
def test_udg_edges_match_distance_threshold(topology):
    """u-v is an edge iff dist(u, v) <= radius (UDG definition)."""
    radius = topology.radius
    for u in topology.node_ids:
        for v in topology.node_ids:
            if u >= v:
                continue
            distance = euclidean_distance(topology.position(u), topology.position(v))
            assert topology.has_edge(u, v) == (distance <= radius + 1e-12)


@settings(max_examples=60, deadline=None)
@given(udg_topologies(connected=False))
def test_neighborhoods_are_symmetric_and_irreflexive(topology):
    for u in topology.node_ids:
        assert u not in topology.neighbors(u)
        for v in topology.neighbors(u):
            assert u in topology.neighbors(v)


@settings(max_examples=60, deadline=None)
@given(udg_topologies(connected=False))
def test_mask_and_set_views_agree(topology):
    """The bitmask fast path is consistent with the frozenset API."""
    for u in topology.node_ids:
        assert topology.nodes_from_mask(topology.neighbor_mask(u)) == topology.neighbors(u)
    assert topology.nodes_from_mask(topology.full_mask) == topology.node_set


@settings(max_examples=60, deadline=None)
@given(topologies_with_source())
def test_hop_distances_satisfy_triangle_step(case):
    """BFS distances differ by at most one across an edge."""
    topology, source = case
    distances = topology.hop_distances(source)
    for u, v in topology.edges():
        assert abs(distances[u] - distances[v]) <= 1


@settings(max_examples=60, deadline=None)
@given(topologies_with_source())
def test_bfs_layers_partition_nodes(case):
    topology, source = case
    layers = topology.bfs_layers(source)
    union = set()
    for layer in layers:
        assert union.isdisjoint(layer)
        union |= layer
    assert union == set(topology.node_set)


@settings(max_examples=60, deadline=None)
@given(udg_topologies(connected=False))
def test_quadrants_partition_each_neighborhood(topology):
    for u in topology.node_ids:
        partition = quadrant_partition(topology, u)
        assert set(partition) == set(QUADRANTS)
        union = frozenset().union(*partition.values())
        assert union == topology.neighbors(u)
        assert sum(len(p) for p in partition.values()) == len(topology.neighbors(u))


@settings(max_examples=40, deadline=None)
@given(udg_topologies(connected=False, min_nodes=3))
def test_hull_nodes_are_boundary_nodes(topology):
    assert hull_nodes(topology) <= boundary_nodes(topology)
