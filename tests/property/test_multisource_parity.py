"""Cross-cutting guarantees of the multi-source broadcast subsystem.

The tentpole invariants of the multi-source workload:

* **engine parity** — ``run_broadcast(sources, ...)`` produces *bit-identical*
  :class:`~repro.sim.trace.MultiBroadcastResult` traces on the reference and
  the vectorized backend, across deployment scenarios, duty models, message
  counts ``k ∈ {1, 2, 4}`` and every registered link model;
* **single-source identity** — a one-element source list wraps a per-message
  trace *equal* to the plain single-source ``run_broadcast`` call, reliable
  and lossy alike;
* **worker invariance** — multi-source sweep records are bit-identical for
  any worker count (the per-cell ``"multi-source"`` placement split removes
  any dependence on execution order) and for either engine;
* **validator agreement** — both validator backends accept every
  multi-source trace, per message and across messages.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.policies import EModelPolicy
from repro.core.time_counter import SearchConfig
from repro.dutycycle.models import build_wakeup_schedule
from repro.experiments.config import SweepConfig
from repro.experiments.runner import run_sweep
from repro.network.deployment import DeploymentConfig
from repro.network.sources import select_sources
from repro.scenarios import generate_scenario
from repro.sim.broadcast import run_broadcast
from repro.sim.links import IndependentLossLinks, ReliableLinks
from repro.sim.validation import validate_multi_broadcast
from repro.utils.rng import derive_seed

# Cross-backend parity matrices are the backend fast-path selection in CI.
pytestmark = pytest.mark.slow_property

PARITY_SCENARIOS = ("uniform", "clustered", "ring")
DUTY_MODELS = ("uniform", "two-tier")
SOURCE_COUNTS = (1, 2, 4)
LINK_MODELS = ("reliable", "independent-loss")

_DEPLOYMENT = DeploymentConfig(
    num_nodes=30,
    area_side=22.0,
    radius=7.0,
    source_min_ecc=2,
    source_max_ecc=None,
)


def _deployment(scenario: str, seed: int):
    deployment = generate_scenario(scenario, _DEPLOYMENT, seed=seed)
    return deployment.topology, deployment.source


def _schedule(topology, duty_model: str, seed: int):
    return build_wakeup_schedule(
        topology.node_ids,
        rate=6,
        seed=derive_seed(seed, "wakeup-schedule"),
        model=duty_model,
        model_seed=derive_seed(seed, "duty-model"),
    )


def _link(name: str):
    return (
        ReliableLinks()
        if name == "reliable"
        else IndependentLossLinks(0.25, seed=2012)
    )


@pytest.mark.parametrize("k", SOURCE_COUNTS)
@pytest.mark.parametrize("duty_model", DUTY_MODELS)
@pytest.mark.parametrize("scenario", PARITY_SCENARIOS)
def test_multisource_duty_traces_identical_across_backends(scenario, duty_model, k):
    """reference ≡ vectorized for every (scenario, duty model, k) duty cell."""
    topology, anchor = _deployment(scenario, seed=211)
    schedule = _schedule(topology, duty_model, seed=211)
    sources = select_sources(topology, k, placement="spread", seed=3, anchor=anchor)
    traces = {}
    for engine in ("reference", "vectorized"):
        traces[engine] = run_broadcast(
            topology,
            list(sources),
            EModelPolicy(),
            schedule=schedule,
            align_start=True,
            engine=engine,
        )
    assert traces["reference"] == traces["vectorized"]
    assert traces["reference"].is_complete(topology)
    assert traces["reference"].num_messages == k


@pytest.mark.parametrize("link_model", LINK_MODELS)
@pytest.mark.parametrize("k", SOURCE_COUNTS)
@pytest.mark.parametrize("scenario", PARITY_SCENARIOS)
def test_multisource_sync_traces_identical_across_backends(scenario, k, link_model):
    """reference ≡ vectorized on the round-based system, all link models."""
    topology, anchor = _deployment(scenario, seed=87)
    sources = select_sources(topology, k, placement="random", seed=9, anchor=anchor)
    traces = {}
    for engine in ("reference", "vectorized"):
        traces[engine] = run_broadcast(
            topology,
            list(sources),
            EModelPolicy(),
            engine=engine,
            link_model=_link(link_model),
        )
    assert traces["reference"] == traces["vectorized"]
    assert traces["reference"].is_complete(topology)


@pytest.mark.parametrize("link_model", LINK_MODELS)
@pytest.mark.parametrize("duty_model", DUTY_MODELS)
def test_multisource_lossy_duty_parity(duty_model, link_model):
    """The loss axis composes with multi-source on the duty-cycle system."""
    topology, anchor = _deployment("clustered", seed=51)
    schedule = _schedule(topology, duty_model, seed=51)
    sources = select_sources(topology, 3, placement="spread", seed=4, anchor=anchor)
    traces = {}
    for engine in ("reference", "vectorized"):
        traces[engine] = run_broadcast(
            topology,
            list(sources),
            EModelPolicy(),
            schedule=schedule,
            align_start=True,
            engine=engine,
            link_model=_link(link_model),
        )
    assert traces["reference"] == traces["vectorized"]


@pytest.mark.parametrize("link_model", LINK_MODELS)
@pytest.mark.parametrize("engine", ["reference", "vectorized"])
def test_single_element_sources_reproduce_single_source_traces(engine, link_model):
    """``sources=[s]`` wraps a trace equal to the plain single-source run."""
    topology, source = _deployment("uniform", seed=33)
    schedule = _schedule(topology, "uniform", seed=33)
    multi = run_broadcast(
        topology,
        [source],
        EModelPolicy(),
        schedule=schedule,
        align_start=True,
        engine=engine,
        link_model=_link(link_model),
    )
    single = run_broadcast(
        topology,
        source,
        EModelPolicy(),
        schedule=schedule,
        align_start=True,
        engine=engine,
        link_model=_link(link_model),
    )
    assert multi.num_messages == 1
    assert multi.messages[0] == single
    assert multi.latency == single.latency


@pytest.mark.parametrize("scenario", ("uniform", "ring"))
def test_multisource_trace_validates_on_both_backends(scenario):
    """Per-message and cross-message checks pass on both validator backends."""
    topology, anchor = _deployment(scenario, seed=19)
    schedule = _schedule(topology, "two-tier", seed=19)
    sources = select_sources(topology, 4, placement="corner", seed=1,
                             area_side=22.0, anchor=anchor)
    trace = run_broadcast(
        topology,
        list(sources),
        EModelPolicy(),
        schedule=schedule,
        align_start=True,
        validate=False,
    )
    for backend in ("reference", "vectorized"):
        assert validate_multi_broadcast(
            topology, trace, schedule=schedule, backend=backend
        ) == []


def _multi_config(**overrides) -> SweepConfig:
    base = dict(
        node_counts=(24, 30),
        repetitions=2,
        search=SearchConfig(mode="beam", beam_width=2),
        max_color_classes=4,
        source_min_ecc=2,
        source_max_ecc=None,
        area_side=22.0,
        radius=7.0,
        n_sources=3,
        source_placement="spread",
    )
    base.update(overrides)
    return SweepConfig(**base)


def test_multisource_sweep_records_are_worker_invariant():
    """Multi-source sweep records are bit-identical for any worker count."""
    config = _multi_config()
    serial = run_sweep(config, system="sync", workers=1)
    parallel = run_sweep(config, system="sync", workers=2)
    assert serial.records == parallel.records
    assert all(r.n_sources == 3 for r in serial.records)
    assert all(r.source_placement == "spread" for r in serial.records)


def test_multisource_sweep_records_are_engine_invariant():
    """The multi-source axis composes with the engine axis: records match."""
    config = _multi_config(source_placement="random")
    reference = run_sweep(config, system="duty", rate=6, engine="reference")
    vectorized = run_sweep(config, system="duty", rate=6, engine="vectorized")
    assert reference.records == vectorized.records


def test_multisource_sweep_composes_with_loss_scenario_and_duty_model():
    """sources x loss x scenario x duty-model x engine x workers is one grid."""
    config = dataclasses.replace(
        _multi_config(),
        scenario="clustered",
        duty_model="two-tier",
        link_model="independent-loss",
        loss_probability=0.2,
    )
    serial = run_sweep(config, system="duty", rate=6, engine="reference", workers=1)
    parallel = run_sweep(config, system="duty", rate=6, engine="vectorized", workers=2)
    assert serial.records == parallel.records
    assert serial.records, "the composed sweep produced no records"
    assert {r.n_sources for r in serial.records} == {3}
    assert {r.link_model for r in serial.records} == {"independent-loss"}


def test_k1_sweep_records_match_plain_sweep():
    """``n_sources=1`` keeps every record identical to a plain sweep."""
    plain = _multi_config(n_sources=1)
    multi_aware = plain.with_sources(1)
    assert run_sweep(plain, system="sync").records == run_sweep(
        multi_aware, system="sync"
    ).records
