"""Cross-cutting guarantees of the scenario subsystem.

Three invariants, each over non-uniform scenarios and heterogeneous duty
models:

* engine parity — the vectorized backend reproduces the reference traces
  bit-for-bit on every scenario topology (including the non-UDG ``knn``);
* worker invariance — sweep records are bit-identical for any worker count;
* axis independence — changing the duty model never changes the deployment,
  and changing the scenario never changes a shared node's wake-up stream.
"""

from __future__ import annotations

import pytest

from repro.baselines.approx17 import Approx17Policy
from repro.core.policies import EModelPolicy, GreedyOptPolicy
from repro.core.time_counter import SearchConfig
from repro.dutycycle.models import build_wakeup_schedule
from repro.experiments.config import SweepConfig
from repro.experiments.runner import run_sweep
from repro.network.deployment import DeploymentConfig
from repro.scenarios import generate_scenario
from repro.utils.rng import derive_seed

# Cross-backend parity matrices are the backend fast-path selection in CI.
pytestmark = pytest.mark.slow_property

PARITY_SCENARIOS = ("clustered", "ring", "grid-holes", "knn")
POLICIES = {"17-approx": Approx17Policy, "E-model": EModelPolicy}


def _scenario_config(scenario: str, duty_model: str = "uniform") -> SweepConfig:
    return SweepConfig(
        node_counts=(30, 45),
        repetitions=2,
        search=SearchConfig(mode="beam", beam_width=2),
        max_color_classes=4,
        scenario=scenario,
        duty_model=duty_model,
    )


@pytest.mark.parametrize("scenario", PARITY_SCENARIOS)
@pytest.mark.parametrize("duty_model", ["uniform", "two-tier", "zipf"])
def test_engine_parity_on_scenario(scenario, duty_model):
    """Reference and vectorized traces are identical on non-uniform scenarios."""
    from repro.sim.broadcast import run_broadcast

    deployment = generate_scenario(scenario, DeploymentConfig(num_nodes=45), seed=11)
    topology, source = deployment.topology, deployment.source
    for policy_cls in (Approx17Policy, EModelPolicy, GreedyOptPolicy):
        traces = {}
        for engine in ("reference", "vectorized"):
            schedule = build_wakeup_schedule(
                topology.node_ids,
                rate=6,
                seed=derive_seed(11, "wakeup"),
                model=duty_model,
                model_seed=derive_seed(11, "model"),
            )
            traces[engine] = run_broadcast(
                topology,
                source,
                policy_cls(),
                schedule=schedule,
                align_start=True,
                engine=engine,
            )
        assert traces["reference"] == traces["vectorized"]


@pytest.mark.parametrize("scenario", ["clustered", "corridor"])
def test_sweep_records_worker_invariant_with_scenario(scenario):
    """Records are bit-identical for any worker count on scenario sweeps."""
    config = _scenario_config(scenario, duty_model="two-tier")
    serial = run_sweep(config, system="duty", rate=6, policies=POLICIES, workers=1)
    parallel = run_sweep(config, system="duty", rate=6, policies=POLICIES, workers=3)
    assert serial.records == parallel.records
    assert all(r.scenario == scenario for r in serial.records)
    assert all(r.duty_model == "two-tier" for r in serial.records)


def test_sweep_engines_agree_on_scenario():
    config = _scenario_config("ring", duty_model="zipf")
    reference = run_sweep(config, system="duty", rate=6, policies=POLICIES, workers=1)
    vectorized = run_sweep(
        config, system="duty", rate=6, policies=POLICIES, workers=2, engine="vectorized"
    )
    assert reference.records == vectorized.records


def test_duty_model_does_not_change_deployment():
    """The two workload axes are independent: same cell seed -> same topology."""
    base = _scenario_config("clustered", duty_model="uniform")
    tiered = _scenario_config("clustered", duty_model="zipf")
    a = run_sweep(base, system="duty", rate=6, policies=POLICIES)
    b = run_sweep(tiered, system="duty", rate=6, policies=POLICIES)
    for ra, rb in zip(a.records, b.records):
        assert (ra.seed, ra.source, ra.eccentricity) == (rb.seed, rb.source, rb.eccentricity)
    # ... while the heterogeneous rates genuinely change the outcome.
    assert [r.latency for r in a.records] != [r.latency for r in b.records]


def test_scenario_does_not_change_sync_policies():
    """Scenario sweeps also run in the round-based synchronous system."""
    from repro.baselines.approx26 import Approx26Policy

    config = _scenario_config("perturbed-grid")
    sweep = run_sweep(
        config, system="sync", policies={"26-approx": Approx26Policy}, workers=2
    )
    assert len(sweep.records) == 4
    assert all(r.system == "sync" and r.duty_model == "uniform" for r in sweep.records)
