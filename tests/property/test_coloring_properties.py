"""Property-based tests for the colour scheme (Eq. 1/2, Algorithm 1)."""

from __future__ import annotations

from hypothesis import given, settings

from repro.core.coloring import (
    enumerate_color_classes,
    frontier_candidates,
    greedy_color_classes,
)
from repro.network.interference import conflict_free, has_conflict, receivers_of

from .conftest import coverage_states


@settings(max_examples=60, deadline=None)
@given(coverage_states())
def test_greedy_classes_partition_the_frontier(case):
    """Every relay candidate is assigned exactly one colour."""
    topology, _, covered = case
    candidates = frontier_candidates(topology, covered)
    classes = greedy_color_classes(topology, covered)
    assigned = [u for color in classes for u in color]
    assert sorted(assigned) == sorted(candidates)


@settings(max_examples=60, deadline=None)
@given(coverage_states())
def test_greedy_classes_are_interference_free(case):
    """Eq. (1) constraint 3: members of one colour never share an uncovered neighbour."""
    topology, _, covered = case
    for color in greedy_color_classes(topology, covered):
        assert conflict_free(topology, color, covered)


@settings(max_examples=60, deadline=None)
@given(coverage_states())
def test_every_candidate_has_an_uncovered_receiver(case):
    """Eq. (1) constraints 1-2: colours only contain useful relays."""
    topology, _, covered = case
    for color in greedy_color_classes(topology, covered):
        for u in color:
            assert u in covered
            assert topology.uncovered_neighbors(u, covered)


@settings(max_examples=60, deadline=None)
@given(coverage_states())
def test_deferred_candidates_conflict_with_previous_class(case):
    """Eq. (1) constraint 4: a later colour is justified by a conflict."""
    topology, _, covered = case
    classes = greedy_color_classes(topology, covered)
    for index in range(1, len(classes)):
        for u in classes[index]:
            assert any(
                has_conflict(topology, u, v, covered) for v in classes[index - 1]
            )


@settings(max_examples=60, deadline=None)
@given(coverage_states())
def test_selected_color_coverage_grows_monotonically(case):
    """Applying any colour strictly grows coverage (the broadcast advances)."""
    topology, _, covered = case
    classes = greedy_color_classes(topology, covered)
    for color in classes:
        reached = receivers_of(topology, color, covered)
        assert reached
        assert reached.isdisjoint(covered)


@settings(max_examples=40, deadline=None)
@given(coverage_states(max_nodes=12))
def test_exhaustive_classes_are_maximal(case):
    """Eq. (1): OPT candidates are maximal interference-free relay sets."""
    topology, _, covered = case
    candidates = set(frontier_candidates(topology, covered))
    for color in enumerate_color_classes(topology, covered):
        assert conflict_free(topology, color, covered)
        for extra in candidates - color:
            assert not conflict_free(topology, color | {extra}, covered)


@settings(max_examples=40, deadline=None)
@given(coverage_states(max_nodes=12))
def test_greedy_first_class_appears_among_maximal_sets(case):
    """The greedy scheme's first colour is itself maximal, hence an OPT candidate."""
    topology, _, covered = case
    classes = greedy_color_classes(topology, covered)
    if not classes:
        return
    exhaustive = enumerate_color_classes(topology, covered)
    assert classes[0] in exhaustive
