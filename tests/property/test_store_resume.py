"""The store's tentpole property: warm and resumed sweeps are bit-identical.

The acceptance criterion of the persistent experiment store, executable:
for deployment scenarios × engine backends × worker counts,

* **warm identity** — ``run_sweep`` with a fully populated store returns
  records *bit-identical* to a cold (store-less) run — loading cells from
  disk is indistinguishable from simulating them;
* **resume identity** — a *partially* populated store (an interrupted
  sweep, or a smaller grid persisted earlier) resumes to the same records
  while simulating only the missing cells;
* **cross-execution reuse** — cells cached by one (engine, workers)
  combination satisfy every other combination, because the cache key
  deliberately excludes both.
"""

from __future__ import annotations

import pytest

from repro.baselines.approx17 import Approx17Policy
from repro.core.policies import EModelPolicy
from repro.core.time_counter import SearchConfig
from repro.experiments.config import SweepConfig
from repro.experiments.runner import run_sweep
from repro.store import ExperimentStore

SCENARIOS = ("uniform", "clustered")
ENGINES = ("reference", "vectorized")
WORKER_COUNTS = (1, 2)

#: Cheap line-up so the grid (2 node counts x 2 repetitions) stays fast.
POLICIES = {"17-approx": Approx17Policy, "E-model": EModelPolicy}


def _config(scenario: str, node_counts: tuple[int, ...] = (16, 24)) -> SweepConfig:
    return SweepConfig(
        node_counts=node_counts,
        area_side=10.0,
        radius=4.0,
        repetitions=2,
        source_min_ecc=1,
        source_max_ecc=None,
        search=SearchConfig(mode="beam", beam_width=2),
        max_color_classes=4,
        scenario=scenario,
    )


def _sweep(config, *, engine="reference", workers=1, **kwargs):
    return run_sweep(
        config,
        system="duty",
        rate=5,
        policies=POLICIES,
        engine=engine,
        workers=workers,
        **kwargs,
    )


@pytest.mark.parametrize("scenario", SCENARIOS)
@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_warm_store_is_bit_identical_to_cold_run(tmp_path, scenario, engine, workers):
    config = _config(scenario)
    cold = _sweep(config, engine=engine, workers=workers)
    with ExperimentStore(tmp_path / "store") as store:
        populate = _sweep(config, engine=engine, workers=workers, store=store)
        assert populate.records == cold.records
        assert populate.cache_hits == 0
        assert populate.cache_misses == 4
        warm = _sweep(config, engine=engine, workers=workers, store=store)
    assert warm.records == cold.records
    assert warm.cache_hits == 4
    assert warm.cache_misses == 0


@pytest.mark.parametrize("scenario", SCENARIOS)
@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_partial_store_resumes_simulating_only_missing_cells(
    tmp_path, monkeypatch, scenario, engine, workers
):
    """An interrupted sweep's store completes to the cold-run records."""
    full = _config(scenario)
    cold = _sweep(full, engine=engine, workers=workers)
    with ExperimentStore(tmp_path / "store") as store:
        # Interrupt-equivalent: only the first node count's cells persisted
        # (the same digests the full grid derives — the grid shape is not
        # part of the key).
        _sweep(_config(scenario, node_counts=(16,)), store=store)

        import repro.experiments.runner as runner_mod

        simulated = []
        real_run_cell = runner_mod._run_cell

        def counting_run_cell(cell):
            simulated.append((cell.num_nodes, cell.repetition))
            return real_run_cell(cell)

        if workers == 1:
            # In-process execution lets us count exactly which cells were
            # simulated; multi-worker runs assert via the hit/miss split.
            monkeypatch.setattr(runner_mod, "_run_cell", counting_run_cell)
        resumed = _sweep(full, engine=engine, workers=workers, store=store)
        if workers == 1:
            assert sorted(simulated) == [(24, 0), (24, 1)]
    assert resumed.records == cold.records
    assert resumed.cache_hits == 2
    assert resumed.cache_misses == 2


def test_cells_cached_by_one_execution_mode_serve_all_others(tmp_path):
    """engine/workers are excluded from the key: one population, all reuse."""
    config = _config("clustered")
    cold = _sweep(config)
    with ExperimentStore(tmp_path / "store") as store:
        _sweep(config, engine="vectorized", workers=2, store=store)
        for engine in ENGINES:
            for workers in WORKER_COUNTS:
                warm = _sweep(config, engine=engine, workers=workers, store=store)
                assert warm.records == cold.records
                assert (warm.cache_hits, warm.cache_misses) == (4, 0)


def test_interrupt_mid_sweep_keeps_completed_cells(tmp_path, monkeypatch):
    """Cells are persisted as they finish, not at sweep end: a crash after
    the first cell leaves that cell reusable."""
    config = _config("uniform")
    import repro.experiments.runner as runner_mod

    real_run_cell = runner_mod._run_cell
    calls = []

    def exploding_run_cell(cell):
        if len(calls) == 1:
            raise KeyboardInterrupt("simulated interrupt")
        calls.append(cell)
        return real_run_cell(cell)

    with ExperimentStore(tmp_path / "store") as store:
        monkeypatch.setattr(runner_mod, "_run_cell", exploding_run_cell)
        with pytest.raises(KeyboardInterrupt):
            _sweep(config, store=store)
        monkeypatch.setattr(runner_mod, "_run_cell", real_run_cell)
        resumed = _sweep(config, store=store)
        assert resumed.cache_hits == 1
        assert resumed.cache_misses == 3
    assert resumed.records == _sweep(config).records
