"""Cross-cutting guarantees of the composable simulation core's loss axis.

The tentpole invariants of the link-model refactor:

* **lossy engine parity** — ``run_broadcast(engine="vectorized")`` with an
  :class:`~repro.sim.links.IndependentLossLinks` model reproduces the
  reference engine's lossy traces *bit-for-bit* for the same (model, seed),
  across deployment scenarios, duty models and loss probabilities;
* **zero-loss identity** — ``IndependentLossLinks(0.0)`` is declared
  lossless and takes the reliable code path, so its traces compare *equal*
  to :class:`~repro.sim.links.ReliableLinks` runs;
* **worker invariance** — lossy sweep records are bit-identical for any
  worker count (the per-cell ``"link-loss"`` seed split removes any
  dependence on execution order);
* **validator agreement** — both validator backends accept every lossy
  trace when told it is lossy, and the reference validator rejects a lossy
  trace when treated as reliable (the receivers genuinely differ).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.baselines.flooding import LargestFirstPolicy
from repro.core.policies import EModelPolicy
from repro.core.time_counter import SearchConfig
from repro.dutycycle.models import build_wakeup_schedule
from repro.experiments.config import SweepConfig
from repro.experiments.runner import run_sweep
from repro.network.deployment import DeploymentConfig
from repro.scenarios import generate_scenario
from repro.sim.broadcast import run_broadcast
from repro.sim.links import IndependentLossLinks, ReliableLinks
from repro.sim.validation import validate_broadcast
from repro.utils.rng import derive_seed

# Cross-backend parity matrices are the backend fast-path selection in CI.
pytestmark = pytest.mark.slow_property

PARITY_SCENARIOS = ("uniform", "clustered", "ring")
DUTY_MODELS = ("uniform", "two-tier")
LOSS_PROBABILITIES = (0.0, 0.1, 0.3)

_DEPLOYMENT = DeploymentConfig(
    num_nodes=30,
    area_side=22.0,
    radius=7.0,
    source_min_ecc=2,
    source_max_ecc=None,
)


def _deployment(scenario: str, seed: int):
    deployment = generate_scenario(scenario, _DEPLOYMENT, seed=seed)
    return deployment.topology, deployment.source


def _schedule(topology, duty_model: str, seed: int):
    return build_wakeup_schedule(
        topology.node_ids,
        rate=6,
        seed=derive_seed(seed, "wakeup-schedule"),
        model=duty_model,
        model_seed=derive_seed(seed, "duty-model"),
    )


@pytest.mark.parametrize("loss", LOSS_PROBABILITIES)
@pytest.mark.parametrize("duty_model", DUTY_MODELS)
@pytest.mark.parametrize("scenario", PARITY_SCENARIOS)
def test_lossy_duty_traces_identical_across_backends(scenario, duty_model, loss):
    """reference-lossy ≡ vectorized-lossy on the duty-cycle system."""
    topology, source = _deployment(scenario, seed=101)
    schedule = _schedule(topology, duty_model, seed=101)
    traces = {}
    for engine in ("reference", "vectorized"):
        traces[engine] = run_broadcast(
            topology,
            source,
            EModelPolicy(),
            schedule=schedule,
            align_start=True,
            engine=engine,
            link_model=IndependentLossLinks(loss, seed=2012),
        )
    assert traces["reference"] == traces["vectorized"]
    assert traces["reference"].covered == topology.node_set


@pytest.mark.parametrize("loss", LOSS_PROBABILITIES)
@pytest.mark.parametrize("scenario", PARITY_SCENARIOS)
def test_lossy_sync_traces_identical_across_backends(scenario, loss):
    """reference-lossy ≡ vectorized-lossy on the round-based system."""
    topology, source = _deployment(scenario, seed=77)
    traces = {}
    for engine in ("reference", "vectorized"):
        traces[engine] = run_broadcast(
            topology,
            source,
            LargestFirstPolicy(),
            engine=engine,
            link_model=IndependentLossLinks(loss, seed=5),
        )
    assert traces["reference"] == traces["vectorized"]


@pytest.mark.parametrize("engine", ["reference", "vectorized"])
def test_zero_loss_is_the_reliable_identity(engine):
    """loss=0.0 takes the lossless path: traces equal ReliableLinks runs."""
    topology, source = _deployment("uniform", seed=13)
    reliable = run_broadcast(
        topology, source, EModelPolicy(), engine=engine, link_model=ReliableLinks()
    )
    zero_loss = run_broadcast(
        topology,
        source,
        EModelPolicy(),
        engine=engine,
        link_model=IndependentLossLinks(0.0, seed=99),
    )
    default = run_broadcast(topology, source, EModelPolicy(), engine=engine)
    assert zero_loss == reliable == default
    assert all(a.intended_receivers is None for a in zero_loss.advances)


@pytest.mark.parametrize("scenario", ("uniform", "clustered"))
def test_lossy_trace_validates_on_both_backends(scenario):
    """Lossy traces are validated against *delivered* receivers everywhere."""
    topology, source = _deployment(scenario, seed=19)
    trace = run_broadcast(
        topology,
        source,
        EModelPolicy(),
        link_model=IndependentLossLinks(0.3, seed=8),
        validate=False,
    )
    assert trace.failed_deliveries > 0  # the seed actually exercises losses
    for backend in ("reference", "vectorized"):
        assert validate_broadcast(topology, trace, backend=backend, lossy=True) == []
    # Treated as a reliable trace, the delivered receivers no longer match
    # the model's expected receivers — the strict validator must object.
    strict = validate_broadcast(topology, trace, backend="reference", lossy=False)
    assert strict, "a genuinely lossy trace passed strict reliable validation"


def _lossy_config() -> SweepConfig:
    return SweepConfig(
        node_counts=(24, 30),
        repetitions=2,
        search=SearchConfig(mode="beam", beam_width=2),
        max_color_classes=4,
        source_min_ecc=2,
        source_max_ecc=None,
        area_side=22.0,
        radius=7.0,
        link_model="independent-loss",
        loss_probability=0.2,
    )


def test_lossy_sweep_records_are_worker_invariant():
    """Lossy sweep records are bit-identical for any worker count."""
    config = _lossy_config()
    serial = run_sweep(config, system="sync", workers=1)
    parallel = run_sweep(config, system="sync", workers=2)
    assert serial.records == parallel.records
    assert all(r.link_model == "independent-loss" for r in serial.records)
    assert all(r.loss_probability == 0.2 for r in serial.records)


def test_lossy_sweep_records_are_engine_invariant():
    """The loss axis composes with the engine axis: records match exactly."""
    config = _lossy_config()
    reference = run_sweep(config, system="duty", rate=6, engine="reference")
    vectorized = run_sweep(config, system="duty", rate=6, engine="vectorized")
    assert reference.records == vectorized.records


def test_lossy_sweep_composes_with_scenario_and_duty_model():
    """loss x scenario x duty-model x engine x workers is one orthogonal grid."""
    config = dataclasses.replace(
        _lossy_config(), scenario="clustered", duty_model="two-tier"
    )
    serial = run_sweep(config, system="duty", rate=6, engine="reference", workers=1)
    parallel = run_sweep(config, system="duty", rate=6, engine="vectorized", workers=2)
    assert serial.records == parallel.records
    assert serial.records, "the composed sweep produced no records"
    assert {r.scenario for r in serial.records} == {"clustered"}
    assert {r.duty_model for r in serial.records} == {"two-tier"}
