"""Property-based tests: every policy produces model-valid, bounded schedules."""

from __future__ import annotations

from hypothesis import given, settings

from repro.baselines.approx26 import Approx26Policy
from repro.baselines.flooding import LargestFirstPolicy
from repro.core.policies import EModelPolicy, GreedyOptPolicy
from repro.core.time_counter import SearchConfig
from repro.sim.broadcast import run_broadcast
from repro.sim.validation import validate_broadcast

from .conftest import topologies_with_source


def _policies():
    return [
        EModelPolicy(),
        GreedyOptPolicy(search=SearchConfig(mode="exact")),
        GreedyOptPolicy(search=SearchConfig(mode="beam", beam_width=3)),
        LargestFirstPolicy(),
        Approx26Policy(),
    ]


@settings(max_examples=30, deadline=None)
@given(topologies_with_source(max_nodes=14))
def test_every_policy_covers_every_node_with_a_valid_trace(case):
    topology, source = case
    for policy in _policies():
        result = run_broadcast(topology, source, policy, validate=False)
        assert result.covered == topology.node_set
        assert validate_broadcast(topology, result) == []


@settings(max_examples=30, deadline=None)
@given(topologies_with_source(max_nodes=14))
def test_latency_at_least_eccentricity(case):
    """No interference-aware schedule can beat one hop per round."""
    topology, source = case
    eccentricity = topology.eccentricity(source)
    for policy in _policies():
        result = run_broadcast(topology, source, policy, validate=False)
        assert result.latency >= eccentricity


@settings(max_examples=30, deadline=None)
@given(topologies_with_source(max_nodes=12))
def test_exact_gopt_within_theorem1_slack(case):
    """Theorem 1: the pipeline optimum stays within d + 2 rounds.

    The exact G-OPT search restricts colours to the greedy classes, so we
    allow the theorem's bound (stated for the unrestricted OPT selection)
    plus one extra round of slack.
    """
    topology, source = case
    eccentricity = topology.eccentricity(source)
    result = run_broadcast(
        topology, source, GreedyOptPolicy(search=SearchConfig(mode="exact"))
    )
    assert result.latency <= eccentricity + 3


@settings(max_examples=20, deadline=None)
@given(topologies_with_source(max_nodes=10))
def test_exact_opt_within_theorem1_bound(case):
    """Theorem 1 for the unrestricted OPT target: P(A) - t_s < d + 2."""
    from repro.core.policies import OptPolicy

    topology, source = case
    eccentricity = topology.eccentricity(source)
    result = run_broadcast(
        topology,
        source,
        OptPolicy(search=SearchConfig(mode="exact"), max_color_classes=None),
    )
    assert result.latency <= eccentricity + 2


@settings(max_examples=30, deadline=None)
@given(topologies_with_source(max_nodes=12))
def test_pipeline_schedulers_never_lose_to_layer_synchronised_baseline(case):
    topology, source = case
    baseline = run_broadcast(topology, source, Approx26Policy())
    gopt = run_broadcast(
        topology, source, GreedyOptPolicy(search=SearchConfig(mode="exact"))
    )
    assert gopt.latency <= baseline.latency


@settings(max_examples=25, deadline=None)
@given(topologies_with_source(max_nodes=12))
def test_each_node_receives_exactly_once(case):
    """The trace delivers the message to every non-source node exactly once."""
    topology, source = case
    result = run_broadcast(
        topology, source, GreedyOptPolicy(search=SearchConfig(mode="exact"))
    )
    delivered: dict[int, int] = {}
    for advance in result.advances:
        for node in advance.receivers:
            delivered[node] = delivered.get(node, 0) + 1
    assert set(delivered) == set(topology.node_set - {source})
    assert all(count == 1 for count in delivered.values())
