"""Seeded stdlib-``random`` fuzzing of the fabric lease state machine.

Mirrors ``test_backend_fuzz.py``: every draw derives from the test's seed
parameter, so a failing operation sequence replays from its pytest id
alone.  Each case hammers one :class:`~repro.fabric.queue.LeaseQueue` with
a random interleaving of claims, heartbeats, completions, explicit
failures, duplicate/late posts and clock advances, checking the machine's
global invariants after every single operation:

1. **Partition** — every cell is in exactly one of
   pending/leased/completed/quarantined, and the counts sum to the grid.
2. **Lease consistency** — live leases reference leased cells, one lease
   per cell, deadlines in the future of their grant.
3. **Monotone terminal states** — a completed cell never leaves
   ``completed`` (quarantine may only be re-entered from a valid late
   commit, never the other way).
4. **Bounded budgets** — attempt counts never exceed ``max_attempts``, and
   a cell reaching it is quarantined, not re-leased.
5. **Single commit** — ``complete`` returns ``"committed"`` exactly once
   per cell no matter how many times it is called.

After the random phase, a drain loop (claim → complete, advancing past any
backoff) must finish the queue: whatever the fault history, the machine
never wedges.
"""

from __future__ import annotations

import random

import pytest

from repro.fabric import Lease, LeaseQueue

from .conftest import ManualClock

_TTL = 10.0
_MAX_ATTEMPTS = 4


def _check_invariants(queue: LeaseQueue, committed_once: set[int]) -> None:
    counts = queue.counts()
    assert sum(counts.values()) == len(queue.indices)
    states = {index: queue.state_of(index) for index in queue.indices}
    assert all(
        state in ("pending", "leased", "completed", "quarantined")
        for state in states.values()
    )
    leases = queue.active_leases()
    leased_cells = [lease.index for lease in leases]
    assert len(leased_cells) == len(set(leased_cells)), "two leases on one cell"
    for lease in leases:
        assert isinstance(lease, Lease)
        assert states[lease.index] == "leased"
        assert lease.deadline > lease.granted_at
    assert counts["leased"] == len(leases)
    for index, attempts in queue.attempts.items():
        assert attempts <= _MAX_ATTEMPTS
    for index in queue.quarantined:
        assert states[index] == "quarantined"
    for index in committed_once:
        assert states[index] == "completed"


@pytest.mark.slow_property
@pytest.mark.parametrize("seed", range(20))
def test_fuzzed_lease_queue_invariants(seed):
    rng = random.Random(seed)
    clock = ManualClock()
    cell_count = rng.randint(1, 12)
    queue = LeaseQueue(
        range(cell_count),
        lease_ttl=_TTL,
        max_attempts=_MAX_ATTEMPTS,
        backoff_s=0.5,
        clock=clock,
    )
    granted: list[Lease] = []  # every lease ever granted (live or not)
    committed_once: set[int] = set()

    for step in range(rng.randint(30, 120)):
        op = rng.random()
        if op < 0.30:
            lease = queue.claim(f"fuzz-{rng.randrange(4)}")
            if lease is not None:
                granted.append(lease)
        elif op < 0.45 and granted:
            # Heartbeat a random historical lease: live ones extend, dead
            # ones must report False without disturbing anything.
            lease = rng.choice(granted)
            alive = queue.heartbeat(lease.lease_id)
            assert alive in (True, False)
        elif op < 0.65 and granted:
            # Complete a random historical lease's cell — possibly long
            # after expiry or re-lease (the late/duplicate post).
            index = rng.choice(granted).index
            outcome = queue.complete(index)
            if outcome == "committed":
                assert index not in committed_once, "double commit"
                committed_once.add(index)
            else:
                assert outcome == "duplicate"
                assert index in committed_once
        elif op < 0.75 and granted:
            queue.fail(rng.choice(granted).lease_id, "fuzzed rejection")
        elif op < 0.9:
            clock.advance(rng.choice([0.1, 1.0, _TTL / 2, _TTL + 1.0]))
            queue.expire()
        else:
            hint = queue.next_event_in()
            assert hint >= 0.0
        _check_invariants(queue, committed_once)

    # Drain: a compliant fleet must always be able to finish the queue.
    for _ in range(10 * cell_count + 10):
        if queue.done:
            break
        lease = queue.claim("drain")
        if lease is None:
            clock.advance(max(queue.next_event_in(), 0.1))
            continue
        assert queue.complete(lease.index) == "committed"
        committed_once.add(lease.index)
        _check_invariants(queue, committed_once)
    assert queue.done, f"seed {seed}: queue wedged with {queue.counts()}"
    # Every non-quarantined cell ended completed, each committed exactly once.
    assert committed_once == {
        index
        for index in queue.indices
        if queue.state_of(index) == "completed"
    }
