"""Property: every fast backend is bit-identical to the reference engines.

For random connected UDG topologies, random duty cycles and several
policies, ``run_broadcast`` under every non-reference entry of
:data:`~repro.sim.ENGINE_BACKENDS` must return a
:class:`~repro.sim.trace.BroadcastResult` that compares *equal* to the
reference engine's — same advances, same times, same coverage — and both
validators must agree the trace is clean.  This is the correctness oracle
of the fast backends: any drift in interference checking, receiver
computation, wake-up handling or idle-slot skipping shows up here.  (The
deterministic scenario × duty-model × loss matrix lives in
``test_backend_conformance.py``; this file is the hypothesis-driven half.)
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.approx17 import Approx17Policy
from repro.baselines.approx26 import Approx26Policy
from repro.baselines.flooding import LargestFirstPolicy
from repro.core.policies import EModelPolicy
from repro.dutycycle.schedule import WakeupSchedule
from repro.sim.broadcast import ENGINE_BACKENDS, run_broadcast
from repro.sim.replay import ReplayPolicy
from repro.sim.validation import validate_broadcast

from .conftest import topologies_with_source

FAST_BACKENDS = sorted(name for name in ENGINE_BACKENDS if name != "reference")

# Cross-backend parity matrices are the backend fast-path selection in CI.
pytestmark = pytest.mark.slow_property

SYNC_POLICIES = {
    "largest-first": LargestFirstPolicy,
    "e-model": EModelPolicy,
    "26-approx": Approx26Policy,
}
DUTY_POLICIES = {
    "largest-first": LargestFirstPolicy,
    "e-model": EModelPolicy,
    "17-approx": Approx17Policy,
}


@settings(max_examples=25)
@given(
    drawn=topologies_with_source(),
    policy_key=st.sampled_from(sorted(SYNC_POLICIES)),
)
def test_round_engines_produce_identical_traces(drawn, policy_key):
    topology, source = drawn
    make_policy = SYNC_POLICIES[policy_key]
    reference = run_broadcast(topology, source, make_policy(), engine="reference")
    for backend in FAST_BACKENDS:
        checked = run_broadcast(topology, source, make_policy(), engine=backend)
        assert checked == reference, f"backend {backend!r} diverged"


@settings(max_examples=25)
@given(
    drawn=topologies_with_source(),
    policy_key=st.sampled_from(sorted(DUTY_POLICIES)),
    rate=st.integers(1, 8),
    schedule_seed=st.integers(0, 2**20),
)
def test_slot_engines_produce_identical_traces(drawn, policy_key, rate, schedule_seed):
    topology, source = drawn
    schedule = WakeupSchedule(topology.node_ids, rate=rate, seed=schedule_seed)
    make_policy = DUTY_POLICIES[policy_key]
    reference = run_broadcast(
        topology, source, make_policy(), schedule=schedule, align_start=True,
        engine="reference",
    )
    for backend in FAST_BACKENDS:
        checked = run_broadcast(
            topology, source, make_policy(), schedule=schedule, align_start=True,
            engine=backend,
        )
        assert checked == reference, f"backend {backend!r} diverged"
    assert validate_broadcast(topology, reference, schedule=schedule) == []
    assert (
        validate_broadcast(topology, reference, schedule=schedule, backend="vectorized")
        == []
    )


@settings(max_examples=25)
@given(
    drawn=topologies_with_source(),
    rate=st.integers(1, 6),
    schedule_seed=st.integers(0, 2**20),
)
def test_replay_round_trips_through_both_engines(drawn, rate, schedule_seed):
    """A recorded trace replays bit-identically through either backend."""
    topology, source = drawn
    schedule = WakeupSchedule(topology.node_ids, rate=rate, seed=schedule_seed)
    trace = run_broadcast(
        topology, source, LargestFirstPolicy(), schedule=schedule, align_start=True
    )
    for engine in sorted(ENGINE_BACKENDS):
        replayed = run_broadcast(
            topology,
            source,
            ReplayPolicy(trace),
            schedule=schedule,
            start_time=trace.start_time,
            engine=engine,
        )
        assert replayed == trace


@pytest.mark.parametrize("engine", sorted(ENGINE_BACKENDS))
def test_unknown_engine_rejected(engine):
    # Sanity: the valid names work and an invalid one raises.
    import re

    from repro.network.topology import WSNTopology

    positions = {0: (0.0, 0.0), 1: (1.0, 0.0)}
    topology = WSNTopology.from_edges([(0, 1)], positions)
    run_broadcast(topology, 0, LargestFirstPolicy(), engine=engine)
    with pytest.raises(ValueError, match=re.escape("unknown engine backend")):
        run_broadcast(topology, 0, LargestFirstPolicy(), engine="warp-drive")
