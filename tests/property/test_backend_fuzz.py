"""Seeded stdlib-``random`` fuzzing across every engine backend.

Hypothesis drives the structured parity suites; this file adds a second,
independent randomness source — the standard library's ``random`` module
with explicit seeds — so backend conformance is not hostage to one
generator's corpus shape.  Each fuzz case draws a random connected UDG
deployment, a random duty cycle, a random frontier policy and a random
loss probability, then asserts the two invariants the batched executor
must never break:

1. **Cross-backend trace equality** — every registered backend returns a
   trace equal to the reference engines'.
2. **Validator cleanliness** — the trace passes
   :func:`~repro.sim.validation.validate_broadcast` (against the delivered
   receivers when lossy), and the streamed run of the same parameters
   reproduces the advance sequence and summary metrics exactly.

All draws derive from the test's seed parameter, so a failing case replays
from its pytest id alone.
"""

from __future__ import annotations

import random

import pytest

from repro.baselines.flooding import LargestFirstPolicy
from repro.core.policies import EModelPolicy, GreedyOptPolicy
from repro.dutycycle.schedule import WakeupSchedule
from repro.network.topology import WSNTopology
from repro.sim.batched import BroadcastTask, run_batched
from repro.sim.broadcast import ENGINE_BACKENDS, run_broadcast
from repro.sim.links import IndependentLossLinks
from repro.sim.streaming import stream_broadcast
from repro.sim.validation import validate_broadcast

_POLICIES = (
    ("e-model", EModelPolicy),
    ("g-opt", GreedyOptPolicy),
    ("largest-first", LargestFirstPolicy),
)


def _fuzz_topology(rng: random.Random) -> WSNTopology:
    """A random connected UDG on a small area, by rejection sampling."""
    while True:
        count = rng.randint(8, 22)
        side = 7.0
        positions = set()
        while len(positions) < count:
            positions.add(
                (round(rng.uniform(0.0, side), 2), round(rng.uniform(0.0, side), 2))
            )
        radius = rng.choice([3.0, 4.0, 5.0])
        topology = WSNTopology.from_positions(sorted(positions), radius=radius)
        if topology.is_connected():
            return topology


def _fuzz_case(seed: int):
    """Derive one complete fuzz scenario from a single stdlib-random seed."""
    rng = random.Random(seed)
    topology = _fuzz_topology(rng)
    source = rng.choice(sorted(topology.node_ids))
    duty = rng.random() < 0.6
    schedule = None
    if duty:
        schedule = WakeupSchedule(
            topology.node_ids, rate=rng.randint(1, 6), seed=rng.randrange(2**20)
        )
    name, factory = _POLICIES[rng.randrange(len(_POLICIES))]
    loss = rng.choice([0.0, 0.0, 0.15, 0.3])
    link = None if loss == 0.0 else IndependentLossLinks(loss, seed=rng.randrange(2**20))
    return topology, source, schedule, factory, link


@pytest.mark.slow_property
@pytest.mark.parametrize("seed", range(24))
def test_fuzzed_backends_agree_and_validate(seed):
    topology, source, schedule, factory, link = _fuzz_case(seed)
    kwargs = dict(
        schedule=schedule,
        align_start=schedule is not None,
        link_model=link,
    )
    traces = {
        engine: run_broadcast(topology, source, factory(), engine=engine, **kwargs)
        for engine in sorted(ENGINE_BACKENDS)
    }
    reference = traces["reference"]
    for engine, trace in traces.items():
        assert trace == reference, f"backend {engine!r} diverged on fuzz seed {seed}"
    lossy = link is not None
    for backend in ("reference", "vectorized"):
        assert (
            validate_broadcast(
                topology, reference, schedule=schedule, backend=backend, lossy=lossy
            )
            == []
        ), f"fuzz seed {seed}: trace failed validation under {backend!r}"


@pytest.mark.slow_property
@pytest.mark.parametrize("seed", range(0, 24, 4))
def test_fuzzed_batched_decisions_match_fallback(seed):
    """Batched decisions == per-lane fallback == per-cell vectorized runs.

    Six fuzz cases form one heterogeneous stripe (mixed node counts, duty
    cycles, policies and loss), executed three ways per chunking: the
    batched decision protocol, the per-lane fallback, and six independent
    ``run_broadcast`` calls.  Policies and link models are stateful, so
    each execution rebuilds the stripe from the same seeds (``_fuzz_case``
    is a pure function of its seed).
    """
    case_seeds = range(seed, seed + 6)

    def stripe() -> list[BroadcastTask]:
        tasks = []
        for case_seed in case_seeds:
            topology, source, schedule, factory, link = _fuzz_case(case_seed)
            tasks.append(
                BroadcastTask(
                    topology,
                    source,
                    factory(),
                    schedule=schedule,
                    align_start=schedule is not None,
                    link_model=link,
                )
            )
        return tasks

    per_cell = []
    for case_seed in case_seeds:
        topology, source, schedule, factory, link = _fuzz_case(case_seed)
        per_cell.append(
            run_broadcast(
                topology,
                source,
                factory(),
                schedule=schedule,
                align_start=schedule is not None,
                link_model=link,
                engine="vectorized",
            )
        )
    lane_count = len(case_seeds)
    for batch in (0, 1, lane_count - 1):
        fallback = run_batched(
            stripe(), batch=batch, batch_decisions=False, validate=False
        )
        batched = run_batched(stripe(), batch=batch, validate=False)
        assert batched == fallback, (
            f"fuzz seed {seed}: batched decisions diverged from the "
            f"per-lane fallback (batch={batch})"
        )
        assert batched == per_cell, (
            f"fuzz seed {seed}: batched stripe diverged from per-cell "
            f"vectorized runs (batch={batch})"
        )


@pytest.mark.slow_property
@pytest.mark.parametrize("seed", range(0, 24, 3))
def test_fuzzed_streaming_matches_materialized(seed):
    """Streaming the same fuzz case reproduces the materialized trace."""
    topology, source, schedule, factory, link = _fuzz_case(seed)
    kwargs = dict(
        schedule=schedule,
        align_start=schedule is not None,
        link_model=link,
    )
    materialized = run_broadcast(
        topology, source, factory(), engine="vectorized", **kwargs
    )
    streamed = []
    summary = stream_broadcast(
        topology, source, factory(), sink=streamed.append, **kwargs
    )
    assert tuple(streamed) == materialized.advances
    assert summary.start_time == materialized.start_time
    assert summary.end_time == materialized.end_time
    assert summary.latency == materialized.latency
    assert summary.covered_count == len(materialized.covered)
    assert summary.num_advances == materialized.num_advances
    assert summary.total_transmissions == materialized.total_transmissions
    assert summary.failed_deliveries == materialized.failed_deliveries
    assert summary.idle_time == materialized.idle_time
