"""Property-based tests for the localized contention election."""

from __future__ import annotations

from hypothesis import given, settings

from repro.core.coloring import frontier_candidates
from repro.core.estimation import build_edge_estimate
from repro.core.localized import LocalizedEModelPolicy, local_contention_winners
from repro.network.interference import conflict_free, has_conflict
from repro.sim.broadcast import run_broadcast
from repro.sim.validation import validate_broadcast

from .conftest import coverage_states, topologies_with_source


@settings(max_examples=40, deadline=None)
@given(coverage_states(max_nodes=14))
def test_winners_are_interference_free_and_nonempty(case):
    topology, _, covered = case
    candidates = frontier_candidates(topology, covered)
    estimate = build_edge_estimate(topology)
    winners = local_contention_winners(topology, covered, candidates, estimate)
    if candidates:
        assert winners
        assert conflict_free(topology, winners, covered)
    else:
        assert winners == frozenset()


@settings(max_examples=40, deadline=None)
@given(coverage_states(max_nodes=14))
def test_winner_set_is_maximal(case):
    """Every losing candidate conflicts with at least one winner."""
    topology, _, covered = case
    candidates = frontier_candidates(topology, covered)
    estimate = build_edge_estimate(topology)
    winners = local_contention_winners(topology, covered, candidates, estimate)
    for loser in set(candidates) - winners:
        assert any(has_conflict(topology, loser, winner, covered) for winner in winners)


@settings(max_examples=25, deadline=None)
@given(topologies_with_source(max_nodes=14))
def test_localized_broadcasts_are_valid_and_bounded(case):
    topology, source = case
    result = run_broadcast(topology, source, LocalizedEModelPolicy(), validate=False)
    assert result.covered == topology.node_set
    assert validate_broadcast(topology, result) == []
    assert result.latency >= topology.eccentricity(source)
