"""Property-based tests for wake-up schedules, CWT and the duty-cycle system."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import duty_cycle_17_bound
from repro.core.policies import EModelPolicy, GreedyOptPolicy
from repro.core.time_counter import SearchConfig
from repro.dutycycle.cwt import cycle_waiting_time, max_cwt
from repro.dutycycle.schedule import WakeupSchedule
from repro.sim.broadcast import run_broadcast
from repro.sim.validation import validate_broadcast

from .conftest import topologies_with_source


@settings(max_examples=50, deadline=None)
@given(
    st.integers(1, 30),          # cycle rate
    st.integers(0, 2**30),       # seed
    st.integers(1, 6),           # number of cycles to inspect
)
def test_exactly_one_wakeup_per_cycle(rate, seed, cycles):
    schedule = WakeupSchedule([0], rate=rate, seed=seed)
    slots = schedule.active_slots_until(0, cycles * rate)
    assert len(slots) == cycles
    for index, slot in enumerate(slots):
        assert index * rate < slot <= (index + 1) * rate


@settings(max_examples=50, deadline=None)
@given(st.integers(1, 30), st.integers(0, 2**30), st.integers(1, 100))
def test_next_active_slot_within_one_cycle(rate, seed, query_slot):
    """A node always gets a sending opportunity within the next full cycle."""
    schedule = WakeupSchedule([0], rate=rate, seed=seed)
    nxt = schedule.next_active_slot(0, query_slot)
    assert query_slot <= nxt < query_slot + 2 * rate
    assert schedule.is_active(0, nxt)


@settings(max_examples=50, deadline=None)
@given(st.integers(1, 25), st.integers(0, 2**30), st.integers(1, 60))
def test_cwt_bounded_by_two_cycles(rate, seed, slot):
    schedule = WakeupSchedule([0, 1], rate=rate, seed=seed)
    wait = cycle_waiting_time(schedule, 0, 1, slot)
    assert 1 <= wait <= max_cwt(rate)


@settings(max_examples=15, deadline=None)
@given(topologies_with_source(max_nodes=10), st.integers(2, 8), st.integers(0, 2**20))
def test_duty_cycle_broadcast_valid_and_bounded(case, rate, seed):
    """Duty-cycle broadcasts are model-valid and within the Theorem-1 bound."""
    topology, source = case
    schedule = WakeupSchedule(topology.node_ids, rate=rate, seed=seed)
    policy = GreedyOptPolicy(search=SearchConfig(mode="beam", beam_width=3))
    result = run_broadcast(
        topology, source, policy, schedule=schedule, align_start=True, validate=False
    )
    assert result.covered == topology.node_set
    assert validate_broadcast(topology, result, schedule=schedule) == []
    eccentricity = topology.eccentricity(source)
    # Sanity cap: far below the 17-approximation's worst case, comfortably
    # above Theorem 1 to tolerate the beam heuristic on unlucky schedules.
    assert result.latency <= duty_cycle_17_bound(max(eccentricity, 1), max_cwt(rate))


@settings(max_examples=15, deadline=None)
@given(topologies_with_source(max_nodes=10), st.integers(2, 6), st.integers(0, 2**20))
def test_duty_cycle_latency_structure(case, rate, seed):
    """Latency counts both the advances and the unavoidable idle slots."""
    topology, source = case
    schedule = WakeupSchedule(topology.node_ids, rate=rate, seed=seed)
    duty = run_broadcast(
        topology,
        source,
        EModelPolicy(),
        schedule=schedule,
        align_start=True,
        validate=False,
    )
    eccentricity = topology.eccentricity(source)
    assert duty.latency == duty.num_advances + duty.idle_time
    assert duty.num_advances >= eccentricity
    assert duty.latency >= eccentricity
