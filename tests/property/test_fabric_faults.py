"""Fault-injection suite for the sweep fabric's determinism contract.

The contract: fabric-run sweep records are **bit-identical** to a local
``run_sweep`` of the same config — for any fleet size, worker arrival
order, and crash/retry history.  This suite attacks that claim with a
seeded fault vocabulary (``tests/property/conftest.py``):

* dropped requests and dropped responses (the worker retries a result the
  coordinator may already have committed),
* duplicated deliveries (at-least-once semantics on every message),
* injected delays that push a live lease past its TTL (the slow-worker
  schedule: the cell is re-leased while the original worker still runs),
* worker crashes holding a lease, before posting, and after posting,
* coordinator restarts between worker generations (queue rebuilt from the
  store delta plus the persisted failure journal).

Every schedule runs single-threaded on a manual clock — one flaky worker
generation at a time, lease expiry driven by explicit clock advances — so
each (schedule, seed) pair is a pure function of its pytest id and replays
exactly.  After convergence the suite asserts the records equal the cold
local baseline byte for byte, and that a plain ``run_sweep`` against the
fabric-populated store is 100% cached (same digests ⇒ same cells).
"""

from __future__ import annotations

import random
from dataclasses import replace

import pytest

from repro.experiments.config import QUICK_SWEEP
from repro.experiments.runner import run_sweep, sweep_cells
from repro.fabric import (
    FabricCoordinator,
    LocalFleet,
    LocalTransport,
    TransportError,
    WorkerCrashed,
)
from repro.store import ExperimentStore

from .conftest import FlakyTransport, ManualClock, make_flaky_worker_class

#: Small enough to keep ~20 schedule/seed runs fast, big enough that every
#: fault class actually fires (two node counts × two repetitions).
_CONFIG = replace(QUICK_SWEEP, node_counts=(50, 100), repetitions=2)
_LEASE_TTL = 5.0
_PAST_TTL = _LEASE_TTL + 1.0

#: name -> (transport faults, worker faults, restart period in generations).
SCHEDULES = {
    "clean": ({}, {}, None),
    "drop-requests": (dict(drop_request=0.3), {}, None),
    "drop-responses": (dict(drop_response=0.3), {}, None),
    "duplicates": (dict(duplicate=0.5), {}, None),
    "lease-expiry": (dict(delay=0.25, delay_by=_PAST_TTL), {}, None),
    "crashes": (
        {},
        dict(crash_after_claim=0.25, crash_before_post=0.15, crash_after_post=0.15),
        None,
    ),
    "restarts": ({}, dict(crash_after_claim=0.5), 1),
    "everything": (
        dict(drop_request=0.15, drop_response=0.15, duplicate=0.3, delay=0.1,
             delay_by=_PAST_TTL),
        dict(crash_after_claim=0.15, crash_before_post=0.1, crash_after_post=0.1),
        2,
    ),
}


@pytest.fixture(scope="module")
def baseline():
    """The cold local run every fabric schedule must reproduce exactly."""
    return run_sweep(_CONFIG, system="sync", workers=1)


def _converge(store, schedule_name: str, seed: int) -> list:
    """Drive one fault schedule to convergence; returns the cell records.

    One flaky worker generation runs at a time against a shared manual
    clock; a crash ends the generation, the clock jumps past the lease TTL
    (exactly what wall time does to a real dead worker's lease), and the
    next generation picks up the pieces.  Restart schedules additionally
    rebuild the coordinator from the store delta between generations.
    """
    transport_faults, worker_faults, restart_every = SCHEDULES[schedule_name]
    cells = sweep_cells(_CONFIG, system="sync")
    clock = ManualClock()
    rng = random.Random(seed)
    FlakyWorker = make_flaky_worker_class()

    def build_coordinator():
        return FabricCoordinator(
            cells,
            store=store,
            lease_ttl=_LEASE_TTL,
            max_attempts=100,  # faults must never quarantine a healthy cell
            backoff_s=0.5,
            clock=clock,
        )

    coordinator = build_coordinator()
    generation = 0
    while not coordinator.done:
        generation += 1
        assert generation <= 200, (
            f"schedule {schedule_name!r} seed {seed}: no convergence after "
            f"{generation - 1} worker generations"
        )
        if restart_every is not None and generation % (restart_every + 1) == 0:
            # Coordinator restart: everything in-memory is lost; the new one
            # re-partitions against the store and the persisted journal.
            coordinator = build_coordinator()
        transport = FlakyTransport(
            LocalTransport(coordinator), rng, clock, **transport_faults
        )
        worker = FlakyWorker(
            transport,
            rng,
            name=f"gen-{generation}",
            heartbeats=False,  # single-threaded: expiry is the clock's job
            sleep=clock.advance,
            poll_interval=0.25,
            claim_patience=None,  # drops are injected, not a dead server
            **worker_faults,
        )
        try:
            worker.run()
        except WorkerCrashed:
            clock.advance(_PAST_TTL)  # the dead worker's lease must expire
        except TransportError:  # pragma: no cover - defensive
            clock.advance(_PAST_TTL)
    assert not coordinator.quarantined
    return [coordinator.records_for(index) for index in range(len(cells))]


@pytest.mark.slow_property
@pytest.mark.parametrize("seed", [0, 1])
@pytest.mark.parametrize("schedule", sorted(SCHEDULES))
def test_every_fault_schedule_is_bit_identical(tmp_path, baseline, schedule, seed):
    store = ExperimentStore(tmp_path / "store")
    per_cell = _converge(store, schedule, seed)
    fabric_records = [record for records in per_cell for record in records]
    assert fabric_records == baseline.records, (
        f"schedule {schedule!r} seed {seed} broke the determinism contract"
    )
    # The fabric committed through the same digests a local sweep derives,
    # so a plain store-backed rerun must be 100% cached — and identical.
    rerun = run_sweep(_CONFIG, system="sync", store=store)
    assert rerun.cache_misses == 0
    assert rerun.cache_hits == len(per_cell)
    assert rerun.records == baseline.records
    store.close()


@pytest.mark.slow_property
@pytest.mark.parametrize("transport", ["local", "http"])
def test_threaded_fleet_matches_local_run(tmp_path, baseline, transport):
    """Real threads (and, on 'http', real loopback sockets) — same records."""
    store = ExperimentStore(tmp_path / "store")
    fleet = LocalFleet(workers=3, transport=transport)
    result = run_sweep(_CONFIG, system="sync", store=store, fabric=fleet)
    assert result.records == baseline.records
    assert result.cache_misses == len(sweep_cells(_CONFIG, system="sync"))
    rerun = run_sweep(_CONFIG, system="sync", store=store)
    assert rerun.cache_misses == 0
    assert rerun.records == baseline.records
    store.close()


def test_fabric_rejects_custom_policies(tmp_path):
    """Custom policy factories cannot cross the wire — fail fast, locally."""
    from repro.core.policies import EModelPolicy

    store = ExperimentStore(tmp_path / "store")
    with pytest.raises(ValueError, match="fabric .* default policy line-up"):
        run_sweep(
            _CONFIG,
            system="sync",
            store=store,
            fabric=LocalFleet(workers=1),
            policies={"custom": lambda: EModelPolicy()},
        )
    store.close()
