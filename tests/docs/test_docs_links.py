"""Docs health: no dead relative links, catalog in sync with the registries.

This is the test the CI ``docs`` job runs; it keeps ``docs/`` and the
README honest without pulling a docs toolchain into the dependencies.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.dutycycle.models import duty_model_names
from repro.scenarios import scenario_names
from repro.sim.links import link_model_names

REPO_ROOT = Path(__file__).resolve().parents[2]
DOC_FILES = sorted([REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")])

#: Inline markdown links ``[text](target)`` (images share the syntax).
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _relative_links(path: Path) -> list[str]:
    links = []
    for target in _LINK.findall(path.read_text()):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        links.append(target)
    return links


def test_doc_files_exist():
    assert (REPO_ROOT / "docs").is_dir()
    names = {p.name for p in DOC_FILES}
    assert {"README.md", "index.md", "architecture.md", "scenarios.md",
            "reliability.md", "reproduction.md", "workloads.md",
            "api.md"} <= names


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_no_dead_relative_links(path: Path):
    dead = []
    for target in _relative_links(path):
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.is_relative_to(REPO_ROOT):
            # GitHub-web conventions like the CI badge's ../../actions/...
            # resolve outside the repository; they are not file links.
            continue
        if not resolved.exists():
            dead.append(target)
    assert not dead, f"dead relative links in {path.name}: {dead}"


def test_scenario_catalog_covers_registry():
    """Every registered scenario and duty model is documented by name."""
    catalog = (REPO_ROOT / "docs" / "scenarios.md").read_text()
    missing = [name for name in scenario_names() if name not in catalog]
    assert not missing, f"scenarios missing from docs/scenarios.md: {missing}"
    missing_models = [name for name in duty_model_names() if name not in catalog]
    assert not missing_models, (
        f"duty models missing from docs/scenarios.md: {missing_models}"
    )


def test_readme_mentions_scenario_quickstart():
    readme = (REPO_ROOT / "README.md").read_text()
    assert "--list-scenarios" in readme
    assert "--scenario" in readme
    assert "docs/scenarios.md" in readme


def test_reproduction_guide_maps_all_paper_figures():
    guide = (REPO_ROOT / "docs" / "reproduction.md").read_text()
    for figure in ("figure3", "figure4", "figure5", "figure6", "figure7"):
        assert figure in guide, f"{figure} not mapped in docs/reproduction.md"


def test_mkdocs_nav_matches_doc_files():
    """Every docs page is reachable from the nav (mkdocs --strict cares)."""
    config = (REPO_ROOT / "mkdocs.yml").read_text()
    for page in sorted(p.name for p in (REPO_ROOT / "docs").glob("*.md")):
        assert page in config, f"{page} missing from mkdocs.yml nav"


def test_docs_never_link_outside_docs_dir():
    """mkdocs --strict rejects relative links leaving docs/; catch it here."""
    offenders = []
    for path in DOC_FILES:
        if path.name == "README.md":
            continue  # the README lives at the repo root, not in the site
        for target in _relative_links(path):
            if target.startswith(".."):
                offenders.append(f"{path.name}: {target}")
    assert not offenders, f"links escaping docs/: {offenders}"


def test_reliability_guide_covers_link_models():
    """Every registered link model is documented by name, with the contract."""
    guide = (REPO_ROOT / "docs" / "reliability.md").read_text()
    missing = [name for name in link_model_names() if name not in guide]
    assert not missing, f"link models missing from docs/reliability.md: {missing}"
    # The determinism contract and the CLI surface are the load-bearing bits.
    assert "link-loss" in guide
    assert "--loss" in guide
    assert "figure_reliability" in guide


def test_architecture_guide_describes_link_model_split():
    guide = (REPO_ROOT / "docs" / "architecture.md").read_text()
    assert "LinkModel" in guide
    assert "reliability.md" in guide


def test_workload_catalog_covers_every_workload():
    """The catalog names each workload, its CLI target and the placements."""
    from repro.network.sources import placement_names

    catalog = (REPO_ROOT / "docs" / "workloads.md").read_text()
    # One section per workload, each with its runnable CLI target.
    for needle in ("Single-source", "Lossy", "Multi-source"):
        assert needle in catalog, f"workload {needle!r} missing from the catalog"
    for target in ("sweep", "scenarios", "reliability", "multisource"):
        assert target in catalog, f"CLI target {target!r} missing from the catalog"
    # Catalog-sync: every registered placement strategy is documented.
    missing = [name for name in placement_names() if f"`{name}`" not in catalog]
    assert not missing, f"placements missing from docs/workloads.md: {missing}"
    # The per-message determinism contract is the load-bearing bit.
    assert "determinism contract" in catalog
    assert "multi-source" in catalog
    assert "--sources" in catalog and "--source-placement" in catalog


def test_reproduction_guide_documents_energy_model():
    """Cost defaults, radio ratios and the sweep energy columns are mapped."""
    guide = (REPO_ROOT / "docs" / "reproduction.md").read_text()
    assert "Energy accounting" in guide
    for column in ("tx_energy", "rx_energy", "idle_energy", "total_energy"):
        assert column in guide, f"energy column {column!r} undocumented"
    assert "CC1000" in guide and "CC2420" in guide
    assert "EnergyModel" in guide and "energy_of_broadcast" in guide


def test_reliability_guide_cross_links_energy_model():
    guide = (REPO_ROOT / "docs" / "reliability.md").read_text()
    assert "reproduction.md#energy-accounting" in guide
    assert "workloads.md" in guide


def test_solver_catalog_matches_registry_and_cli(capsys):
    """Catalog-sync: the docs table, ``--list-solvers`` and the registry
    must present the same tier names (like the scenarios checker)."""
    from repro.experiments.cli import main as cli_main
    from repro.solvers import solver_names

    catalog = (REPO_ROOT / "docs" / "solvers.md").read_text()
    missing = [name for name in solver_names() if f"`{name}`" not in catalog]
    assert not missing, f"solver tiers missing from docs/solvers.md: {missing}"

    assert cli_main(["--list-solvers"]) == 0
    out = capsys.readouterr().out
    missing_cli = [name for name in solver_names() if name not in out]
    assert not missing_cli, f"solver tiers missing from --list-solvers: {missing_cli}"

    # The load-bearing sections of the catalog page.
    assert "Determinism contract" in catalog
    assert "Proved bound vs observed ratio" in catalog
    assert "--solver" in catalog and "--list-solvers" in catalog


def test_readme_mentions_solver_quickstart():
    readme = (REPO_ROOT / "README.md").read_text()
    assert "--list-solvers" in readme
    assert "--solver" in readme
    assert "docs/solvers.md" in readme
    assert "ratio" in readme  # the approximation-ratio study target


def test_architecture_guide_describes_solver_axis():
    guide = (REPO_ROOT / "docs" / "architecture.md").read_text()
    assert "SOLVER_TIERS" in guide
    assert "solvers.md" in guide
    assert "SweepConfig.solver" in guide
