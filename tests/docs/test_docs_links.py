"""Docs health: no dead relative links, catalog in sync with the registries.

This is the test the CI ``docs`` job runs; it keeps ``docs/`` and the
README honest without pulling a docs toolchain into the dependencies.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.dutycycle.models import duty_model_names
from repro.scenarios import scenario_names
from repro.sim.links import link_model_names

REPO_ROOT = Path(__file__).resolve().parents[2]
DOC_FILES = sorted([REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")])

#: Inline markdown links ``[text](target)`` (images share the syntax).
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _relative_links(path: Path) -> list[str]:
    links = []
    for target in _LINK.findall(path.read_text()):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        links.append(target)
    return links


def test_doc_files_exist():
    assert (REPO_ROOT / "docs").is_dir()
    names = {p.name for p in DOC_FILES}
    assert {"README.md", "index.md", "architecture.md", "scenarios.md",
            "reliability.md", "reproduction.md"} <= names


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_no_dead_relative_links(path: Path):
    dead = []
    for target in _relative_links(path):
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.is_relative_to(REPO_ROOT):
            # GitHub-web conventions like the CI badge's ../../actions/...
            # resolve outside the repository; they are not file links.
            continue
        if not resolved.exists():
            dead.append(target)
    assert not dead, f"dead relative links in {path.name}: {dead}"


def test_scenario_catalog_covers_registry():
    """Every registered scenario and duty model is documented by name."""
    catalog = (REPO_ROOT / "docs" / "scenarios.md").read_text()
    missing = [name for name in scenario_names() if name not in catalog]
    assert not missing, f"scenarios missing from docs/scenarios.md: {missing}"
    missing_models = [name for name in duty_model_names() if name not in catalog]
    assert not missing_models, (
        f"duty models missing from docs/scenarios.md: {missing_models}"
    )


def test_readme_mentions_scenario_quickstart():
    readme = (REPO_ROOT / "README.md").read_text()
    assert "--list-scenarios" in readme
    assert "--scenario" in readme
    assert "docs/scenarios.md" in readme


def test_reproduction_guide_maps_all_paper_figures():
    guide = (REPO_ROOT / "docs" / "reproduction.md").read_text()
    for figure in ("figure3", "figure4", "figure5", "figure6", "figure7"):
        assert figure in guide, f"{figure} not mapped in docs/reproduction.md"


def test_mkdocs_nav_matches_doc_files():
    config = (REPO_ROOT / "mkdocs.yml").read_text()
    for page in ("index.md", "architecture.md", "scenarios.md", "reliability.md",
                 "reproduction.md"):
        assert page in config


def test_reliability_guide_covers_link_models():
    """Every registered link model is documented by name, with the contract."""
    guide = (REPO_ROOT / "docs" / "reliability.md").read_text()
    missing = [name for name in link_model_names() if name not in guide]
    assert not missing, f"link models missing from docs/reliability.md: {missing}"
    # The determinism contract and the CLI surface are the load-bearing bits.
    assert "link-loss" in guide
    assert "--loss" in guide
    assert "figure_reliability" in guide


def test_architecture_guide_describes_link_model_split():
    guide = (REPO_ROOT / "docs" / "architecture.md").read_text()
    assert "LinkModel" in guide
    assert "reliability.md" in guide
