"""docs/api.md stays in sync with the code: every documented symbol imports.

The API reference lists symbols as backticked dotted paths
(`` `repro.sim.links.LinkModel` `` and the like).  This test extracts every
such path and resolves it — module first, then attribute chain — so a
rename or removal anywhere in the public surface fails the docs job
instead of silently rotting the page.
"""

from __future__ import annotations

import importlib
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
API_DOC = REPO_ROOT / "docs" / "api.md"

#: Backticked dotted paths rooted at the package, e.g. `repro.sim.links.LINK_MODELS`.
_SYMBOL = re.compile(r"`(repro(?:\.\w+)+)`")


def _documented_symbols() -> list[str]:
    return sorted(set(_SYMBOL.findall(API_DOC.read_text())))


def _resolve(path: str) -> object:
    """Import ``path`` as a module, else as module + attribute chain."""
    try:
        return importlib.import_module(path)
    except ImportError:
        pass
    parts = path.split(".")
    for split in range(len(parts) - 1, 0, -1):
        try:
            obj = importlib.import_module(".".join(parts[:split]))
        except ImportError:
            continue
        for attribute in parts[split:]:
            obj = getattr(obj, attribute)
        return obj
    raise ImportError(f"cannot resolve {path!r}")


def test_api_doc_exists_and_documents_symbols():
    symbols = _documented_symbols()
    assert len(symbols) >= 30, "docs/api.md lost most of its symbol table"


@pytest.mark.parametrize("symbol", _documented_symbols())
def test_documented_symbol_resolves(symbol: str):
    _resolve(symbol)  # raises ImportError / AttributeError when out of sync


def test_key_public_surface_is_documented():
    """The load-bearing entry points must appear on the reference page."""
    text = API_DOC.read_text()
    for name in (
        "repro.run_broadcast",
        "repro.experiments.run_sweep",
        "repro.experiments.SweepConfig",
        "repro.LinkModel",
        "repro.EnergyModel",
        "repro.MultiBroadcastResult",
        "repro.select_sources",
        "repro.scenarios.generate_scenario",
        "repro.dutycycle.models.build_wakeup_schedule",
    ):
        assert f"`{name}`" in text, f"{name} missing from docs/api.md"
