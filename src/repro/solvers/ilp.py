"""Time-indexed ILP backend for the exact solver tier (scipy/HiGHS).

When :mod:`scipy` is importable the exact tier can obtain the optimal
completion *value* from a mixed-integer program solved by HiGHS
(``scipy.optimize.milp``) instead of the pure-python branch-and-bound; the
canonical *plan* is still extracted by
:func:`repro.solvers.branch_bound.extract_plan`, so records never depend on
which backend produced the value (the exact-solver determinism contract of
``docs/solvers.md``).  Without scipy, :func:`ilp_available` returns False
and the tier transparently falls back to the branch-and-bound — nothing is
installed on demand.

Formulation (decision slots ``s_0 < … < s_{K-1}`` are the slots in
``[start_time, horizon]`` with at least one awake node):

* ``x[u,k] ∈ {0,1}`` — node ``u`` (awake at ``s_k``) transmits at ``s_k``;
* ``c[v,k] ∈ [0,1]`` — ``v`` is covered by the end of ``s_k`` (continuous:
  with integral ``x`` the coverage-honesty constraint forces ``c`` at or
  below the true coverage indicator, and the objective pushes it up to it);
* ``z[k] ∈ {0,1}`` — every node is covered by the end of ``s_k``.

Constraints: a transmitter must hold the message beforehand
(``x[u,k] ≤ c[u,k-1]``); coverage is monotone and honest
(``c[v,k] ≤ c[v,k-1] + Σ_{u∈N(v)} x[u,k]``); two transmitters sharing a
*still uncovered* common neighbour ``v`` conflict
(``x[u,k] + x[w,k] ≤ 1 + c[v,k-1]``, one constraint per common neighbour);
and ``z[k] ≤ c[v,k]`` for every ``v``.  Maximising ``Σ z`` makes the
completion slot ``s_{K - Σz}``; the greedy horizon guarantees ``Σz ≥ 1``.

Every MILP-feasible ``x`` is engine-feasible (understating ``c`` only
tightens the constraints) and every engine-feasible schedule is
MILP-feasible with honest ``c`` — so the MILP optimum *is* the model's
optimum, which the unit tests cross-check against the branch-and-bound and
the brute-force oracle on every instance of the small-``n`` grid.
"""

from __future__ import annotations

from repro.dutycycle.schedule import WakeupSchedule
from repro.network.topology import WSNTopology
from repro.solvers.branch_bound import SolverError, greedy_completion
from repro.utils.validation import require

try:  # gated dependency: scipy ships HiGHS; never installed on demand
    import numpy as _np
    from scipy import sparse as _sparse
    from scipy.optimize import Bounds as _Bounds
    from scipy.optimize import LinearConstraint as _LinearConstraint
    from scipy.optimize import milp as _milp
except ImportError:  # pragma: no cover - exercised only without scipy
    _np = None

__all__ = ["ilp_available", "minimum_completion_ilp"]


def ilp_available() -> bool:
    """Whether the scipy/HiGHS MILP backend is importable."""
    return _np is not None


def minimum_completion_ilp(
    topology: WSNTopology,
    covered: frozenset[int],
    *,
    schedule: WakeupSchedule | None = None,
    start_time: int = 1,
    horizon: int | None = None,
) -> int:
    """Optimal completion slot from ``(covered, start_time)`` via HiGHS.

    ``horizon`` bounds the time-indexed formulation and must admit a
    feasible schedule; it defaults to the greedy completion slot (always
    feasible).  Raises :class:`SolverError` when scipy is unavailable, the
    topology is disconnected, or the solver fails.
    """
    if not ilp_available():
        raise SolverError(
            "the ILP backend needs scipy (HiGHS); use the branch-and-bound tier"
        )
    require(start_time >= 1, "start_time is 1-based")
    full = topology.node_set
    if covered == full:
        return start_time - 1
    if horizon is None:
        horizon = greedy_completion(topology, covered, start_time, schedule)
        if horizon is None:
            raise SolverError(
                "topology is disconnected: some node can never receive the message"
            )

    def awake(u: int, slot: int) -> bool:
        return schedule is None or schedule.is_active(u, slot)

    nodes = list(topology.node_ids)
    slots = [
        s
        for s in range(start_time, horizon + 1)
        if any(awake(u, s) for u in nodes)
    ]
    require(bool(slots), "horizon admits no slot with an awake node")
    num_slots = len(slots)

    # Variable layout: x (awake node-slot pairs), then c (node x slot), then z.
    x_index: dict[tuple[int, int], int] = {}
    for k, s in enumerate(slots):
        for u in nodes:
            if awake(u, s):
                x_index[(u, k)] = len(x_index)
    num_x = len(x_index)
    c_index = {
        (v, k): num_x + i * num_slots + k
        for i, v in enumerate(nodes)
        for k in range(num_slots)
    }
    num_vars = num_x + len(nodes) * num_slots + num_slots
    z_offset = num_x + len(nodes) * num_slots

    def covered_before(v: int, k: int) -> tuple[bool, int]:
        """``c[v, k-1]`` as ``(is_constant, constant_or_variable_index)``."""
        if v in covered:
            return True, 1  # initially covered nodes stay covered
        if k == 0:
            return True, 0
        return False, c_index[(v, k - 1)]

    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    upper: list[float] = []
    row = 0

    def add(terms: list[tuple[int, float]], ub: float) -> None:
        nonlocal row
        for col, val in terms:
            rows.append(row)
            cols.append(col)
            vals.append(val)
        upper.append(ub)
        row += 1

    lower_var = _np.zeros(num_vars)
    upper_var = _np.ones(num_vars)
    for v in covered:
        for k in range(num_slots):
            lower_var[c_index[(v, k)]] = 1.0  # initially covered stay covered

    for k in range(num_slots):
        for u in nodes:
            if (u, k) not in x_index:
                continue
            # x[u,k] <= c[u,k-1]: the transmitter already holds the message.
            is_const, before = covered_before(u, k)
            if is_const:
                if before == 0:
                    upper_var[x_index[(u, k)]] = 0.0
            else:
                add([(x_index[(u, k)], 1.0), (before, -1.0)], 0.0)
        for v in nodes:
            # Monotone, honest coverage:
            # c[v,k] <= c[v,k-1] + sum_{u in N(v) awake at k} x[u,k]
            # c[v,k] >= c[v,k-1]
            terms = [(c_index[(v, k)], 1.0)]
            is_const, before = covered_before(v, k)
            constant = 0.0
            if is_const:
                constant = float(before)
            else:
                terms.append((before, -1.0))
                add([(before, 1.0), (c_index[(v, k)], -1.0)], 0.0)
            for u in topology.neighbors(v):
                if (u, k) in x_index:
                    terms.append((x_index[(u, k)], -1.0))
            add(terms, constant)
            # z[k] <= c[v,k]: completion needs every node covered.
            add([(z_offset + k, 1.0), (c_index[(v, k)], -1.0)], 0.0)
        # Conflicts: u and w may not transmit together while a common
        # neighbour v is still uncovered at the start of the slot.
        awake_now = [u for u in nodes if (u, k) in x_index]
        for i, u in enumerate(awake_now):
            for w in awake_now[i + 1:]:
                common = topology.neighbors(u) & topology.neighbors(w)
                for v in sorted(common):
                    is_const, before = covered_before(v, k)
                    terms = [
                        (x_index[(u, k)], 1.0),
                        (x_index[(w, k)], 1.0),
                    ]
                    bound = 1.0
                    if is_const:
                        bound += float(before)
                    else:
                        terms.append((before, -1.0))
                    add(terms, bound)

    matrix = _sparse.csr_matrix(
        (vals, (rows, cols)), shape=(row, num_vars)
    )
    constraints = _LinearConstraint(matrix, ub=_np.asarray(upper))
    objective = _np.zeros(num_vars)
    objective[z_offset:] = -1.0  # maximise the number of complete slots
    integrality = _np.zeros(num_vars)
    integrality[:num_x] = 1
    integrality[z_offset:] = 1
    result = _milp(
        c=objective,
        constraints=constraints,
        integrality=integrality,
        bounds=_Bounds(lb=lower_var, ub=upper_var),
    )
    if not result.success:  # pragma: no cover - horizon is always feasible
        raise SolverError(f"HiGHS failed on the exact-tier MILP: {result.message}")
    complete_slots = int(round(-result.fun))
    if complete_slots < 1:  # pragma: no cover - horizon is always feasible
        raise SolverError("MILP found no completing schedule within the horizon")
    return slots[num_slots - complete_slots]
