"""Exhaustive brute-force oracle for the exact solver tier.

This module deliberately does **not** reuse the branch-and-bound's search
space reductions: at every slot it tries *every* conflict-free subset of
the awake frontier candidates — non-maximal subsets and idling included —
so it independently verifies the two dominance arguments (maximality and
no-useful-idling) the branch-and-bound relies on, in addition to its
arithmetic.  The only bound is the horizon (a feasible greedy completion
slot by default), which is sound because idling past a feasible completion
can never be optimal.  Exponential in both nodes and slots; intended for
the ``≤ 8``-node verification grid of the unit tests, nothing more.
"""

from __future__ import annotations

from itertools import combinations

from repro.core.coloring import frontier_candidates
from repro.dutycycle.schedule import WakeupSchedule
from repro.network.interference import conflict_free, receivers_of
from repro.network.topology import WSNTopology
from repro.solvers.branch_bound import SolverError, greedy_completion
from repro.utils.validation import require

__all__ = ["brute_force_completion"]

_INFEASIBLE = None


def brute_force_completion(
    topology: WSNTopology,
    covered: frozenset[int],
    *,
    schedule: WakeupSchedule | None = None,
    start_time: int = 1,
    horizon: int | None = None,
) -> int:
    """Optimal completion slot by exhaustive enumeration.

    ``horizon`` defaults to the greedy completion slot (a feasible
    schedule, hence an upper bound on the optimum).  Raises
    :class:`~repro.solvers.branch_bound.SolverError` for disconnected
    topologies.
    """
    require(start_time >= 1, "start_time is 1-based")
    full = topology.node_set
    if covered == full:
        return start_time - 1
    if horizon is None:
        horizon = greedy_completion(topology, covered, start_time, schedule)
    if horizon is None:
        raise SolverError(
            "topology is disconnected: some node can never receive the message"
        )

    memo: dict[tuple[frozenset[int], int], int | None] = {}

    def best_from(covered: frozenset[int], time: int) -> int | None:
        """Earliest completion slot from ``(covered, time)``, ``None`` if
        nothing completes by the horizon."""
        if time > horizon:
            return _INFEASIBLE
        key = (covered, time)
        if key in memo:
            return memo[key]
        candidates = frontier_candidates(topology, covered)
        if schedule is not None:
            candidates = [u for u in candidates if schedule.is_active(u, time)]
        best: int | None = best_from(covered, time + 1)  # idle this slot
        for size in range(1, len(candidates) + 1):
            for subset in combinations(sorted(candidates), size):
                color = frozenset(subset)
                if not conflict_free(topology, color, covered):
                    continue
                child = covered | receivers_of(topology, color, covered)
                outcome = time if child == full else best_from(child, time + 1)
                if outcome is not None and (best is None or outcome < best):
                    best = outcome
        memo[key] = best
        return best

    result = best_from(covered, start_time)
    if result is None:  # pragma: no cover - the greedy horizon is feasible
        raise SolverError(f"no schedule completes by the horizon {horizon}")
    return result
