"""Solver tiers: exact schedulers, proved-bound baselines, heuristics.

The packages below this one *run* the paper's algorithm; this package
*audits* it.  :data:`SOLVER_TIERS` catalogs every guarantee level — from
the always-available exact branch-and-bound (ILP-accelerated when scipy is
importable) down to the paper's E-model heuristic — behind one registry,
and :func:`solve_broadcast` computes certified optimal schedules that
replay through the ordinary simulation engines.  The observed-vs-proved
approximation-ratio study (``figures.figure_ratio`` /
``report.ratio_claims``, CLI target ``ratio``) is built on top; see
``docs/solvers.md`` for the catalog and the exact-solver determinism
contract.
"""

from repro.solvers.branch_bound import (
    DEFAULT_MAX_STATES,
    SolverError,
    SolverLimitExceeded,
    SolverPlan,
    extract_plan,
    flood_completion_bound,
    greedy_completion,
    minimum_completion,
)
from repro.solvers.bruteforce import brute_force_completion
from repro.solvers.exact import SOLVER_BACKENDS, solve_broadcast
from repro.solvers.ilp import ilp_available, minimum_completion_ilp
from repro.solvers.policies import BranchAndBoundPolicy, ExactPolicy
from repro.solvers.registry import (
    SOLVER_TIERS,
    SolverTier,
    solver_catalog,
    solver_names,
)

__all__ = [
    "SOLVER_TIERS",
    "SolverTier",
    "solver_names",
    "solver_catalog",
    "solve_broadcast",
    "SOLVER_BACKENDS",
    "SolverPlan",
    "SolverError",
    "SolverLimitExceeded",
    "ExactPolicy",
    "BranchAndBoundPolicy",
    "minimum_completion",
    "extract_plan",
    "flood_completion_bound",
    "greedy_completion",
    "brute_force_completion",
    "ilp_available",
    "minimum_completion_ilp",
    "DEFAULT_MAX_STATES",
]
