"""The exact-tier front door: optimal value + canonical plan.

:func:`solve_broadcast` is what the solver policies call: it computes the
optimal completion slot with the selected backend and then extracts the
canonical optimal plan with the deterministic deadline search of
:mod:`repro.solvers.branch_bound`.  Because every backend is exact, the
deadline — and therefore the extracted plan — is identical whichever
backend produced the value; only the reported ``backend`` string and the
wall-clock time differ (``benchmarks/test_solvers.py`` measures the
latter).
"""

from __future__ import annotations

from repro.dutycycle.schedule import WakeupSchedule
from repro.network.topology import WSNTopology
from repro.solvers.branch_bound import (
    DEFAULT_MAX_STATES,
    SolverPlan,
    extract_plan,
    flood_completion_bound,
    minimum_completion,
)
from repro.solvers.ilp import ilp_available, minimum_completion_ilp

__all__ = ["solve_broadcast", "SOLVER_BACKENDS"]

#: Value backends of the exact tier.  ``"auto"`` prefers the ILP when a
#: solver library (scipy/HiGHS) is importable and falls back to the pure
#: python branch-and-bound otherwise — the tier stays always-available.
SOLVER_BACKENDS = ("auto", "branch-and-bound", "ilp")


def solve_broadcast(
    topology: WSNTopology,
    source: int,
    *,
    schedule: WakeupSchedule | None = None,
    start_time: int = 1,
    backend: str = "auto",
    max_states: int = DEFAULT_MAX_STATES,
    covered: frozenset[int] | None = None,
) -> SolverPlan:
    """Optimal broadcast schedule from ``source`` (or from ``covered``).

    Parameters mirror :func:`repro.sim.broadcast.run_broadcast` where they
    overlap; ``covered`` generalises the initial state for callers resuming
    a partially covered broadcast (defaults to ``{source}``).  The returned
    :class:`~repro.solvers.branch_bound.SolverPlan` replays through any
    engine backend unchanged.
    """
    if backend not in SOLVER_BACKENDS:
        raise ValueError(
            f"unknown solver backend {backend!r}; expected one of {SOLVER_BACKENDS}"
        )
    initial = frozenset({source}) if covered is None else frozenset(covered)
    use_ilp = backend == "ilp" or (backend == "auto" and ilp_available())
    if use_ilp:
        optimum = minimum_completion_ilp(
            topology, initial, schedule=schedule, start_time=start_time
        )
        lower_bound = flood_completion_bound(topology, initial, start_time, schedule)
        explored = 0
        backend_used = "ilp"
    else:
        optimum, lower_bound, explored = minimum_completion(
            topology,
            initial,
            schedule=schedule,
            start_time=start_time,
            max_states=max_states,
        )
        backend_used = "branch-and-bound"
    advances, extract_explored = extract_plan(
        topology,
        initial,
        optimum,
        schedule=schedule,
        start_time=start_time,
        max_states=max_states,
    )
    return SolverPlan(
        source=source,
        start_time=start_time,
        optimum=optimum,
        lower_bound=start_time - 1 if lower_bound is None else lower_bound,
        advances=advances,
        backend=backend_used,
        explored=explored + extract_explored,
    )
