"""Planned scheduling policies wrapping the exact solver.

:class:`ExactPolicy` and :class:`BranchAndBoundPolicy` implement the
standard :class:`~repro.core.policies.SchedulingPolicy` interface, so the
optimal schedule runs **end-to-end through the simulation engines** — every
advance of the plan is re-validated against the network model (coverage,
wake-up slots, interference) exactly like any heuristic's, and the exact
tiers slot into sweeps, figures and the store like any other policy.

Both are *planned* policies in the sense of the 17/26-approximation
baselines: the plan is computed once (lazily, at the first scheduling
decision, because the broadcast start slot is only known then) and replayed
verbatim.  Replaying a fixed plan assumes reliable delivery and exclusive
use of the timeline, so — like the baselines — they set
``loss_tolerant = False`` and are rejected for lossy link models and
multi-source workloads (see ``SOLVER_TIERS`` in :mod:`repro.solvers` for
the capability matrix).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Sequence

from repro.core.advance import Advance, BroadcastState, LaneStateView
from repro.core.policies import SchedulingPolicy
from repro.dutycycle.schedule import WakeupSchedule
from repro.network.topology import WSNTopology
from repro.solvers.branch_bound import DEFAULT_MAX_STATES, SolverPlan
from repro.solvers.exact import solve_broadcast

__all__ = ["ExactPolicy", "BranchAndBoundPolicy"]


class ExactPolicy(SchedulingPolicy):
    """Optimal minimum-latency broadcast as a planned policy.

    Uses the ILP value backend when a solver library is importable and the
    pure-python branch-and-bound otherwise; the replayed plan is the
    canonical optimal plan either way (the exact-solver determinism
    contract), so traces and records never depend on the installed
    libraries, the engine backend or the worker count.
    """

    name = "exact"
    interference_free = True
    #: Planned: replays a fixed optimal schedule, so it cannot re-plan
    #: around failed deliveries or multi-source slot contention.
    loss_tolerant = False
    #: The plan transmits at every slot with an awake frontier candidate
    #: along its own trajectory (idling is dominated), so idle-slot
    #: skipping by the vectorized engine is trace-preserving.
    frontier_driven = True

    _backend = "auto"

    def __init__(self, *, max_states: int = DEFAULT_MAX_STATES) -> None:
        self._max_states = max_states
        self._topology: WSNTopology | None = None
        self._schedule: WakeupSchedule | None = None
        self._source: int | None = None
        self._plan: SolverPlan | None = None
        self._by_time: dict[int, Advance] = {}
        self._times: list[int] = []

    @property
    def plan(self) -> SolverPlan | None:
        """The solved optimal plan (``None`` until the first decision)."""
        return self._plan

    def prepare(
        self,
        topology: WSNTopology,
        schedule: WakeupSchedule | None,
        source: int,
    ) -> None:
        self._topology = topology
        self._schedule = schedule
        self._source = source
        self._plan = None
        self._by_time = {}
        self._times = []

    def _solve(self, state: BroadcastState) -> None:
        assert self._source is not None
        plan = solve_broadcast(
            state.topology,
            self._source,
            schedule=state.schedule,
            start_time=state.time,
            backend=self._backend,
            max_states=self._max_states,
            covered=state.covered,
        )
        self._plan = plan
        self._by_time = {a.time: a for a in plan.advances}
        self._times = sorted(self._by_time)

    def select_advance(self, state: BroadcastState) -> Advance | None:
        if self._topology is None or self._topology is not state.topology:
            raise RuntimeError(
                f"{type(self).__name__} needs prepare() for this topology "
                "before select_advance()"
            )
        if state.is_complete:
            return None
        if self._plan is None:
            self._solve(state)
        return self._by_time.get(state.time)

    def next_decision_slot(self, time: int) -> int | None:
        """The next planned transmission slot (no promise before solving)."""
        if self._plan is None:
            return None
        index = bisect_left(self._times, time)
        if index == len(self._times):
            return None if not self._times else self._times[-1] + 1_000_000_000
        return self._times[index]

    def select_advance_batch(
        self, views: Sequence[LaneStateView]
    ) -> list[Advance | None]:
        """Batched replay of the solved plans: one dict lookup per lane.

        Lanes whose plan is not solved yet (or that were never prepared)
        take the per-lane path, preserving the lazy first-decision solve and
        the unprepared-policy error.
        """
        decisions: list[Advance | None] = []
        for view in views:
            policy = view.policy
            if (
                policy._plan is None
                or policy._topology is not view.topology
                or view.is_complete
            ):
                # Delegation keeps the canonical order of the per-lane
                # checks: unprepared error, completion, lazy solve.
                decisions.append(policy.select_advance(view))
            else:
                decisions.append(policy._by_time.get(view.time))
        return decisions


class BranchAndBoundPolicy(ExactPolicy):
    """The exact tier pinned to the pure-python branch-and-bound backend.

    Identical plans and records to :class:`ExactPolicy` (both backends are
    exact and the canonical plan extraction is shared); exists so the
    always-available fallback is exercised and benchmarked even where a
    solver library is importable.
    """

    name = "branch-and-bound"
    _backend = "branch-and-bound"
