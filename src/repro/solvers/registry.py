"""The solver-tier registry: one catalog for every scheduler guarantee level.

Mirrors the other capability registries of the stack
(:data:`repro.sim.broadcast.ENGINE_BACKENDS`,
:data:`repro.sim.links.LINK_MODELS`, the scenario and duty-model
registries): :data:`SOLVER_TIERS` maps a tier name to a
:class:`SolverTier` describing its optimality guarantee, instance-size
limit and workload support, plus the policy factory that realises it.  The
experiment configuration (``SweepConfig.solver``), the CLI
(``--solver`` / ``--list-solvers``) and the docs catalog
(``docs/solvers.md``, kept in sync by a test) all resolve tiers through
this table, so a new tier plugs in here and is immediately selectable
everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.baselines.approx17 import Approx17Policy
from repro.baselines.approx26 import Approx26Policy
from repro.core.policies import EModelPolicy, SchedulingPolicy
from repro.solvers.policies import BranchAndBoundPolicy, ExactPolicy

__all__ = ["SolverTier", "SOLVER_TIERS", "solver_names", "solver_catalog"]


@dataclass(frozen=True)
class SolverTier:
    """One row of the solver catalog.

    Attributes
    ----------
    name:
        Registry key; also the policy name appearing in records and traces.
    summary:
        One-line description for ``--list-solvers`` and the docs catalog.
    guarantee:
        The tier's optimality guarantee (proved bound or ``optimal``).
    max_nodes:
        Largest instance the tier accepts (``None`` = unbounded).  Enforced
        by ``SweepConfig`` so an exact sweep fails at configuration time,
        not hours into a search.
    systems:
        System models the tier schedules for (``"sync"``, ``"duty"``).
    loss_tolerant:
        Whether the tier keeps working over lossy links *and* under
        multi-source slot contention (planned tiers replay a fixed schedule
        and support neither).
    factory:
        Zero-argument policy factory (a class), picklable into sweep
        workers.
    """

    name: str
    summary: str
    guarantee: str
    max_nodes: int | None
    systems: tuple[str, ...]
    loss_tolerant: bool
    factory: Callable[[], SchedulingPolicy]


#: Every selectable solver tier, strongest guarantee first.
SOLVER_TIERS: dict[str, SolverTier] = {
    tier.name: tier
    for tier in (
        SolverTier(
            name="exact",
            summary="optimal schedule; ILP (HiGHS) value when scipy is "
            "importable, branch-and-bound fallback otherwise",
            guarantee="optimal",
            max_nodes=16,
            systems=("sync", "duty"),
            loss_tolerant=False,
            factory=ExactPolicy,
        ),
        SolverTier(
            name="branch-and-bound",
            summary="optimal schedule; pure-python branch-and-bound with "
            "admissible flooding lower bounds (always available)",
            guarantee="optimal",
            max_nodes=16,
            systems=("sync", "duty"),
            loss_tolerant=False,
            factory=BranchAndBoundPolicy,
        ),
        SolverTier(
            name="17-approx",
            summary="layered duty-cycle baseline of Jiao et al. "
            "(17·k·d proved bound)",
            guarantee="17-approximation",
            max_nodes=None,
            systems=("duty",),
            loss_tolerant=False,
            factory=Approx17Policy,
        ),
        SolverTier(
            name="26-approx",
            summary="layered synchronous baseline of Chen et al. "
            "(26-approximation proved bound)",
            guarantee="26-approximation",
            max_nodes=None,
            systems=("sync",),
            loss_tolerant=False,
            factory=Approx26Policy,
        ),
        SolverTier(
            name="heuristic",
            summary="the paper's E-model scheduler (no proved bound; the "
            "default tier of every sweep)",
            guarantee="heuristic",
            max_nodes=None,
            systems=("sync", "duty"),
            loss_tolerant=True,
            factory=EModelPolicy,
        ),
    )
}


def solver_names() -> tuple[str, ...]:
    """Registered tier names, strongest guarantee first."""
    return tuple(SOLVER_TIERS)


def solver_catalog() -> list[tuple[str, str]]:
    """``(name, summary)`` pairs for the CLI's ``--list-solvers`` catalog."""
    return [(tier.name, tier.summary) for tier in SOLVER_TIERS.values()]
