"""Exact minimum-latency broadcast by deterministic branch-and-bound.

This is the always-available exact backend of the solver tiers
(:mod:`repro.solvers`): pure python, no solver library required.  The search
walks schedules depth-first over states ``(W, t)`` and is exact thanks to
two dominance properties of the paper's model (both hinge on coverage
monotonicity: every constraint of Eq. 1/3 only *relaxes* as ``W`` grows, so
any schedule feasible from ``(W, t)`` replays verbatim from ``(W', t)``
with ``W' ⊇ W``):

* *No useful idling* — transmitting some admissible colour at a slot where
  an awake frontier candidate exists is never worse than idling, because
  the remainder of any idle schedule replays from the strictly larger
  coverage and the extra early advance cannot move the **last** delivery
  later.
* *Maximality* — every admissible colour extends to a *maximal* one
  (keep adding non-conflicting candidates), and the maximal superset covers
  a superset of receivers; so branching over
  :func:`repro.core.coloring.enumerate_color_classes` (the maximal
  independent sets of the conflict graph) loses no optimal schedule.

Pruning uses an admissible lower bound, :func:`flood_completion_bound`:
the earliest completion if interference vanished, i.e. a Dijkstra-style
relaxation where a node covered at slot ``τ`` forwards at its next wake-up
slot ``> τ`` (in the synchronous system this degenerates to hop distance;
in the duty-cycle system it is at least as tight as hop distance times the
cycle length).  The incumbent is seeded by a greedy descent (always take
the first maximal colour), so the search starts with a feasible schedule.

Determinism contract
--------------------
Given ``(topology, source, schedule, start_time)`` the functions here are
pure: branching order is the sorted order of
``enumerate_color_classes`` (larger colours first, then lexicographic), so
:func:`extract_plan` returns the **canonical optimal plan** — the first
optimum-achieving leaf in that fixed depth-first order.  The ILP backend
(:mod:`repro.solvers.ilp`) only ever supplies the optimal *value*; the plan
is always extracted here, which is what makes exact-tier records
bit-identical whether or not a solver library is installed.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.core.advance import Advance
from repro.core.coloring import enumerate_color_classes, frontier_candidates
from repro.dutycycle.schedule import WakeupSchedule
from repro.network.interference import receivers_of
from repro.network.topology import WSNTopology
from repro.utils.validation import require

__all__ = [
    "SolverError",
    "SolverLimitExceeded",
    "SolverPlan",
    "flood_completion_bound",
    "greedy_completion",
    "minimum_completion",
    "extract_plan",
    "DEFAULT_MAX_STATES",
]

#: Search-state budget of the branch-and-bound (states *expanded*, summed
#: over the value search and the plan extraction).  Generous for the
#: small-``n`` instances the exact tiers accept; exceeding it raises
#: :class:`SolverLimitExceeded` instead of hanging.
DEFAULT_MAX_STATES = 500_000


class SolverError(RuntimeError):
    """The exact solver cannot handle this instance."""


class SolverLimitExceeded(SolverError):
    """The branch-and-bound exhausted its search-state budget."""


@dataclass(frozen=True)
class SolverPlan:
    """An optimal broadcast schedule plus its certificate.

    ``optimum`` is the completion slot (the engine's ``end_time``); the
    paper's latency ``P(A)`` is ``optimum - start_time + 1``.  ``advances``
    replay through :func:`repro.sim.broadcast.run_broadcast` unchanged —
    the engines re-validate every one of them against the network model.
    """

    source: int
    start_time: int
    optimum: int
    lower_bound: int
    advances: tuple[Advance, ...]
    backend: str
    explored: int

    @property
    def latency(self) -> int:
        """The paper's ``P(A)`` of the optimal schedule."""
        return max(self.optimum - self.start_time + 1, 0)


def _check_instance(
    topology: WSNTopology,
    covered: frozenset[int],
    schedule: WakeupSchedule | None,
) -> None:
    unknown = covered - topology.node_set
    require(not unknown, f"covered contains unknown nodes: {sorted(unknown)}")
    require(bool(covered), "need at least one initially covered node")
    if schedule is not None:
        missing = set(topology.node_ids) - set(schedule.node_ids)
        require(
            not missing,
            f"wake-up schedule missing nodes {sorted(missing)}",
        )


def flood_completion_bound(
    topology: WSNTopology,
    covered: frozenset[int],
    time: int,
    schedule: WakeupSchedule | None,
) -> int | None:
    """Admissible lower bound on the completion slot from state ``(W, t)``.

    Relaxation: interference vanishes, so every covered node forwards to
    *all* its neighbours at its earliest transmission opportunity.  A node
    covered at slot ``τ`` may transmit from slot ``τ + 1`` on — at the next
    slot in the synchronous system, at its next wake-up slot in the
    duty-cycle system.  The bound is the latest receive slot over the
    uncovered nodes; ``None`` means some node is unreachable (disconnected
    topology), i.e. the instance is infeasible.
    """
    best: dict[int, int] = {u: time - 1 for u in covered}
    heap: list[tuple[int, int]] = [(time - 1, u) for u in sorted(covered)]
    heapq.heapify(heap)
    while heap:
        received, u = heapq.heappop(heap)
        if received > best.get(u, received):
            continue
        if schedule is None:
            transmit = received + 1
        else:
            transmit = schedule.next_active_slot(u, received + 1)
        for v in topology.neighbors(u):
            if transmit < best.get(v, transmit + 1):
                best[v] = transmit
                heapq.heappush(heap, (transmit, v))
    if len(best) < topology.num_nodes:
        return None
    uncovered = topology.node_set - covered
    if not uncovered:
        return time - 1
    return max(best[v] for v in uncovered)


def _next_decision(
    topology: WSNTopology,
    covered: frozenset[int],
    time: int,
    schedule: WakeupSchedule | None,
) -> tuple[int, list[frozenset[int]]] | None:
    """The next slot with an awake frontier candidate, and its colours.

    Returns ``None`` when the frontier is empty (disconnected topology) or
    no candidate ever wakes again; otherwise ``(slot, colours)`` with
    ``colours`` the maximal admissible colours in canonical order.
    """
    candidates = frontier_candidates(topology, covered)
    if not candidates:
        return None
    if schedule is None:
        slot = time
        awake = None
    else:
        next_slot = schedule.next_awake_slot(candidates, time)
        if next_slot is None:  # pragma: no cover - schedules are unbounded
            return None
        slot = next_slot
        awake = schedule.awake_nodes(candidates, slot)
    colors = enumerate_color_classes(topology, covered, awake)
    if not colors:  # pragma: no cover - a candidate awake at ``slot`` exists
        return None
    return slot, colors


def greedy_completion(
    topology: WSNTopology,
    covered: frozenset[int],
    start_time: int,
    schedule: WakeupSchedule | None,
) -> int | None:
    """Completion slot of the greedy descent (first maximal colour each slot).

    A feasible schedule, used as the initial incumbent of the value search
    and as the default horizon of the brute-force oracle.  ``None`` for
    disconnected topologies.
    """
    full = topology.node_set
    time = start_time
    end = start_time - 1
    while covered != full:
        decision = _next_decision(topology, covered, time, schedule)
        if decision is None:
            return None
        slot, colors = decision
        receivers = receivers_of(topology, colors[0], covered)
        covered = covered | receivers
        end = slot
        time = slot + 1
    return end


class _Search:
    """Shared state of one branch-and-bound run (value or extraction)."""

    def __init__(
        self,
        topology: WSNTopology,
        schedule: WakeupSchedule | None,
        max_states: int,
    ) -> None:
        self.topology = topology
        self.schedule = schedule
        self.max_states = max_states
        self.explored = 0

    def charge(self) -> None:
        self.explored += 1
        if self.explored > self.max_states:
            raise SolverLimitExceeded(
                f"branch-and-bound exceeded {self.max_states} search states; "
                "the instance is too large for the exact tier "
                "(see the instance-size limits in docs/solvers.md)"
            )


def minimum_completion(
    topology: WSNTopology,
    covered: frozenset[int],
    *,
    schedule: WakeupSchedule | None = None,
    start_time: int = 1,
    max_states: int = DEFAULT_MAX_STATES,
) -> tuple[int, int, int]:
    """Optimal completion slot from ``(covered, start_time)``.

    Returns ``(optimum, lower_bound, explored_states)``.  Raises
    :class:`SolverError` for disconnected topologies and
    :class:`SolverLimitExceeded` past the state budget.
    """
    require(start_time >= 1, "start_time is 1-based")
    _check_instance(topology, covered, schedule)
    full = topology.node_set
    if covered == full:
        return start_time - 1, start_time - 1, 0

    root_bound = flood_completion_bound(topology, covered, start_time, schedule)
    incumbent = greedy_completion(topology, covered, start_time, schedule)
    if root_bound is None or incumbent is None:
        raise SolverError(
            "topology is disconnected: some node can never receive the message"
        )

    search = _Search(topology, schedule, max_states)
    # Once a state is fully explored the incumbent has absorbed everything
    # its subtree can offer (the incumbent only ever decreases), so a
    # revisit can simply be pruned: ``visited`` needs no stored value.
    visited: set[tuple[frozenset[int], int]] = set()

    def descend(covered: frozenset[int], time: int) -> None:
        nonlocal incumbent
        bound = flood_completion_bound(search.topology, covered, time, search.schedule)
        if bound is None or bound >= incumbent:
            return
        key = (covered, time)
        if key in visited:
            return
        visited.add(key)
        search.charge()
        decision = _next_decision(search.topology, covered, time, search.schedule)
        if decision is None:
            return
        slot, colors = decision
        if slot >= incumbent:
            # Even an immediately completing advance would not improve.
            return
        for color in colors:
            receivers = receivers_of(search.topology, color, covered)
            child = covered | receivers
            if child == full:
                incumbent = slot  # strictly better: slot < incumbent above
            else:
                descend(child, slot + 1)

    descend(covered, start_time)
    return incumbent, root_bound, search.explored


def extract_plan(
    topology: WSNTopology,
    covered: frozenset[int],
    optimum: int,
    *,
    schedule: WakeupSchedule | None = None,
    start_time: int = 1,
    max_states: int = DEFAULT_MAX_STATES,
) -> tuple[tuple[Advance, ...], int]:
    """The canonical optimal plan: first ``optimum``-achieving DFS leaf.

    ``optimum`` must be the optimal completion slot (from
    :func:`minimum_completion` or the ILP backend — both exact, so the
    deadline is the same either way and the extracted plan is identical).
    Returns ``(advances, explored_states)``.
    """
    require(start_time >= 1, "start_time is 1-based")
    _check_instance(topology, covered, schedule)
    full = topology.node_set
    if covered == full:
        return (), 0

    search = _Search(topology, schedule, max_states)
    # States proved unable to finish by the deadline; revisits re-fail.
    dead: set[tuple[frozenset[int], int]] = set()
    prefix: list[Advance] = []

    def descend(covered: frozenset[int], time: int) -> bool:
        bound = flood_completion_bound(search.topology, covered, time, search.schedule)
        if bound is None or bound > optimum:
            return False
        key = (covered, time)
        if key in dead:
            return False
        search.charge()
        decision = _next_decision(search.topology, covered, time, search.schedule)
        if decision is None or decision[0] > optimum:
            dead.add(key)
            return False
        slot, colors = decision
        for index, color in enumerate(colors):
            advance = Advance.from_color(
                search.topology,
                covered,
                color,
                slot,
                color_index=index + 1,
                num_colors=len(colors),
            )
            prefix.append(advance)
            child = covered | advance.receivers
            if child == full or descend(child, slot + 1):
                return True
            prefix.pop()
        dead.add(key)
        return False

    if not descend(covered, start_time):
        raise SolverError(
            f"no schedule completes by slot {optimum}; the deadline is not "
            "the optimal completion slot of this instance"
        )
    if prefix[-1].time != optimum:
        raise SolverError(
            f"canonical plan completes at slot {prefix[-1].time}, not the "
            f"claimed optimum {optimum}; the deadline is below optimal"
        )
    return tuple(prefix), search.explored
