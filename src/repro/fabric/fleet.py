"""In-process fleets: the ``run_sweep(fabric=...)`` execution mode.

A :class:`LocalFleet` is the bridge between the sweep runner and the
coordinator/worker service: handed the runner's missing cells, it spins up
a coordinator (committing straight into the sweep's store), runs ``n``
worker threads against it — over direct in-process calls by default, or
over a real loopback HTTP server with ``transport="http"`` — and returns
each cell's records for the runner's serial reassembly.  The records are
bit-identical to a local run for any worker count, arrival order or
crash/retry history: that is the determinism contract, and the fault suite
(``tests/property/test_fabric_faults.py``) holds the fleet to it.

The ``worker_factory`` seam lets tests place arbitrary workers in the
fleet (flaky ones included); a worker raising
:class:`~repro.fabric.worker.WorkerCrashed` simply dies — the fleet leans
on lease expiry and the surviving workers to finish the grid, exactly like
a remote fleet would.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Callable, Sequence

from repro.fabric.coordinator import FabricCoordinator
from repro.fabric.protocol import FabricError
from repro.fabric.queue import DEFAULT_LEASE_TTL
from repro.fabric.server import FabricHTTPServer
from repro.fabric.transport import HttpTransport, LocalTransport, Transport
from repro.fabric.worker import FabricWorker, WorkerCrashed

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.runner import RunRecord, SweepCell
    from repro.store import ExperimentStore

__all__ = ["LocalFleet"]

WorkerFactory = Callable[[int, Transport], FabricWorker]


class LocalFleet:
    """Coordinator + ``workers`` worker threads, started per ``execute`` call.

    Parameters
    ----------
    workers:
        Worker thread count.
    transport:
        ``"local"`` (direct in-process calls) or ``"http"`` (a real
        loopback :class:`~repro.fabric.server.FabricHTTPServer`, one
        socket round-trip per message — the full wire path).
    lease_ttl, max_attempts, backoff_s:
        Coordinator lease knobs; the defaults suit in-process fleets where
        a "crash" is a dead thread.
    worker_factory:
        Optional ``(worker_index, transport) -> FabricWorker`` override
        (fault harnesses, custom stats).
    """

    def __init__(
        self,
        workers: int = 2,
        *,
        transport: str = "local",
        lease_ttl: float = DEFAULT_LEASE_TTL,
        max_attempts: int = 5,
        backoff_s: float = 0.05,
        poll_interval: float = 0.01,
        worker_factory: WorkerFactory | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"a fleet needs at least one worker, got {workers}")
        if transport not in ("local", "http"):
            raise ValueError(
                f"unknown fleet transport {transport!r}; expected 'local' or 'http'"
            )
        self.workers = workers
        self.transport = transport
        self.lease_ttl = lease_ttl
        self.max_attempts = max_attempts
        self.backoff_s = backoff_s
        self.poll_interval = poll_interval
        self.worker_factory = worker_factory
        #: Per-worker stats of the most recent ``execute`` (fleet monitoring).
        self.last_stats: list = []
        self.last_status: dict | None = None

    def execute(
        self,
        cells: "Sequence[SweepCell]",
        *,
        store: "ExperimentStore | None" = None,
    ) -> "list[list[RunRecord]]":
        """Run every cell through the fleet; returns records in cell order.

        Commits go through the coordinator into ``store`` as each cell
        finishes (the runner skips its own write-back).  Raises
        :class:`FabricError` if any cell ends quarantined — a fleet serving
        a sweep must deliver *every* cell or fail loudly.
        """
        coordinator = FabricCoordinator(
            cells,
            store=store,
            lease_ttl=self.lease_ttl,
            max_attempts=self.max_attempts,
            backoff_s=self.backoff_s,
        )
        server: FabricHTTPServer | None = None
        transports: list[Transport] = []
        try:
            if self.transport == "http":
                server = FabricHTTPServer(coordinator)
                url = server.start()
                transports = [HttpTransport(url) for _ in range(self.workers)]
            else:
                transports = [LocalTransport(coordinator) for _ in range(self.workers)]
            fleet = [
                self._make_worker(index, transport)
                for index, transport in enumerate(transports)
            ]
            threads = [
                threading.Thread(
                    target=self._run_worker, args=(worker,), name=worker.name
                )
                for worker in fleet
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            self.last_stats = [worker.stats for worker in fleet]
            self.last_status = coordinator.status()
        finally:
            for transport in transports:
                transport.close()
            if server is not None:
                server.stop()
        quarantined = coordinator.quarantined
        if quarantined:
            details = "; ".join(
                f"cell {index}: {reason}" for index, reason in sorted(quarantined.items())
            )
            raise FabricError(
                f"fabric sweep failed: {len(quarantined)} cell(s) quarantined "
                f"after {self.max_attempts} attempts ({details})"
            )
        if not coordinator.done:
            raise FabricError(
                "fabric sweep stalled: every worker exited with cells unfinished"
            )
        return [coordinator.records_for(index) for index in range(len(cells))]

    def _make_worker(self, index: int, transport: Transport) -> FabricWorker:
        if self.worker_factory is not None:
            return self.worker_factory(index, transport)
        return FabricWorker(
            transport,
            name=f"fleet-worker-{index}",
            poll_interval=self.poll_interval,
        )

    @staticmethod
    def _run_worker(worker: FabricWorker) -> None:
        try:
            worker.run()
        except WorkerCrashed:
            pass  # a dead worker is a legitimate fleet event, not an error
