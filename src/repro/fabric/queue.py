"""The lease state machine: a work-queue of cells with time-bounded leases.

Every cell of a fabric run is always in exactly one of four states:

``pending``
    Waiting to be claimed.  Requeued cells carry a ``not_before`` time
    (exponential backoff on the attempt count), so a flapping cell does not
    monopolise the fleet.
``leased``
    Granted to one worker under a lease with a deadline.  Heartbeats extend
    the deadline; a lease whose deadline passes is *expired* — the cell goes
    back to ``pending`` (or to quarantine once its retry budget is spent).
``completed``
    A validated result was committed.  Completion is terminal and
    idempotent: the first commit wins, every later post of the same cell is
    acknowledged as a duplicate and changes nothing.
``quarantined``
    The cell failed (lease expiry or rejected result) ``max_attempts``
    times — the poison-cell fence that keeps one bad cell from wedging the
    whole sweep.  A *valid* late result still rescues a quarantined cell:
    results are deterministic, so a correct commit is correct no matter how
    battered its delivery history.

The queue is deliberately free of I/O, wall clocks and threads: time is an
injected ``clock`` callable and every transition is a plain method call, so
the whole machine can be fuzzed deterministically
(``tests/property/test_fabric_lease_fuzz.py``) and the coordinator can wrap
it in its own locking and persistence.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, replace
from typing import Callable, Iterable

from repro.obs import events as _events
from repro.obs.bus import EVENT_BUS

__all__ = ["Lease", "LeaseQueue", "DEFAULT_LEASE_TTL"]

#: Default lease time budget (seconds): a worker must complete or heartbeat
#: within this window or its cell is handed to someone else.
DEFAULT_LEASE_TTL = 30.0


@dataclass(frozen=True)
class Lease:
    """One time-bounded grant of one cell to one worker."""

    lease_id: str
    index: int
    worker: str
    granted_at: float
    deadline: float


class LeaseQueue:
    """Claim/heartbeat/complete/fail/expire over a fixed set of cell indices.

    Parameters
    ----------
    indices:
        The cell indices this queue manages (each starts ``pending``).
    lease_ttl:
        Seconds a lease stays valid without a heartbeat.
    max_attempts:
        Failed attempts (expiries + rejections) before a cell is
        quarantined.
    backoff_s:
        Base requeue delay; attempt ``k`` waits ``backoff_s * 2**(k-1)``.
    clock:
        Monotonic time source (injected for deterministic tests).
    """

    def __init__(
        self,
        indices: Iterable[int],
        *,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        max_attempts: int = 5,
        backoff_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if lease_ttl <= 0:
            raise ValueError(f"lease_ttl must be > 0, got {lease_ttl}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.lease_ttl = lease_ttl
        self.max_attempts = max_attempts
        self.backoff_s = backoff_s
        self._clock = clock
        self._indices = sorted(set(indices))
        #: index -> state name; the single source of truth for the partition.
        self._state: dict[int, str] = {i: "pending" for i in self._indices}
        #: (not_before, index) min-heap with lazy invalidation: an entry is
        #: live only while its index is still pending *and* matches the
        #: recorded not_before (a requeue supersedes older entries).
        self._heap: list[tuple[float, int]] = [(0.0, i) for i in self._indices]
        heapq.heapify(self._heap)
        self._not_before: dict[int, float] = {i: 0.0 for i in self._indices}
        self._leases: dict[str, Lease] = {}
        self._lease_of: dict[int, str] = {}
        self._attempts: dict[int, int] = {}
        self._quarantine_reason: dict[int, str] = {}
        self._commits: dict[int, int] = {}
        self._next_lease = 1

    # -- introspection -----------------------------------------------------

    @property
    def indices(self) -> tuple[int, ...]:
        """All managed cell indices (ascending)."""
        return tuple(self._indices)

    def state_of(self, index: int) -> str:
        """``"pending" | "leased" | "completed" | "quarantined"``."""
        return self._state[index]

    def counts(self) -> dict[str, int]:
        """Cell count per state (the partition, summing to ``len(indices)``)."""
        counts = {"pending": 0, "leased": 0, "completed": 0, "quarantined": 0}
        for state in self._state.values():
            counts[state] += 1
        return counts

    @property
    def done(self) -> bool:
        """No work left: every cell is completed or quarantined."""
        return all(s in ("completed", "quarantined") for s in self._state.values())

    @property
    def attempts(self) -> dict[int, int]:
        """Failed-attempt count per cell (only cells that ever failed)."""
        return dict(self._attempts)

    @property
    def quarantined(self) -> dict[int, str]:
        """Quarantined cells with the reason of their final failure."""
        return dict(self._quarantine_reason)

    def active_leases(self) -> list[Lease]:
        """Currently granted leases (expired ones are reaped on access)."""
        self.expire()
        return sorted(self._leases.values(), key=lambda lease: lease.index)

    def lease(self, lease_id: str) -> Lease | None:
        """The live lease with this id, or ``None`` (no expiry reap)."""
        return self._leases.get(lease_id)

    def next_event_in(self, now: float | None = None) -> float:
        """Seconds until the next lease deadline or backoff release.

        The coordinator's ``wait`` hint: how long an idle worker should
        sleep before re-claiming.  ``0.0`` when something is claimable right
        now (or the queue is done — re-claim immediately to learn that).
        """
        now = self._clock() if now is None else now
        horizons = [
            self._not_before[i] for i, s in self._state.items() if s == "pending"
        ]
        horizons.extend(lease.deadline for lease in self._leases.values())
        if not horizons:
            return 0.0
        return max(0.0, min(horizons) - now)

    # -- transitions -------------------------------------------------------

    def claim(self, worker: str, now: float | None = None) -> Lease | None:
        """Grant the lowest pending index to ``worker``, or ``None``.

        Expired leases are reaped first, so a single polling worker is
        enough to drive the whole requeue machinery.
        """
        now = self._clock() if now is None else now
        self.expire(now)
        while self._heap:
            not_before, index = self._heap[0]
            if self._state.get(index) != "pending" or self._not_before[index] != not_before:
                heapq.heappop(self._heap)  # stale entry
                continue
            if not_before > now:
                return None  # earliest pending cell is still backing off
            heapq.heappop(self._heap)
            lease = Lease(
                lease_id=f"lease-{self._next_lease}",
                index=index,
                worker=worker,
                granted_at=now,
                deadline=now + self.lease_ttl,
            )
            self._next_lease += 1
            self._state[index] = "leased"
            self._leases[lease.lease_id] = lease
            self._lease_of[index] = lease.lease_id
            if EVENT_BUS.active:
                EVENT_BUS.emit(
                    _events.LeaseClaimed(index, worker, lease.lease_id)
                )
            return lease
        return None

    def heartbeat(self, lease_id: str, now: float | None = None) -> bool:
        """Extend a live lease's deadline; ``False`` if it no longer exists.

        A ``False`` return tells the worker its lease expired (the cell has
        been requeued) and any in-progress work should be abandoned — though
        posting the result anyway is harmless, by idempotent completion.
        """
        now = self._clock() if now is None else now
        self.expire(now)
        lease = self._leases.get(lease_id)
        if lease is None:
            return False
        extended = replace(lease, deadline=now + self.lease_ttl)
        self._leases[lease_id] = extended
        return True

    def complete(self, index: int, now: float | None = None) -> str:
        """Mark ``index`` completed; returns ``"committed"`` or ``"duplicate"``.

        Idempotent and state-agnostic on purpose: a late post (lease already
        expired and the cell requeued — or even re-leased to another worker,
        or quarantined) still commits, because fabric results are
        deterministic — the *first* valid result is the only result.  Every
        subsequent post is acknowledged as a duplicate and changes nothing.
        """
        if index not in self._state:
            raise KeyError(f"unknown cell index {index}")
        if self._state[index] == "completed":
            return "duplicate"
        self._release_lease_of(index)
        self._quarantine_reason.pop(index, None)
        self._state[index] = "completed"
        self._commits[index] = self._commits.get(index, 0) + 1
        return "committed"

    def fail(self, lease_id: str, reason: str, now: float | None = None) -> None:
        """Explicitly fail a live lease (e.g. the worker posted garbage).

        Unknown lease ids are ignored: the lease may already have expired,
        which charged the cell's budget through the same path.
        """
        now = self._clock() if now is None else now
        lease = self._leases.get(lease_id)
        if lease is None:
            return
        self._requeue(lease, reason, now, expired=False)

    def expire(self, now: float | None = None) -> list[Lease]:
        """Reap every lease whose deadline passed; returns the reaped leases."""
        now = self._clock() if now is None else now
        expired = [l for l in self._leases.values() if l.deadline <= now]
        for lease in expired:
            self._requeue(
                lease, f"lease expired (worker {lease.worker!r})", now, expired=True
            )
        return expired

    # -- persistence hooks -------------------------------------------------

    def preload(self, attempts: dict[int, int], quarantined: dict[int, str]) -> None:
        """Restore failure history (coordinator restart) before any claim.

        Quarantined cells leave ``pending`` immediately; attempt counts pick
        up where the previous coordinator left off, so a restart never
        resets a poison cell's budget.
        """
        for index, count in attempts.items():
            if index in self._state:
                self._attempts[index] = max(self._attempts.get(index, 0), count)
        for index, reason in quarantined.items():
            if index in self._state and self._state[index] == "pending":
                self._state[index] = "quarantined"
                self._quarantine_reason[index] = reason

    # -- internals ---------------------------------------------------------

    def _release_lease_of(self, index: int) -> None:
        lease_id = self._lease_of.pop(index, None)
        if lease_id is not None:
            self._leases.pop(lease_id, None)

    def _requeue(
        self, lease: Lease, reason: str, now: float, *, expired: bool = True
    ) -> None:
        index = lease.index
        self._release_lease_of(index)
        if self._state.get(index) != "leased":  # pragma: no cover - guard
            return
        attempts = self._attempts.get(index, 0) + 1
        self._attempts[index] = attempts
        if EVENT_BUS.active:
            if expired:
                EVENT_BUS.emit(_events.LeaseExpired(index, lease.worker, attempts))
            else:
                EVENT_BUS.emit(
                    _events.LeaseFailed(index, lease.worker, reason, attempts)
                )
        if attempts >= self.max_attempts:
            self._state[index] = "quarantined"
            self._quarantine_reason[index] = (
                f"{reason} — attempt {attempts}/{self.max_attempts}"
            )
            if EVENT_BUS.active:
                EVENT_BUS.emit(
                    _events.CellQuarantined(
                        index,
                        f"{reason} — attempt {attempts}/{self.max_attempts}",
                        attempts,
                    )
                )
            return
        not_before = now + self.backoff_s * (2 ** (attempts - 1))
        self._state[index] = "pending"
        self._not_before[index] = not_before
        heapq.heappush(self._heap, (not_before, index))
