"""Transports: how a worker reaches its coordinator.

The worker loop is transport-agnostic — it sees only
``request(action, payload) -> response`` — so the same
:class:`~repro.fabric.worker.FabricWorker` runs over loopback HTTP
(:class:`HttpTransport`), directly in-process (:class:`LocalTransport`,
what :class:`~repro.fabric.fleet.LocalFleet` uses by default), or through
a fault-injecting wrapper (the test harness's ``FlakyTransport``).

Every transport failure — connection refused, dropped response, non-200
status — surfaces as :class:`TransportError`.  Workers treat it as
retryable: the request may or may not have been processed, which is
exactly why the coordinator's result commits are idempotent.
"""

from __future__ import annotations

import http.client
import json
from typing import TYPE_CHECKING, Mapping
from urllib.parse import urlsplit

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fabric.coordinator import FabricCoordinator

__all__ = ["Transport", "TransportError", "LocalTransport", "HttpTransport"]


class TransportError(RuntimeError):
    """A request that may or may not have reached the coordinator."""


class Transport:
    """One coordinator connection: ``request(action, payload) -> response``."""

    def request(self, action: str, payload: Mapping) -> dict:
        """Send one protocol request and return the decoded response."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any underlying resources (optional)."""


class LocalTransport(Transport):
    """Direct in-process calls into a coordinator (no sockets, no copies).

    The zero-overhead transport of in-process fleets and deterministic
    tests: requests are plain method calls under the coordinator's lock.
    """

    def __init__(self, coordinator: "FabricCoordinator") -> None:
        self._coordinator = coordinator

    def request(self, action: str, payload: Mapping) -> dict:
        return self._coordinator.handle_request(action, dict(payload))


class HttpTransport(Transport):
    """JSON-over-HTTP client for a :class:`~repro.fabric.server.FabricHTTPServer`.

    One short-lived connection per request (the protocol is a handful of
    small messages per cell, so connection reuse buys nothing and a stale
    keep-alive socket after a coordinator restart would cost a retry).
    """

    def __init__(self, url: str, *, timeout: float = 30.0) -> None:
        parts = urlsplit(url if "//" in url else f"http://{url}")
        if parts.scheme not in ("", "http"):
            raise ValueError(f"fabric transport speaks plain http, got {url!r}")
        if not parts.hostname:
            raise ValueError(f"no host in fabric url {url!r}")
        self.host = parts.hostname
        self.port = parts.port or 80
        self.timeout = timeout

    def request(self, action: str, payload: Mapping) -> dict:
        connection = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            body = json.dumps(dict(payload))
            connection.request(
                "POST",
                f"/{action}",
                body=body,
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            data = response.read()
            if response.status != 200:
                raise TransportError(
                    f"{action}: HTTP {response.status} "
                    f"{data.decode('utf-8', 'replace')[:200]}"
                )
            return json.loads(data)
        except (OSError, http.client.HTTPException, json.JSONDecodeError) as error:
            raise TransportError(f"{action}: {error}") from error
        finally:
            connection.close()
