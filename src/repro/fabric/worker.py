"""The fabric worker: claim a lease, simulate the cell, post the records.

A worker is a dumb, restartable loop — all correctness lives in the
determinism contract and the coordinator's validation.  The worker claims a
lease, reconstructs the :class:`~repro.experiments.runner.SweepCell` from
the grant's JSON payload, runs it through the ordinary cell executor
(:func:`repro.experiments.runner._run_cell` — the *same* code path as a
local sweep, which is what makes fabric records bit-identical to local
ones), and posts the records back under the lease's digest.

Failure handling is deliberately simple:

* transport errors are retried (claims indefinitely — the coordinator may
  not be up yet; result posts a bounded number of times, after which the
  cell is abandoned to lease expiry and someone else's retry);
* a ``wait`` response sleeps for the coordinator's hint and re-claims;
* long cells are kept alive by a heartbeat thread pinging every
  ``lease_ttl / 3`` seconds while the simulation runs.

The ``simulate`` / ``post`` seams are overridable, which is how the fault
harness (``FlakyWorker`` in ``tests/property/conftest.py``) injects crashes
at precise points; :class:`WorkerCrashed` is the crash signal such
harnesses raise — the run loop never catches it, exactly like a real
process death.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping

from repro.experiments.runner import _run_cell
from repro.fabric.protocol import cell_from_payload, records_to_payload
from repro.fabric.transport import Transport, TransportError
from repro.obs import events as _events
from repro.obs.bus import EVENT_BUS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.runner import RunRecord, SweepCell

__all__ = ["FabricWorker", "WorkerStats", "WorkerCrashed"]


class WorkerCrashed(RuntimeError):
    """Raised by fault-injection harnesses to simulate a worker death.

    The worker loop never catches it: a crash kills the worker with its
    lease unreleased, and recovery happens coordinator-side (lease expiry,
    requeue) — the failure mode the fabric exists to survive.
    """


@dataclass
class WorkerStats:
    """What one worker run did (the ``fabric work`` exit summary)."""

    claims: int = 0
    completed: int = 0
    duplicates: int = 0
    rejected: int = 0
    transport_errors: int = 0
    abandoned: int = 0
    policies_run: dict[str, int] = field(default_factory=dict)


class FabricWorker:
    """One claim-simulate-post loop against a coordinator transport.

    Parameters
    ----------
    transport:
        The coordinator connection (HTTP, local, or a fault wrapper).
    name:
        Worker identity reported on every claim (fleet monitoring).
    poll_interval:
        Base sleep between retries; ``wait`` hints are clamped to
        ``[poll_interval, max_wait]``.
    post_retries:
        Transport retries per result post before abandoning the cell to
        lease expiry.
    claim_patience:
        Consecutive claim transport errors before the worker gives up and
        re-raises (a coordinator that was up and died stays down; one that
        is not up *yet* only costs a few failed claims).  ``None`` retries
        forever.
    heartbeat_interval:
        Seconds between keep-alive pings while simulating; ``None``
        disables the heartbeat thread (deterministic single-threaded
        tests).  Defaults to a third of the lease TTL from each grant.
    sleep:
        Injected sleeper (tests pass the manual clock's ``advance``).
    """

    def __init__(
        self,
        transport: Transport,
        *,
        name: str = "worker",
        poll_interval: float = 0.1,
        max_wait: float = 2.0,
        post_retries: int = 3,
        claim_patience: int | None = 100,
        heartbeat_interval: float | None = None,
        heartbeats: bool = True,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.transport = transport
        self.name = name
        self.poll_interval = poll_interval
        self.max_wait = max_wait
        self.post_retries = post_retries
        self.claim_patience = claim_patience
        self.heartbeat_interval = heartbeat_interval
        self.heartbeats = heartbeats
        self._sleep = sleep
        self.stats = WorkerStats()

    def run(self) -> WorkerStats:
        """Work until the coordinator reports the grid done."""
        consecutive_errors = 0
        while True:
            try:
                response = self.transport.request("claim", {"worker": self.name})
            except TransportError:
                self.stats.transport_errors += 1
                consecutive_errors += 1
                if (
                    self.claim_patience is not None
                    and consecutive_errors >= self.claim_patience
                ):
                    raise
                self._sleep(self.poll_interval)
                continue
            consecutive_errors = 0
            status = response.get("status")
            if status == "done":
                return self.stats
            if status == "wait":
                hint = float(response.get("retry_after", self.poll_interval))
                self._sleep(min(max(hint, self.poll_interval), self.max_wait))
                continue
            if status != "lease":
                self.stats.transport_errors += 1
                self._sleep(self.poll_interval)
                continue
            self.stats.claims += 1
            cell = cell_from_payload(response["cell"])
            records = self.simulate(cell, response)
            for record in records:
                count = self.stats.policies_run.get(record.policy, 0)
                self.stats.policies_run[record.policy] = count + 1
            self.post(
                {
                    "worker": self.name,
                    "lease": response["lease"],
                    "index": response["index"],
                    "digest": response["digest"],
                    "records": records_to_payload(records),
                }
            )

    # -- overridable seams -------------------------------------------------

    def simulate(self, cell: "SweepCell", grant: Mapping) -> "list[RunRecord]":
        """Run one cell, heartbeating the lease while it executes."""
        if not self.heartbeats:
            return _run_cell(cell)
        interval = self.heartbeat_interval
        if interval is None:
            interval = max(float(grant.get("lease_ttl", 30.0)) / 3.0, 0.05)
        stop = threading.Event()

        def _beat() -> None:
            while not stop.wait(interval):
                try:
                    response = self.transport.request(
                        "heartbeat", {"lease": grant["lease"]}
                    )
                except TransportError:
                    continue  # the next beat (or lease expiry) sorts it out
                # Emitted worker-side only (the coordinator counts beats in
                # its metrics registry), so a LocalFleet sharing one
                # in-process bus never double-reports a heartbeat.
                if EVENT_BUS.active:
                    EVENT_BUS.emit(
                        _events.WorkerHeartbeat(
                            self.name,
                            str(grant["lease"]),
                            bool(response.get("valid", False)),
                        )
                    )

        beater = threading.Thread(target=_beat, name=f"{self.name}-heartbeat", daemon=True)
        beater.start()
        try:
            return _run_cell(cell)
        finally:
            stop.set()
            beater.join()

    def post(self, payload: dict) -> None:
        """Post one result with bounded retries (duplicates are safe)."""
        for attempt in range(self.post_retries):
            try:
                response = self.transport.request("result", payload)
            except TransportError:
                self.stats.transport_errors += 1
                if attempt + 1 < self.post_retries:
                    self._sleep(self.poll_interval)
                continue
            status = response.get("status")
            if status == "committed":
                self.stats.completed += 1
            elif status == "duplicate":
                self.stats.duplicates += 1
            else:
                self.stats.rejected += 1
            return
        # Every retry failed in transit: drop the cell — its lease will
        # expire and the coordinator will release it (possibly to us).
        self.stats.abandoned += 1
