"""Distributed sweep fabric: a coordinator/worker service over the store.

The sweep grid is embarrassingly parallel per cell and the store's cache
keys deliberately exclude execution mode — so *any* machine can contribute
*any* cell.  This package turns that into a service:

* :mod:`repro.fabric.queue` — :class:`LeaseQueue`, the
  claim/heartbeat/expire/complete/quarantine state machine with
  time-bounded leases, retry budgets and backoff;
* :mod:`repro.fabric.coordinator` — :class:`FabricCoordinator`: partitions
  the grid's missing cells against the store, leases them out, validates
  posted results and commits them atomically (idempotent by cell digest);
  restarts rebuild the queue from the store delta;
* :mod:`repro.fabric.server` / :mod:`repro.fabric.transport` — a stdlib
  asyncio HTTP front plus the matching client transports;
* :mod:`repro.fabric.worker` — :class:`FabricWorker`, the restartable
  claim-simulate-post loop (heartbeats, bounded post retries);
* :mod:`repro.fabric.fleet` — :class:`LocalFleet`, the in-process fleet
  behind ``run_sweep(..., fabric=...)``.

The headline guarantee is the **determinism contract**: fabric-run sweep
records are bit-identical to a local ``run_sweep`` of the same config for
any fleet size, worker arrival order, and crash/retry history — proved by
``tests/property/test_fabric_faults.py`` under injected drops, delays,
duplicates, crashes and coordinator restarts.  See ``docs/fabric.md``.
"""

from repro.fabric.coordinator import FabricCoordinator
from repro.fabric.fleet import LocalFleet
from repro.fabric.protocol import (
    PROTOCOL_VERSION,
    FabricError,
    cell_from_payload,
    cell_to_payload,
    config_from_payload,
    config_to_payload,
    records_from_payload,
    records_to_payload,
)
from repro.fabric.queue import DEFAULT_LEASE_TTL, Lease, LeaseQueue
from repro.fabric.server import FabricHTTPServer
from repro.fabric.transport import (
    HttpTransport,
    LocalTransport,
    Transport,
    TransportError,
)
from repro.fabric.worker import FabricWorker, WorkerCrashed, WorkerStats

__all__ = [
    "DEFAULT_LEASE_TTL",
    "FabricCoordinator",
    "FabricError",
    "FabricHTTPServer",
    "FabricWorker",
    "HttpTransport",
    "Lease",
    "LeaseQueue",
    "LocalFleet",
    "LocalTransport",
    "PROTOCOL_VERSION",
    "Transport",
    "TransportError",
    "WorkerCrashed",
    "WorkerStats",
    "cell_from_payload",
    "cell_to_payload",
    "config_from_payload",
    "config_to_payload",
    "records_from_payload",
    "records_to_payload",
]
