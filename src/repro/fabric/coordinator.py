"""The fabric coordinator: missing-cell partitioning, leases, atomic commits.

One coordinator owns one grid of :class:`~repro.experiments.runner.SweepCell`
work items.  At start-up it partitions the grid against the store's
content-addressed cache keys — already-cached cells are completed before any
worker connects, so a **coordinator restart is just a re-partition**: the
queue is rebuilt from the store delta and the sweep continues where it
stopped, with failure history (attempt counts, quarantined cells) restored
from a small JSON state file next to the store.

Workers talk to the coordinator through four request types (served over
HTTP by :class:`~repro.fabric.server.FabricHTTPServer`, or called directly
via :class:`~repro.fabric.transport.LocalTransport`):

========== ============================================= =================================
action     request payload                               response
========== ============================================= =================================
claim      ``{"worker"}``                                ``lease`` grant / ``wait`` / ``done``
heartbeat  ``{"lease"}``                                  ``{"status": "ok", "valid"}``
result     ``{"lease", "index", "digest", "records"}``   ``committed`` / ``duplicate`` / ``rejected``
status     ``{}``                                        full fleet/queue status object
metrics    ``{}``                                        :class:`~repro.obs.metrics.MetricsRegistry` snapshot
========== ============================================= =================================

A posted result is **validated before it is committed**: the echoed digest
must match the coordinator's own cell key, the record batch must decode,
and its shape (policy line-up, cell coordinates) must match the leased
cell.  A valid result commits atomically to the store keyed by the cell
digest — so duplicate and late posts are idempotent by construction — and a
bad result charges the lease's retry budget exactly like a crash, feeding
the poison-cell quarantine.
"""

from __future__ import annotations

import json
import threading
import time
from typing import TYPE_CHECKING, Callable, Mapping, Sequence

from repro.experiments.runner import default_policies
from repro.fabric.protocol import (
    PROTOCOL_VERSION,
    FabricError,
    cell_to_payload,
    records_from_payload,
)
from repro.fabric.queue import DEFAULT_LEASE_TTL, LeaseQueue
from repro.obs.metrics import MetricsRegistry
from repro.store import cell_key_for
from repro.utils.serialization import atomic_write_text, canonical_json

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.runner import RunRecord, SweepCell
    from repro.store import ExperimentStore

__all__ = ["FabricCoordinator", "STATE_FILE_NAME"]

#: Name of the queue-state journal written next to the store's index.
STATE_FILE_NAME = "fabric-state.json"


class FabricCoordinator:
    """Serve one grid of sweep cells to a worker fleet.

    Parameters
    ----------
    cells:
        The grid in serial order; positions in this sequence are the cell
        indices of the whole protocol.
    store:
        Optional :class:`~repro.store.ExperimentStore`.  With a store,
        results commit through :meth:`ExperimentStore.put` (content-keyed,
        so commits are idempotent), already-cached cells are completed at
        start-up (``resume``), and the failure history persists across
        coordinator restarts.  Without one, results are kept in memory only.
    resume:
        Complete cells already present in the store at start-up (default).
    lease_ttl, max_attempts, backoff_s, clock:
        Lease state-machine knobs, passed to :class:`LeaseQueue`.
    """

    def __init__(
        self,
        cells: "Sequence[SweepCell]",
        *,
        store: "ExperimentStore | None" = None,
        resume: bool = True,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        max_attempts: int = 5,
        backoff_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._cells = list(cells)
        self._store = store
        self._clock = clock
        self._lock = threading.RLock()
        self._line_ups: list[tuple[str, ...]] = []
        self._keys = []
        for cell in self._cells:
            if cell.policies is not None:
                names = tuple(name for name, _ in cell.policies)
            else:
                names = tuple(default_policies(cell.config, cell.system))
            self._line_ups.append(names)
            self._keys.append(
                cell_key_for(
                    cell.config,
                    system=cell.system,
                    rate=cell.rate,
                    num_nodes=cell.num_nodes,
                    repetition=cell.repetition,
                    policies=names,
                )
            )
        self._records: dict[int, list[RunRecord]] = {}
        self._workers: dict[str, dict[str, float | int]] = {}
        self._started_at = clock()
        #: Fleet metrics (claims, heartbeats, commits, queue gauges) — the
        #: source of the extended ``status`` fields and, when the HTTP
        #: server exposes it, of the ``/metrics`` endpoint.
        self.metrics = MetricsRegistry()
        self._queue = LeaseQueue(
            range(len(self._cells)),
            lease_ttl=lease_ttl,
            max_attempts=max_attempts,
            backoff_s=backoff_s,
            clock=clock,
        )
        # Restart persistence: failure history first (so a quarantined cell
        # stays quarantined), then the store delta (so a *completed* cell —
        # even one that was quarantined before a late result rescued it —
        # is simply done).
        self._load_state()
        if store is not None and resume:
            for index, key in enumerate(self._keys):
                if store.contains(key):
                    self._queue.complete(index)

    # -- fleet-facing API --------------------------------------------------

    def handle_request(self, action: str, payload: Mapping) -> dict:
        """Dispatch one protocol request; the transports' single entry point."""
        with self._lock:
            if action == "claim":
                return self._claim(payload)
            if action == "heartbeat":
                return self._heartbeat(payload)
            if action == "result":
                return self._result(payload)
            if action == "status":
                return self.status()
            if action == "metrics":
                return self.metrics_snapshot()
            raise FabricError(
                f"unknown fabric action {action!r}; expected claim, "
                "heartbeat, result, status or metrics"
            )

    def tick(self) -> None:
        """Advance lease expiry without a worker request (the serve loop)."""
        with self._lock:
            before = self._queue.counts()
            self._queue.expire()
            if self._queue.counts() != before:
                self._save_state()

    # -- request handlers (lock held) --------------------------------------

    def _claim(self, payload: Mapping) -> dict:
        worker = str(payload.get("worker", "anonymous"))
        now = self._clock()
        stats = self._workers.setdefault(
            worker, {"claims": 0, "completed": 0, "failures": 0, "last_seen": now}
        )
        stats["last_seen"] = now
        self.metrics.counter("fabric.claim_requests").inc()
        lease = self._queue.claim(worker, now)
        if lease is not None:
            stats["claims"] += 1
            self.metrics.counter("fabric.lease_claims").inc()
            return {
                "status": "lease",
                "lease": lease.lease_id,
                "index": lease.index,
                "digest": self._keys[lease.index].digest,
                "lease_ttl": self._queue.lease_ttl,
                "cell": cell_to_payload(self._cells[lease.index]),
            }
        if self._queue.done:
            counts = self._queue.counts()
            return {
                "status": "done",
                "completed": counts["completed"],
                "quarantined": counts["quarantined"],
            }
        return {
            "status": "wait",
            "retry_after": self._queue.next_event_in(now),
        }

    def _heartbeat(self, payload: Mapping) -> dict:
        lease_id = str(payload.get("lease", ""))
        now = self._clock()
        # Credit the beat to the lease's worker before the heartbeat can
        # expire it — liveness is about who pinged, not whether in time.
        lease = self._queue.lease(lease_id)
        if lease is not None and lease.worker in self._workers:
            self._workers[lease.worker]["last_seen"] = now
        self.metrics.counter("fabric.heartbeats").inc()
        valid = self._queue.heartbeat(lease_id, now)
        return {"status": "ok", "valid": valid}

    def _result(self, payload: Mapping) -> dict:
        now = self._clock()
        worker = str(payload.get("worker", "anonymous"))
        stats = self._workers.setdefault(
            worker, {"claims": 0, "completed": 0, "failures": 0, "last_seen": now}
        )
        stats["last_seen"] = now
        lease_id = str(payload.get("lease", ""))
        try:
            index = int(payload["index"])
            if not 0 <= index < len(self._cells):
                raise ValueError(f"cell index {index} out of range")
            records = self._validate_result(index, payload)
        except (KeyError, TypeError, ValueError) as error:
            # A malformed or wrong result spends the lease's retry budget
            # exactly like a crash: repeat offenders poison-quarantine.
            self._queue.fail(lease_id, f"rejected result: {error}", now)
            stats["failures"] += 1
            self.metrics.counter("fabric.results_rejected").inc()
            self._save_state()
            return {"status": "rejected", "reason": str(error)}
        outcome = self._queue.complete(index, now)
        if outcome == "committed":
            if self._store is not None:
                self._store.put(self._keys[index], records)
            self._records[index] = records
            stats["completed"] += 1
            self.metrics.counter("fabric.results_committed").inc()
            self._save_state()
        else:
            self.metrics.counter("fabric.results_duplicate").inc()
        return {"status": outcome}

    def _validate_result(self, index: int, payload: Mapping) -> "list[RunRecord]":
        """Decode and cross-check one posted record batch against its cell."""
        digest = payload.get("digest")
        expected = self._keys[index].digest
        if digest != expected:
            raise ValueError(
                f"digest mismatch for cell {index}: posted {str(digest)[:16]!r}, "
                f"expected {expected[:16]!r} (stale config or wrong cell)"
            )
        records = records_from_payload(payload["records"])
        cell = self._cells[index]
        names = self._line_ups[index]
        if tuple(r.policy for r in records) != names:
            raise ValueError(
                f"policy line-up mismatch for cell {index}: got "
                f"{[r.policy for r in records]}, expected {list(names)}"
            )
        for record in records:
            if (
                record.system != cell.system
                or record.rate != cell.rate
                or record.num_nodes != cell.num_nodes
                or record.repetition != cell.repetition
            ):
                raise ValueError(
                    f"record coordinates do not match cell {index}: "
                    f"({record.system}, r={record.rate}, n={record.num_nodes}, "
                    f"rep={record.repetition}) vs ({cell.system}, "
                    f"r={cell.rate}, n={cell.num_nodes}, rep={cell.repetition})"
                )
        return records

    # -- results and status ------------------------------------------------

    @property
    def done(self) -> bool:
        """Every cell completed or quarantined (reaps expired leases first)."""
        with self._lock:
            self._queue.expire()
            return self._queue.done

    @property
    def quarantined(self) -> dict[int, str]:
        """Quarantined cell indices with their final failure reason."""
        with self._lock:
            return self._queue.quarantined

    def records_for(self, index: int) -> "list[RunRecord]":
        """The committed records of one cell (from memory, else the store)."""
        with self._lock:
            records = self._records.get(index)
            if records is not None:
                return records
            if self._store is not None:
                cached = self._store.get(self._keys[index])
                if cached is not None:
                    return cached
            raise KeyError(f"cell {index} has no committed result")

    def status(self) -> dict:
        """The fleet-monitoring snapshot (the ``fabric status`` target).

        ``queue_depth`` (claimable backlog), ``oldest_lease_age_s`` (the
        longest-running grant — a stuck worker shows up here first) and the
        per-cell ``attempts`` map (str-keyed, JSON-proof) come from the
        same numbers :attr:`metrics` tracks; the queue gauges are refreshed
        into the registry on every status read.
        """
        with self._lock:
            self._queue.expire()
            counts = self._queue.counts()
            now = self._clock()
            active = self._queue.active_leases()
            oldest = max((now - lease.granted_at for lease in active), default=None)
            self._refresh_queue_gauges(counts, oldest)
            return {
                "protocol_version": PROTOCOL_VERSION,
                "total": len(self._cells),
                "uptime_s": round(now - self._started_at, 3),
                "lease_ttl": self._queue.lease_ttl,
                "max_attempts": self._queue.max_attempts,
                "done": self._queue.done,
                "counts": counts,
                "queue_depth": counts["pending"],
                "oldest_lease_age_s": (
                    None if oldest is None else round(oldest, 3)
                ),
                "attempts": {
                    str(index): count
                    for index, count in sorted(self._queue.attempts.items())
                },
                "active_leases": [
                    {
                        "lease": lease.lease_id,
                        "index": lease.index,
                        "worker": lease.worker,
                        "expires_in": round(lease.deadline - now, 3),
                    }
                    for lease in active
                ],
                "quarantined_cells": [
                    {"index": index, "digest": self._keys[index].digest, "reason": reason}
                    for index, reason in sorted(self._queue.quarantined.items())
                ],
                "workers": {
                    name: {
                        **stats,
                        "last_seen_age_s": round(now - stats["last_seen"], 3),
                    }
                    for name, stats in self._workers.items()
                },
            }

    def metrics_snapshot(self) -> dict:
        """The metrics registry's snapshot with the queue gauges refreshed.

        The payload of the ``metrics`` action (``/metrics`` over HTTP when
        the server exposes it): counters accumulated by the request
        handlers plus point-in-time queue/worker gauges.
        """
        with self._lock:
            self._queue.expire()
            counts = self._queue.counts()
            now = self._clock()
            active = self._queue.active_leases()
            oldest = max((now - lease.granted_at for lease in active), default=None)
            self._refresh_queue_gauges(counts, oldest)
            return self.metrics.snapshot()

    def _refresh_queue_gauges(
        self, counts: dict[str, int], oldest: float | None
    ) -> None:
        """Mirror the queue partition into the registry (lock held)."""
        metrics = self.metrics
        metrics.gauge("fabric.queue_depth").set(counts["pending"])
        metrics.gauge("fabric.leased_cells").set(counts["leased"])
        metrics.gauge("fabric.completed_cells").set(counts["completed"])
        metrics.gauge("fabric.quarantined_cells").set(counts["quarantined"])
        metrics.gauge("fabric.oldest_lease_age_s").set(
            0.0 if oldest is None else oldest
        )
        metrics.gauge("fabric.retry_attempts").set(
            sum(self._queue.attempts.values())
        )
        now = self._clock()
        for name, stats in self._workers.items():
            metrics.gauge(f"worker.{name}.last_seen_age_s").set(
                max(now - stats["last_seen"], 0.0)
            )

    # -- restart persistence ----------------------------------------------

    def _state_path(self):
        return None if self._store is None else self._store.root / STATE_FILE_NAME

    def _save_state(self) -> None:
        """Journal failure history, keyed by content digest (grid-shape-proof)."""
        path = self._state_path()
        if path is None:
            return
        state = {
            "version": 1,
            "attempts": {
                self._keys[i].digest: n for i, n in self._queue.attempts.items()
            },
            "quarantined": {
                self._keys[i].digest: reason
                for i, reason in self._queue.quarantined.items()
            },
        }
        atomic_write_text(path, canonical_json(state))

    def _load_state(self) -> None:
        path = self._state_path()
        if path is None or not path.is_file():
            return
        try:
            state = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return  # a torn or missing journal only loses failure history
        by_digest = {key.digest: index for index, key in enumerate(self._keys)}
        attempts = {
            by_digest[d]: int(n)
            for d, n in state.get("attempts", {}).items()
            if d in by_digest
        }
        quarantined = {
            by_digest[d]: str(reason)
            for d, reason in state.get("quarantined", {}).items()
            if d in by_digest
        }
        self._queue.preload(attempts, quarantined)
