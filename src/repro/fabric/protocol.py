"""Wire format of the fabric: cells, records and configs as plain JSON.

Everything that crosses the coordinator/worker boundary is a JSON object
built from primitives — no pickling, so a fleet can mix Python versions and
a captured request log is human-readable.  The payloads are lossless:
``cell_from_payload(cell_to_payload(cell))`` reproduces the
:class:`~repro.experiments.runner.SweepCell` exactly (tuples, nested
``SearchConfig`` and all), and records round-trip bit-identically —
the same contract the store's shard backends sign.

Custom policy *factories* cannot cross the wire (there is nothing portable
to serialise a closure into), so fabric sweeps run the default line-up:
``cell_to_payload`` rejects cells carrying explicit factories loudly, and
the worker reconstructs the line-up from the config via
:func:`repro.experiments.runner.default_policies` — which is pure, so every
worker derives the identical line-up.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping, Sequence

from repro.core.time_counter import SearchConfig
from repro.experiments.config import SweepConfig
from repro.experiments.runner import RunRecord, SweepCell

__all__ = [
    "PROTOCOL_VERSION",
    "FabricError",
    "cell_to_payload",
    "cell_from_payload",
    "config_to_payload",
    "config_from_payload",
    "records_to_payload",
    "records_from_payload",
]

#: Version of the claim/heartbeat/result/status message schema.  Served in
#: every status response; a worker speaking a different version fails fast
#: instead of mis-parsing leases.
PROTOCOL_VERSION = 1


class FabricError(RuntimeError):
    """A fabric-level contract violation (bad payload, failed fleet, ...)."""


def config_to_payload(config: SweepConfig) -> dict:
    """``SweepConfig`` as a JSON-safe dict (nested dataclasses included)."""
    return dataclasses.asdict(config)


def config_from_payload(payload: Mapping) -> SweepConfig:
    """Inverse of :func:`config_to_payload` (tuples and ``SearchConfig`` restored)."""
    fields = dict(payload)
    fields["search"] = SearchConfig(**fields["search"])
    fields["node_counts"] = tuple(fields["node_counts"])
    fields["duty_rates"] = tuple(fields["duty_rates"])
    return SweepConfig(**fields)


def cell_to_payload(cell: SweepCell) -> dict:
    """One :class:`SweepCell` as the ``cell`` object of a lease grant."""
    if cell.policies is not None:
        raise FabricError(
            "custom policy factories cannot cross the fabric wire; fabric "
            "sweeps run the default line-up (policies=None)"
        )
    return {
        "config": config_to_payload(cell.config),
        "system": cell.system,
        "rate": cell.rate,
        "num_nodes": cell.num_nodes,
        "repetition": cell.repetition,
        "engine": cell.engine,
    }


def cell_from_payload(payload: Mapping) -> SweepCell:
    """Rebuild the :class:`SweepCell` a lease grant describes."""
    return SweepCell(
        config=config_from_payload(payload["config"]),
        system=payload["system"],
        rate=payload["rate"],
        num_nodes=payload["num_nodes"],
        repetition=payload["repetition"],
        engine=payload["engine"],
        policies=None,
    )


def records_to_payload(records: Sequence[RunRecord]) -> list[dict]:
    """A record batch as JSON objects (one dict per record, field-for-field)."""
    return [dataclasses.asdict(record) for record in records]


def records_from_payload(items: Sequence[Mapping]) -> list[RunRecord]:
    """Inverse of :func:`records_to_payload`; raises on unknown/missing fields."""
    return [RunRecord(**dict(item)) for item in items]
