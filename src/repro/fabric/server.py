"""An asyncio HTTP front for the coordinator — stdlib only, no heavy deps.

The coordinator's request handlers are short critical sections behind one
lock, so the server's job is purely connection fan-in: accept many
concurrent workers, parse one small JSON request each, dispatch, answer.
``asyncio.start_server`` handles the fan-in; the handlers run in the
default thread-pool executor so a store commit (file I/O inside
``handle_request``) never stalls the accept loop.

The event loop runs on a daemon thread, so :meth:`FabricHTTPServer.start`
returns immediately with the bound URL (``port=0`` picks a free port —
what the tests use) and the creating thread stays free for the serve
loop's progress reporting.

Wire protocol: ``POST /<action>`` with a JSON body (``GET /status`` also
works, for humans with ``curl``).  Responses are JSON with ``200``;
unknown actions get ``404``, malformed payloads ``400``, handler crashes
``500``.  Connections are single-request (``Connection: close``) — the
protocol exchanges a handful of small messages per *cell*, so keep-alive
buys nothing and closing keeps the server state-free.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import TYPE_CHECKING

from repro.fabric.protocol import FabricError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fabric.coordinator import FabricCoordinator

__all__ = ["FabricHTTPServer"]

_MAX_BODY_BYTES = 64 * 1024 * 1024  # a record batch is small; this is a fuse


class FabricHTTPServer:
    """Serve one coordinator over loopback/LAN HTTP from a background thread.

    ``expose_metrics`` additionally publishes the coordinator's metrics
    registry at ``/metrics`` (``fabric serve --telemetry``); without it the
    endpoint answers 404 with a hint, so operators learn the flag instead
    of debugging a silent miss.
    """

    def __init__(
        self,
        coordinator: "FabricCoordinator",
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        expose_metrics: bool = False,
    ) -> None:
        self._coordinator = coordinator
        self._host = host
        self._port = port
        self._expose_metrics = expose_metrics
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self.url: str | None = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> str:
        """Bind and serve; returns the base URL (e.g. ``http://127.0.0.1:8765``)."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._run, name="fabric-http", daemon=True
        )
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            raise self._startup_error
        assert self.url is not None
        return self.url

    def stop(self) -> None:
        """Shut the server down and join its thread (idempotent)."""
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:  # pragma: no cover - loop already closed
                pass
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    def __enter__(self) -> "FabricHTTPServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- event loop --------------------------------------------------------

    def _run(self) -> None:
        try:
            asyncio.run(self._serve())
        except BaseException as error:  # pragma: no cover - startup failures
            self._startup_error = error
            self._started.set()

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        server = await asyncio.start_server(self._handle, self._host, self._port)
        bound_port = server.sockets[0].getsockname()[1]
        self.url = f"http://{self._host}:{bound_port}"
        self._started.set()
        async with server:
            await self._stop.wait()

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, response = await self._respond(reader)
        except (asyncio.IncompleteReadError, ConnectionError, ValueError):
            status, response = 400, {"error": "malformed request"}
        except Exception as error:  # pragma: no cover - handler crash fence
            status, response = 500, {"error": f"{type(error).__name__}: {error}"}
        body = json.dumps(response).encode("utf-8")
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found"}.get(status, "Error")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        )
        try:
            writer.write(head.encode("ascii") + body)
            await writer.drain()
        except ConnectionError:  # pragma: no cover - client went away
            pass
        finally:
            writer.close()

    async def _respond(self, reader: asyncio.StreamReader) -> tuple[int, dict]:
        request_line = (await reader.readline()).decode("ascii", "replace").strip()
        if not request_line:
            return 400, {"error": "empty request"}
        try:
            method, path, _ = request_line.split(" ", 2)
        except ValueError:
            return 400, {"error": f"bad request line {request_line!r}"}
        content_length = 0
        while True:
            line = (await reader.readline()).decode("ascii", "replace")
            if line in ("\r\n", "\n", ""):
                break
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                content_length = int(value.strip())
        if content_length > _MAX_BODY_BYTES:
            return 400, {"error": "request body too large"}
        raw = await reader.readexactly(content_length) if content_length else b""
        if method not in ("POST", "GET"):
            return 400, {"error": f"unsupported method {method!r}"}
        action = path.strip("/").split("?", 1)[0]
        try:
            payload = json.loads(raw) if raw else {}
        except json.JSONDecodeError as error:
            return 400, {"error": f"bad JSON body: {error}"}
        if not isinstance(payload, dict):
            return 400, {"error": "payload must be a JSON object"}
        if action == "metrics" and not self._expose_metrics:
            return 404, {
                "error": (
                    "metrics endpoint not exposed; start the coordinator "
                    "with 'fabric serve --telemetry' to publish /metrics"
                )
            }
        # Run the (locking, possibly file-writing) handler off the loop.
        loop = asyncio.get_running_loop()
        try:
            response = await loop.run_in_executor(
                None, self._coordinator.handle_request, action, payload
            )
        except FabricError as error:
            return 404, {"error": str(error)}
        return 200, response
