"""The built-in scenario builders.

Each builder makes **one attempt** at a topology from the shared
:class:`~repro.network.deployment.DeploymentConfig`; the registry's
rejection loop (connectivity + source eligibility) lives in
:func:`repro.scenarios.registry.generate_scenario`.  All builders draw
every random number from the generator they are handed, so a scenario is a
pure function of ``(config, params, seed)``.

The catalog (parameters, ASCII sketches, and which policy behaviours each
scenario stresses) is documented in ``docs/scenarios.md``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.network.deployment import DeploymentConfig
from repro.network.geometry import pairwise_distances
from repro.network.topology import WSNTopology
from repro.scenarios.registry import ScenarioSpec, register_scenario
from repro.utils.validation import require

__all__ = [
    "build_uniform",
    "build_clustered",
    "build_corridor",
    "build_ring",
    "build_perturbed_grid",
    "build_grid_holes",
    "build_knn",
]


def _udg(positions: np.ndarray, config: DeploymentConfig) -> WSNTopology:
    """Unit-disc graph over ``positions`` with the config's radius."""
    return WSNTopology.from_positions(positions, radius=config.radius)


# ----------------------------------------------------------------------
# uniform — the paper's Section V-A generator, registered for completeness
# ----------------------------------------------------------------------
def build_uniform(config: DeploymentConfig, rng: np.random.Generator) -> WSNTopology:
    """Positions i.i.d. uniform over the square (the paper's workload)."""
    positions = rng.uniform(0.0, config.area_side, size=(config.num_nodes, 2))
    return _udg(positions, config)


# ----------------------------------------------------------------------
# clustered — Gaussian hotspots bridged by their overlapping tails
# ----------------------------------------------------------------------
def build_clustered(
    config: DeploymentConfig,
    rng: np.random.Generator,
    *,
    clusters: int = 4,
    spread: float = 0.13,
    margin: float = 0.18,
) -> WSNTopology:
    """Nodes split evenly over ``clusters`` Gaussian hotspots.

    Cluster centres are drawn uniformly inside the square inset by
    ``margin * area_side``; each node lands at its cluster centre plus
    isotropic Gaussian noise with standard deviation ``spread * area_side``
    (clipped to the area).  Dense cores connected through sparse bridges
    stress schedulers whose conflict graphs are locally very dense.
    """
    require(clusters >= 1, "clusters must be >= 1")
    require(0.0 < spread, "spread must be positive")
    require(0.0 <= margin < 0.5, "margin must be in [0, 0.5)")
    side = config.area_side
    low, high = margin * side, (1.0 - margin) * side
    centers = rng.uniform(low, high, size=(clusters, 2))
    assignment = rng.integers(clusters, size=config.num_nodes)
    offsets = rng.normal(0.0, spread * side, size=(config.num_nodes, 2))
    positions = np.clip(centers[assignment] + offsets, 0.0, side)
    return _udg(positions, config)


# ----------------------------------------------------------------------
# corridor — a thin horizontal strip (pipeline/road-monitoring topology)
# ----------------------------------------------------------------------
def build_corridor(
    config: DeploymentConfig,
    rng: np.random.Generator,
    *,
    width: float = 0.2,
) -> WSNTopology:
    """Positions uniform over a centred horizontal strip.

    The strip spans the full area side horizontally and ``width *
    area_side`` vertically.  The broadcast degenerates to an almost
    one-dimensional wavefront: latency is dominated by hop depth, making
    the corridor the sharpest test of the per-layer pipelining bounds.
    """
    require(0.0 < width <= 1.0, "width must be in (0, 1]")
    side = config.area_side
    band = width * side
    x = rng.uniform(0.0, side, size=config.num_nodes)
    y = rng.uniform((side - band) / 2.0, (side + band) / 2.0, size=config.num_nodes)
    return _udg(np.column_stack([x, y]), config)


# ----------------------------------------------------------------------
# ring — an annulus around the area centre (two counter-rotating fronts)
# ----------------------------------------------------------------------
def build_ring(
    config: DeploymentConfig,
    rng: np.random.Generator,
    *,
    inner: float = 0.55,
    outer: float = 0.95,
) -> WSNTopology:
    """Positions uniform over an annulus centred in the area.

    ``inner`` and ``outer`` are fractions of ``area_side / 2``.  A source
    on a ring launches two wavefronts that race around opposite arcs and
    collide at the antipode — a worst case for conflict-aware scheduling
    because the colliding fronts interfere exactly where coverage closes.
    """
    require(0.0 < inner < outer <= 1.0, "need 0 < inner < outer <= 1")
    side = config.area_side
    half = side / 2.0
    angles = rng.uniform(0.0, 2.0 * math.pi, size=config.num_nodes)
    # Uniform over the annulus area (not the radius) via inverse transform.
    r2 = rng.uniform((inner * half) ** 2, (outer * half) ** 2, size=config.num_nodes)
    radii = np.sqrt(r2)
    x = half + radii * np.cos(angles)
    y = half + radii * np.sin(angles)
    positions = np.clip(np.column_stack([x, y]), 0.0, side)
    return _udg(positions, config)


# ----------------------------------------------------------------------
# perturbed-grid — a jittered lattice spanning the whole area
# ----------------------------------------------------------------------
def build_perturbed_grid(
    config: DeploymentConfig,
    rng: np.random.Generator,
    *,
    jitter: float = 0.25,
) -> WSNTopology:
    """A near-regular lattice with per-node positional jitter.

    The node count is factored into the most-square ``rows x cols`` lattice
    covering the area; each node is displaced uniformly by up to ``jitter``
    cell widths.  The almost-regular structure produces highly symmetric
    conflict patterns (many simultaneous equal-length schedules), probing
    tie-breaking in the colouring and time-counter search.
    """
    require(0.0 <= jitter <= 0.5, "jitter must be in [0, 0.5]")
    n = config.num_nodes
    side = config.area_side
    rows = max(1, round(math.sqrt(n)))
    cols = math.ceil(n / rows)
    cell_x = side / cols
    cell_y = side / rows
    cells = [(r, c) for r in range(rows) for c in range(cols)][:n]
    base = np.array(
        [((c + 0.5) * cell_x, (r + 0.5) * cell_y) for r, c in cells], dtype=float
    )
    noise = rng.uniform(-jitter, jitter, size=(n, 2)) * np.array([cell_x, cell_y])
    positions = np.clip(base + noise, 0.0, side)
    return _udg(positions, config)


# ----------------------------------------------------------------------
# grid-holes — a jittered lattice with circular obstacles carved out
# ----------------------------------------------------------------------
def build_grid_holes(
    config: DeploymentConfig,
    rng: np.random.Generator,
    *,
    holes: int = 3,
    hole_radius: float = 0.14,
    jitter: float = 0.2,
) -> WSNTopology:
    """A dense jittered lattice with ``holes`` circular voids removed.

    Hole centres are drawn uniformly inside the square inset by one hole
    radius; candidate lattice sites falling inside any hole are discarded
    and ``num_nodes`` survivors are sub-sampled uniformly.  The lattice
    resolution grows until enough survivors exist, so high hole coverage
    still yields the requested node count.  Voids force the wavefront to
    flow *around* obstacles — the irregular-wavefront propagation pattern
    the many-core literature identifies as the hard case.
    """
    require(holes >= 0, "holes must be >= 0")
    require(0.0 < hole_radius < 0.5, "hole_radius must be in (0, 0.5)")
    require(0.0 <= jitter <= 0.5, "jitter must be in [0, 0.5]")
    n = config.num_nodes
    side = config.area_side
    r_hole = hole_radius * side
    inset = min(r_hole, side / 2.0)
    centers = rng.uniform(inset, side - inset, size=(holes, 2)) if holes else np.empty((0, 2))

    resolution = max(2, math.ceil(math.sqrt(n * 1.5)))
    while True:
        cell = side / resolution
        grid = np.arange(resolution, dtype=float) * cell + cell / 2.0
        xs, ys = np.meshgrid(grid, grid)
        candidates = np.column_stack([xs.ravel(), ys.ravel()])
        candidates = candidates + rng.uniform(
            -jitter, jitter, size=candidates.shape
        ) * cell
        candidates = np.clip(candidates, 0.0, side)
        if len(centers):
            deltas = candidates[:, None, :] - centers[None, :, :]
            inside = (np.linalg.norm(deltas, axis=2) < r_hole).any(axis=1)
            candidates = candidates[~inside]
        if len(candidates) >= n:
            chosen = rng.choice(len(candidates), size=n, replace=False)
            return _udg(candidates[np.sort(chosen)], config)
        resolution *= 2


# ----------------------------------------------------------------------
# knn — k-nearest-neighbour connectivity (non-UDG adjacency)
# ----------------------------------------------------------------------
def build_knn(
    config: DeploymentConfig,
    rng: np.random.Generator,
    *,
    k: int = 5,
) -> WSNTopology:
    """Uniform positions with symmetrised k-nearest-neighbour links.

    ``u`` and ``v`` are neighbours iff either is among the other's ``k``
    nearest nodes — a proximity graph rather than a unit-disc graph, so the
    communication radius is ignored.  Degree stays O(k) even in dense
    regions, which models adaptive power control and breaks the UDG
    assumptions behind the 17/26-approximation constants while every
    simulator still runs unchanged.
    """
    require(k >= 1, "k must be >= 1")
    n = config.num_nodes
    require(k < n, f"k must be < num_nodes, got k={k}, num_nodes={n}")
    side = config.area_side
    positions = rng.uniform(0.0, side, size=(n, 2))
    distances = pairwise_distances(positions)
    np.fill_diagonal(distances, np.inf)
    # argsort gives each node's neighbours by increasing distance.
    nearest = np.argsort(distances, axis=1, kind="stable")[:, :k]
    edges = set()
    for u in range(n):
        for v in nearest[u]:
            edges.add((min(u, int(v)), max(u, int(v))))
    position_map = {i: (float(positions[i, 0]), float(positions[i, 1])) for i in range(n)}
    return WSNTopology.from_edges(sorted(edges), position_map, radius=None)


# ----------------------------------------------------------------------
# Registration
# ----------------------------------------------------------------------
register_scenario(
    ScenarioSpec(
        name="uniform",
        summary="Paper Section V-A: i.i.d. uniform positions over the square",
        builder=build_uniform,
        defaults={},
        inherit_config_window=True,
    )
)
register_scenario(
    ScenarioSpec(
        name="clustered",
        summary="Gaussian hotspots bridged by sparse tails (dense cores)",
        builder=build_clustered,
        defaults={"clusters": 4, "spread": 0.13, "margin": 0.18},
        source_min_ecc=2,
    )
)
register_scenario(
    ScenarioSpec(
        name="corridor",
        summary="Thin horizontal strip: near-1D wavefront (pipeline monitoring)",
        builder=build_corridor,
        defaults={"width": 0.2},
        source_min_ecc=3,
    )
)
register_scenario(
    ScenarioSpec(
        name="ring",
        summary="Annulus around the centre: two fronts colliding at the antipode",
        builder=build_ring,
        defaults={"inner": 0.55, "outer": 0.95},
        source_min_ecc=2,
    )
)
register_scenario(
    ScenarioSpec(
        name="perturbed-grid",
        summary="Jittered lattice spanning the area (symmetric conflicts)",
        builder=build_perturbed_grid,
        defaults={"jitter": 0.25},
        source_min_ecc=2,
    )
)
register_scenario(
    ScenarioSpec(
        name="grid-holes",
        summary="Jittered lattice with circular voids: wavefront flows around obstacles",
        builder=build_grid_holes,
        defaults={"holes": 3, "hole_radius": 0.14, "jitter": 0.2},
        source_min_ecc=2,
    )
)
register_scenario(
    ScenarioSpec(
        name="knn",
        summary="Symmetrised k-nearest-neighbour links (non-UDG, power control)",
        builder=build_knn,
        defaults={"k": 5},
        source_min_ecc=2,
    )
)
