"""Named, seeded deployment scenarios beyond the paper's uniform workload.

``repro.scenarios`` is a registry of deployment generators.  Every scenario
returns a standard :class:`~repro.network.deployment.Deployment`, so the
reference, vectorized and lossy engines — and the whole experiment harness —
run unchanged on any of them:

>>> from repro.scenarios import generate_scenario, scenario_names
>>> scenario_names()  # doctest: +NORMALIZE_WHITESPACE
['clustered', 'corridor', 'grid-holes', 'knn', 'perturbed-grid', 'ring',
 'uniform']
>>> deployment = generate_scenario("clustered", num_nodes=80, seed=7)

The catalog with parameters and sketches lives in ``docs/scenarios.md``;
the CLI lists it with ``python -m repro.experiments --list-scenarios``.
"""

from repro.scenarios.registry import (
    SCENARIOS,
    ScenarioSpec,
    generate_scenario,
    get_scenario,
    list_scenarios,
    register_scenario,
    scenario_names,
)
from repro.scenarios import generators as _generators  # noqa: F401  (registers builders)

__all__ = [
    "SCENARIOS",
    "ScenarioSpec",
    "generate_scenario",
    "get_scenario",
    "list_scenarios",
    "register_scenario",
    "scenario_names",
]
