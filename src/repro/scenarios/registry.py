"""Registry of named, seeded deployment scenarios.

The paper evaluates its schedulers on a single workload: uniform random
unit-disc deployments over a square area (Section V-A).  Broadcast latency
is a wavefront-propagation phenomenon, so its behaviour is highly
topology-dependent — a corridor stretches the wavefront into a line, a ring
splits it into two fronts, clusters funnel it through sparse bridges.  The
scenario registry opens those workloads without touching any engine: every
scenario produces a standard :class:`~repro.network.deployment.Deployment`
(topology + source), so the reference, vectorized and lossy simulators all
run unchanged.

Contract
--------
A scenario is a *builder* ``(config, rng, **params) -> WSNTopology`` that
makes **one attempt** at generating a topology from the shared
:class:`~repro.network.deployment.DeploymentConfig` geometry.  The registry
wraps the builder in the same rejection loop the paper's generator uses:
re-sample until the topology is connected and a source with an eligible
eccentricity exists.  All randomness flows through the single
``numpy.random.Generator`` handed to the builder, which gives the
determinism guarantee the sweep runner relies on:

* ``generate_scenario(name, config, seed=s)`` is a pure function of
  ``(name, config, params, s)`` — bit-identical positions, adjacency and
  source on every call, in every process.

Each scenario declares its own source-eccentricity window because the
paper's 5–8-hop window is tuned to uniform deployments; a clustered or ring
topology compresses hop counts and would reject forever under it.  Callers
can still override the window per call via ``source_min_ecc`` /
``source_max_ecc`` in ``params``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.network.deployment import (
    Deployment,
    DeploymentConfig,
    DeploymentError,
    _candidate_sources,
)
from repro.network.topology import WSNTopology
from repro.utils.rng import make_rng

__all__ = [
    "ScenarioSpec",
    "SCENARIOS",
    "register_scenario",
    "get_scenario",
    "list_scenarios",
    "scenario_names",
    "generate_scenario",
]

#: Builder signature: one generation attempt (no retry logic inside).
ScenarioBuilder = Callable[..., WSNTopology]


@dataclass(frozen=True)
class ScenarioSpec:
    """One named deployment scenario.

    Attributes
    ----------
    name:
        Registry key (also the CLI ``--scenario`` value).
    summary:
        One-line description shown by ``--list-scenarios`` and the docs.
    builder:
        One-attempt topology builder ``(config, rng, **params)``.
    defaults:
        Default keyword parameters of the builder (documented per scenario
        in ``docs/scenarios.md``).
    source_min_ecc, source_max_ecc:
        The scenario's source-eligibility window (hop distance to the
        farthest node); ``source_max_ecc=None`` means unbounded.
    inherit_config_window:
        When True the scenario uses the :class:`DeploymentConfig` window
        instead of its own (the ``uniform`` scenario does this, keeping the
        paper's 5–8-hop source selection).
    """

    name: str
    summary: str
    builder: ScenarioBuilder
    defaults: Mapping[str, object] = field(default_factory=dict)
    source_min_ecc: int = 1
    source_max_ecc: int | None = None
    inherit_config_window: bool = False


#: The global scenario registry, keyed by scenario name.
SCENARIOS: dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec) -> ScenarioSpec:
    """Add ``spec`` to :data:`SCENARIOS` (refusing duplicate names)."""
    if spec.name in SCENARIOS:
        raise ValueError(f"scenario {spec.name!r} is already registered")
    SCENARIOS[spec.name] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a scenario by name, with a helpful error on typos."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; registered scenarios: {scenario_names()}"
        ) from None


def scenario_names() -> list[str]:
    """The registered scenario names, sorted."""
    return sorted(SCENARIOS)


def list_scenarios() -> list[ScenarioSpec]:
    """All registered scenario specs, sorted by name."""
    return [SCENARIOS[name] for name in scenario_names()]


#: Sentinel distinguishing "not passed" from an explicit ``None`` override.
_UNSET = object()


def _source_window(
    spec: ScenarioSpec, config: DeploymentConfig, params: dict[str, object]
) -> tuple[int, int | None]:
    """Resolve the effective source-eccentricity window for this call."""
    if spec.inherit_config_window:
        default_min, default_max = config.source_min_ecc, config.source_max_ecc
    else:
        default_min, default_max = spec.source_min_ecc, spec.source_max_ecc
    min_ecc = params.pop("source_min_ecc", _UNSET)
    max_ecc = params.pop("source_max_ecc", _UNSET)
    if min_ecc is _UNSET:
        min_ecc = default_min
    if max_ecc is _UNSET:
        max_ecc = default_max
    return int(min_ecc), max_ecc  # type: ignore[arg-type]


def generate_scenario(
    name: str,
    config: DeploymentConfig | None = None,
    *,
    num_nodes: int | None = None,
    seed: int | None = None,
    **params: object,
) -> Deployment:
    """Generate a connected deployment from the named scenario.

    Parameters
    ----------
    name:
        A registered scenario name (see :func:`scenario_names`).
    config:
        Shared deployment geometry (node count, area side, radius, retry
        budget).  ``num_nodes`` is a shorthand for
        ``DeploymentConfig(num_nodes=...)`` with paper defaults.
    seed:
        Seed for the scenario's private RNG stream.  Fixing it makes the
        returned deployment bit-identical across calls and processes.
    params:
        Scenario-specific overrides (cluster count, corridor width, ...);
        see each scenario's ``defaults``.  ``source_min_ecc`` /
        ``source_max_ecc`` override the scenario's source window.

    Raises
    ------
    DeploymentError
        If no connected topology with an eligible source is produced within
        ``config.max_attempts`` attempts.
    """
    spec = get_scenario(name)
    if config is None:
        if num_nodes is None:
            raise ValueError("either num_nodes or config must be provided")
        config = DeploymentConfig(num_nodes=num_nodes)

    merged: dict[str, object] = {**spec.defaults, **params}
    min_ecc, max_ecc = _source_window(spec, config, merged)
    unknown = set(merged) - set(spec.defaults)
    if unknown:
        raise TypeError(
            f"scenario {name!r} got unknown parameters {sorted(unknown)}; "
            f"accepted: {sorted(spec.defaults)}"
        )

    rng = make_rng(seed)
    effective = dataclasses.replace(
        config, source_min_ecc=min_ecc, source_max_ecc=max_ecc
    )
    last_error = "no attempt made"
    for attempt in range(1, config.max_attempts + 1):
        topology = spec.builder(config, rng, **merged)
        if not topology.is_connected():
            last_error = "deployment disconnected"
            continue
        candidates = _candidate_sources(topology, effective)
        if not candidates:
            last_error = f"no node with eccentricity in [{min_ecc}, {max_ecc}]"
            continue
        source = int(candidates[int(rng.integers(len(candidates)))])
        return Deployment(
            topology=topology,
            source=source,
            config=effective,
            attempts=attempt,
            scenario=name,
        )

    raise DeploymentError(
        f"scenario {name!r} failed after {config.max_attempts} attempts "
        f"({last_error}); consider relaxing the parameters or raising the density"
    )
