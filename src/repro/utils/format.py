"""Plain-text table formatting for experiment reports.

The experiment harness prints the same rows/series the paper's figures plot.
``matplotlib`` is intentionally not a dependency: the reproduction targets a
headless environment, so results are emitted as aligned text tables and CSV.
"""

from __future__ import annotations

import io
from typing import Iterable, Mapping, Sequence

__all__ = ["format_table", "format_series_table", "to_csv"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    float_format: str = "{:.2f}",
) -> str:
    """Render ``rows`` as an aligned, pipe-separated text table."""
    rendered_rows: list[list[str]] = []
    for row in rows:
        rendered: list[str] = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_format.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)

    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            if index >= len(widths):
                widths.append(len(cell))
            else:
                widths[index] = max(widths[index], len(cell))

    def _line(cells: Sequence[str]) -> str:
        padded = [cell.ljust(widths[i]) for i, cell in enumerate(cells)]
        return "| " + " | ".join(padded) + " |"

    separator = "|-" + "-|-".join("-" * w for w in widths) + "-|"
    lines = [_line(list(headers)), separator]
    lines.extend(_line(row) for row in rendered_rows)
    return "\n".join(lines)


def format_series_table(
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    *,
    float_format: str = "{:.2f}",
) -> str:
    """Render one column per series, one row per x value (figure layout)."""
    headers = [x_label, *series.keys()]
    rows = []
    for index, x in enumerate(x_values):
        row: list[object] = [x]
        for values in series.values():
            row.append(values[index] if index < len(values) else float("nan"))
        rows.append(row)
    return format_table(headers, rows, float_format=float_format)


def to_csv(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> str:
    """Serialise rows to a CSV string (no external csv dependency quirks)."""
    buffer = io.StringIO()
    buffer.write(",".join(str(h) for h in headers) + "\n")
    for row in rows:
        buffer.write(",".join(str(cell) for cell in row) + "\n")
    return buffer.getvalue()
