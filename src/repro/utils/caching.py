"""Lightweight caching primitives used by the schedulers.

The time-counter search (:mod:`repro.core.time_counter`) memoises the
completion time of intermediate coverage states.  The number of distinct
states can grow quickly on dense deployments, so the memo table used there
is a bounded LRU mapping rather than an unbounded dict.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Hashable, TypeVar

__all__ = ["BoundedCache", "CacheStats"]

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class CacheStats:
    """Hit/miss/eviction counters for a :class:`BoundedCache`."""

    __slots__ = ("hits", "misses", "evictions")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def lookups(self) -> int:
        """Total number of lookups performed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions})"
        )


class BoundedCache(Generic[K, V]):
    """A small LRU cache with explicit statistics.

    Parameters
    ----------
    max_entries:
        Maximum number of entries retained.  ``None`` disables eviction
        (unbounded cache).
    """

    def __init__(self, max_entries: int | None = 100_000) -> None:
        if max_entries is not None and max_entries <= 0:
            raise ValueError(f"max_entries must be positive or None, got {max_entries}")
        self._max_entries = max_entries
        self._data: OrderedDict[K, V] = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: K) -> bool:
        return key in self._data

    def get(self, key: K, default: V | None = None) -> V | None:
        """Return the cached value for ``key`` (marking it most-recent)."""
        try:
            value = self._data[key]
        except KeyError:
            self.stats.misses += 1
            return default
        self.stats.hits += 1
        self._data.move_to_end(key)
        return value

    def put(self, key: K, value: V) -> None:
        """Insert ``key -> value``, evicting the LRU entry if full."""
        self._data[key] = value
        self._data.move_to_end(key)
        if self._max_entries is not None and len(self._data) > self._max_entries:
            self._data.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every cached entry (statistics are preserved)."""
        self._data.clear()
