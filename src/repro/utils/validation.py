"""Small argument-validation helpers used across the library.

These keep the public constructors' precondition checks terse and the error
messages uniform, which matters for a library meant to be embedded in larger
simulation pipelines where a bad parameter should fail loudly and early.
"""

from __future__ import annotations

from typing import Any

__all__ = ["require", "check_positive", "check_non_negative", "check_probability"]


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with ``message`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def check_positive(name: str, value: float) -> float:
    """Validate that ``value`` is strictly positive and return it."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Validate that ``value`` is >= 0 and return it."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Validate that ``value`` lies in [0, 1] and return it."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_type(name: str, value: Any, expected: type | tuple[type, ...]) -> Any:
    """Validate that ``value`` is an instance of ``expected`` and return it."""
    if not isinstance(value, expected):
        raise TypeError(
            f"{name} must be an instance of {expected!r}, got {type(value)!r}"
        )
    return value
