"""Canonical serialization and atomic file writes for the experiment store.

Two concerns that must behave identically everywhere they are used:

* :func:`canonical_json` — a *stable* JSON rendering (sorted keys, no
  whitespace variance, exact float round-trips) so that the same logical
  value always hashes to the same content digest, in every process and on
  every platform;
* :func:`atomic_write_text` — write-then-rename so a reader (or a crashed
  writer) never observes a half-written file; ``os.replace`` is atomic on
  POSIX and Windows for same-filesystem paths, which holds because the
  temporary file lives next to its target.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

__all__ = ["canonical_json", "atomic_write_text"]


def canonical_json(value: object) -> str:
    """Render ``value`` as canonical JSON (stable across processes).

    Keys are sorted, separators carry no whitespace, and non-ASCII text is
    escaped, so equal values always produce equal strings — the property
    the content-addressed cell digests rely on.  Floats use Python's
    ``repr``-based JSON encoding, which round-trips every IEEE-754 double
    exactly.
    """
    return json.dumps(
        value, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


def atomic_write_text(path: Path | str, text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    The parent directory is created if needed.  A crash mid-write leaves at
    most a stale ``.tmp-*`` sibling (cleaned by the store's ``gc``), never a
    truncated target file.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    handle = tempfile.NamedTemporaryFile(
        "w",
        dir=target.parent,
        prefix=f".{target.name}.tmp-",
        suffix="",
        delete=False,
        encoding="utf-8",
    )
    try:
        with handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(handle.name, target)
    except BaseException:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise
