"""Deterministic random-number-generation helpers.

Every stochastic component of the library (deployments, wake-up schedules,
experiment sweeps) accepts an integer seed and derives its own independent
:class:`numpy.random.Generator` from it, so that

* results are reproducible bit-for-bit for a given seed, and
* different components (e.g. the deployment and each node's wake-up
  schedule) never share a random stream even when configured from a single
  experiment-level seed.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

import numpy as np

__all__ = ["make_rng", "derive_seed", "spawn_seeds"]

_MASK_63 = (1 << 63) - 1


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` yields a non-deterministic generator (fresh OS entropy); any
    integer yields a deterministic PCG64 stream.
    """
    return np.random.default_rng(seed)


def derive_seed(base_seed: int, *components: object) -> int:
    """Derive a child seed from ``base_seed`` and a path of components.

    The derivation hashes the textual representation of the path with
    SHA-256, which keeps child streams statistically independent even for
    adjacent base seeds (unlike e.g. ``base_seed + node_id``).

    Parameters
    ----------
    base_seed:
        The experiment- or object-level seed.
    components:
        Arbitrary hashable path elements, e.g. ``("wakeup", node_id)``.

    Returns
    -------
    int
        A non-negative 63-bit integer usable as a numpy seed.
    """
    digest = hashlib.sha256()
    digest.update(str(int(base_seed)).encode("utf-8"))
    for component in components:
        digest.update(b"\x1f")
        digest.update(repr(component).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big") & _MASK_63


def spawn_seeds(base_seed: int, count: int, *path: object) -> list[int]:
    """Return ``count`` derived seeds for the given path prefix."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return [derive_seed(base_seed, *path, index) for index in range(count)]


def shuffled(items: Iterable, rng: np.random.Generator) -> list:
    """Return a new list with ``items`` in a randomly permuted order."""
    result = list(items)
    rng.shuffle(result)
    return result
