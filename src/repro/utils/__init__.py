"""Shared utilities: seeded RNG helpers, caching, validation, formatting."""

from repro.utils.rng import derive_seed, make_rng
from repro.utils.serialization import atomic_write_text, canonical_json
from repro.utils.validation import (
    check_non_negative,
    check_positive,
    check_probability,
    require,
)

__all__ = [
    "atomic_write_text",
    "canonical_json",
    "check_non_negative",
    "check_positive",
    "check_probability",
    "derive_seed",
    "make_rng",
    "require",
]
