"""The telemetry event taxonomy: one frozen dataclass per observable fact.

Every event is a plain value — hashable, comparable, JSON-flattenable via
:func:`event_to_json` — with a class-level ``kind`` string that names it in
traces and monitor views.  Events deliberately carry **no timestamps and no
RNG state**: an event is what happened, not when the wall clock saw it
(sinks that care about arrival time stamp events themselves, see
:mod:`repro.obs.sinks`), and emitting one can therefore never perturb a
sweep's deterministic record stream.

The zero-cost contract (see :mod:`repro.obs.bus`) means event *construction*
is guarded at every hot call site::

    if EVENT_BUS.active:
        EVENT_BUS.emit(events.SlotAdvanced(...))

so a run with no sink attached never allocates an event at all — the unit
suite pins this by swapping the event classes for raisers.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import ClassVar

__all__ = [
    "Event",
    "SweepStarted",
    "SweepFinished",
    "CellStarted",
    "CellFinished",
    "StripeStarted",
    "StripeFinished",
    "SlotAdvanced",
    "LaneWoke",
    "StoreHit",
    "StoreMiss",
    "StorePut",
    "LeaseClaimed",
    "LeaseExpired",
    "LeaseFailed",
    "CellQuarantined",
    "WorkerHeartbeat",
    "EVENT_KINDS",
    "event_to_json",
    "event_from_json",
]


@dataclass(frozen=True)
class Event:
    """Base class of every telemetry event (never emitted itself)."""

    kind: ClassVar[str] = "event"


# -- sweep runner ----------------------------------------------------------


@dataclass(frozen=True)
class SweepStarted(Event):
    """``run_sweep`` partitioned its grid and is about to dispatch.

    ``cached_cells``/``missing_cells`` describe the store partition;
    ``cached_cells`` is ``-1`` for store-less sweeps (nothing was
    consulted, so "0 cached" would be misleading).
    """

    kind: ClassVar[str] = "sweep_started"
    system: str
    rate: int
    engine: str
    total_cells: int
    cached_cells: int
    missing_cells: int


@dataclass(frozen=True)
class SweepFinished(Event):
    """``run_sweep`` reassembled every record."""

    kind: ClassVar[str] = "sweep_finished"
    records: int
    cache_hits: int
    cache_misses: int


@dataclass(frozen=True)
class CellStarted(Event):
    """One grid cell's simulation began (in whichever process runs it)."""

    kind: ClassVar[str] = "cell_started"
    system: str
    rate: int
    num_nodes: int
    repetition: int


@dataclass(frozen=True)
class CellFinished(Event):
    """One grid cell's records arrived back at the runner (serial index)."""

    kind: ClassVar[str] = "cell_finished"
    index: int
    num_nodes: int
    repetition: int
    records: int


# -- batched stripe executor ----------------------------------------------


@dataclass(frozen=True)
class StripeStarted(Event):
    """A same-node-count stripe of lanes entered the stacked executor."""

    kind: ClassVar[str] = "stripe_started"
    num_nodes: int
    lanes: int


@dataclass(frozen=True)
class StripeFinished(Event):
    """A stripe completed, with its :class:`~repro.sim.batched.BatchProfile`
    split (zeros when the stripe ran unprofiled)."""

    kind: ClassVar[str] = "stripe_finished"
    num_nodes: int
    lanes: int
    kernel_s: float
    decide_s: float
    bookkeeping_s: float
    macro_steps: int
    advances: int


@dataclass(frozen=True)
class SlotAdvanced(Event):
    """One recorded advance of a streamed broadcast (transmission slot)."""

    kind: ClassVar[str] = "slot_advanced"
    time: int
    transmitters: int
    receivers: int


@dataclass(frozen=True)
class LaneWoke(Event):
    """A batched lane reached its next offered slot and was served."""

    kind: ClassVar[str] = "lane_woke"
    lane: int
    time: int


# -- experiment store ------------------------------------------------------


@dataclass(frozen=True)
class StoreHit(Event):
    """``ExperimentStore.get`` served a cached cell."""

    kind: ClassVar[str] = "store_hit"
    digest: str
    records: int


@dataclass(frozen=True)
class StoreMiss(Event):
    """``ExperimentStore.get`` found no cached cell for a digest."""

    kind: ClassVar[str] = "store_miss"
    digest: str


@dataclass(frozen=True)
class StorePut(Event):
    """``ExperimentStore.put`` committed one cell's record batch."""

    kind: ClassVar[str] = "store_put"
    digest: str
    records: int


# -- fabric ----------------------------------------------------------------


@dataclass(frozen=True)
class LeaseClaimed(Event):
    """The lease queue granted a cell to a worker."""

    kind: ClassVar[str] = "lease_claimed"
    index: int
    worker: str
    lease_id: str


@dataclass(frozen=True)
class LeaseExpired(Event):
    """A lease's deadline passed and its cell was requeued (or quarantined)."""

    kind: ClassVar[str] = "lease_expired"
    index: int
    worker: str
    attempts: int


@dataclass(frozen=True)
class LeaseFailed(Event):
    """A live lease was failed explicitly (e.g. a rejected result)."""

    kind: ClassVar[str] = "lease_failed"
    index: int
    worker: str
    reason: str
    attempts: int


@dataclass(frozen=True)
class CellQuarantined(Event):
    """A cell spent its retry budget and left the rotation."""

    kind: ClassVar[str] = "cell_quarantined"
    index: int
    reason: str
    attempts: int


@dataclass(frozen=True)
class WorkerHeartbeat(Event):
    """A fabric worker pinged its lease to keep it alive."""

    kind: ClassVar[str] = "worker_heartbeat"
    worker: str
    lease_id: str
    valid: bool


#: ``kind`` string -> event class, for trace decoding and the docs table.
EVENT_KINDS: dict[str, type[Event]] = {
    cls.kind: cls
    for cls in (
        SweepStarted,
        SweepFinished,
        CellStarted,
        CellFinished,
        StripeStarted,
        StripeFinished,
        SlotAdvanced,
        LaneWoke,
        StoreHit,
        StoreMiss,
        StorePut,
        LeaseClaimed,
        LeaseExpired,
        LeaseFailed,
        CellQuarantined,
        WorkerHeartbeat,
    )
}


def event_to_json(event: Event) -> dict:
    """Flatten an event to a JSON-safe dict (``{"event": kind, **fields}``)."""
    return {"event": event.kind, **dataclasses.asdict(event)}


def event_from_json(payload: dict) -> Event:
    """Rebuild a typed event from :func:`event_to_json` output.

    Unknown keys beyond ``event`` and the sink-stamped ``ts`` are rejected
    by the dataclass constructor, so a trace written by a different schema
    fails loudly instead of decoding into the wrong shape.
    """
    fields = dict(payload)
    kind = fields.pop("event")
    fields.pop("ts", None)
    cls = EVENT_KINDS.get(kind)
    if cls is None:
        raise ValueError(
            f"unknown event kind {kind!r}; known kinds: {sorted(EVENT_KINDS)}"
        )
    return cls(**fields)
