"""``repro.obs`` — the telemetry spine: events, sinks, metrics, monitor.

Observation never participates in simulation: events are pure values, the
bus is write-only from the instrumented layers' point of view, and the
zero-cost-when-off contract (see :mod:`repro.obs.bus`) keeps uninstrumented
runs allocation-free.  Quick start::

    from repro.obs import EVENT_BUS, RingBufferSink

    ring = RingBufferSink()
    with EVENT_BUS.attached(ring):
        run_sweep(config, store=store)
    print(ring.counts())

See docs/telemetry.md for the event taxonomy and the monitor.
"""

from repro.obs.bus import EVENT_BUS, EventBus, TelemetrySinkError
from repro.obs.events import (
    EVENT_KINDS,
    CellFinished,
    CellQuarantined,
    CellStarted,
    Event,
    LaneWoke,
    LeaseClaimed,
    LeaseExpired,
    LeaseFailed,
    SlotAdvanced,
    StoreHit,
    StoreMiss,
    StorePut,
    StripeFinished,
    StripeStarted,
    SweepFinished,
    SweepStarted,
    WorkerHeartbeat,
    event_from_json,
    event_to_json,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSink,
    profile_to_metrics,
)
from repro.obs.monitor import SweepMonitor, render_metrics
from repro.obs.sinks import (
    OBS_SINKS,
    CallbackSink,
    EventSink,
    JsonlTraceSink,
    RingBufferSink,
    build_sink,
    read_trace,
    sink_names,
)

__all__ = [
    # bus
    "EVENT_BUS",
    "EventBus",
    "TelemetrySinkError",
    # events
    "Event",
    "EVENT_KINDS",
    "SweepStarted",
    "SweepFinished",
    "CellStarted",
    "CellFinished",
    "StripeStarted",
    "StripeFinished",
    "SlotAdvanced",
    "LaneWoke",
    "StoreHit",
    "StoreMiss",
    "StorePut",
    "LeaseClaimed",
    "LeaseExpired",
    "LeaseFailed",
    "CellQuarantined",
    "WorkerHeartbeat",
    "event_to_json",
    "event_from_json",
    # sinks
    "EventSink",
    "RingBufferSink",
    "JsonlTraceSink",
    "CallbackSink",
    "OBS_SINKS",
    "build_sink",
    "sink_names",
    "read_trace",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSink",
    "profile_to_metrics",
    # monitor
    "SweepMonitor",
    "render_metrics",
]
