"""The event bus: fan one event stream out to attached sinks, zero-cost off.

One process-wide bus (:data:`EVENT_BUS`) carries every telemetry event of
the instrumented layers — sweep runner, store, batched executor, fabric.
The design constraint is the **zero-cost-when-off contract**: with no sink
attached, instrumented hot paths must not even *construct* events, let
alone dispatch them.  Call sites therefore guard on the plain attribute
``EVENT_BUS.active``::

    if EVENT_BUS.active:
        EVENT_BUS.emit(events.StoreHit(digest, len(records)))

which costs one attribute load and one branch — unmeasurable against a
slot kernel, and gated below 5% end-to-end by
``benchmarks/test_telemetry_overhead.py``.

Attach/detach rebuild an immutable sink tuple under a lock while ``emit``
reads a snapshot, so emitting is safe from any thread (fabric coordinator
executor threads, fleet worker threads) without taking a lock.  A sink that
raises mid-emit aborts the run loudly, wrapped in :class:`TelemetrySinkError`
naming the sink and the event — telemetry never drops data silently, and a
broken sink is a bug to fix, not to paper over.

Events are observation only: no instrumented code path reads the bus, so
records stay bit-identical with any sink set attached (the property suite
``tests/property/test_telemetry_determinism.py`` pins this across engines
and fleets).
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.events import Event
    from repro.obs.sinks import EventSink

__all__ = ["EventBus", "TelemetrySinkError", "EVENT_BUS"]


class TelemetrySinkError(RuntimeError):
    """A sink raised while consuming an event (event + sink attached).

    Carries the failing sink and event so the operator sees *which*
    telemetry consumer broke and on what, instead of a bare traceback
    pointing into the middle of a sweep.
    """

    def __init__(self, sink: object, event: "Event", error: BaseException) -> None:
        self.sink = sink
        self.event = event
        super().__init__(
            f"telemetry sink {type(sink).__name__} failed on "
            f"{event.kind!r} event {event!r}: {type(error).__name__}: {error}"
        )


class EventBus:
    """A many-sinks broadcast channel for telemetry events.

    ``active`` is a plain boolean attribute (not a property) so the hot-path
    guard is a single ``LOAD_ATTR`` — it is ``True`` exactly while at least
    one sink is attached.
    """

    def __init__(self) -> None:
        self._sinks: tuple["EventSink", ...] = ()
        self._lock = threading.Lock()
        #: Hot-path guard: true while any sink is attached.
        self.active: bool = False

    # -- sink management ---------------------------------------------------

    def attach(self, sink: "EventSink") -> "EventSink":
        """Attach a sink (returned for chaining); idempotent per instance."""
        with self._lock:
            if sink not in self._sinks:
                self._sinks = (*self._sinks, sink)
            self.active = True
        return sink

    def detach(self, sink: "EventSink") -> None:
        """Detach a sink; unknown sinks are ignored (idempotent)."""
        with self._lock:
            self._sinks = tuple(s for s in self._sinks if s is not sink)
            self.active = bool(self._sinks)

    @property
    def sinks(self) -> tuple["EventSink", ...]:
        """The currently attached sinks (snapshot)."""
        return self._sinks

    @contextmanager
    def attached(self, *sinks: "EventSink") -> Iterator[tuple["EventSink", ...]]:
        """Attach sinks for the duration of a ``with`` block, then detach.

        The standard way to scope telemetry to one sweep::

            ring = RingBufferSink()
            with EVENT_BUS.attached(ring):
                run_sweep(config, ...)
        """
        for sink in sinks:
            self.attach(sink)
        try:
            yield sinks
        finally:
            for sink in sinks:
                self.detach(sink)

    def _reset_after_fork(self) -> None:
        """Detach everything in a freshly forked child (see module note below)."""
        self._lock = threading.Lock()
        self._sinks = ()
        self.active = False

    # -- emission ----------------------------------------------------------

    def emit(self, event: "Event") -> None:
        """Hand one event to every attached sink, in attach order.

        Callers on hot paths must guard with ``if EVENT_BUS.active`` so the
        event itself is never constructed when nobody listens; ``emit`` on
        an inactive bus is still correct (it does nothing).
        """
        for sink in self._sinks:
            try:
                sink.consume(event)
            except Exception as error:
                raise TelemetrySinkError(sink, event, error) from error


#: The process-wide bus every instrumented layer emits into.
EVENT_BUS = EventBus()

# A forked pool worker (the runner's Linux fast path) would otherwise
# inherit the parent's sinks — including open jsonl file descriptors, whose
# concurrent appends could tear the trace.  Telemetry is a parent-process
# observation for pool runs: the child starts with a quiet bus, the parent
# still sees every cell finish.  (Spawned workers re-import and get a fresh
# bus anyway.)
if hasattr(os, "register_at_fork"):  # pragma: no branch - posix in CI
    os.register_at_fork(after_in_child=EVENT_BUS._reset_after_fork)
