"""The live sweep monitor behind ``repro monitor``.

:class:`SweepMonitor` assembles one text *frame* per refresh from up to
three independent feeds — any subset works, so the same monitor watches a
local sweep, a store being filled by another process, or a whole fabric
fleet:

* a **store** (``--store``): cached cell / record counts straight from the
  sqlite index (cheap: no shard reads);
* a **jsonl trace** (``--trace``): the :class:`~repro.obs.sinks.JsonlTraceSink`
  file a live run is appending to, re-folded through
  :class:`~repro.obs.metrics.MetricsSink` on every refresh (the file is the
  transport, so the watched process needs no server);
* a **fabric coordinator** (``--url``): the ``status`` action plus, when the
  server was started with ``--telemetry``, the ``/metrics`` endpoint.

Frames are plain text (one ``render()`` string); :meth:`SweepMonitor.watch`
redraws with an ANSI home+clear prefix so a terminal shows a refreshing
dashboard while pipes and CI logs just see frames separated by blank lines.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path
from typing import TYPE_CHECKING, Callable, TextIO

from repro.obs.events import event_from_json
from repro.obs.metrics import MetricsRegistry, MetricsSink
from repro.obs.sinks import read_trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store.store import ExperimentStore

__all__ = ["SweepMonitor", "render_metrics"]

#: Heartbeat age (seconds) past which a worker is flagged as stale.
STALE_WORKER_S = 15.0

_CLEAR = "\x1b[H\x1b[2J"


def _fmt_rate(value: float) -> str:
    return f"{value:.1f}" if value < 100 else f"{value:.0f}"


def render_metrics(snapshot: dict, *, clock: Callable[[], float] = time.time) -> list[str]:
    """Render a :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` as frame lines.

    Shared by the trace panel and the fabric ``/metrics`` panel so both
    read identically; worker liveness gauges are summarised into a health
    row per worker instead of raw timestamps.
    """
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    lines: list[str] = []

    total = gauges.get("sweep.total_cells")
    finished = counters.get("sweep.cells_finished", 0)
    if total:
        width = 30
        filled = int(width * min(finished / total, 1.0))
        bar = "#" * filled + "-" * (width - filled)
        rate = gauges.get("sweep.cells_per_s", 0.0)
        lines.append(
            f"  sweep     [{bar}] {int(finished)}/{int(total)} cells"
            + (f" @ {_fmt_rate(rate)} cells/s" if rate else "")
        )
    elif finished:
        lines.append(f"  sweep     {int(finished)} cells finished")

    hits = counters.get("store.hits", 0)
    misses = counters.get("store.misses", 0)
    if hits or misses:
        rate = gauges.get("store.hit_rate", 0.0)
        lines.append(
            f"  cache     {int(hits)} hits / {int(misses)} misses "
            f"({100.0 * rate:.0f}% hit rate)"
        )

    kernel = counters.get("stripe.kernel_s")
    if kernel is not None:
        decide = counters.get("stripe.decide_s", 0.0)
        bookkeeping = counters.get("stripe.bookkeeping_s", 0.0)
        lines.append(
            f"  stripes   kernel {kernel * 1e3:.1f} ms | "
            f"decisions {decide * 1e3:.1f} ms | "
            f"bookkeeping {bookkeeping * 1e3:.1f} ms "
            f"({int(counters.get('stripe.macro_steps', 0))} macro-steps)"
        )

    retries = counters.get("fabric.lease_retries", 0)
    claims = counters.get("fabric.lease_claims", 0)
    quarantined = counters.get("fabric.quarantined", 0)
    if claims or retries or quarantined:
        lines.append(
            f"  leases    {int(claims)} claims, {int(retries)} retries, "
            f"{int(quarantined)} quarantined"
        )

    # Worker liveness arrives as either absolute heartbeat stamps (the
    # event-folding MetricsSink) or ready-made ages (the coordinator's
    # /metrics gauges, whose monotonic clock cannot cross the wire).
    now = clock()
    ages: dict[str, float] = {}
    for name, value in gauges.items():
        if not name.startswith("worker."):
            continue
        if name.endswith(".last_seen_ts"):
            ages[name[len("worker.") : -len(".last_seen_ts")]] = max(now - value, 0.0)
        elif name.endswith(".last_seen_age_s"):
            ages[name[len("worker.") : -len(".last_seen_age_s")]] = max(value, 0.0)
    for worker, age in sorted(ages.items()):
        health = "ok" if age <= STALE_WORKER_S else f"STALE {age:.0f}s"
        lines.append(f"  worker    {worker:<20} last heartbeat {age:5.1f}s ago  [{health}]")
    return lines


class SweepMonitor:
    """Render a refreshing dashboard from a store, a trace file and/or a fabric.

    Parameters
    ----------
    store:
        An open :class:`~repro.store.store.ExperimentStore` to summarise
        (cached cells/records), or ``None``.
    trace:
        Path of a live :class:`~repro.obs.sinks.JsonlTraceSink` file to
        re-fold each refresh, or ``None``.
    url:
        A fabric coordinator base URL to poll for ``status`` (and
        ``/metrics`` when served with ``--telemetry``), or ``None``.
    clock:
        Injectable wall clock (tests freeze it).
    """

    def __init__(
        self,
        *,
        store: "ExperimentStore | None" = None,
        trace: Path | str | None = None,
        url: str | None = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if store is None and trace is None and url is None:
            raise ValueError("monitor needs at least one of store, trace or url")
        self.store = store
        self.trace = Path(trace) if trace is not None else None
        self.url = url
        self._clock = clock

    # -- feeds -------------------------------------------------------------

    def _trace_snapshot(self) -> tuple[dict, int]:
        """Re-fold the whole trace into a fresh registry (events, count).

        A full re-read per frame is deliberate: traces are append-only and
        monitor refreshes are ~1 Hz, so re-folding keeps the monitor
        stateless across torn tails and trace truncation/rotation.
        """
        registry = MetricsRegistry()
        # Trace heartbeat ages must be measured against the *event* stamps,
        # not fold time — replaying N heartbeats at fold time would mark
        # every worker fresh.  The sink's clock is patched per event below.
        sink = MetricsSink(registry, clock=self._clock)
        seen = 0
        for payload in read_trace(self.trace):
            stamp = payload.get("ts")
            if stamp is not None:
                sink._clock = lambda s=stamp: s
            sink.consume(event_from_json(payload))
            seen += 1
        sink._clock = self._clock
        return registry.snapshot(), seen

    def _fabric_snapshot(self) -> tuple[dict | None, dict | None, str | None]:
        """(status, metrics, error) from the coordinator, tolerating absence.

        A down coordinator or a server without ``--telemetry`` must not
        kill the monitor — the frame reports the error line instead.
        """
        from repro.fabric.transport import HttpTransport, TransportError

        transport = HttpTransport(self.url)
        try:
            try:
                status = transport.request("status", {})
            except TransportError as error:
                return None, None, str(error)
            try:
                metrics = transport.request("metrics", {})
            except TransportError:
                metrics = None  # serve ran without --telemetry
            return status, metrics, None
        finally:
            transport.close()

    # -- rendering ---------------------------------------------------------

    def render(self) -> str:
        """One dashboard frame as plain text."""
        lines = [f"repro monitor · {time.strftime('%H:%M:%S', time.localtime(self._clock()))}"]

        if self.store is not None:
            stats = self.store.stats()
            lines.append(f"store · {self.store.root}")
            lines.append(
                f"  cached    {stats.cells} cells / {stats.records} records "
                f"({stats.shard_bytes / 1024:.1f} KiB in shards)"
            )

        if self.trace is not None:
            snapshot, seen = self._trace_snapshot()
            lines.append(f"trace · {self.trace}")
            if seen:
                lines.extend(
                    render_metrics(snapshot, clock=self._clock)
                    or ["  (no renderable metrics yet)"]
                )
            else:
                lines.append("  (no events yet)")

        if self.url is not None:
            status, metrics, error = self._fabric_snapshot()
            lines.append(f"fabric · {self.url}")
            if error is not None:
                lines.append(f"  unreachable: {error}")
            elif status is not None:
                counts = status["counts"]
                lines.append(
                    f"  cells     {counts['completed']}/{status['total']} done "
                    f"(pending {counts['pending']}, leased {counts['leased']}, "
                    f"quarantined {counts['quarantined']})"
                )
                depth = status.get("queue_depth")
                if depth is not None:
                    oldest = status.get("oldest_lease_age_s")
                    oldest_text = (
                        f", oldest lease {oldest:.1f}s" if oldest is not None else ""
                    )
                    lines.append(f"  queue     depth {depth}{oldest_text}")
                attempts = status.get("attempts") or {}
                retried = {cell: n for cell, n in attempts.items() if n > 1}
                if retried:
                    worst = sorted(
                        retried.items(), key=lambda item: (-item[1], int(item[0]))
                    )[:5]
                    rendered = ", ".join(f"cell {cell}×{n}" for cell, n in worst)
                    lines.append(f"  retries   {rendered}")
                for worker, stats in sorted(status.get("workers", {}).items()):
                    done = int(stats.get("completed", 0))
                    failures = int(stats.get("failures", 0))
                    age = stats.get("last_seen_age_s")
                    if age is None:
                        health = "seen"
                        seen_text = ""
                    else:
                        health = "ok" if age <= STALE_WORKER_S else f"STALE {age:.0f}s"
                        seen_text = f" last seen {age:5.1f}s ago "
                    lines.append(
                        f"  worker    {worker:<20} {done} done, "
                        f"{failures} failed{seen_text} [{health}]"
                    )
                if metrics is not None:
                    lines.extend(render_metrics(metrics, clock=self._clock))
        return "\n".join(lines)

    def watch(
        self,
        *,
        interval: float = 1.0,
        frames: int | None = None,
        out: TextIO | None = None,
    ) -> int:
        """Redraw until interrupted (or for ``frames`` refreshes); returns 0.

        On a TTY each frame is preceded by an ANSI home+clear so the view
        refreshes in place; elsewhere frames separate with a blank line so
        logs stay readable.
        """
        out = out if out is not None else sys.stdout
        tty = getattr(out, "isatty", lambda: False)()
        drawn = 0
        try:
            while frames is None or drawn < frames:
                frame = self.render()
                if tty:
                    out.write(_CLEAR + frame + "\n")
                else:
                    out.write(frame + "\n\n")
                out.flush()
                drawn += 1
                if frames is not None and drawn >= frames:
                    break
                time.sleep(interval)
        except KeyboardInterrupt:  # pragma: no cover - interactive exit
            pass
        return 0
