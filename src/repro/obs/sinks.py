"""Pluggable event sinks behind the ``OBS_SINKS`` registry.

Three built-ins cover the observation modes the monitor and the test
harness need:

``ring``
    :class:`RingBufferSink` — a bounded in-memory buffer of
    ``(arrival time, event)`` pairs; the live monitor's in-process feed and
    the cheapest way to capture a run's event stream in tests.
``jsonl``
    :class:`JsonlTraceSink` — an append-only, line-buffered JSONL trace
    file (one ``{"event": kind, "ts": ..., **fields}`` object per line).
    Tail-able while the run is live, which is how ``repro monitor --trace``
    follows a sweep from another process; :func:`read_trace` parses one
    back.
``callback``
    :class:`CallbackSink` — adapt any ``event -> None`` callable into a
    sink; the compatibility shim behind ``run_sweep(progress=...)`` is one
    of these.

Sinks stamp arrival times themselves (``time.time()`` at consumption):
events are pure values without clocks (see :mod:`repro.obs.events`), so
timestamping is an observation concern, not a simulation one.

The registry mirrors the repo's other catalogs (``ENGINE_BACKENDS``,
``LINK_MODELS``, ``STORE_BACKENDS``): ``build_sink(name, **kwargs)``
instantiates by name, ``sink_names()`` lists the catalog for CLIs and docs.
"""

from __future__ import annotations

import json
import threading
import time
from collections import Counter, deque
from pathlib import Path
from typing import Callable, Iterator

from repro.obs.events import Event, event_to_json

__all__ = [
    "EventSink",
    "RingBufferSink",
    "JsonlTraceSink",
    "CallbackSink",
    "OBS_SINKS",
    "build_sink",
    "sink_names",
    "read_trace",
]


class EventSink:
    """Base class of every event sink (consume one event, optionally close)."""

    def consume(self, event: Event) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Release any resources (default: nothing to release)."""

    def __enter__(self) -> "EventSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class RingBufferSink(EventSink):
    """Keep the last ``capacity`` events in memory with arrival timestamps.

    ``deque(maxlen=...)`` appends are atomic under the GIL, so the ring is
    safe to feed from many threads (fleet workers, coordinator executors)
    without a lock on the hot path.
    """

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._buffer: deque[tuple[float, Event]] = deque(maxlen=capacity)
        #: Total events ever consumed (survives ring eviction).
        self.total = 0

    def consume(self, event: Event) -> None:
        self.total += 1
        self._buffer.append((time.time(), event))

    def events(self) -> list[Event]:
        """The buffered events, oldest first (timestamps stripped)."""
        return [event for _, event in list(self._buffer)]

    def timestamped(self) -> list[tuple[float, Event]]:
        """The buffered ``(arrival time, event)`` pairs, oldest first."""
        return list(self._buffer)

    def counts(self) -> dict[str, int]:
        """Buffered event count per kind (the monitor's taxonomy row)."""
        return dict(Counter(event.kind for _, event in list(self._buffer)))

    def clear(self) -> None:
        """Drop the buffered events (``total`` keeps counting)."""
        self._buffer.clear()


class JsonlTraceSink(EventSink):
    """Append every event as one JSON line to ``path`` (created on demand).

    The file is opened line-buffered and each write is a single complete
    line under a lock, so a concurrent tail (the monitor, a CI artifact
    grab) always sees whole records.
    """

    def __init__(self, path: Path | str) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("a", encoding="utf-8", buffering=1)
        self._lock = threading.Lock()
        self.written = 0

    def consume(self, event: Event) -> None:
        payload = event_to_json(event)
        payload["ts"] = round(time.time(), 6)
        line = json.dumps(payload, sort_keys=True)
        with self._lock:
            self._handle.write(line + "\n")
            self.written += 1

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()


class CallbackSink(EventSink):
    """Adapt a plain ``event -> None`` callable into a sink."""

    def __init__(self, callback: Callable[[Event], None]) -> None:
        self.callback = callback

    def consume(self, event: Event) -> None:
        self.callback(event)


def read_trace(path: Path | str) -> Iterator[dict]:
    """Parse a :class:`JsonlTraceSink` file into event dicts, in order.

    Yields the raw JSON objects (``event`` kind, ``ts`` stamp, fields) so
    monitors can fold without reconstructing dataclasses; a trailing
    partial line (a writer mid-append) is skipped, not an error.
    """
    path = Path(path)
    if not path.is_file():
        return
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError:
                return  # torn tail: the writer is mid-line


#: Sink registry: name -> class (instantiate via :func:`build_sink`).
OBS_SINKS: dict[str, type[EventSink]] = {
    "ring": RingBufferSink,
    "jsonl": JsonlTraceSink,
    "callback": CallbackSink,
}


def build_sink(name: str, **kwargs: object) -> EventSink:
    """Instantiate a registered sink by name (``jsonl`` needs ``path=``)."""
    try:
        cls = OBS_SINKS[name]
    except KeyError:
        raise ValueError(
            f"unknown sink {name!r}; registered sinks: {sink_names()}"
        ) from None
    return cls(**kwargs)  # type: ignore[arg-type]


def sink_names() -> list[str]:
    """The registered sink names, sorted (CLI/docs catalog order)."""
    return sorted(OBS_SINKS)
