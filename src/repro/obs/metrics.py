"""The metrics registry: counters, gauges and histograms over the event bus.

Two halves:

* :class:`MetricsRegistry` — a named collection of :class:`Counter` /
  :class:`Gauge` / :class:`Histogram` instruments with a JSON-safe
  ``snapshot()``.  This is what ``fabric serve --telemetry`` serves at
  ``/metrics`` and what the live monitor renders.
* :class:`MetricsSink` — an event sink (attachable to the
  :data:`~repro.obs.bus.EVENT_BUS`) folding the event taxonomy into a
  registry: sweep throughput (cells/s), store cache hit rate, lease retry
  counts, per-stripe kernel/decision/bookkeeping time, worker liveness.

:func:`profile_to_metrics` folds a :class:`~repro.sim.batched.BatchProfile`
into the same stripe-time counters, so the ``--profile`` timing split and
the event-driven split land in one namespace.

Instrument mutations take the registry lock — metrics update at cell /
lease / stripe granularity (tens per second), never per slot, so contention
is irrelevant and correctness under fleet threads is free.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Sequence

from repro.obs import events as _events
from repro.obs.events import Event
from repro.obs.sinks import EventSink

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.batched import BatchProfile

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSink",
    "profile_to_metrics",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Default histogram buckets for per-cell wall times (seconds).
DEFAULT_LATENCY_BUCKETS = (0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0)


class Counter:
    """A monotonically increasing number (events, seconds, records)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self.value = 0.0
        self._lock = lock

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        with self._lock:
            self.value += amount


class Gauge:
    """A point-in-time value (queue depth, hit rate, oldest lease age)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self.value = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value


class Histogram:
    """A fixed-bucket distribution (cumulative counts, like Prometheus).

    ``observe(v)`` increments every bucket whose upper bound is >= ``v``
    plus the implicit ``+Inf`` bucket; ``snapshot`` reports bounds, counts,
    total count and sum.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total", "_lock")

    def __init__(
        self, name: str, bounds: Sequence[float], lock: threading.Lock
    ) -> None:
        if list(bounds) != sorted(bounds) or not bounds:
            raise ValueError(f"histogram {name!r} needs sorted, non-empty bounds")
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        self.bucket_counts = [0] * len(self.bounds)
        self.count = 0
        self.total = 0.0
        self._lock = lock

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            for position, bound in enumerate(self.bounds):
                if value <= bound:
                    self.bucket_counts[position] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """A named instrument collection with a JSON-safe snapshot.

    Instruments are created on first access (``counter``/``gauge``/
    ``histogram`` are get-or-create) and share one lock — mutation rates
    are per-cell/per-lease, so a single lock is simpler than per-instrument
    ones and just as fast in practice.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                self._require_free(name)
                instrument = self._counters[name] = Counter(name, self._lock)
        return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                self._require_free(name)
                instrument = self._gauges[name] = Gauge(name, self._lock)
        return instrument

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS
    ) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                self._require_free(name)
                instrument = self._histograms[name] = Histogram(
                    name, bounds, self._lock
                )
        return instrument

    def _require_free(self, name: str) -> None:
        # Caller holds the lock; a name can carry only one instrument type.
        for kind, table in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            if name in table:
                raise ValueError(f"metric {name!r} already registered as a {kind}")

    def snapshot(self) -> dict:
        """Every instrument's current value as one JSON-safe object."""
        with self._lock:
            return {
                "counters": {
                    name: counter.value for name, counter in sorted(self._counters.items())
                },
                "gauges": {
                    name: gauge.value for name, gauge in sorted(self._gauges.items())
                },
                "histograms": {
                    name: {
                        "bounds": list(histogram.bounds),
                        "bucket_counts": list(histogram.bucket_counts),
                        "count": histogram.count,
                        "sum": histogram.total,
                    }
                    for name, histogram in sorted(self._histograms.items())
                },
            }


def profile_to_metrics(profile: "BatchProfile", registry: MetricsRegistry) -> None:
    """Fold a batched-executor timing split into the stripe-time counters.

    The same namespace :class:`MetricsSink` uses for
    :class:`~repro.obs.events.StripeFinished` events, so profiled sweeps
    and event-instrumented sweeps report per-phase time identically.
    """
    registry.counter("stripe.kernel_s").inc(profile.kernel_s)
    registry.counter("stripe.decide_s").inc(profile.decide_s)
    registry.counter("stripe.bookkeeping_s").inc(profile.bookkeeping_s)
    registry.counter("stripe.macro_steps").inc(profile.macro_steps)
    registry.counter("stripe.advances").inc(profile.advances)


class MetricsSink(EventSink):
    """Fold the event stream into a :class:`MetricsRegistry`.

    Derived metrics maintained on the fly:

    * ``sweep.cells_per_s`` — finished cells over the wall time since the
      first :class:`~repro.obs.events.SweepStarted` (sweep throughput);
    * ``store.hit_rate`` — hits / (hits + misses) of the store lookups seen;
    * ``fabric.lease_retries`` — expiries + explicit failures (the retry
      pressure on the queue);
    * ``worker.<name>.last_seen_ts`` — heartbeat liveness per worker.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        *,
        clock=time.time,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._clock = clock
        self._sweep_started_at: float | None = None

    # One handler per event kind keeps the fold auditable against the
    # taxonomy table in docs/telemetry.md.
    def consume(self, event: Event) -> None:
        registry = self.registry
        registry.counter(f"events.{event.kind}").inc()
        if isinstance(event, _events.SweepStarted):
            self._sweep_started_at = self._clock()
            registry.gauge("sweep.total_cells").set(event.total_cells)
            registry.gauge("sweep.missing_cells").set(event.missing_cells)
            if event.cached_cells >= 0:
                registry.gauge("sweep.cached_cells").set(event.cached_cells)
        elif isinstance(event, _events.CellFinished):
            cells = registry.counter("sweep.cells_finished")
            cells.inc()
            registry.counter("sweep.records").inc(event.records)
            if self._sweep_started_at is not None:
                elapsed = max(self._clock() - self._sweep_started_at, 1e-9)
                registry.gauge("sweep.cells_per_s").set(cells.value / elapsed)
        elif isinstance(event, (_events.StoreHit, _events.StoreMiss)):
            key = "store.hits" if isinstance(event, _events.StoreHit) else "store.misses"
            registry.counter(key).inc()
            hits = registry.counter("store.hits").value
            misses = registry.counter("store.misses").value
            registry.gauge("store.hit_rate").set(hits / max(hits + misses, 1.0))
        elif isinstance(event, _events.StorePut):
            registry.counter("store.puts").inc()
        elif isinstance(event, _events.SlotAdvanced):
            registry.counter("engine.slot_advances").inc()
            registry.counter("engine.transmissions").inc(event.transmitters)
        elif isinstance(event, _events.LaneWoke):
            registry.counter("engine.lane_wakeups").inc()
        elif isinstance(event, _events.StripeFinished):
            registry.counter("stripe.kernel_s").inc(event.kernel_s)
            registry.counter("stripe.decide_s").inc(event.decide_s)
            registry.counter("stripe.bookkeeping_s").inc(event.bookkeeping_s)
            registry.counter("stripe.macro_steps").inc(event.macro_steps)
            registry.counter("stripe.advances").inc(event.advances)
            registry.counter("stripe.lanes").inc(event.lanes)
        elif isinstance(event, _events.LeaseClaimed):
            registry.counter("fabric.lease_claims").inc()
        elif isinstance(event, (_events.LeaseExpired, _events.LeaseFailed)):
            registry.counter("fabric.lease_retries").inc()
            key = (
                "fabric.lease_expiries"
                if isinstance(event, _events.LeaseExpired)
                else "fabric.lease_failures"
            )
            registry.counter(key).inc()
        elif isinstance(event, _events.CellQuarantined):
            registry.counter("fabric.quarantined").inc()
        elif isinstance(event, _events.WorkerHeartbeat):
            registry.counter("fabric.heartbeats").inc()
            registry.gauge(f"worker.{event.worker}.last_seen_ts").set(self._clock())
