"""The lightweight estimation 4-tuple ``E`` (Section IV-E, Algorithm 2).

Each node ``u`` carries ``E_i(u)`` for the four quadrants ``Q_i(u)``: an
estimate of the remaining relay work (hop distance, or cycle-waiting time in
the duty-cycle system) from ``u`` to the *edge of the network* in that
quadrant.  The E-model scheduler (Eq. 10) then selects, among the greedy
colour classes, the colour containing the node with the **largest** relevant
estimate — "the longer the path in expectation, the earlier the relay must
be selected and initiated in the pipeline process".

Construction (Algorithm 2)
--------------------------
1.  Identify the network edge (convex hull + boundary construction; see
    :mod:`repro.network.boundary` for the documented substitution).
2.  Each edge node with no neighbour in quadrant ``i`` seeds ``E_i = 0``;
    every other entry starts at infinity.
3.  Relax ``E_i(u) = w(u, v) + min_{v ∈ Q_i(u) ∩ N(u)} E_i(v)`` until the
    fixpoint (Eq. 9 with ``w = 1`` in the synchronous system, Eq. 11 with
    the cycle-waiting-time weight in the duty-cycle system).
4.  Local-minimum repair: any node still at infinity whose quadrant ``i`` is
    empty becomes a zero seed, and the relaxation runs once more.

Because the quadrant successor relation is strictly monotone in one
coordinate (``Q_1`` neighbours have strictly larger x, ``Q_2`` strictly
larger y, ...), each relaxation is a single sweep over the nodes in sorted
coordinate order — O(n log n + m) per quadrant, and O(1) information
exchanges per node as Theorem 3 requires.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Literal, Mapping

from repro.dutycycle.cwt import expected_cwt
from repro.dutycycle.schedule import WakeupSchedule
from repro.network.boundary import boundary_nodes
from repro.network.quadrant import QUADRANTS, quadrant_neighbors
from repro.network.topology import WSNTopology

__all__ = ["EdgeEstimate", "build_edge_estimate"]


#: Sort key per quadrant guaranteeing that every quadrant-i neighbour of a
#: node is processed before the node itself (see module docstring).
_SWEEP_ORDER: dict[int, Callable[[WSNTopology, int], float]] = {
    1: lambda topo, u: -topo.position(u)[0],  # descending x
    2: lambda topo, u: -topo.position(u)[1],  # descending y
    3: lambda topo, u: topo.position(u)[0],  # ascending x
    4: lambda topo, u: topo.position(u)[1],  # ascending y
}


@dataclass(frozen=True)
class EdgeEstimate:
    """The computed 4-tuples ``E_i(u)`` plus bookkeeping for Eq. (10).

    Attributes
    ----------
    values:
        ``values[u][i-1]`` is ``E_i(u)``; entries are floats (hop counts in
        the synchronous system, expected slots in the duty-cycle system).
    mode:
        ``"sync"`` or ``"duty"`` (which weight was used).
    update_count:
        Total number of value updates performed during construction — the
        quantity Theorem 3 bounds by ``4 |N|``.
    """

    values: Mapping[int, tuple[float, float, float, float]]
    mode: Literal["sync", "duty"]
    update_count: int

    def value(self, node_id: int, quadrant: int) -> float:
        """``E_quadrant(node_id)``."""
        if quadrant not in QUADRANTS:
            raise ValueError(f"quadrant must be in {QUADRANTS}, got {quadrant}")
        return self.values[node_id][quadrant - 1]

    def node_score(
        self,
        topology: WSNTopology,
        node_id: int,
        covered: frozenset[int] | set[int],
    ) -> float:
        """Largest estimate over quadrants where ``node_id`` still has work.

        Eq. (10) only compares estimates for quadrants containing uncovered
        neighbours (``N(u) ∩ Q_k(u) ∩ W̄ ≠ ∅``); with no such quadrant the
        node contributes ``-inf`` (it cannot be the bottleneck).
        """
        covered = frozenset(covered)
        best = -math.inf
        for quadrant in QUADRANTS:
            members = quadrant_neighbors(topology, node_id, quadrant)
            if members - covered:
                best = max(best, self.value(node_id, quadrant))
        return best

    def color_score(
        self,
        topology: WSNTopology,
        color: Iterable[int],
        covered: frozenset[int] | set[int],
    ) -> float:
        """The colour's Eq.-(10) score: the max node score over its members."""
        scores = [self.node_score(topology, u, covered) for u in color]
        return max(scores, default=-math.inf)


def _edge_weight(
    mode: Literal["sync", "duty"],
    schedule: WakeupSchedule | None,
    weight: Literal["expected", "unit"],
) -> float:
    if mode == "sync" or weight == "unit":
        return 1.0
    assert schedule is not None
    return expected_cwt(schedule.rate)


def build_edge_estimate(
    topology: WSNTopology,
    schedule: WakeupSchedule | None = None,
    *,
    weight: Literal["expected", "unit"] = "expected",
    boundary: Iterable[int] | None = None,
) -> EdgeEstimate:
    """Run Algorithm 2 and return the resulting :class:`EdgeEstimate`.

    Parameters
    ----------
    topology:
        The network.
    schedule:
        When given, the duty-cycle weights of Eq. (11) are used (the
        per-hop cost becomes the expected cycle waiting time); otherwise
        the synchronous Eq. (9) applies.
    weight:
        ``"expected"`` uses the analytic expectation ``(r + 1) / 2`` as the
        proactive CWT weight; ``"unit"`` forces hop counting even in the
        duty-cycle system (used by the weight-choice ablation).
    boundary:
        Override the network-edge node set (defaults to
        :func:`repro.network.boundary.boundary_nodes`).
    """
    mode: Literal["sync", "duty"] = "duty" if schedule is not None else "sync"
    step = _edge_weight(mode, schedule, weight)
    edge_nodes = frozenset(boundary) if boundary is not None else boundary_nodes(topology)

    estimates: dict[int, list[float]] = {
        u: [math.inf] * 4 for u in topology.node_ids
    }
    updates = 0

    def seed(eligible: Callable[[int], bool]) -> int:
        count = 0
        for u in topology.node_ids:
            for quadrant in QUADRANTS:
                if math.isinf(estimates[u][quadrant - 1]) and eligible(u):
                    if not quadrant_neighbors(topology, u, quadrant):
                        estimates[u][quadrant - 1] = 0.0
                        count += 1
        return count

    def relax() -> int:
        count = 0
        for quadrant in QUADRANTS:
            order = sorted(
                topology.node_ids, key=lambda u: _SWEEP_ORDER[quadrant](topology, u)
            )
            for u in order:
                if not math.isinf(estimates[u][quadrant - 1]):
                    continue
                members = quadrant_neighbors(topology, u, quadrant)
                if not members:
                    continue
                best = min(estimates[v][quadrant - 1] for v in members)
                if not math.isinf(best):
                    estimates[u][quadrant - 1] = step + best
                    count += 1
        return count

    # Phase 1: seeds restricted to the network edge, then one full sweep.
    updates += seed(lambda u: u in edge_nodes)
    updates += relax()
    # Phase 2 (local-minimum repair): interior nodes with an empty quadrant
    # become seeds, then one more sweep resolves the remaining entries.
    updates += seed(lambda u: True)
    updates += relax()

    values = {u: tuple(vals) for u, vals in estimates.items()}
    return EdgeEstimate(values=values, mode=mode, update_count=updates)
