"""Scheduling policies (Algorithm 3): OPT, G-OPT and the E-model.

A *policy* answers one question: given the current broadcast state
``(W, t)``, which colour (if any) should relay now?  The simulators in
:mod:`repro.sim` drive a policy round-by-round (or slot-by-slot) and apply
the advances it returns; the baselines of :mod:`repro.baselines` implement
the same interface, so every scheduler in the paper's evaluation is
exercised through identical machinery.

* :class:`OptPolicy` — the ultimate target: candidate colours are *all*
  admissible colours of Eq. (1) and each is evaluated with the recursive
  time counter ``M`` (Eq. 5 synchronous / Eq. 6 duty-cycle).
* :class:`GreedyOptPolicy` — candidate colours restricted to the greedy
  classes of Algorithm 1, still evaluated with ``M`` (Eq. 7 / Eq. 8).
* :class:`EModelPolicy` — the practical protocol: greedy classes scored by
  the proactive 4-tuple ``E`` (Eq. 10); no recursive search at run time.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Literal, Sequence

from repro.core.advance import Advance, BroadcastState, LaneStateView
from repro.core.coloring import ColorScheme, cached_greedy_color_classes
from repro.core.estimation import EdgeEstimate, build_edge_estimate
from repro.core.time_counter import SearchConfig, TimeCounter
from repro.dutycycle.schedule import WakeupSchedule
from repro.network.topology import WSNTopology

__all__ = [
    "SchedulingPolicy",
    "OptPolicy",
    "GreedyOptPolicy",
    "EModelPolicy",
]


class SchedulingPolicy(ABC):
    """Interface shared by every scheduler in the evaluation.

    Subclasses implement :meth:`select_advance`; the optional
    :meth:`prepare` hook is invoked by :func:`repro.sim.broadcast.run_broadcast`
    once per broadcast with the topology, schedule and source, letting
    policies precompute per-broadcast structures (BFS trees, E-tuples,
    search caches).
    """

    #: Human-readable name used in traces, metrics and experiment reports.
    name: str = "policy"

    #: Whether the policy promises interference-free advances.  The engines
    #: reject conflicting transmitter sets for such policies (catching bugs
    #: early); the idealised flooding reference sets this to False because it
    #: deliberately ignores interference (it is a latency floor, not a real
    #: schedule).
    interference_free: bool = True

    #: Whether the policy keeps working when deliveries may fail.  Frontier
    #: schedulers re-plan from the *actual* covered set every round/slot, so
    #: a node whose delivery failed simply stays in the frontier and is
    #: re-served later — the paper's §VI graceful-degradation argument.
    #: *Planned* policies (the layered 17/26-approximations) precompute a
    #: fixed schedule assuming reliable delivery and either live-lock or
    #: schedule senders that never got the message once links drop packets;
    #: they set this to False and ``run_broadcast`` rejects them for lossy
    #: link models instead of timing out minutes later.
    loss_tolerant: bool = True

    #: Whether the policy is *frontier-driven*: it returns ``None`` (with no
    #: state change) whenever no covered node with an uncovered neighbour is
    #: awake at the current slot.  Declaring this lets the vectorized slot
    #: engine jump over such idle slots without invoking the policy, which
    #: is trace-preserving for policies that keep the promise.  The default
    #: is the fail-safe False — every slot is offered — because a subclass
    #: may legally emit advances with no uncovered receivers (the layered
    #: 17-approximation does exactly that when another parent already
    #: covered a node's children) or mutate per-call state.  The frontier
    #: schedulers of this package (OPT, G-OPT, E-model, flooding,
    #: largest-first) opt in explicitly.
    frontier_driven: bool = False

    #: Whether the policy's *batched* decider reads the stacked
    #: uncovered-degree rows (``LaneStateView.uncovered_degree``).  The
    #: batched executor tracks that state for any lane whose policy either
    #: skips idle duty-cycle slots (``frontier_driven`` with a schedule) or
    #: sets this flag; the flooding baseline opts in so its frontier mask is
    #: one stacked comparison even for synchronous batches.
    batch_frontier: bool = False

    def prepare(
        self,
        topology: WSNTopology,
        schedule: WakeupSchedule | None,
        source: int,
    ) -> None:
        """Per-broadcast initialisation hook (default: nothing to do)."""

    def next_decision_slot(self, time: int) -> int | None:
        """Earliest slot >= ``time`` at which the policy might transmit.

        A fast-forward hint honoured by every engine backend: returning
        ``s`` is a promise that :meth:`select_advance` answers ``None`` for
        every slot in ``[time, s)``, so an engine may jump straight to ``s``
        without offering the intermediate slots (the batched executor feeds
        the hint into its min-heap of lane wake times).  Returning ``None``
        (the default) makes no promise — every slot is offered as usual.
        Policies that precompute their transmission times (replays, the
        exact tiers, the layer-schedule baselines) override this.
        """
        return None

    def select_advance_batch(
        self, views: "Sequence[LaneStateView]"
    ) -> "list[Advance | None]":
        """Batched decision point: one advance (or ``None``) per lane view.

        The batched executor groups its lanes by policy class and calls
        this once per group per macro-slot instead of ``select_advance``
        once per lane.  The default implementation *is* the per-lane
        fallback — it dispatches ``select_advance`` on each view — so a
        policy without a vectorized decider behaves identically under
        either path.

        Contract for overrides:

        * decisions must be **lane-independent** — lane ``i``'s advance may
          depend only on ``views[i]``, never on the other lanes, so any
          lane grouping or batch size yields bit-identical traces (the
          conformance suites pin the batched path against the fallback);
        * a mixed group passes views of *different instances* (the engine
          groups by class), so overrides must consult ``view.policy``
          rather than ``self``;
        * the returned list is parallel to ``views`` (same length, same
          order).

        Direct callers may also pass plain :class:`BroadcastState` objects
        (which carry no ``policy``); the default then decides with ``self``.
        """
        return [
            getattr(view, "policy", self).select_advance(view) for view in views
        ]

    @abstractmethod
    def select_advance(self, state: BroadcastState) -> Advance | None:
        """Return the advance to apply at ``state.time`` (or ``None`` to idle).

        Returning ``None`` means no relay transmits this round/slot — either
        coverage is complete, or (duty-cycle system) no frontier node is
        awake.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class _TimeCounterPolicy(SchedulingPolicy):
    """Shared implementation of the two ``M``-driven schedulers."""

    #: Colours come from the (awake) frontier only, so an idle frontier slot
    #: always yields ``None`` with no state change.
    frontier_driven = True

    #: Colour provider used at the decision point (top level of Eq. 5/7).
    _decision_scheme: ColorScheme
    #: Colour provider used inside the recursive evaluation of ``M``.
    _recursion_scheme: ColorScheme

    def __init__(
        self,
        topology: WSNTopology | None = None,
        schedule: WakeupSchedule | None = None,
        *,
        search: SearchConfig | None = None,
    ) -> None:
        self._search = search or SearchConfig()
        self._topology = topology
        self._schedule = schedule
        self._counter: TimeCounter | None = None
        if topology is not None:
            self._counter = self._build_counter(topology, schedule)

    def _build_counter(
        self, topology: WSNTopology, schedule: WakeupSchedule | None
    ) -> TimeCounter:
        return TimeCounter(
            topology,
            schedule=schedule,
            color_scheme=self._recursion_scheme,
            config=self._search,
        )

    def prepare(
        self,
        topology: WSNTopology,
        schedule: WakeupSchedule | None,
        source: int,
    ) -> None:
        rebuild = (
            self._counter is None
            or self._topology is not topology
            or self._schedule is not schedule
        )
        if rebuild:
            self._topology = topology
            self._schedule = schedule
            self._counter = self._build_counter(topology, schedule)
        else:
            assert self._counter is not None
            self._counter.clear_cache()

    @property
    def search_config(self) -> SearchConfig:
        """The search configuration used to evaluate ``M``."""
        return self._search

    @property
    def counter(self) -> TimeCounter | None:
        """The underlying time counter (``None`` until prepared)."""
        return self._counter

    def select_advance(self, state: BroadcastState) -> Advance | None:
        if state.is_complete:
            return None
        if self._counter is None or self._topology is not state.topology:
            # Lazy preparation for callers that drive the policy directly.
            self.prepare(state.topology, state.schedule, source=-1)
        assert self._counter is not None

        awake = None
        if state.schedule is not None:
            awake = state.schedule.awake_nodes(state.covered, state.time)
        if self._decision_scheme.mode == "greedy":
            # Decision-level greedy colourings are pure in (topology, W,
            # awake), so lanes of a batched stripe sharing a topology reuse
            # them; the recursive evaluation of M keeps its own uncached
            # scheme (its state space would swamp the cache).
            colors = cached_greedy_color_classes(
                state.topology, state.covered, awake
            )
        else:
            colors = self._decision_scheme.color_classes(
                state.topology, state.covered, awake
            )
        if not colors:
            return None
        best_color, _ = self._counter.select_color(state.covered, state.time, colors)
        num_colors = len(colors)
        color_index = next(
            (i + 1 for i, c in enumerate(colors) if c == best_color), 0
        )
        return Advance.from_color(
            state.topology,
            state.covered,
            best_color,
            state.time,
            color_index=color_index,
            num_colors=num_colors,
            note=self.name,
        )


class OptPolicy(_TimeCounterPolicy):
    """The OPT target (Eq. 1 + Eq. 5/6): any admissible colour, ranked by ``M``.

    Parameters
    ----------
    topology, schedule:
        Optional early binding (otherwise taken from the first state seen).
    search:
        Search configuration for the ``M`` evaluation; exact search is the
        default and appropriate for the worked examples and tests, beam
        search (``SearchConfig(mode="beam")``) for the 50-300 node sweeps.
    max_color_classes:
        Cap on the number of admissible colours enumerated per decision
        (see DESIGN.md; ``None`` = exhaustive).
    """

    name = "OPT"

    def __init__(
        self,
        topology: WSNTopology | None = None,
        schedule: WakeupSchedule | None = None,
        *,
        search: SearchConfig | None = None,
        max_color_classes: int | None = 64,
    ) -> None:
        scheme = ColorScheme(mode="exhaustive", max_classes=max_color_classes)
        self._decision_scheme = scheme
        self._recursion_scheme = scheme
        super().__init__(topology, schedule, search=search)


class GreedyOptPolicy(_TimeCounterPolicy):
    """The G-OPT target (Eq. 2/3 + Eq. 7/8): greedy colours ranked by ``M``."""

    name = "G-OPT"

    def __init__(
        self,
        topology: WSNTopology | None = None,
        schedule: WakeupSchedule | None = None,
        *,
        search: SearchConfig | None = None,
    ) -> None:
        scheme = ColorScheme(mode="greedy")
        self._decision_scheme = scheme
        self._recursion_scheme = scheme
        super().__init__(topology, schedule, search=search)


class EModelPolicy(SchedulingPolicy):
    """The practical E-model scheduler (Algorithm 3, item 3; Eq. 10).

    Greedy colour classes are computed for the current frontier and the
    class containing the node with the largest relevant edge estimate is
    selected.  Ties are broken in favour of the colour with more receivers
    (the greedy scheme's own preference), then the lower colour index.

    Parameters
    ----------
    topology, schedule:
        Optional early binding; the estimate is (re)built in
        :meth:`prepare` for the topology/schedule actually simulated.
    weight:
        ``"expected"`` (default) or ``"unit"`` — the Eq. (11) weight used in
        the duty-cycle system; ignored in the synchronous system.
    """

    name = "E-model"
    frontier_driven = True

    def __init__(
        self,
        topology: WSNTopology | None = None,
        schedule: WakeupSchedule | None = None,
        *,
        weight: Literal["expected", "unit"] = "expected",
    ) -> None:
        self._weight = weight
        self._topology = topology
        self._schedule = schedule
        self._estimate: EdgeEstimate | None = None
        if topology is not None:
            self._estimate = build_edge_estimate(topology, schedule, weight=weight)

    @property
    def estimate(self) -> EdgeEstimate | None:
        """The proactively constructed 4-tuples (``None`` until prepared)."""
        return self._estimate

    def prepare(
        self,
        topology: WSNTopology,
        schedule: WakeupSchedule | None,
        source: int,
    ) -> None:
        rebuild = (
            self._estimate is None
            or self._topology is not topology
            or self._schedule is not schedule
        )
        if rebuild:
            self._topology = topology
            self._schedule = schedule
            self._estimate = build_edge_estimate(topology, schedule, weight=self._weight)

    def select_advance(self, state: BroadcastState) -> Advance | None:
        if state.is_complete:
            return None
        if self._estimate is None or self._topology is not state.topology:
            self.prepare(state.topology, state.schedule, source=-1)
        assert self._estimate is not None

        awake = None
        if state.schedule is not None:
            awake = state.schedule.awake_nodes(state.covered, state.time)
        colors = cached_greedy_color_classes(state.topology, state.covered, awake)
        if not colors:
            return None

        scored: list[tuple[float, int, int, frozenset[int]]] = []
        for index, color in enumerate(colors):
            score = self._estimate.color_score(state.topology, color, state.covered)
            advance = Advance.from_color(
                state.topology, state.covered, color, state.time
            )
            scored.append((score, len(advance.receivers), -index, color))
        scored.sort(key=lambda item: (item[0], item[1], item[2]), reverse=True)
        best_color = scored[0][3]
        color_index = next(
            (i + 1 for i, c in enumerate(colors) if c == best_color), 0
        )
        return Advance.from_color(
            state.topology,
            state.covered,
            best_color,
            state.time,
            color_index=color_index,
            num_colors=len(colors),
            note=self.name,
        )
