"""The paper's contribution: colour schemes, time counter M, E-model, policies."""

from repro.core.advance import Advance, BroadcastState
from repro.core.bounds import (
    duty_cycle_17_bound,
    duty_cycle_opt_bound,
    emodel_update_cost,
    sync_26_bound,
    sync_opt_bound,
)
from repro.core.coloring import (
    ColorScheme,
    enumerate_color_classes,
    frontier_candidates,
    greedy_color_classes,
)
from repro.core.estimation import EdgeEstimate, build_edge_estimate
from repro.core.localized import LocalizedEModelPolicy, local_contention_winners
from repro.core.policies import (
    EModelPolicy,
    GreedyOptPolicy,
    OptPolicy,
    SchedulingPolicy,
)
from repro.core.time_counter import SearchConfig, TimeCounter

__all__ = [
    "Advance",
    "BroadcastState",
    "ColorScheme",
    "EModelPolicy",
    "EdgeEstimate",
    "GreedyOptPolicy",
    "LocalizedEModelPolicy",
    "OptPolicy",
    "SchedulingPolicy",
    "SearchConfig",
    "TimeCounter",
    "build_edge_estimate",
    "duty_cycle_17_bound",
    "duty_cycle_opt_bound",
    "emodel_update_cost",
    "enumerate_color_classes",
    "frontier_candidates",
    "greedy_color_classes",
    "local_contention_winners",
    "sync_26_bound",
    "sync_opt_bound",
]
