"""Colour schemes over the broadcast frontier (Section IV-A, Algorithm 1).

A *colour* of the current coverage ``W`` is a set of relay candidates that
can transmit concurrently without interfering at any uncovered node
(Eq. 1).  Two colour providers are implemented:

* :func:`greedy_color_classes` — the extended greedy colour scheme of
  Algorithm 1 / Eq. (2): candidates are sorted by the number of uncovered
  receivers and packed greedily into colour classes ``C_1 .. C_λ``.  Unlike
  the classical per-BFS-layer colouring, the candidate pool is the *whole*
  frontier of ``W`` (every covered node with an uncovered neighbour), which
  is what enables the pipeline behaviour the paper exploits.
* :func:`enumerate_color_classes` — every *maximal* admissible colour
  (maximal independent sets of the conflict graph), used by the OPT target
  of Eq. (1)/(5).  Exponential in the worst case; a cap keeps the OPT
  policy usable on the paper-scale deployments (documented in DESIGN.md).

The duty-cycle variants (Eq. 3) are obtained by passing the set of nodes
awake at the current slot via ``awake``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Literal, Sequence
from weakref import WeakKeyDictionary

from repro.network.topology import WSNTopology

__all__ = [
    "frontier_candidates",
    "greedy_color_classes",
    "cached_greedy_color_classes",
    "enumerate_color_classes",
    "ColorScheme",
    "conflict_graph",
]


def frontier_candidates(
    topology: WSNTopology,
    covered: frozenset[int] | set[int],
    awake: Iterable[int] | None = None,
) -> list[int]:
    """Relay candidates: covered (and awake) nodes with uncovered neighbours.

    These are the nodes satisfying constraints 1-2 of Eq. (1) (and the
    availability constraint of Eq. (3) when ``awake`` is given).  The result
    is sorted by (descending number of uncovered receivers, ascending node
    id) — the order step 3 of Algorithm 1 prescribes, with the id as a
    deterministic tie-break.
    """
    covered = frozenset(covered)
    pool = covered if awake is None else (covered & frozenset(awake))
    uncovered_mask = topology.full_mask & ~topology.mask_from_nodes(covered)
    weighted = []
    for u in pool:
        gain = (topology.neighbor_mask(u) & uncovered_mask).bit_count()
        if gain:
            weighted.append((-gain, u))
    weighted.sort()
    return [u for _, u in weighted]


def conflict_graph(
    topology: WSNTopology,
    candidates: Sequence[int],
    covered: frozenset[int] | set[int],
) -> dict[int, set[int]]:
    """Adjacency of the conflict graph among ``candidates``.

    Edge ``u - v`` iff the two candidates share an uncovered neighbour
    (constraint 3 of Eq. 1 violated when transmitting together).
    """
    covered = frozenset(covered)
    uncovered_mask = topology.full_mask & ~topology.mask_from_nodes(covered)
    adjacency: dict[int, set[int]] = {u: set() for u in candidates}
    ordered = list(candidates)
    masks = [topology.neighbor_mask(u) & uncovered_mask for u in ordered]
    for i, u in enumerate(ordered):
        mask_u = masks[i]
        for j in range(i + 1, len(ordered)):
            if mask_u & masks[j]:
                v = ordered[j]
                adjacency[u].add(v)
                adjacency[v].add(u)
    return adjacency


def greedy_color_classes(
    topology: WSNTopology,
    covered: frozenset[int] | set[int],
    awake: Iterable[int] | None = None,
) -> list[frozenset[int]]:
    """Algorithm 1: the extended greedy colour scheme.

    Returns the colour classes ``[C_1, ..., C_λ]`` in label order.  Every
    candidate appears in exactly one class; members of one class are
    pairwise interference-free with respect to the *current* ``W``; and a
    candidate is pushed to a later class only because it conflicts with an
    earlier one (the construction of Eq. 2).

    Returns an empty list when no candidate exists (either ``W`` already
    covers every node, or — in the duty-cycle system — no frontier node is
    awake at this slot).
    """
    covered = frozenset(covered)
    candidates = frontier_candidates(topology, covered, awake)
    if not candidates:
        return []

    conflicts = conflict_graph(topology, candidates, covered)
    classes: list[list[int]] = []
    assigned: set[int] = set()
    remaining = list(candidates)
    while remaining:
        current: list[int] = []
        current_set: set[int] = set()
        still_remaining: list[int] = []
        for u in remaining:
            if conflicts[u] & current_set:
                still_remaining.append(u)
            else:
                current.append(u)
                current_set.add(u)
                assigned.add(u)
        classes.append(current)
        remaining = still_remaining
    return [frozenset(c) for c in classes]


# Greedy classes keyed on (covered, awake) per topology: batched lanes that
# share a topology (replicated cells, repeated decision states along one
# trajectory) reach identical (W, awake) states, and the classes depend on
# nothing else.  The WeakKeyDictionary drops a topology's entries with the
# topology itself; the per-topology cap bounds the worst case (every slot a
# distinct awake set) without evicting the hot single-topology reuse.
_GREEDY_CLASS_CACHE: WeakKeyDictionary[WSNTopology, dict] = WeakKeyDictionary()
_GREEDY_CLASS_CACHE_CAP = 4096


def cached_greedy_color_classes(
    topology: WSNTopology,
    covered: frozenset[int] | set[int],
    awake: Iterable[int] | None = None,
) -> list[frozenset[int]]:
    """Memoized :func:`greedy_color_classes` (identical result, shared work).

    The decision-level colourings of the time-counter and E-model policies
    are pure in ``(topology, covered, awake)``; caching them lets lanes of a
    batched stripe that share a topology reuse each other's colourings (and
    a single broadcast reuse the colouring of a slot it revisits after idle
    slots).  Callers must treat the returned list as immutable.
    """
    per_topology = _GREEDY_CLASS_CACHE.get(topology)
    if per_topology is None:
        per_topology = _GREEDY_CLASS_CACHE[topology] = {}
    key = (
        frozenset(covered),
        None if awake is None else frozenset(awake),
    )
    classes = per_topology.get(key)
    if classes is None:
        classes = greedy_color_classes(topology, covered, awake)
        if len(per_topology) >= _GREEDY_CLASS_CACHE_CAP:
            per_topology.clear()
        per_topology[key] = classes
    return classes


def _bron_kerbosch_independent_sets(
    vertices: Sequence[int],
    conflicts: dict[int, set[int]],
    limit: int | None,
) -> list[frozenset[int]]:
    """All maximal independent sets of the conflict graph (maximal cliques of
    its complement), via Bron-Kerbosch with pivoting on the complement graph.
    """
    vertex_set = set(vertices)
    complement = {
        u: (vertex_set - conflicts[u] - {u}) for u in vertices
    }
    results: list[frozenset[int]] = []

    def expand(r: set[int], p: set[int], x: set[int]) -> bool:
        """Returns False when the enumeration limit is reached."""
        if not p and not x:
            results.append(frozenset(r))
            return limit is None or len(results) < limit
        pivot_pool = p | x
        pivot = max(pivot_pool, key=lambda u: len(complement[u] & p))
        for v in sorted(p - complement[pivot]):
            if not expand(r | {v}, p & complement[v], x & complement[v]):
                return False
            p = p - {v}
            x = x | {v}
        return True

    expand(set(), set(vertices), set())
    return results


def enumerate_color_classes(
    topology: WSNTopology,
    covered: frozenset[int] | set[int],
    awake: Iterable[int] | None = None,
    *,
    max_classes: int | None = None,
) -> list[frozenset[int]]:
    """Every maximal admissible colour of ``W`` (Eq. 1), for the OPT target.

    A colour here is a maximal set of frontier candidates that is pairwise
    interference-free; maximality loses no generality because adding a
    non-conflicting transmitter never hurts (coverage is monotone).  When
    ``max_classes`` is given, enumeration stops after that many sets and the
    greedy classes are merged in (so the greedy answer is always among the
    candidates) — this is the documented cap that keeps OPT tractable on
    300-node deployments.
    """
    covered = frozenset(covered)
    candidates = frontier_candidates(topology, covered, awake)
    if not candidates:
        return []
    conflicts = conflict_graph(topology, candidates, covered)
    sets = _bron_kerbosch_independent_sets(candidates, conflicts, max_classes)
    if max_classes is not None:
        for greedy_class in greedy_color_classes(topology, covered, awake):
            if greedy_class not in sets:
                sets.append(greedy_class)
    # Deterministic order: larger classes (more parallel relays) first.
    sets.sort(key=lambda s: (-len(s), tuple(sorted(s))))
    return sets


@dataclass(frozen=True)
class ColorScheme:
    """A configurable colour provider shared by the policies and the counter.

    Attributes
    ----------
    mode:
        ``"greedy"`` — Algorithm 1 classes (Eq. 2/3);
        ``"exhaustive"`` — all maximal admissible colours (Eq. 1).
    max_classes:
        Enumeration cap for the exhaustive mode (``None`` = unlimited).
    """

    mode: Literal["greedy", "exhaustive"] = "greedy"
    max_classes: int | None = None

    def color_classes(
        self,
        topology: WSNTopology,
        covered: frozenset[int] | set[int],
        awake: Iterable[int] | None = None,
    ) -> list[frozenset[int]]:
        """Return the candidate colours for the current state."""
        if self.mode == "greedy":
            return greedy_color_classes(topology, covered, awake)
        if self.mode == "exhaustive":
            return enumerate_color_classes(
                topology, covered, awake, max_classes=self.max_classes
            )
        raise ValueError(f"unknown colour scheme mode {self.mode!r}")

    def num_colors(
        self,
        topology: WSNTopology,
        covered: frozenset[int] | set[int],
        awake: Iterable[int] | None = None,
    ) -> int:
        """``λ(W)`` (or ``λ(W, t)``) for reporting purposes."""
        return len(greedy_color_classes(topology, covered, awake))
