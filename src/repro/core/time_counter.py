"""The time counter ``M`` (Eqs. 4-8): heuristic evaluation of colour choices.

``M(W, t)`` is the earliest end round/slot of a broadcast that currently
covers ``W`` at time ``t`` and, from now on, always selects the colour whose
recursive completion time is minimal.  The OPT target evaluates ``M`` over
*every* admissible colour (Eq. 5/6); the G-OPT target restricts the
candidates to the greedy colour classes (Eq. 7/8).

Tractability
------------
The exact recursion is exponential in the number of advances.  The paper
computes ``M`` "off-line in the simulator" without describing how it is made
tractable; this implementation provides

* ``mode="exact"`` — memoised depth-first search over coverage states with a
  hard state-count budget (used in tests and on the paper's worked
  examples, where it is cheap), and
* ``mode="beam"``  — a beam search over coverage states (default width 8)
  that preserves the "evaluate each candidate colour by its recursive
  completion time" semantics while bounding work; exact and beam agree on
  every small instance we test (see ``tests/unit/test_time_counter.py`` and
  the beam-width ablation benchmark).

Two structural properties keep both searches sound:

* **Monotonicity** — a larger covered set never completes later: every
  colour admissible for ``W`` remains admissible (after dropping useless
  transmitters) for any ``W' ⊇ W``, so transmitting earlier never hurts.
  This is why the duty-cycle search may always jump to the next slot at
  which *some* frontier node is awake instead of branching over idle waits.
* **Admissible lower bound** — any schedule needs at least as many advances
  as the largest hop distance from ``W`` to an uncovered node, because one
  advance extends coverage by at most one hop.  The bound drives both the
  exact search's pruning and the beam ranking.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Literal

from repro.core.coloring import ColorScheme, frontier_candidates
from repro.dutycycle.schedule import WakeupSchedule
from repro.network.interference import receivers_of
from repro.network.topology import WSNTopology

__all__ = ["SearchConfig", "TimeCounter", "SearchBudgetExceeded", "UnreachableNodes"]


class SearchBudgetExceeded(RuntimeError):
    """Raised when the exact search exceeds its state budget.

    The caller should retry with ``mode="beam"`` (or a larger budget).
    """


class UnreachableNodes(RuntimeError):
    """Raised when uncovered nodes can never be reached (disconnected graph)."""


@dataclass(frozen=True)
class SearchConfig:
    """Configuration of the ``M`` search.

    Attributes
    ----------
    mode:
        ``"exact"`` (memoised DFS, guaranteed optimal w.r.t. the colour
        provider) or ``"beam"`` (bounded-width search).
    beam_width:
        Number of coverage states kept per step in beam mode.
    max_states:
        State budget of the exact mode; exceeded ⇒ :class:`SearchBudgetExceeded`.
    max_slots:
        Hard horizon for duty-cycle searches, expressed as a multiple of
        ``2 r (d + 2)`` (the Theorem-1 bound); a schedule exceeding it
        indicates a modelling error rather than a legitimate schedule.
    """

    mode: Literal["exact", "beam"] = "exact"
    beam_width: int = 8
    max_states: int = 250_000
    max_slots: float = 4.0

    def __post_init__(self) -> None:
        if self.mode not in ("exact", "beam"):
            raise ValueError(f"unknown search mode {self.mode!r}")
        if self.beam_width < 1:
            raise ValueError(f"beam_width must be >= 1, got {self.beam_width}")
        if self.max_states < 1:
            raise ValueError(f"max_states must be >= 1, got {self.max_states}")
        if self.max_slots <= 0:
            raise ValueError(f"max_slots must be > 0, got {self.max_slots}")


@dataclass
class _SearchStats:
    """Counters exposed for tests and the ablation benchmarks."""

    expansions: int = 0
    memo_hits: int = 0
    states: int = 0

    def reset(self) -> None:
        self.expansions = 0
        self.memo_hits = 0
        self.states = 0


class TimeCounter:
    """Evaluates ``M(W, t)`` for a topology under a colour scheme.

    Parameters
    ----------
    topology:
        The network.
    schedule:
        Wake-up schedule for the duty-cycle system; ``None`` selects the
        round-based synchronous recursion (Eq. 4/5/7).
    color_scheme:
        The colour provider used *inside* the recursion: greedy for G-OPT
        (Eq. 7/8), exhaustive for OPT (Eq. 5/6).
    config:
        Search configuration (exact vs beam).
    """

    def __init__(
        self,
        topology: WSNTopology,
        schedule: WakeupSchedule | None = None,
        color_scheme: ColorScheme | None = None,
        config: SearchConfig | None = None,
    ) -> None:
        self.topology = topology
        self.schedule = schedule
        self.color_scheme = color_scheme or ColorScheme(mode="greedy")
        self.config = config or SearchConfig()
        self.stats = _SearchStats()
        self._sync_memo: dict[frozenset[int], int] = {}
        self._duty_memo: dict[tuple[frozenset[int], int], int] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def completion_time(self, covered: Iterable[int], time: int) -> int:
        """``M(W, t)``: the end round/slot of the best continuation.

        For a complete ``W`` this is ``t - 1`` (the broadcast already ended
        before ``t``), matching the terminal case of Eq. (4).
        """
        covered = frozenset(covered)
        if time < 1:
            raise ValueError(f"time is 1-based, got {time}")
        self._check_reachable(covered)
        if self.schedule is None:
            return time - 1 + self._remaining_sync(covered)
        return self._completion_duty(covered, time)

    def rank_colors(
        self,
        covered: Iterable[int],
        time: int,
        colors: Iterable[frozenset[int]],
    ) -> list[tuple[frozenset[int], int]]:
        """Evaluate candidate colours by ``M(W + C_i, t + 1)``.

        Returns ``(color, completion_time)`` pairs sorted by completion
        time, breaking ties in favour of larger coverage and then the
        lexicographically smallest colour (for determinism).
        """
        covered = frozenset(covered)
        ranked: list[tuple[frozenset[int], int]] = []
        for color in colors:
            reached = receivers_of(self.topology, color, covered)
            completion = self.completion_time(covered | reached, time + 1)
            ranked.append((frozenset(color), completion))
        ranked.sort(key=lambda item: (item[1], -len(item[0]), tuple(sorted(item[0]))))
        return ranked

    def select_color(
        self,
        covered: Iterable[int],
        time: int,
        colors: Iterable[frozenset[int]],
    ) -> tuple[frozenset[int], int]:
        """Pick the colour to launch now, per Eq. (5)-(8).

        In ``exact`` mode every candidate colour is evaluated independently
        with the memoised recursion (identical to :meth:`rank_colors`).  In
        ``beam`` mode a *single* shared beam search is run in which each
        state remembers the first colour it committed to; the first colour
        of the earliest-completing state wins.  This preserves the "judge a
        colour by the best schedule that starts with it" semantics of the
        time counter while doing the work of one search instead of
        ``λ(W)`` searches — the approximation documented in DESIGN.md.
        """
        covered = frozenset(covered)
        colors = [frozenset(c) for c in colors]
        if not colors:
            raise ValueError("select_color needs at least one candidate colour")
        if len(colors) == 1:
            reached = receivers_of(self.topology, colors[0], covered)
            return colors[0], self.completion_time(covered | reached, time + 1)
        if self.config.mode == "exact":
            return self.rank_colors(covered, time, colors)[0]
        if self.schedule is None:
            return self._select_color_beam_sync(covered, time, colors)
        return self._select_color_beam_duty(covered, time, colors)

    def best_color(
        self, covered: Iterable[int], time: int
    ) -> tuple[frozenset[int], int] | None:
        """The colour minimising ``M`` at ``(W, t)`` and its completion time.

        Returns ``None`` when no colour is available at ``time`` (duty-cycle
        slot with no awake frontier node, or ``W`` already complete).
        """
        covered = frozenset(covered)
        awake = self._awake_frontier(covered, time)
        colors = self.color_scheme.color_classes(self.topology, covered, awake)
        if not colors:
            return None
        return self.select_color(covered, time, colors)

    def clear_cache(self) -> None:
        """Drop memoised values (e.g. after switching deployments)."""
        self._sync_memo.clear()
        self._duty_memo.clear()
        self.stats.reset()

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _awake_frontier(
        self, covered: frozenset[int], time: int
    ) -> frozenset[int] | None:
        if self.schedule is None:
            return None
        return self.schedule.awake_nodes(covered, time)

    def _check_reachable(self, covered: frozenset[int]) -> None:
        uncovered = self.topology.node_set - covered
        if not uncovered:
            return
        reachable = self._reachable_from(covered)
        unreachable = uncovered - reachable
        if unreachable:
            raise UnreachableNodes(
                f"{len(unreachable)} nodes can never receive the message "
                f"(e.g. {sorted(unreachable)[:5]}); the topology is disconnected"
            )

    def _reachable_from(self, covered: frozenset[int]) -> frozenset[int]:
        seen = set(covered)
        queue = deque(covered)
        while queue:
            u = queue.popleft()
            for v in self.topology.neighbors(u):
                if v not in seen:
                    seen.add(v)
                    queue.append(v)
        return frozenset(seen)

    def _hop_lower_bound(self, covered: frozenset[int]) -> int:
        """Largest hop distance from ``W`` to an uncovered node (admissible)."""
        uncovered = self.topology.node_set - covered
        if not uncovered:
            return 0
        distance = {u: 0 for u in covered}
        queue = deque(covered)
        farthest = 0
        while queue:
            u = queue.popleft()
            for v in self.topology.neighbors(u):
                if v not in distance:
                    distance[v] = distance[u] + 1
                    farthest = max(farthest, distance[v])
                    queue.append(v)
        return farthest

    def _duty_horizon(self, time: int) -> int:
        assert self.schedule is not None
        # The horizon must cover the sleepiest node's cycle, not the base rate.
        rate = self.schedule.max_rate
        # d+2 measured from scratch is a safe over-estimate of the remaining
        # depth for any intermediate W.
        try:
            depth = self.topology.diameter()
        except ValueError:  # pragma: no cover - disconnected handled earlier
            depth = self.topology.num_nodes
        return time + int(self.config.max_slots * 2 * rate * (depth + 2)) + 2 * rate

    # ------------------------------------------------------------------
    # Synchronous system
    # ------------------------------------------------------------------
    def _remaining_sync(self, covered: frozenset[int]) -> int:
        if self.config.mode == "exact":
            return self._remaining_sync_exact(covered)
        return self._remaining_sync_beam(covered)

    def _remaining_sync_exact(self, covered: frozenset[int]) -> int:
        if len(covered) == self.topology.num_nodes:
            return 0
        cached = self._sync_memo.get(covered)
        if cached is not None:
            self.stats.memo_hits += 1
            return cached
        if self.stats.expansions >= self.config.max_states:
            raise SearchBudgetExceeded(
                f"exact M search exceeded {self.config.max_states} expansions; "
                "use SearchConfig(mode='beam') for deployments of this size"
            )
        self.stats.expansions += 1
        colors = self.color_scheme.color_classes(self.topology, covered, None)
        if not colors:
            raise UnreachableNodes(
                "no admissible colour although uncovered nodes remain"
            )
        best = math.inf
        # Exploring large-coverage colours first makes the memo fill with
        # near-final states early, which prunes later branches quickly.
        expansions = sorted(
            (receivers_of(self.topology, color, covered) for color in colors),
            key=lambda reached: -len(reached),
        )
        seen_coverages: set[frozenset[int]] = set()
        for reached in expansions:
            new_covered = covered | reached
            if new_covered in seen_coverages:
                continue
            seen_coverages.add(new_covered)
            best = min(best, 1 + self._remaining_sync_exact(new_covered))
        result = int(best)
        self._sync_memo[covered] = result
        self.stats.states = len(self._sync_memo)
        return result

    def _remaining_sync_beam(self, covered: frozenset[int]) -> int:
        if len(covered) == self.topology.num_nodes:
            return 0
        beam: list[frozenset[int]] = [covered]
        rounds = 0
        visited: set[frozenset[int]] = {covered}
        while beam:
            rounds += 1
            successors: set[frozenset[int]] = set()
            for state in beam:
                self.stats.expansions += 1
                colors = self.color_scheme.color_classes(self.topology, state, None)
                if not colors:
                    raise UnreachableNodes(
                        "no admissible colour although uncovered nodes remain"
                    )
                for color in colors:
                    reached = receivers_of(self.topology, color, state)
                    successors.add(state | reached)
            complete = [s for s in successors if len(s) == self.topology.num_nodes]
            if complete:
                return rounds
            fresh = [s for s in successors if s not in visited]
            if not fresh:
                # Every successor was already explored with fewer rounds; the
                # remaining beam cannot improve, fall back to the best
                # successor anyway to guarantee progress.
                fresh = list(successors)
            fresh.sort(key=lambda s: (self._hop_lower_bound(s), -len(s), tuple(sorted(s))))
            beam = fresh[: self.config.beam_width]
            visited.update(beam)
            self.stats.states += len(beam)
            if rounds > self.topology.num_nodes + 2:
                raise RuntimeError(
                    "beam search failed to converge; this indicates a bug in "
                    "the colour provider (coverage must grow every round)"
                )
        raise UnreachableNodes("beam search exhausted without completing coverage")

    # ------------------------------------------------------------------
    # Duty-cycle system
    # ------------------------------------------------------------------
    def _completion_duty(self, covered: frozenset[int], slot: int) -> int:
        if self.config.mode == "exact":
            return self._completion_duty_exact(covered, slot)
        return self._completion_duty_beam(covered, slot)

    def _next_decision_slot(self, covered: frozenset[int], slot: int) -> int:
        """Earliest slot >= ``slot`` at which some frontier node may send."""
        assert self.schedule is not None
        frontier = [
            u for u in covered if self.topology.uncovered_neighbors(u, covered)
        ]
        nxt = self.schedule.next_awake_slot(frontier, slot)
        if nxt is None:
            raise UnreachableNodes(
                "no frontier node exists although uncovered nodes remain"
            )
        return nxt

    def _completion_duty_exact(self, covered: frozenset[int], slot: int) -> int:
        assert self.schedule is not None
        if len(covered) == self.topology.num_nodes:
            return slot - 1
        horizon = self._duty_horizon(slot)
        key = (covered, slot)
        cached = self._duty_memo.get(key)
        if cached is not None:
            self.stats.memo_hits += 1
            return cached
        if self.stats.expansions >= self.config.max_states:
            raise SearchBudgetExceeded(
                f"exact M search exceeded {self.config.max_states} expansions; "
                "use SearchConfig(mode='beam') for deployments of this size"
            )
        decision_slot = self._next_decision_slot(covered, slot)
        if decision_slot > horizon:
            raise RuntimeError(
                "duty-cycle search exceeded its slot horizon; the wake-up "
                "schedule does not give frontier nodes sending opportunities"
            )
        self.stats.expansions += 1
        awake = self.schedule.awake_nodes(covered, decision_slot)
        colors = self.color_scheme.color_classes(self.topology, covered, awake)
        # ``decision_slot`` guarantees at least one awake frontier node.
        best = math.inf
        seen_coverages: set[frozenset[int]] = set()
        expansions = sorted(
            (receivers_of(self.topology, color, covered) for color in colors),
            key=lambda reached: -len(reached),
        )
        for reached in expansions:
            new_covered = covered | reached
            if new_covered in seen_coverages:
                continue
            seen_coverages.add(new_covered)
            best = min(
                best, self._completion_duty_exact(new_covered, decision_slot + 1)
            )
        result = int(best)
        self._duty_memo[key] = result
        self.stats.states = len(self._duty_memo)
        return result

    # ------------------------------------------------------------------
    # Shared-beam colour selection (beam mode decision making)
    # ------------------------------------------------------------------
    def _color_sort_key(self, color: frozenset[int], covered: frozenset[int]):
        reached = receivers_of(self.topology, color, covered)
        return (-len(reached), tuple(sorted(color)))

    def _prune_states(
        self, states: list[tuple[frozenset[int], frozenset[int]]]
    ) -> list[tuple[frozenset[int], frozenset[int]]]:
        """Keep the ``beam_width`` most promising (coverage, first-colour) states.

        States are first ordered by covered-set size (cheap), then the top
        few are re-ranked with the admissible hop lower bound (a BFS each,
        so only computed for the short list).
        """
        if len(states) <= self.config.beam_width:
            return states
        states.sort(key=lambda item: (-len(item[0]), tuple(sorted(item[1]))))
        shortlist = states[: max(3 * self.config.beam_width, self.config.beam_width)]
        shortlist.sort(
            key=lambda item: (
                self._hop_lower_bound(item[0]),
                -len(item[0]),
                tuple(sorted(item[1])),
            )
        )
        return shortlist[: self.config.beam_width]

    def _select_color_beam_sync(
        self,
        covered: frozenset[int],
        time: int,
        colors: list[frozenset[int]],
    ) -> tuple[frozenset[int], int]:
        full = self.topology.node_set
        ordered = sorted(colors, key=lambda c: self._color_sort_key(c, covered))
        # states: (covered set, first colour committed to)
        beam: list[tuple[frozenset[int], frozenset[int]]] = []
        seen: dict[frozenset[int], frozenset[int]] = {}
        for color in ordered:
            reached = receivers_of(self.topology, color, covered)
            new_covered = covered | reached
            if new_covered == full:
                return color, time
            if new_covered not in seen:
                seen[new_covered] = color
                beam.append((new_covered, color))
        beam = self._prune_states(beam)

        rounds = 1
        while beam:
            rounds += 1
            if rounds > self.topology.num_nodes + 2:
                raise RuntimeError(
                    "beam colour selection failed to converge; the colour "
                    "provider stopped making progress"
                )
            successors: dict[frozenset[int], frozenset[int]] = {}
            completed: list[frozenset[int]] = []
            for state, first in beam:
                self.stats.expansions += 1
                next_colors = self.color_scheme.color_classes(self.topology, state, None)
                for color in next_colors:
                    reached = receivers_of(self.topology, color, state)
                    new_covered = state | reached
                    if new_covered == full:
                        completed.append(first)
                        continue
                    if new_covered not in successors:
                        successors[new_covered] = first
            if completed:
                # All completions happen at the same round; tie-break by the
                # first colour's own quality for determinism.
                completed.sort(key=lambda c: self._color_sort_key(c, covered))
                return completed[0], time + rounds - 1
            beam = self._prune_states(list(successors.items()))
            self.stats.states += len(beam)
        raise UnreachableNodes("beam colour selection exhausted without completing")

    def _select_color_beam_duty(
        self,
        covered: frozenset[int],
        time: int,
        colors: list[frozenset[int]],
    ) -> tuple[frozenset[int], int]:
        assert self.schedule is not None
        full = self.topology.node_set
        horizon = self._duty_horizon(time)
        ordered = sorted(colors, key=lambda c: self._color_sort_key(c, covered))
        # states: coverage -> (slot of next decision, first colour)
        beam: list[tuple[frozenset[int], int, frozenset[int]]] = []
        best_completion = math.inf
        best_first: frozenset[int] | None = None
        seen: set[frozenset[int]] = set()
        for color in ordered:
            reached = receivers_of(self.topology, color, covered)
            new_covered = covered | reached
            if new_covered == full:
                if time < best_completion:
                    best_completion = time
                    best_first = color
                continue
            if new_covered not in seen:
                seen.add(new_covered)
                beam.append((new_covered, time + 1, color))
        if best_first is not None:
            return best_first, int(best_completion)

        iterations = 0
        while beam:
            iterations += 1
            if iterations > 4 * self.topology.num_nodes + 8:
                break
            successors: dict[frozenset[int], tuple[int, frozenset[int]]] = {}
            for state, slot, first in beam:
                if slot >= best_completion:
                    continue
                decision_slot = self._next_decision_slot(state, slot)
                if decision_slot > horizon or decision_slot >= best_completion:
                    continue
                self.stats.expansions += 1
                awake = self.schedule.awake_nodes(state, decision_slot)
                next_colors = self.color_scheme.color_classes(self.topology, state, awake)
                for color in next_colors:
                    reached = receivers_of(self.topology, color, state)
                    new_covered = state | reached
                    if new_covered == full:
                        if decision_slot < best_completion:
                            best_completion = decision_slot
                            best_first = first
                        continue
                    previous = successors.get(new_covered)
                    if previous is None or decision_slot + 1 < previous[0]:
                        successors[new_covered] = (decision_slot + 1, first)
            candidates = [
                (state, slot, first)
                for state, (slot, first) in successors.items()
                if slot < best_completion
            ]
            candidates.sort(
                key=lambda item: (
                    item[1] + self._hop_lower_bound(item[0]),
                    -len(item[0]),
                    tuple(sorted(item[2])),
                )
            )
            beam = candidates[: self.config.beam_width]
            self.stats.states += len(beam)
        if best_first is None:
            # No completion found inside the horizon: fall back to the colour
            # with the largest immediate coverage (still a valid relay).
            return ordered[0], int(horizon)
        return best_first, int(best_completion)

    def _completion_duty_beam(self, covered: frozenset[int], slot: int) -> int:
        assert self.schedule is not None
        if len(covered) == self.topology.num_nodes:
            return slot - 1
        horizon = self._duty_horizon(slot)
        beam: list[tuple[frozenset[int], int]] = [(covered, slot)]
        best_completion = math.inf
        iterations = 0
        while beam:
            iterations += 1
            if iterations > 4 * self.topology.num_nodes + 8:
                break
            successors: dict[frozenset[int], int] = {}
            for state, state_slot in beam:
                if state_slot >= best_completion:
                    continue
                decision_slot = self._next_decision_slot(state, state_slot)
                if decision_slot > horizon:
                    continue
                self.stats.expansions += 1
                awake = self.schedule.awake_nodes(state, decision_slot)
                colors = self.color_scheme.color_classes(self.topology, state, awake)
                for color in colors:
                    reached = receivers_of(self.topology, color, state)
                    new_covered = state | reached
                    new_slot = decision_slot + 1
                    if len(new_covered) == self.topology.num_nodes:
                        best_completion = min(best_completion, decision_slot)
                        continue
                    previous = successors.get(new_covered)
                    if previous is None or new_slot < previous:
                        successors[new_covered] = new_slot
            candidates = [
                (state, state_slot)
                for state, state_slot in successors.items()
                if state_slot < best_completion
            ]
            candidates.sort(
                key=lambda item: (
                    item[1] + self._hop_lower_bound(item[0]),
                    -len(item[0]),
                    tuple(sorted(item[0])),
                )
            )
            beam = candidates[: self.config.beam_width]
            self.stats.states += len(beam)
        if math.isinf(best_completion):
            raise RuntimeError(
                "duty-cycle beam search found no completing schedule within "
                "its horizon; increase SearchConfig.max_slots"
            )
        return int(best_completion)
