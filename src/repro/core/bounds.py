"""Analytical latency bounds (Theorem 1, Theorem 3 and the baselines').

These closed-form bounds back two of the paper's figures: Figure 5 and
Figure 7 plot the Theorem-1 upper bound of the pipeline schedulers against
the ``17 k d`` bound quoted for the duty-cycle baseline [12]; the synchronous
figure 3 additionally shows the ``d + 2`` "OPT-analysis" curve.
"""

from __future__ import annotations

from repro.utils.validation import check_positive, require

__all__ = [
    "sync_opt_bound",
    "duty_cycle_opt_bound",
    "sync_26_bound",
    "duty_cycle_17_bound",
    "emodel_update_cost",
]


def sync_opt_bound(eccentricity: int) -> int:
    """Theorem 1 (round-based system): ``P(A) - t_s < d + 2``.

    Returns the inclusive bound ``d + 1`` on the number of rounds used
    (the elapsed rounds are *strictly* less than ``d + 2``), where
    ``eccentricity`` is the hop distance ``d`` from the source to the
    farthest node.
    """
    require(eccentricity >= 0, "eccentricity must be >= 0")
    return eccentricity + 1


def duty_cycle_opt_bound(rate: int, eccentricity: int) -> int:
    """Theorem 1 (duty-cycle system): ``P(A) - t_s < 2 r (d + 2)`` slots.

    Returns the inclusive bound ``2 r (d + 2) - 1`` on the elapsed slots.
    """
    check_positive("rate", rate)
    require(eccentricity >= 0, "eccentricity must be >= 0")
    return 2 * rate * (eccentricity + 2) - 1


def sync_26_bound(eccentricity: int, approximation_ratio: int = 26) -> int:
    """Upper bound of the hop-distance baseline in the round-based system.

    The baseline of [2] guarantees a latency within a constant factor
    (26 in their analysis) of the hop radius ``d``; the paper quotes this
    as "proportional to the product of the network diameter and the maximum
    size of the colour clique".
    """
    require(eccentricity >= 0, "eccentricity must be >= 0")
    check_positive("approximation_ratio", approximation_ratio)
    return approximation_ratio * max(eccentricity, 1)


def duty_cycle_17_bound(
    eccentricity: int, max_wait_slots: int, approximation_ratio: int = 17
) -> int:
    """Upper bound of the duty-cycle baseline [12]: ``17 k d`` slots.

    ``max_wait_slots`` is ``k``, the maximum number of slots a relay may
    have to wait for the pair of neighbouring nodes to synchronise (at most
    ``2 r`` under the paper's wake-up model).
    """
    require(eccentricity >= 0, "eccentricity must be >= 0")
    check_positive("max_wait_slots", max_wait_slots)
    check_positive("approximation_ratio", approximation_ratio)
    return approximation_ratio * max_wait_slots * max(eccentricity, 1)


def emodel_update_cost(num_nodes: int) -> int:
    """Theorem 3: the E-model construction performs at most ``4 |N|`` updates.

    Each node settles each of its four quadrant entries exactly once, so the
    proactive information cost is O(1) per node per broadcast source.
    """
    require(num_nodes >= 0, "num_nodes must be >= 0")
    return 4 * num_nodes
