"""Localized colour selection (the paper's §VII future-work direction).

The schedulers of Section IV are *centralised*: the greedy colour scheme is
applied to the whole frontier and a single colour is selected per
round/slot, which presumes a coordinator (or an off-line computation) that
sees the entire coverage state.  The paper's conclusion names a "localized
color scheme and its selection" as the next step towards a reliable and
scalable protocol.

This module implements that direction with a *local contention* rule that
needs only information a real node already has after the beaconing exchange
of Section III (its 2-hop neighbourhood, the E-tuples of those neighbours,
and which neighbours hold the message):

* every relay candidate ``u`` (covered/awake node with an uncovered
  neighbour) computes its priority ``(E-score, #uncovered receivers, -id)``;
* the candidates elect a maximal interference-free transmitter set by a
  priority-ordered local elimination: a candidate transmits iff no
  *conflicting* candidate with a higher priority has already claimed the
  slot.  This is the classical distributed greedy-MIS election (Luby-style,
  with the priority as the random rank): it needs only the candidate's
  2-hop neighbourhood, the neighbours' E-tuples learned during beaconing,
  and a constant number of in-slot signalling exchanges.

The winner set is interference-free by construction (a node only claims the
slot when every conflicting higher-priority candidate has withdrawn), it is
*maximal* (every losing candidate conflicts with some winner), and it always
contains the highest-priority candidate, so the broadcast progresses every
round/slot in which the frontier is awake.  Compared with the centralised
rule — one colour per round, chosen with global knowledge — the localized
election typically fires several independent regions of the frontier at
once, trading the global optimisation of ``M`` for purely local decisions;
the localized-vs-centralised ablation benchmark quantifies that trade-off.
"""

from __future__ import annotations

from typing import Literal

from repro.core.advance import Advance, BroadcastState
from repro.core.coloring import frontier_candidates
from repro.core.estimation import EdgeEstimate, build_edge_estimate
from repro.core.policies import SchedulingPolicy
from repro.dutycycle.schedule import WakeupSchedule
from repro.network.interference import has_conflict
from repro.network.topology import WSNTopology

__all__ = ["LocalizedEModelPolicy", "local_contention_winners"]


def local_contention_winners(
    topology: WSNTopology,
    covered: frozenset[int],
    candidates: list[int],
    estimate: EdgeEstimate,
) -> frozenset[int]:
    """The candidates that win the local contention (see module docstring).

    The election is the priority-ordered greedy maximal independent set of
    the conflict graph: candidates are considered from the highest priority
    downwards and claim the slot unless a conflicting candidate already did.
    The priority is totally ordered (the node id breaks every tie), so the
    result is deterministic; it is interference-free, maximal, and non-empty
    whenever ``candidates`` is non-empty.
    """

    def priority(node: int) -> tuple[float, int, int]:
        return (
            estimate.node_score(topology, node, covered),
            len(topology.uncovered_neighbors(node, covered)),
            -node,
        )

    ordered = sorted(candidates, key=priority, reverse=True)
    winners: list[int] = []
    for node in ordered:
        if all(not has_conflict(topology, node, winner, covered) for winner in winners):
            winners.append(node)
    return frozenset(winners)


class LocalizedEModelPolicy(SchedulingPolicy):
    """Distributed E-model scheduling via 2-hop local contention.

    Parameters
    ----------
    topology, schedule:
        Optional early binding, as for the centralised policies.
    weight:
        Weighting of the asynchronous E-tuples (``"expected"`` or ``"unit"``),
        forwarded to :func:`repro.core.estimation.build_edge_estimate`.

    Notes
    -----
    The policy intentionally reuses the same proactive E-tuples as
    :class:`repro.core.policies.EModelPolicy`; only the *selection* differs
    (local contention instead of picking one global colour), so comparing
    the two isolates the cost of decentralisation.
    """

    name = "localized-E"
    frontier_driven = True

    def __init__(
        self,
        topology: WSNTopology | None = None,
        schedule: WakeupSchedule | None = None,
        *,
        weight: Literal["expected", "unit"] = "expected",
    ) -> None:
        self._weight = weight
        self._topology = topology
        self._schedule = schedule
        self._estimate: EdgeEstimate | None = None
        if topology is not None:
            self._estimate = build_edge_estimate(topology, schedule, weight=weight)

    @property
    def estimate(self) -> EdgeEstimate | None:
        """The proactively constructed E-tuples (``None`` until prepared)."""
        return self._estimate

    def prepare(
        self,
        topology: WSNTopology,
        schedule: WakeupSchedule | None,
        source: int,
    ) -> None:
        rebuild = (
            self._estimate is None
            or self._topology is not topology
            or self._schedule is not schedule
        )
        if rebuild:
            self._topology = topology
            self._schedule = schedule
            self._estimate = build_edge_estimate(topology, schedule, weight=self._weight)

    def select_advance(self, state: BroadcastState) -> Advance | None:
        if state.is_complete:
            return None
        if self._estimate is None or self._topology is not state.topology:
            self.prepare(state.topology, state.schedule, source=-1)
        assert self._estimate is not None

        awake = None
        if state.schedule is not None:
            awake = state.schedule.awake_nodes(state.covered, state.time)
        candidates = frontier_candidates(state.topology, state.covered, awake)
        if not candidates:
            return None
        winners = local_contention_winners(
            state.topology, state.covered, candidates, self._estimate
        )
        return Advance.from_color(
            state.topology,
            state.covered,
            winners,
            state.time,
            color_index=1,
            num_colors=len(candidates),
            note=self.name,
        )
