"""Broadcast state and the *broadcasting advance* ``A(W, t)``.

The paper's schedulers operate on the pair ``(W, t)``: the set ``W`` of
nodes that already received the message and the current round/slot ``t``.
Selecting a colour ``C_i`` and letting all its members relay concurrently is
called an *advance*; the advance's receivers are ``N(u)`` over ``u ∈ C_i``
restricted to ``W̄``.  These two immutable records are the contract between
the scheduling policies (:mod:`repro.core.policies`) and the simulators
(:mod:`repro.sim`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dutycycle.schedule import WakeupSchedule
from repro.network.interference import receivers_of
from repro.network.topology import WSNTopology

__all__ = ["BroadcastState", "LaneStateView", "Advance"]


@dataclass(frozen=True)
class BroadcastState:
    """The scheduling state ``(W, t)`` a policy decides on.

    Attributes
    ----------
    topology:
        The network.
    covered:
        ``W`` — nodes already holding the message.
    time:
        The current round (synchronous system) or slot (duty-cycle system),
        1-based.
    schedule:
        The wake-up schedule for the duty-cycle system, or ``None`` for the
        round-based synchronous system (every node may send every round).
    """

    topology: WSNTopology
    covered: frozenset[int]
    time: int
    schedule: WakeupSchedule | None = None

    def __post_init__(self) -> None:
        unknown = self.covered - self.topology.node_set
        if unknown:
            raise ValueError(f"covered contains unknown nodes: {sorted(unknown)}")
        if self.time < 1:
            raise ValueError(f"time is 1-based, got {self.time}")

    @classmethod
    def for_engine(
        cls,
        topology: WSNTopology,
        covered: frozenset[int],
        time: int,
        schedule: WakeupSchedule | None,
    ) -> "BroadcastState":
        """Internal fast constructor for the simulation engines.

        Skips the membership re-validation of ``__post_init__``: the engines
        construct one state per simulated round/slot and their covered sets
        are valid by construction (they only grow by checked receiver
        sets), so the ``O(|W|)`` subset check would dominate the per-slot
        cost at scale.  External callers should use the normal constructor.
        """
        state = object.__new__(cls)
        object.__setattr__(state, "topology", topology)
        object.__setattr__(state, "covered", covered)
        object.__setattr__(state, "time", time)
        object.__setattr__(state, "schedule", schedule)
        return state

    @property
    def uncovered(self) -> frozenset[int]:
        """``W̄ = N - W``."""
        return self.topology.node_set - self.covered

    @property
    def is_complete(self) -> bool:
        """True when every node holds the message (``W = N``)."""
        return len(self.covered) == self.topology.num_nodes

    @property
    def is_synchronous(self) -> bool:
        """True for the round-based system (no wake-up schedule attached)."""
        return self.schedule is None

    def awake(self, nodes: frozenset[int] | set[int]) -> frozenset[int]:
        """Subset of ``nodes`` allowed to send at the current time.

        In the synchronous system every node may send; in the duty-cycle
        system only nodes with ``time ∈ T(u)``.
        """
        if self.schedule is None:
            return frozenset(nodes)
        return self.schedule.awake_nodes(nodes, self.time)

    def advanced(self, advance: "Advance | None", new_time: int) -> "BroadcastState":
        """Return the successor state after applying ``advance`` at ``new_time``."""
        new_covered = self.covered
        if advance is not None:
            new_covered = self.covered | advance.receivers
        return BroadcastState(
            topology=self.topology,
            covered=new_covered,
            time=new_time,
            schedule=self.schedule,
        )


class LaneStateView:
    """Mutable per-lane scheduling state over a batch's stacked tensors.

    The batched executor (:mod:`repro.sim.batched`) creates **one** view per
    lane and mutates ``covered``/``time`` in place between decisions, so the
    hot loop never allocates a fresh :class:`BroadcastState` per lane per
    slot.  ``covered`` may be the engine's *live* (mutable) covered set —
    treat it as read-only and copy it (``frozenset(view.covered)``) before
    storing it anywhere that outlives the decision.  The view duck-types
    the read surface policies use
    (``topology``/``covered``/``time``/``schedule`` plus the ``uncovered``/
    ``is_complete``/``is_synchronous``/``awake`` helpers), so
    ``select_advance(view)`` — the per-lane fallback of
    :meth:`repro.core.policies.SchedulingPolicy.select_advance_batch` —
    behaves exactly as with a real state object.

    Batched deciders additionally get zero-copy rows of the stacked arrays:

    ``covered_bool``
        This lane's row of the batch's ``(L, n)`` coverage matrix — a numpy
        *view*, so it reflects every applied advance without reassignment.
    ``uncovered_degree``
        This lane's row of the uncovered-degree matrix (``None`` when the
        batch does not track frontier state); ``uncovered_degree[i] > 0``
        iff the node at bitset row ``i`` still has an uncovered neighbour.
    ``bitset``
        The lane's :class:`repro.network.bitset.BitsetTopology`, for mapping
        row indices back to node ids.
    ``policy``
        The lane's policy instance.  A mixed fallback group passes views of
        *different* policies to one ``select_advance_batch`` call, so batch
        deciders must consult ``view.policy`` rather than ``self``.
    """

    __slots__ = (
        "topology",
        "schedule",
        "policy",
        "bitset",
        "row",
        "covered",
        "time",
        "covered_bool",
        "uncovered_degree",
    )

    def __init__(
        self,
        topology: WSNTopology,
        schedule: WakeupSchedule | None,
        policy: object,
        bitset: object = None,
        row: int = 0,
        covered: frozenset[int] | set[int] = frozenset(),
        time: int = 1,
        covered_bool: object = None,
        uncovered_degree: object = None,
    ) -> None:
        self.topology = topology
        self.schedule = schedule
        self.policy = policy
        self.bitset = bitset
        self.row = row
        self.covered = covered
        self.time = time
        self.covered_bool = covered_bool
        self.uncovered_degree = uncovered_degree

    @property
    def uncovered(self) -> frozenset[int]:
        """``W̄ = N - W``."""
        return self.topology.node_set - self.covered

    @property
    def is_complete(self) -> bool:
        """True when every node holds the message (``W = N``)."""
        return len(self.covered) == self.topology.num_nodes

    @property
    def is_synchronous(self) -> bool:
        """True for the round-based system (no wake-up schedule attached)."""
        return self.schedule is None

    def awake(self, nodes: frozenset[int] | set[int]) -> frozenset[int]:
        """Subset of ``nodes`` allowed to send at the current time."""
        if self.schedule is None:
            return frozenset(nodes)
        return self.schedule.awake_nodes(nodes, self.time)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LaneStateView(row={self.row}, time={self.time}, "
            f"covered={len(self.covered)}/{self.topology.num_nodes})"
        )


@dataclass(frozen=True)
class Advance:
    """One broadcasting advance: a selected colour relaying at ``time``.

    Attributes
    ----------
    time:
        The round/slot at which the colour transmits.
    color:
        The transmitting nodes (the selected colour ``C_i``).
    receivers:
        The uncovered nodes reached by this advance (``A(W, t)``).
    color_index:
        1-based index of the selected colour in the colouring that produced
        it (``i`` of ``C_i``); 0 when not applicable (e.g. the source's own
        initial transmission).
    num_colors:
        ``λ(W)`` — the number of colours the colouring produced, recorded
        for traces and metrics.
    intended_receivers:
        Set by the lossy engines only: the receivers the advance *would*
        have reached over reliable links (the uncovered neighbours of its
        transmitters), of which :attr:`receivers` records the subset whose
        delivery succeeded.  ``None`` (the default, and always the value on
        reliable links) means "identical to ``receivers``" — see
        :attr:`intended`.  Energy and transmission accounting keys off
        ``color`` per advance, so retransmissions are charged whether or
        not their deliveries succeed.
    """

    time: int
    color: frozenset[int]
    receivers: frozenset[int]
    color_index: int = 0
    num_colors: int = 0
    note: str = field(default="", compare=False)
    intended_receivers: frozenset[int] | None = None

    def __post_init__(self) -> None:
        if self.time < 1:
            raise ValueError(f"time is 1-based, got {self.time}")
        if not self.color:
            raise ValueError("an advance needs at least one transmitter")

    @property
    def utilization(self) -> float:
        """Receivers per transmitter (the link utilisation of the advance)."""
        return len(self.receivers) / len(self.color)

    @property
    def intended(self) -> frozenset[int]:
        """The receivers intended over reliable links (see ``intended_receivers``)."""
        return self.receivers if self.intended_receivers is None else self.intended_receivers

    @property
    def failed_deliveries(self) -> int:
        """Intended receivers whose delivery failed (0 on reliable links)."""
        return len(self.intended) - len(self.receivers)

    @classmethod
    def from_color(
        cls,
        topology: WSNTopology,
        covered: frozenset[int],
        color: frozenset[int],
        time: int,
        *,
        color_index: int = 0,
        num_colors: int = 0,
        note: str = "",
    ) -> "Advance":
        """Build an advance from a colour, computing its receivers."""
        return cls(
            time=time,
            color=frozenset(color),
            receivers=receivers_of(topology, color, covered),
            color_index=color_index,
            num_colors=num_colors,
            note=note,
        )
