"""The duty-cycle-aware hop-distance baseline (the "17-approximation" of [12]).

Jiao et al. (ICDCS 2010) schedule broadcast transmissions layer by layer
along a BFS tree in a duty-cycled network.  Translated to this paper's
network model (senders transmit only at their wake-up slots, receivers are
always listening), the baseline behaves as follows:

* the parents of BFS layer ``ℓ`` may only start transmitting once **every**
  parent of layer ``ℓ - 1`` has transmitted (per-layer synchronisation, no
  pipelining across layers);
* within a layer, each parent transmits at its first wake-up slot after the
  layer opened, except that two parents sharing an uncovered neighbour never
  transmit in the same slot — the lower-priority one backs off to its next
  wake-up slot (the "wait of k slots, 1 <= k <= 2r, to re-initiate" the
  paper describes).

The end-to-end latency therefore accumulates roughly one cycle-waiting time
per colour per layer, which is the ``17 k d`` growth the paper quotes for
this baseline and plots in Figures 4-7.
"""

from __future__ import annotations

from typing import Sequence

from repro.baselines.approx26 import layer_color_plan
from repro.baselines.bfs_tree import BroadcastTree, build_broadcast_tree
from repro.core.advance import Advance, BroadcastState, LaneStateView
from repro.core.policies import SchedulingPolicy
from repro.dutycycle.schedule import WakeupSchedule
from repro.network.interference import has_conflict
from repro.network.topology import WSNTopology

__all__ = ["Approx17Policy"]


class Approx17Policy(SchedulingPolicy):
    """Layer-synchronised BFS scheduling for the duty-cycle system."""

    name = "17-approx"

    #: The plan is fixed at ``prepare`` time and assumes every delivery
    #: succeeds — under lossy links it live-locks (exactly the §VI critique
    #: of schedulers relying on healthy links), so the engines reject it.
    loss_tolerant = False

    def __init__(
        self,
        topology: WSNTopology | None = None,
        schedule: WakeupSchedule | None = None,
        *,
        parent_mode: str = "cover",
    ) -> None:
        self._parent_mode = parent_mode
        self._topology = topology
        self._schedule = schedule
        self._tree: BroadcastTree | None = None
        #: Parents of each layer with their colour priority (lower = earlier).
        self._layer_parents: list[list[tuple[int, int]]] = []
        self._current_layer = 0
        self._pending: dict[int, int] = {}

    @property
    def tree(self) -> BroadcastTree | None:
        """The BFS broadcast tree of the current plan (``None`` until prepared)."""
        return self._tree

    def prepare(
        self,
        topology: WSNTopology,
        schedule: WakeupSchedule | None,
        source: int,
    ) -> None:
        if schedule is None:
            raise ValueError(
                "Approx17Policy schedules the duty-cycle system and needs a "
                "WakeupSchedule; the solver registry maps each system to its "
                "tiers (repro.solvers.SOLVER_TIERS, --list-solvers): the "
                "round-based baseline is the '26-approx' tier"
            )
        self._topology = topology
        self._schedule = schedule
        self._tree = build_broadcast_tree(topology, source, parent_mode=self._parent_mode)
        plan = layer_color_plan(topology, self._tree)
        self._layer_parents = []
        for layer_classes in plan:
            parents: list[tuple[int, int]] = []
            for priority, color in enumerate(layer_classes):
                parents.extend((node, priority) for node in sorted(color))
            self._layer_parents.append(parents)
        self._current_layer = 0
        self._pending = dict(self._layer_parents[0]) if self._layer_parents else {}

    def _open_next_layer(self) -> None:
        """Advance to the next layer whose parents still have to transmit."""
        while not self._pending and self._current_layer + 1 < len(self._layer_parents):
            self._current_layer += 1
            self._pending = dict(self._layer_parents[self._current_layer])

    def next_decision_slot(self, time: int) -> int | None:
        """Earliest wake-up slot of any pending parent (a valid promise).

        No pending parent is awake strictly before that slot, so
        :meth:`select_advance` would answer ``None`` there; the hint may be
        *early* (the first-awake parent might not be covered yet), which is
        safe — the engine simply offers that slot and gets ``None``.  No
        promise is made before :meth:`prepare` or once the plan is
        exhausted, so the unprepared/exhausted errors fire at the exact
        slot the unhinted engines would surface them.
        """
        if self._tree is None or self._schedule is None:
            return None
        self._open_next_layer()
        if not self._pending:
            return None
        return min(
            self._schedule.next_active_slot(node, time) for node in self._pending
        )

    def select_advance(self, state: BroadcastState) -> Advance | None:
        if state.is_complete:
            return None
        if self._tree is None or self._topology is not state.topology:
            raise RuntimeError(
                "Approx17Policy.prepare(topology, schedule, source) must run before use"
            )
        assert self._schedule is not None
        self._open_next_layer()
        if not self._pending:
            raise RuntimeError(
                "plan exhausted before full coverage; the BFS plan is inconsistent"
            )

        awake = [
            node
            for node in self._pending
            if node in state.covered and self._schedule.is_active(node, state.time)
        ]
        if not awake:
            return None

        # Transmit awake parents in colour-priority order, backing off any
        # parent that would conflict with an already admitted transmitter.
        awake.sort(key=lambda node: (self._pending[node], node))
        admitted: list[int] = []
        for node in awake:
            if all(
                not has_conflict(state.topology, node, other, state.covered)
                for other in admitted
            ):
                admitted.append(node)
        if not admitted:  # pragma: no cover - at least one node is always admitted
            return None
        for node in admitted:
            self._pending.pop(node, None)

        return Advance.from_color(
            state.topology,
            state.covered,
            frozenset(admitted),
            state.time,
            color_index=self._current_layer + 1,
            num_colors=len(self._layer_parents),
            note=self.name,
        )

    def select_advance_batch(
        self, views: Sequence[LaneStateView]
    ) -> list[Advance | None]:
        """Batched layer replay.

        The decision itself stays per-lane — admission mutates the back-off
        state (``_pending``) and inspects per-pair conflicts — so this
        decider dispatches each view to its own policy.  The batching win
        of this baseline is :meth:`next_decision_slot`: the engines
        fast-forward each lane straight to its first pending parent's
        wake-up slot, so a duty-cycled lane is decided ~once per cycle
        instead of once per slot."""
        return [view.policy.select_advance(view) for view in views]
