"""Breadth-first broadcast trees, the substrate of the hop-distance baselines.

Both baselines ([2]'s 26-approximation and [12]'s duty-cycle-aware
17-approximation) are built on the same skeleton: a BFS layering of the
network rooted at the source, a per-layer set of *parents* (transmitters
chosen from layer ``ℓ`` to cover layer ``ℓ + 1``) and a colouring of those
parents that serialises conflicting transmissions.  This module provides the
layering and the greedy parent selection (a classic greedy set cover, which
is how the referenced constructions pick forwarders from a dominating set).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.topology import WSNTopology

__all__ = ["BroadcastTree", "build_broadcast_tree", "greedy_parent_cover"]


def greedy_parent_cover(
    topology: WSNTopology,
    candidates: frozenset[int] | set[int],
    targets: frozenset[int] | set[int],
) -> list[int]:
    """Greedy set cover: pick candidates until every target has a parent.

    Candidates are repeatedly chosen by (most uncovered targets, smallest
    id); the returned list is in selection order.  Raises if some target has
    no candidate neighbour (cannot happen between consecutive BFS layers).
    """
    remaining = set(targets)
    chosen: list[int] = []
    pool = set(candidates)
    while remaining:
        best: int | None = None
        best_gain = 0
        # Iterating in ascending id order makes the smallest id win ties.
        for u in sorted(pool):
            gain = len(topology.neighbors(u) & remaining)
            if gain > best_gain:
                best = u
                best_gain = gain
        if best is None or best_gain == 0:
            raise ValueError(
                "greedy parent cover failed: some targets have no candidate neighbour"
            )
        chosen.append(best)
        pool.discard(best)
        remaining -= topology.neighbors(best)
    return chosen


@dataclass(frozen=True)
class BroadcastTree:
    """A BFS broadcast tree: layers, parents per layer and child assignment.

    Attributes
    ----------
    source:
        The broadcast source.
    layers:
        ``layers[ℓ]`` is the set of nodes at hop distance ``ℓ``.
    parents_per_layer:
        ``parents_per_layer[ℓ]`` are the transmitters selected from layer
        ``ℓ`` to cover layer ``ℓ + 1`` (empty for the last layer).
    parent_of:
        For every non-source node, the transmitter responsible for it.
    """

    source: int
    layers: tuple[frozenset[int], ...]
    parents_per_layer: tuple[tuple[int, ...], ...]
    parent_of: dict[int, int]

    @property
    def depth(self) -> int:
        """Number of hops from the source to the deepest layer."""
        return len(self.layers) - 1

    def children_of(self, parent: int) -> frozenset[int]:
        """The nodes assigned to ``parent`` in the tree."""
        return frozenset(v for v, p in self.parent_of.items() if p == parent)


def build_broadcast_tree(
    topology: WSNTopology, source: int, *, parent_mode: str = "cover"
) -> BroadcastTree:
    """Build the BFS broadcast tree used by the hop-distance baselines.

    ``parent_mode`` selects how the transmitters of each layer are chosen:

    * ``"cover"`` (default) — greedy minimal set cover; the *strong* variant
      of the baseline (fewest transmitters, fewest colour rounds).
    * ``"tree"`` — every child simply attaches to its smallest-id neighbour
      in the previous layer and every such parent transmits; this is the
      *literal* "BFS tree built in a greedy manner" reading of the paper's
      baseline description and yields more transmitters per layer, hence a
      weaker baseline.  The baseline-strength ablation benchmark compares
      the two.
    """
    if parent_mode not in ("cover", "tree"):
        raise ValueError(f"parent_mode must be 'cover' or 'tree', got {parent_mode!r}")
    layers = topology.bfs_layers(source)
    if sum(len(layer) for layer in layers) != topology.num_nodes:
        raise ValueError("topology is disconnected; cannot build a broadcast tree")

    parents_per_layer: list[tuple[int, ...]] = []
    parent_of: dict[int, int] = {}
    for level in range(len(layers)):
        if level + 1 >= len(layers):
            parents_per_layer.append(())
            continue
        if parent_mode == "cover":
            parents = greedy_parent_cover(topology, layers[level], layers[level + 1])
            parents_per_layer.append(tuple(parents))
            unassigned = set(layers[level + 1])
            for parent in parents:
                for child in sorted(topology.neighbors(parent) & unassigned):
                    parent_of[child] = parent
                    unassigned.discard(child)
            if unassigned:  # pragma: no cover - guarded by greedy_parent_cover
                raise AssertionError("parent cover left children unassigned")
        else:
            chosen: list[int] = []
            for child in sorted(layers[level + 1]):
                parent = min(topology.neighbors(child) & layers[level])
                parent_of[child] = parent
                if parent not in chosen:
                    chosen.append(parent)
            parents_per_layer.append(tuple(sorted(chosen)))
    return BroadcastTree(
        source=source,
        layers=tuple(layers),
        parents_per_layer=tuple(parents_per_layer),
        parent_of=parent_of,
    )
