"""Reference schedulers used in examples and ablations (not in the paper's plots).

* :class:`FloodingPolicy` — idealised, collision-free flooding: every covered
  frontier node relays every round.  Its latency equals the source
  eccentricity ``d``, i.e. the absolute lower bound any interference-aware
  scheduler is measured against.  (Real flooding would suffer the broadcast
  storm problem [17]; the idealisation is only useful as a floor.)
* :class:`LargestFirstPolicy` — the pipeline structure of the paper's
  schedulers but with the naive selection rule "always launch the greedy
  colour with the most receivers" (no time counter, no edge estimate).  The
  pipeline ablation benchmark uses it to isolate how much of the improvement
  comes from the pipeline itself versus from the conflict-aware selection.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.advance import Advance, BroadcastState, LaneStateView
from repro.core.coloring import cached_greedy_color_classes, frontier_candidates
from repro.core.policies import SchedulingPolicy

__all__ = ["FloodingPolicy", "LargestFirstPolicy"]


class FloodingPolicy(SchedulingPolicy):
    """Idealised collision-free flooding (latency floor ``d``).

    ``interference_free`` is False: the transmitter sets deliberately ignore
    conflicts, so run it with ``run_broadcast(..., validate=False)`` — it is
    a lower-bound reference, not a schedule the paper's model admits.
    """

    name = "flooding"
    interference_free = False
    frontier_driven = True
    #: The batched decider reads the stacked uncovered-degree rows, so the
    #: executor tracks them even for synchronous flooding batches.
    batch_frontier = True

    def select_advance(self, state: BroadcastState) -> Advance | None:
        if state.is_complete:
            return None
        awake = None
        if state.schedule is not None:
            awake = state.schedule.awake_nodes(state.covered, state.time)
        candidates = frontier_candidates(state.topology, state.covered, awake)
        if not candidates:
            return None
        return Advance.from_color(
            state.topology,
            state.covered,
            frozenset(candidates),
            state.time,
            color_index=1,
            num_colors=1,
            note=self.name,
        )

    def select_advance_batch(
        self, views: Sequence[LaneStateView]
    ) -> list[Advance | None]:
        """Vectorized flooding: the frontier mask per lane is one stacked
        comparison, ``covered & (uncovered_degree > 0)``, over the batch's
        zero-copy rows.

        Flooding relays the *whole* frontier, so the candidate ordering of
        :func:`frontier_candidates` is irrelevant — only the set matters —
        and the mask is exactly that set (a node is a candidate iff it is
        covered, has an uncovered neighbour, and — duty-cycle system — is
        awake).  Views without stacked frontier rows fall back per lane.
        """
        decisions: list[Advance | None] = []
        for view in views:
            degree = view.uncovered_degree
            bitset = view.bitset
            if degree is None or bitset is None or view.covered_bool is None:
                decisions.append(view.policy.select_advance(view))
                continue
            if view.is_complete:
                decisions.append(None)
                continue
            candidates = bitset.nodes_from_bool(view.covered_bool & (degree > 0))
            if view.schedule is not None:
                candidates = view.schedule.awake_nodes(candidates, view.time)
            if not candidates:
                decisions.append(None)
                continue
            color = frozenset(candidates)
            receivers = bitset.nodes_from_bool(
                bitset.receivers_bool(bitset.indices(color), view.covered_bool)
            )
            decisions.append(
                Advance(
                    time=view.time,
                    color=color,
                    receivers=receivers,
                    color_index=1,
                    num_colors=1,
                    note=view.policy.name,
                )
            )
        return decisions


class LargestFirstPolicy(SchedulingPolicy):
    """Pipelined scheduling with the naive "most receivers first" selection."""

    name = "largest-first"
    frontier_driven = True

    def select_advance(self, state: BroadcastState) -> Advance | None:
        if state.is_complete:
            return None
        awake = None
        if state.schedule is not None:
            awake = state.schedule.awake_nodes(state.covered, state.time)
        colors = cached_greedy_color_classes(state.topology, state.covered, awake)
        if not colors:
            return None
        return Advance.from_color(
            state.topology,
            state.covered,
            colors[0],
            state.time,
            color_index=1,
            num_colors=len(colors),
            note=self.name,
        )
