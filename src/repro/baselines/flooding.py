"""Reference schedulers used in examples and ablations (not in the paper's plots).

* :class:`FloodingPolicy` — idealised, collision-free flooding: every covered
  frontier node relays every round.  Its latency equals the source
  eccentricity ``d``, i.e. the absolute lower bound any interference-aware
  scheduler is measured against.  (Real flooding would suffer the broadcast
  storm problem [17]; the idealisation is only useful as a floor.)
* :class:`LargestFirstPolicy` — the pipeline structure of the paper's
  schedulers but with the naive selection rule "always launch the greedy
  colour with the most receivers" (no time counter, no edge estimate).  The
  pipeline ablation benchmark uses it to isolate how much of the improvement
  comes from the pipeline itself versus from the conflict-aware selection.
"""

from __future__ import annotations

from repro.core.advance import Advance, BroadcastState
from repro.core.coloring import frontier_candidates, greedy_color_classes
from repro.core.policies import SchedulingPolicy

__all__ = ["FloodingPolicy", "LargestFirstPolicy"]


class FloodingPolicy(SchedulingPolicy):
    """Idealised collision-free flooding (latency floor ``d``).

    ``interference_free`` is False: the transmitter sets deliberately ignore
    conflicts, so run it with ``run_broadcast(..., validate=False)`` — it is
    a lower-bound reference, not a schedule the paper's model admits.
    """

    name = "flooding"
    interference_free = False
    frontier_driven = True

    def select_advance(self, state: BroadcastState) -> Advance | None:
        if state.is_complete:
            return None
        awake = None
        if state.schedule is not None:
            awake = state.schedule.awake_nodes(state.covered, state.time)
        candidates = frontier_candidates(state.topology, state.covered, awake)
        if not candidates:
            return None
        return Advance.from_color(
            state.topology,
            state.covered,
            frozenset(candidates),
            state.time,
            color_index=1,
            num_colors=1,
            note=self.name,
        )


class LargestFirstPolicy(SchedulingPolicy):
    """Pipelined scheduling with the naive "most receivers first" selection."""

    name = "largest-first"
    frontier_driven = True

    def select_advance(self, state: BroadcastState) -> Advance | None:
        if state.is_complete:
            return None
        awake = None
        if state.schedule is not None:
            awake = state.schedule.awake_nodes(state.covered, state.time)
        colors = greedy_color_classes(state.topology, state.covered, awake)
        if not colors:
            return None
        return Advance.from_color(
            state.topology,
            state.covered,
            colors[0],
            state.time,
            color_index=1,
            num_colors=len(colors),
            note=self.name,
        )
