"""Baseline schedulers the paper compares against (Section V / VI)."""

from repro.baselines.approx17 import Approx17Policy
from repro.baselines.approx26 import Approx26Policy
from repro.baselines.bfs_tree import BroadcastTree, build_broadcast_tree, greedy_parent_cover
from repro.baselines.flooding import FloodingPolicy, LargestFirstPolicy

__all__ = [
    "Approx17Policy",
    "Approx26Policy",
    "BroadcastTree",
    "FloodingPolicy",
    "LargestFirstPolicy",
    "build_broadcast_tree",
    "greedy_parent_cover",
]
