"""The round-based hop-distance baseline (the "26-approximation" of [2]).

Chen, Qiao, Xu and Lee (INFOCOM 2007) schedule an interference-aware
broadcast along a BFS tree: for every BFS layer, a set of parents covering
the next layer is selected and greedily coloured so that transmitters of the
same colour do not conflict; the colour classes of a layer transmit in
consecutive rounds, and — crucially for the comparison the paper draws — the
next layer's transmissions only start once **every** colour class of the
current layer has transmitted (the per-layer synchronisation that blocks
interference-free relays further down the tree).

The resulting latency is ``Σ_ℓ λ_ℓ`` rounds, where ``λ_ℓ`` is the number of
colours layer ``ℓ`` needs; their analysis bounds it by a constant (26)
times the hop radius, which is the curve the paper plots as
"26-approximation" in Figure 3.
"""

from __future__ import annotations

from typing import Sequence

from repro.baselines.bfs_tree import BroadcastTree, build_broadcast_tree
from repro.core.advance import Advance, BroadcastState, LaneStateView
from repro.core.coloring import conflict_graph
from repro.core.policies import SchedulingPolicy
from repro.dutycycle.schedule import WakeupSchedule
from repro.network.topology import WSNTopology

__all__ = ["Approx26Policy", "layer_color_plan"]


def layer_color_plan(
    topology: WSNTopology, tree: BroadcastTree
) -> list[list[frozenset[int]]]:
    """Colour the parents of each BFS layer into sequential transmission groups.

    For layer ``ℓ`` the conflict relation is evaluated against the coverage
    available when the layer starts transmitting (all nodes at hop distance
    <= ℓ), which is conservative with respect to the actual coverage while
    the layer's colour classes run and therefore always interference-free.
    """
    plan: list[list[frozenset[int]]] = []
    covered: set[int] = set()
    for level, layer in enumerate(tree.layers):
        covered |= set(layer)
        parents = list(tree.parents_per_layer[level])
        if not parents:
            plan.append([])
            continue
        # Sort parents by number of assigned children (the greedy "most
        # receivers first" rule of the referenced construction).
        parents.sort(key=lambda u: (-len(tree.children_of(u)), u))
        conflicts = conflict_graph(topology, parents, frozenset(covered))
        classes: list[list[int]] = []
        remaining = list(parents)
        while remaining:
            current: list[int] = []
            current_set: set[int] = set()
            deferred: list[int] = []
            for u in remaining:
                if conflicts[u] & current_set:
                    deferred.append(u)
                else:
                    current.append(u)
                    current_set.add(u)
            classes.append(current)
            remaining = deferred
        plan.append([frozenset(c) for c in classes])
    return plan


class Approx26Policy(SchedulingPolicy):
    """Layer-synchronised conflict-aware BFS scheduling (round-based system).

    The policy is *planned*: :meth:`prepare` builds the BFS tree and the
    per-layer colour classes, and :meth:`select_advance` simply replays the
    plan one colour class per round.  The plan never pipelines across
    layers, reproducing the baseline behaviour the paper improves on.
    """

    name = "26-approx"

    #: The replayed plan assumes every delivery succeeds; over lossy links
    #: it would schedule senders that never received the message (the §VI
    #: critique of schedulers relying on healthy links), so the engines
    #: reject it.
    loss_tolerant = False

    def __init__(
        self, topology: WSNTopology | None = None, *, parent_mode: str = "cover"
    ) -> None:
        self._parent_mode = parent_mode
        self._topology = topology
        self._tree: BroadcastTree | None = None
        self._queue: list[frozenset[int]] = []
        self._cursor = 0

    @property
    def tree(self) -> BroadcastTree | None:
        """The BFS broadcast tree of the current plan (``None`` until prepared)."""
        return self._tree

    @property
    def planned_rounds(self) -> int:
        """Total number of transmission rounds the current plan uses."""
        return len(self._queue)

    def prepare(
        self,
        topology: WSNTopology,
        schedule: WakeupSchedule | None,
        source: int,
    ) -> None:
        if schedule is not None:
            raise ValueError(
                "Approx26Policy schedules the round-based synchronous system; "
                "the solver registry maps each system to its tiers "
                "(repro.solvers.SOLVER_TIERS, --list-solvers): the duty-cycle "
                "baseline is the '17-approx' tier"
            )
        self._topology = topology
        self._tree = build_broadcast_tree(topology, source, parent_mode=self._parent_mode)
        plan = layer_color_plan(topology, self._tree)
        # Flatten: the source's own transmission is the single colour class
        # of layer 0; every layer's classes run back-to-back before the next
        # layer starts.
        self._queue = [color for layer_classes in plan for color in layer_classes]
        self._cursor = 0

    def _pop_color(self, topology: WSNTopology) -> frozenset[int]:
        """Shared cursor pop of both decision paths (same errors, same state)."""
        if self._tree is None or self._topology is not topology:
            raise RuntimeError(
                "Approx26Policy.prepare(topology, None, source) must run before use"
            )
        if self._cursor >= len(self._queue):
            raise RuntimeError(
                "plan exhausted before full coverage; the BFS plan is inconsistent"
            )
        color = self._queue[self._cursor]
        self._cursor += 1
        return color

    def select_advance(self, state: BroadcastState) -> Advance | None:
        if state.is_complete:
            return None
        color = self._pop_color(state.topology)
        return Advance.from_color(
            state.topology,
            state.covered,
            color,
            state.time,
            color_index=self._cursor,
            num_colors=len(self._queue),
            note=self.name,
        )

    def select_advance_batch(
        self, views: Sequence[LaneStateView]
    ) -> list[Advance | None]:
        """Batched plan replay: pop the planned colour, receivers from the
        stacked coverage row (same adjacency, same result as
        :func:`repro.network.interference.receivers_of`)."""
        decisions: list[Advance | None] = []
        for view in views:
            policy = view.policy
            bitset = view.bitset
            if bitset is None or view.covered_bool is None:
                decisions.append(policy.select_advance(view))
                continue
            if view.is_complete:
                decisions.append(None)
                continue
            color = policy._pop_color(view.topology)
            receivers = bitset.nodes_from_bool(
                bitset.receivers_bool(bitset.indices(color), view.covered_bool)
            )
            decisions.append(
                Advance(
                    time=view.time,
                    color=color,
                    receivers=receivers,
                    color_index=policy._cursor,
                    num_colors=len(policy._queue),
                    note=policy.name,
                )
            )
        return decisions
