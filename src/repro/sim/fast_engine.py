"""Vectorized broadcast engines (the ``engine="vectorized"`` backend).

:class:`FastRoundEngine` and :class:`FastSlotEngine` are drop-in
replacements for :class:`~repro.sim.engine.RoundEngine` and
:class:`~repro.sim.engine.SlotEngine`: same constructor and ``run``
signatures (including the :class:`~repro.sim.links.LinkModel` strategy,
so every backend × reliability combination runs through the same kernel),
same :class:`~repro.core.policies.SchedulingPolicy` protocol, same error
messages, and — by construction — *bit-identical*
:class:`~repro.sim.trace.BroadcastResult` traces, reliable and lossy alike
(the parity suites in ``tests/property`` and the benchmarks in
``benchmarks/test_engine_backends.py`` / ``benchmarks/test_lossy_engines.py``
enforce this).  What changes is how the engine-side work is carried out:

* coverage and receiver sets are boolean vectors over the
  :class:`~repro.network.bitset.BitsetTopology` view, so interference
  checking and advance validation are matrix slices instead of Python set
  loops;
* wake-up schedules are materialised into a lazily grown boolean activity
  window (:meth:`~repro.dutycycle.schedule.WakeupSchedule.activity_window`),
  so "is anyone on the frontier awake?" is a column reduction;
* the default time limits (source eccentricity, max degree) come from the
  view's vectorized BFS instead of the Python queue BFS;
* for policies that declare themselves frontier-driven (OPT, G-OPT,
  E-model, flooding, largest-first — see
  :attr:`~repro.core.policies.SchedulingPolicy.frontier_driven`) the slot
  engine *skips* slots in which no awake covered node has an uncovered
  neighbour, because such policies promise to answer ``None`` there with
  no state change.  Policies that keep the fail-safe default (e.g. the
  layered 17-approximation, which may transmit a parent whose children
  were already covered) are offered every slot, exactly like the
  reference engine; the traces are identical either way.
"""

from __future__ import annotations

import dataclasses
import weakref
from bisect import bisect_left
from typing import Sequence

import numpy as np

from repro.core.advance import Advance, BroadcastState
from repro.core.policies import SchedulingPolicy
from repro.dutycycle.schedule import WakeupSchedule
from repro.network.bitset import BitsetTopology, bitset_view
from repro.network.topology import WSNTopology
from repro.sim.engine import SimulationTimeout, check_multi_inputs
from repro.sim.links import LinkModel, ReliableLinks
from repro.sim.trace import BroadcastResult, MultiBroadcastResult
from repro.utils.validation import require

__all__ = ["FastRoundEngine", "FastSlotEngine"]


class _ActivityWindow:
    """Lazily grown boolean activity matrix for one (schedule, topology) pair.

    Rows follow the bitset view's node order; column ``j`` is slot
    ``j + 1``.  The window doubles on demand, so short broadcasts never pay
    for the engine's (deliberately generous) worst-case slot limit.
    """

    __slots__ = ("_schedule_ref", "_node_ids", "_matrix", "_horizon", "rate")

    def __init__(self, schedule: WakeupSchedule, view: BitsetTopology) -> None:
        # Weak back-reference: windows are cached per schedule in a
        # WeakKeyDictionary, so a strong reference here would pin the key
        # forever and leak the activity matrices.
        self._schedule_ref = weakref.ref(schedule)
        self._node_ids = [int(u) for u in view.node_ids]
        # Chunk sizing tracks the slowest node so one extension always
        # covers at least a few cycles of every node.
        self.rate = schedule.max_rate
        self._horizon = 0
        self._matrix = np.zeros((view.num_nodes, 0), dtype=bool)

    def ensure(self, slot: int) -> None:
        """Grow the window so that ``slot`` is materialised."""
        if slot <= self._horizon:
            return
        schedule = self._schedule_ref()
        if schedule is None:  # pragma: no cover - requires racing the GC
            raise ReferenceError("the schedule behind this window was garbage-collected")
        new_horizon = max(slot, max(self._horizon, 4 * self.rate, 64) * 2)
        extension = schedule.activity_window(
            self._node_ids, self._horizon + 1, new_horizon
        )
        self._matrix = np.concatenate([self._matrix, extension], axis=1)
        self._horizon = new_horizon

    def active_rows(self, rows: np.ndarray, slot: int) -> np.ndarray:
        """Boolean activity of the given rows at ``slot``."""
        self.ensure(slot)
        return self._matrix[rows, slot - 1]

    def any_active(self, rows: np.ndarray, start: int, stop: int) -> np.ndarray:
        """Per-slot "some selected row is awake" over ``[start, stop]``."""
        self.ensure(stop)
        return self._matrix[rows, start - 1 : stop].any(axis=0)

    def active_at(self, slots: np.ndarray) -> np.ndarray:
        """Activity of every node at the given slots, as ``(n, len(slots))``."""
        self.ensure(int(slots.max(initial=1)))
        return self._matrix[:, slots - 1]

    def active_pairs(self, rows: np.ndarray, slots: np.ndarray) -> np.ndarray:
        """Element-wise activity of ``(rows[i], slots[i])`` pairs."""
        if len(slots) == 0:
            return np.zeros(0, dtype=bool)
        self.ensure(int(slots.max(initial=1)))
        return self._matrix[rows, slots - 1]


class _FrontierScan:
    """Incremental "next slot with an awake frontier node" queries.

    Built once per frontier change: scans the activity window in chunks,
    records the absolute slots at which *some* frontier node is awake, and
    answers subsequent queries with a bisect instead of a numpy reduction
    per slot (the query is issued once per simulated slot, so per-call
    overhead dominates at scale).
    """

    __slots__ = ("_window", "_rows", "_hits", "_scanned_until", "_chunk")

    def __init__(self, window: _ActivityWindow, rows: np.ndarray, start: int) -> None:
        self._window = window
        self._rows = rows
        self._hits: list[int] = []
        self._scanned_until = start - 1
        self._chunk = max(4 * window.rate, 64)

    def next_active(self, slot: int, limit: int) -> int | None:
        """Smallest slot in ``[slot, limit]`` with an awake frontier node."""
        if len(self._rows) == 0:
            return None
        hits = self._hits
        index = bisect_left(hits, slot)
        while index >= len(hits):
            if self._scanned_until >= limit:
                return None
            begin = self._scanned_until + 1
            stop = min(begin + self._chunk - 1, limit)
            segment = self._window.any_active(self._rows, begin, stop)
            offsets = np.flatnonzero(segment)
            if offsets.size:
                hits.extend((begin + offsets).tolist())
            self._scanned_until = stop
            index = bisect_left(hits, slot)
        return hits[index]


_WINDOW_CACHE: (
    "weakref.WeakKeyDictionary[WakeupSchedule, list[tuple[weakref.ref, _ActivityWindow]]]"
) = weakref.WeakKeyDictionary()


def _window_for(schedule: WakeupSchedule, view: BitsetTopology) -> _ActivityWindow:
    """The cached activity window for a (schedule, topology-view) pair.

    Views are matched by identity through weak references (not ``id()``,
    which the allocator may recycle after a view is collected).
    """
    per_schedule = _WINDOW_CACHE.get(schedule)
    if per_schedule is None:
        per_schedule = []
        _WINDOW_CACHE[schedule] = per_schedule
    for view_ref, window in per_schedule:
        if view_ref() is view:
            return window
    window = _ActivityWindow(schedule, view)
    per_schedule[:] = [(r, w) for r, w in per_schedule if r() is not None]
    per_schedule.append((weakref.ref(view), window))
    return window


class _FastEngineBase:
    """Shared vectorized bookkeeping of both engines."""

    def __init__(self, topology: WSNTopology, link_model: LinkModel | None = None) -> None:
        self.topology = topology
        self.link_model = ReliableLinks() if link_model is None else link_model
        self._view = bitset_view(topology)

    def _check_advance(
        self,
        advance: Advance,
        covered: frozenset[int],
        covered_bool: np.ndarray,
        time: int,
        window: _ActivityWindow | None,
        *,
        check_conflicts: bool = True,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Validate ``advance``; return (transmitter rows, receivers bool, receiver rows).

        Raises exactly the errors (and messages) of the reference engine's
        ``_check_advance``; the transmitter/receiver representations are
        returned so the caller can apply the link model and the coverage
        union without re-deriving them.
        """
        view = self._view
        if advance.time != time:
            raise ValueError(
                f"policy returned an advance for time {advance.time}, expected {time}"
            )
        not_covered = advance.color - covered
        if not_covered:
            raise ValueError(
                f"policy scheduled transmitters that do not hold the message: "
                f"{sorted(not_covered)}"
            )
        tx_idx = view.indices(advance.color)
        if window is not None:
            awake = window.active_rows(tx_idx, time)
            if not awake.all():
                asleep = [int(u) for u in view.node_ids[tx_idx[~awake]]]
                raise ValueError(
                    f"policy scheduled sleeping transmitters at slot {time}: {sorted(asleep)}"
                )
        conflict, expected_bool = view.check_and_receivers(tx_idx, covered_bool)
        if check_conflicts and conflict:
            conflicts = view.conflicting_pairs(tx_idx, covered_bool)
            raise ValueError(
                f"policy scheduled conflicting transmitters at time {time}: {conflicts}"
            )
        # Set equality without materialising the expected frozenset: the
        # recorded receivers are a set, so "same cardinality and every
        # member expected" is equivalence.  Unknown node ids cannot match
        # anything, so they raise the same mismatch error as the reference.
        try:
            recorded_idx = view.indices(advance.receivers)
        except KeyError:
            recorded_idx = None
        if recorded_idx is None or len(recorded_idx) != int(
            np.count_nonzero(expected_bool)
        ) or not expected_bool[recorded_idx].all():
            raise ValueError(
                "advance.receivers does not match the uncovered neighbours of its "
                f"transmitters at time {time}"
            )
        return tx_idx, expected_bool, recorded_idx

    def _run(
        self,
        policy: SchedulingPolicy,
        source: int,
        start_time: int,
        limit: int,
        schedule: WakeupSchedule | None,
    ) -> BroadcastResult:
        """Materialize :meth:`_iter_run` into a full :class:`BroadcastResult`."""
        stepper = self._iter_run(policy, source, start_time, limit, schedule)
        advances: list[Advance] = []
        while True:
            try:
                advances.append(next(stepper))
            except StopIteration as done:
                covered, end_time = done.value
                break
        return BroadcastResult(
            policy_name=policy.name,
            source=source,
            start_time=start_time,
            end_time=max(end_time, start_time - 1),
            covered=covered,
            advances=tuple(advances),
            synchronous=schedule is None,
            cycle_rate=1 if schedule is None else schedule.rate,
        )

    def _iter_run(
        self,
        policy: SchedulingPolicy,
        source: int,
        start_time: int,
        limit: int,
        schedule: WakeupSchedule | None,
    ):
        """Generator core of the single-source kernel: yields each recorded
        advance the moment it is applied, and returns ``(covered, end_time)``
        when coverage completes (via ``StopIteration.value``).

        This is the streaming entry point (:mod:`repro.sim.streaming`): the
        engine holds no advance list, so a consumer that does not accumulate
        the yielded advances runs in memory independent of the trace length.
        :meth:`_run` materializes it; both paths execute the identical slot
        loop, so streamed and materialized traces are bit-identical.
        """
        require(source in self.topology, f"unknown source node {source}")
        require(start_time >= 1, "start_time is 1-based")
        view = self._view
        num_nodes = view.num_nodes
        link = self.link_model
        link_state = None if link.lossless else link.make_state()
        check_conflicts = getattr(policy, "interference_free", True)
        skip_idle = schedule is not None and getattr(policy, "frontier_driven", False)
        window = None if schedule is None else _window_for(schedule, view)
        # Fast-forward hint (see SchedulingPolicy.next_decision_slot); the
        # base-class default always answers None (no promise).
        hint = policy.next_decision_slot

        covered: frozenset[int] = frozenset({source})
        covered_bool = np.zeros(num_nodes, dtype=bool)
        covered_bool[view.index_of(source)] = True
        covered_count = 1
        # Frontier = covered nodes with >= 1 uncovered neighbour, tracked
        # incrementally: the per-node count of uncovered neighbours only
        # decreases, by the adjacency columns of each advance's receivers.
        uncovered_degree = view.degrees.astype(np.int64) - view.hear_counts(
            np.asarray([view.index_of(source)], dtype=np.int64)
        )
        frontier_idx: np.ndarray | None = None
        scan: _FrontierScan | None = None

        time = start_time
        end_time = start_time - 1

        while covered_count != num_nodes:
            hinted = hint(time)
            if hinted is not None and hinted > time:
                time = hinted
            # When the policy explicitly promised a decision at this very
            # slot, offering it is the cheapest correct move; the frontier
            # probe/scan is for policies that make no such promise.
            if skip_idle and hinted != time and time <= limit:
                assert window is not None
                if frontier_idx is None:
                    frontier_idx = np.flatnonzero(covered_bool & (uncovered_degree > 0))
                    scan = None
                # Cheap single-column probe first; the chunked forward scan
                # only runs through genuinely idle stretches.
                if not window.active_rows(frontier_idx, time).any():
                    if scan is None:
                        scan = _FrontierScan(window, frontier_idx, time)
                    next_slot = scan.next_active(time, limit)
                    time = limit + 1 if next_slot is None else next_slot
            if time > limit:
                raise SimulationTimeout(
                    f"broadcast did not complete by time {limit} "
                    f"(covered {covered_count}/{num_nodes} nodes); the policy or the "
                    "wake-up schedule is not making progress"
                )
            state = BroadcastState.for_engine(self.topology, covered, time, schedule)
            advance = policy.select_advance(state)
            if advance is not None:
                tx_idx, receivers_bool, receivers_idx = self._check_advance(
                    advance,
                    covered,
                    covered_bool,
                    time,
                    window,
                    check_conflicts=check_conflicts,
                )
                if link.lossless:
                    recorded = advance
                    delivered = advance.receivers
                    delivered_bool = receivers_bool
                    delivered_idx = receivers_idx
                else:
                    delivered_bool = link.deliver_bool(
                        link_state, view, tx_idx, receivers_bool, covered_bool
                    )
                    delivered = view.nodes_from_bool(delivered_bool)
                    delivered_idx = np.flatnonzero(delivered_bool)
                    recorded = dataclasses.replace(
                        advance,
                        receivers=delivered,
                        intended_receivers=advance.receivers,
                    )
                if delivered:
                    covered = covered | delivered
                    covered_bool |= delivered_bool
                    covered_count += len(delivered)
                    if skip_idle:
                        uncovered_degree -= view.adjacency_u8[:, delivered_idx].sum(
                            axis=1, dtype=np.int64
                        )
                        frontier_idx = None
                    end_time = time
                yield recorded
            time += 1

        return covered, end_time

    def _check_multi_inputs(
        self, policies: Sequence[SchedulingPolicy], sources: Sequence[int]
    ) -> None:
        check_multi_inputs(self.topology, policies, sources)

    def _run_multi(
        self,
        policies: Sequence[SchedulingPolicy],
        sources: Sequence[int],
        start_time: int,
        limit: int,
        schedule: WakeupSchedule | None,
    ) -> MultiBroadcastResult:
        """Vectorized twin of :meth:`repro.sim.engine._EngineBase._run_multi`.

        Same rotating priority order, same deferral predicate (evaluated on
        boolean vectors instead of bigint masks), same link-RNG consumption
        order — the traces are bit-identical to the reference kernel.  When
        every policy is frontier-driven, the duty-cycle path additionally
        skips slots in which no message has an awake frontier node (the
        union multi-frontier scan), which is trace-preserving because every
        policy promises ``None`` with no state change on such slots.

        Inputs were validated by the public ``run_multi`` entry point
        (which needs them checked before its default-limit computation).
        """
        require(start_time >= 1, "start_time is 1-based")
        view = self._view
        num_nodes = view.num_nodes
        k = len(sources)
        link = self.link_model
        link_state = None if link.lossless else link.make_state()
        check_conflicts = [
            getattr(policy, "interference_free", True) for policy in policies
        ]
        skip_idle = schedule is not None and all(
            getattr(policy, "frontier_driven", False) for policy in policies
        )
        window = None if schedule is None else _window_for(schedule, view)

        covered: list[frozenset[int]] = [frozenset({s}) for s in sources]
        covered_bool = np.zeros((k, num_nodes), dtype=bool)
        covered_count = [1] * k
        uncovered_degree = np.empty((k, num_nodes), dtype=np.int64)
        for m, source in enumerate(sources):
            row = view.index_of(source)
            covered_bool[m, row] = True
            uncovered_degree[m] = view.degrees.astype(np.int64) - view.hear_counts(
                np.asarray([row], dtype=np.int64)
            )
        frontier_idx: np.ndarray | None = None
        scan: _FrontierScan | None = None

        advances: list[list[Advance]] = [[] for _ in range(k)]
        end_times = [start_time - 1] * k
        time = start_time

        while any(count != num_nodes for count in covered_count):
            if skip_idle and time <= limit:
                assert window is not None
                if frontier_idx is None:
                    # Union multi-frontier: covered nodes of *some* message
                    # that still have uncovered neighbours for that message.
                    frontier_idx = np.flatnonzero(
                        (covered_bool & (uncovered_degree > 0)).any(axis=0)
                    )
                    scan = None
                if not window.active_rows(frontier_idx, time).any():
                    if scan is None:
                        scan = _FrontierScan(window, frontier_idx, time)
                    next_slot = scan.next_active(time, limit)
                    time = limit + 1 if next_slot is None else next_slot
            if time > limit:
                pending = sum(1 for count in covered_count if count != num_nodes)
                raise SimulationTimeout(
                    f"multi-source broadcast did not complete by time {limit} "
                    f"({pending}/{k} messages still spreading); the policies, "
                    "the wake-up schedule or the slot contention is not making "
                    "progress"
                )
            busy = np.zeros(num_nodes, dtype=bool)
            heard = np.zeros(num_nodes, dtype=bool)
            rx = np.zeros(num_nodes, dtype=bool)
            offset = (time - start_time) % k
            for m in ((offset + j) % k for j in range(k)):
                if covered_count[m] == num_nodes:
                    continue
                policy = policies[m]
                state = BroadcastState.for_engine(
                    self.topology, covered[m], time, schedule
                )
                advance = policy.select_advance(state)
                if advance is None:
                    continue
                tx_idx, receivers_bool, receivers_idx = self._check_advance(
                    advance,
                    covered[m],
                    covered_bool[m],
                    time,
                    window,
                    check_conflicts=check_conflicts[m],
                )
                cand_heard = view.hears_any(tx_idx)
                if (
                    busy[tx_idx].any()
                    or (receivers_bool & (busy | heard)).any()
                    or (rx & cand_heard).any()
                ):
                    # Cross-message contention: defer this message; its
                    # frontier is unchanged, so the policy re-plans later.
                    continue
                if link.lossless:
                    recorded = advance
                    delivered = advance.receivers
                    delivered_bool = receivers_bool
                    delivered_idx = receivers_idx
                else:
                    delivered_bool = link.deliver_bool(
                        link_state, view, tx_idx, receivers_bool, covered_bool[m]
                    )
                    delivered = view.nodes_from_bool(delivered_bool)
                    delivered_idx = np.flatnonzero(delivered_bool)
                    recorded = dataclasses.replace(
                        advance,
                        receivers=delivered,
                        intended_receivers=advance.receivers,
                    )
                if delivered:
                    covered[m] = covered[m] | delivered
                    covered_bool[m] |= delivered_bool
                    covered_count[m] += len(delivered)
                    if skip_idle:
                        uncovered_degree[m] -= view.adjacency_u8[
                            :, delivered_idx
                        ].sum(axis=1, dtype=np.int64)
                        frontier_idx = None
                    end_times[m] = time
                advances[m].append(recorded)
                busy[tx_idx] = True
                busy |= receivers_bool
                heard |= cand_heard
                rx |= receivers_bool
            time += 1

        messages = tuple(
            BroadcastResult(
                policy_name=policies[i].name,
                source=sources[i],
                start_time=start_time,
                end_time=max(end_times[i], start_time - 1),
                covered=covered[i],
                advances=tuple(advances[i]),
                synchronous=schedule is None,
                cycle_rate=1 if schedule is None else schedule.rate,
            )
            for i in range(k)
        )
        return MultiBroadcastResult(
            sources=tuple(int(s) for s in sources),
            start_time=start_time,
            messages=messages,
            synchronous=schedule is None,
            cycle_rate=1 if schedule is None else schedule.rate,
        )


class FastRoundEngine(_FastEngineBase):
    """Vectorized round-based engine (parity twin of ``RoundEngine``)."""

    def run(
        self,
        policy: SchedulingPolicy,
        source: int,
        *,
        start_time: int = 1,
        max_rounds: int | None = None,
    ) -> BroadcastResult:
        """Simulate a broadcast; see :meth:`repro.sim.engine.RoundEngine.run`."""
        require(source in self.topology, f"unknown source node {source}")
        if max_rounds is None:
            max_rounds = self._default_max_rounds(source)
        limit = start_time + max_rounds
        return self._run(policy, source, start_time, limit, schedule=None)

    def _default_max_rounds(self, source: int) -> int:
        depth = max(self._view.eccentricity(source), 1)
        return int(
            (depth * max(self._view.max_degree(), 1) + depth + 8)
            * self.link_model.limit_stretch
        )

    def run_multi(
        self,
        policies: Sequence[SchedulingPolicy],
        sources: Sequence[int],
        *,
        start_time: int = 1,
        max_rounds: int | None = None,
    ) -> MultiBroadcastResult:
        """Multi-source twin; see :meth:`repro.sim.engine.RoundEngine.run_multi`."""
        self._check_multi_inputs(policies, sources)
        if max_rounds is None:
            max_rounds = max(
                self._default_max_rounds(source) for source in sources
            ) * max(len(sources), 1)
        limit = start_time + max_rounds
        return self._run_multi(policies, sources, start_time, limit, schedule=None)


class FastSlotEngine(_FastEngineBase):
    """Vectorized duty-cycle engine (parity twin of ``SlotEngine``)."""

    def __init__(
        self,
        topology: WSNTopology,
        schedule: WakeupSchedule,
        link_model: LinkModel | None = None,
    ) -> None:
        super().__init__(topology, link_model)
        if topology.node_ids != schedule.node_ids:
            missing = set(topology.node_ids) - set(schedule.node_ids)
            if missing:
                raise ValueError(
                    f"wake-up schedule missing nodes {sorted(missing)[:5]}..."
                    if len(missing) > 5
                    else f"wake-up schedule missing nodes {sorted(missing)}"
                )
        self.schedule = schedule

    def run(
        self,
        policy: SchedulingPolicy,
        source: int,
        *,
        start_time: int = 1,
        align_start: bool = False,
        max_slots: int | None = None,
    ) -> BroadcastResult:
        """Simulate a duty-cycle broadcast; see :meth:`repro.sim.engine.SlotEngine.run`."""
        require(source in self.topology, f"unknown source node {source}")
        if align_start:
            start_time = self.schedule.next_active_slot(source, start_time)
        if max_slots is None:
            max_slots = self._default_max_slots(source)
        limit = start_time + max_slots
        return self._run(policy, source, start_time, limit, schedule=self.schedule)

    def _default_max_slots(self, source: int) -> int:
        depth = max(self._view.eccentricity(source), 1)
        # max_rate mirrors SlotEngine.run so both backends cap at the
        # same slot even under heterogeneous duty cycling.
        worst_per_layer = 2 * self.schedule.max_rate * (
            max(self._view.max_degree(), 1) + 2
        )
        return int(
            (depth * worst_per_layer + 4 * self.schedule.max_rate)
            * self.link_model.limit_stretch
        )

    def run_multi(
        self,
        policies: Sequence[SchedulingPolicy],
        sources: Sequence[int],
        *,
        start_time: int = 1,
        align_start: bool = False,
        max_slots: int | None = None,
    ) -> MultiBroadcastResult:
        """Multi-source twin; see :meth:`repro.sim.engine.SlotEngine.run_multi`."""
        self._check_multi_inputs(policies, sources)
        if align_start:
            start_time = min(
                self.schedule.next_active_slot(source, start_time)
                for source in sources
            )
        if max_slots is None:
            max_slots = max(
                self._default_max_slots(source) for source in sources
            ) * max(len(sources), 1)
        limit = start_time + max_slots
        return self._run_multi(
            policies, sources, start_time, limit, schedule=self.schedule
        )
