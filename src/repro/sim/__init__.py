"""Broadcast simulators: engines, traces, validation and metrics."""

from repro.sim.broadcast import ENGINE_BACKENDS, run_broadcast
from repro.sim.energy import EnergyModel, EnergyReport, energy_of_broadcast
from repro.sim.engine import RoundEngine, SimulationTimeout, SlotEngine
from repro.sim.fast_engine import FastRoundEngine, FastSlotEngine
from repro.sim.metrics import BroadcastMetrics, improvement_percent
from repro.sim.render import render_schedule_timeline, render_topology_ascii
from repro.sim.replay import ReplayPolicy
from repro.sim.trace import BroadcastResult
from repro.sim.unreliable import (
    LossyRoundEngine,
    LossySlotEngine,
    reliability_sweep,
    run_lossy_broadcast,
)
from repro.sim.validation import ScheduleViolation, assert_valid, validate_broadcast

__all__ = [
    "BroadcastMetrics",
    "BroadcastResult",
    "ENGINE_BACKENDS",
    "EnergyModel",
    "EnergyReport",
    "FastRoundEngine",
    "FastSlotEngine",
    "LossyRoundEngine",
    "LossySlotEngine",
    "ReplayPolicy",
    "RoundEngine",
    "ScheduleViolation",
    "SimulationTimeout",
    "SlotEngine",
    "assert_valid",
    "energy_of_broadcast",
    "improvement_percent",
    "reliability_sweep",
    "render_schedule_timeline",
    "render_topology_ascii",
    "run_broadcast",
    "run_lossy_broadcast",
    "validate_broadcast",
]
