"""Broadcast simulators: engines, traces, validation and metrics."""

from repro.sim.batched import (
    BatchedRoundEngine,
    BatchedSlotEngine,
    BroadcastTask,
    run_batched,
)
from repro.sim.broadcast import ENGINE_BACKENDS, run_broadcast
from repro.sim.energy import EnergyModel, EnergyReport, energy_of_broadcast
from repro.sim.engine import RoundEngine, SimulationTimeout, SlotEngine
from repro.sim.fast_engine import FastRoundEngine, FastSlotEngine
from repro.sim.links import (
    LINK_MODELS,
    IndependentLossLinks,
    LinkModel,
    ReliableLinks,
    build_link_model,
    link_model_names,
)
from repro.sim.metrics import (
    BroadcastMetrics,
    MultiBroadcastMetrics,
    improvement_percent,
)
from repro.sim.render import render_schedule_timeline, render_topology_ascii
from repro.sim.replay import ReplayPolicy
from repro.sim.streaming import StreamSummary, stream_broadcast
from repro.sim.trace import BroadcastResult, MultiBroadcastResult
from repro.sim.unreliable import (
    LossyRoundEngine,
    LossySlotEngine,
    reliability_sweep,
    run_lossy_broadcast,
)
from repro.sim.validation import (
    ScheduleViolation,
    assert_valid,
    assert_valid_multi,
    validate_broadcast,
    validate_multi_broadcast,
)

__all__ = [
    "BatchedRoundEngine",
    "BatchedSlotEngine",
    "BroadcastMetrics",
    "BroadcastResult",
    "BroadcastTask",
    "ENGINE_BACKENDS",
    "EnergyModel",
    "EnergyReport",
    "FastRoundEngine",
    "FastSlotEngine",
    "IndependentLossLinks",
    "LINK_MODELS",
    "LinkModel",
    "LossyRoundEngine",
    "LossySlotEngine",
    "MultiBroadcastMetrics",
    "MultiBroadcastResult",
    "ReliableLinks",
    "ReplayPolicy",
    "RoundEngine",
    "ScheduleViolation",
    "SimulationTimeout",
    "SlotEngine",
    "StreamSummary",
    "assert_valid",
    "assert_valid_multi",
    "build_link_model",
    "energy_of_broadcast",
    "link_model_names",
    "improvement_percent",
    "reliability_sweep",
    "render_schedule_timeline",
    "render_topology_ascii",
    "run_batched",
    "run_broadcast",
    "run_lossy_broadcast",
    "stream_broadcast",
    "validate_broadcast",
    "validate_multi_broadcast",
]
