"""High-level entry point: run one broadcast with any policy.

:func:`run_broadcast` is the function most users (and all examples,
experiments and benchmarks) call: it wires the policy's
:meth:`~repro.core.policies.SchedulingPolicy.prepare` hook, picks the right
engine for the system model (round-based when no wake-up schedule is given,
slot-based otherwise) and returns the full :class:`~repro.sim.trace.BroadcastResult`.
"""

from __future__ import annotations

from repro.core.policies import SchedulingPolicy
from repro.dutycycle.schedule import WakeupSchedule
from repro.network.topology import WSNTopology
from repro.sim.engine import RoundEngine, SlotEngine
from repro.sim.fast_engine import FastRoundEngine, FastSlotEngine
from repro.sim.trace import BroadcastResult
from repro.sim.validation import assert_valid

__all__ = ["run_broadcast", "ENGINE_BACKENDS"]

#: Engine backends selectable via ``run_broadcast(..., engine=...)``:
#: ``(round_engine_cls, slot_engine_cls)`` per backend name.
ENGINE_BACKENDS = {
    "reference": (RoundEngine, SlotEngine),
    "vectorized": (FastRoundEngine, FastSlotEngine),
}


def run_broadcast(
    topology: WSNTopology,
    source: int,
    policy: SchedulingPolicy,
    *,
    schedule: WakeupSchedule | None = None,
    start_time: int = 1,
    align_start: bool = False,
    max_time: int | None = None,
    validate: bool = True,
    engine: str = "reference",
) -> BroadcastResult:
    """Broadcast from ``source`` under ``policy`` and return the trace.

    Parameters
    ----------
    topology:
        The network.
    source:
        The node that holds the message at ``start_time``.
    policy:
        Any scheduling policy (the paper's OPT / G-OPT / E-model, a baseline,
        or a user-supplied implementation of :class:`SchedulingPolicy`).
    schedule:
        A wake-up schedule selects the asynchronous duty-cycle system;
        ``None`` selects the round-based synchronous system.
    start_time:
        ``t_s``, 1-based.
    align_start:
        Duty-cycle only: move ``t_s`` to the source's first wake-up slot at
        or after ``start_time`` (the paper's examples assume ``t_s ∈ T(s)``).
    max_time:
        Optional cap on simulated rounds/slots (defaults to a generous bound
        derived from the baselines' worst case).
    validate:
        Re-validate the produced trace against the network model before
        returning (cheap; disable only in tight benchmarking loops).
    engine:
        ``"reference"`` (the frozenset/bigint engines, the correctness
        oracle) or ``"vectorized"`` (the numpy bitset backend of
        :mod:`repro.sim.fast_engine`).  Both produce bit-identical traces;
        the vectorized backend is the fast path for large sweeps.

    Returns
    -------
    BroadcastResult
        The complete trace; ``result.latency`` is the paper's ``P(A)`` for
        ``start_time=1``.
    """
    try:
        round_engine_cls, slot_engine_cls = ENGINE_BACKENDS[engine]
    except KeyError:
        raise ValueError(
            f"unknown engine backend {engine!r}; expected one of "
            f"{sorted(ENGINE_BACKENDS)}"
        ) from None
    policy.prepare(topology, schedule, source)
    if schedule is None:
        round_engine = round_engine_cls(topology)
        result = round_engine.run(
            policy, source, start_time=start_time, max_rounds=max_time
        )
    else:
        slot_engine = slot_engine_cls(topology, schedule)
        result = slot_engine.run(
            policy,
            source,
            start_time=start_time,
            align_start=align_start,
            max_slots=max_time,
        )
    if validate:
        assert_valid(topology, result, schedule=schedule, backend=engine)
    return result
