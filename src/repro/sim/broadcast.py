"""High-level entry point: run one broadcast with any policy.

:func:`run_broadcast` is the function most users (and all examples,
experiments and benchmarks) call: it wires the policy's
:meth:`~repro.core.policies.SchedulingPolicy.prepare` hook, picks the right
engine for the system model (round-based when no wake-up schedule is given,
slot-based otherwise), applies the requested
:class:`~repro.sim.links.LinkModel` (reliable by default) and returns the
full :class:`~repro.sim.trace.BroadcastResult`.

Passing a *sequence* of sources instead of a single node id selects the
**multi-source workload**: ``k`` concurrent messages share the timeline
(and the wake-up schedule) and contend for slots under the paper's
interference rules — see ``_EngineBase._run_multi`` in
:mod:`repro.sim.engine` for the contention semantics.  The result is then a
:class:`~repro.sim.trace.MultiBroadcastResult` with one complete
per-message trace per source; for a one-element sequence it wraps a trace
bit-identical to the single-source call.

:data:`ENGINE_BACKENDS` is the *single* registry of engine backends: the
experiment configuration, the CLI and the lossy shims of
:mod:`repro.sim.unreliable` all resolve engine classes through it, so a new
backend plugs in here and is immediately selectable everywhere.
"""

from __future__ import annotations

import copy
from typing import Sequence

from repro.core.policies import SchedulingPolicy
from repro.dutycycle.schedule import WakeupSchedule
from repro.network.topology import WSNTopology
from repro.sim.batched import BatchedRoundEngine, BatchedSlotEngine
from repro.sim.engine import RoundEngine, SlotEngine
from repro.sim.fast_engine import FastRoundEngine, FastSlotEngine
from repro.sim.links import LinkModel, ReliableLinks
from repro.sim.trace import BroadcastResult, MultiBroadcastResult
from repro.sim.validation import assert_valid, assert_valid_multi

__all__ = ["run_broadcast", "ENGINE_BACKENDS"]

#: Engine backends selectable via ``run_broadcast(..., engine=...)``:
#: ``(round_engine_cls, slot_engine_cls)`` per backend name.  Both classes
#: of a backend accept ``link_model=`` as their last constructor argument
#: and implement the single-source ``run`` and the multi-source
#: ``run_multi`` entry points.  ``"batched"`` routes single-source runs
#: through the stacked multi-lane kernel of :mod:`repro.sim.batched` (and
#: inherits the vectorized multi-source path); the sweep runner uses the
#: same kernel to execute whole grid stripes at once.
ENGINE_BACKENDS = {
    "reference": (RoundEngine, SlotEngine),
    "vectorized": (FastRoundEngine, FastSlotEngine),
    "batched": (BatchedRoundEngine, BatchedSlotEngine),
}


def _resolve_policies(
    policy: SchedulingPolicy | Sequence[SchedulingPolicy],
    num_messages: int,
) -> list[SchedulingPolicy]:
    """One scheduler instance per message.

    A single policy instance is deep-copied for the extra messages (each
    wavefront needs its own per-broadcast state); a sequence must provide
    exactly one policy per source.
    """
    if isinstance(policy, SchedulingPolicy):
        return [policy] + [copy.deepcopy(policy) for _ in range(num_messages - 1)]
    policies = list(policy)
    if len(policies) != num_messages:
        raise ValueError(
            f"need one policy per source: got {len(policies)} policies for "
            f"{num_messages} sources"
        )
    for item in policies:
        if not isinstance(item, SchedulingPolicy):
            raise TypeError(f"not a SchedulingPolicy: {item!r}")
    return policies


def run_broadcast(
    topology: WSNTopology,
    source: int | Sequence[int],
    policy: SchedulingPolicy | Sequence[SchedulingPolicy],
    *,
    schedule: WakeupSchedule | None = None,
    start_time: int = 1,
    align_start: bool = False,
    max_time: int | None = None,
    validate: bool = True,
    engine: str = "reference",
    link_model: LinkModel | None = None,
) -> BroadcastResult | MultiBroadcastResult:
    """Broadcast from ``source`` under ``policy`` and return the trace.

    Parameters
    ----------
    topology:
        The network.
    source:
        The node that holds the message at ``start_time`` — or a sequence
        of ``k`` distinct nodes for the multi-source workload, in which
        case ``k`` concurrent messages spread on one shared timeline and
        the return value is a :class:`MultiBroadcastResult`.
    policy:
        Any scheduling policy (the paper's OPT / G-OPT / E-model, a baseline,
        or a user-supplied implementation of :class:`SchedulingPolicy`).
        Multi-source runs need one scheduler *instance* per message: pass a
        sequence of ``k`` policies, or a single instance to have it
        deep-copied per message.  With ``k > 1`` every policy must be
        frontier-driven in the :attr:`SchedulingPolicy.loss_tolerant` sense
        (contended advances are deferred and re-planned; planned baselines
        replaying a fixed schedule are rejected loudly).
    schedule:
        A wake-up schedule selects the asynchronous duty-cycle system;
        ``None`` selects the round-based synchronous system.
    start_time:
        ``t_s``, 1-based.
    align_start:
        Duty-cycle only: move ``t_s`` to the source's first wake-up slot at
        or after ``start_time`` (the paper's examples assume ``t_s ∈ T(s)``).
        For multi-source runs the shared start moves to the *earliest*
        wake-up slot of any source.
    max_time:
        Optional cap on simulated rounds/slots (defaults to a generous bound
        derived from the baselines' worst case, stretched by the link
        model's expected retransmission factor — and, multi-source, by the
        message count).
    validate:
        Re-validate the produced trace against the network model before
        returning (cheap; disable only in tight benchmarking loops).  Lossy
        traces are validated against the *delivered* receivers; multi-source
        traces are validated per message plus the cross-message contention
        rules.
    engine:
        ``"reference"`` (the frozenset/bigint engines, the correctness
        oracle) or ``"vectorized"`` (the numpy bitset backend of
        :mod:`repro.sim.fast_engine`).  Both produce bit-identical traces
        for any link model and any number of sources; the vectorized
        backend is the fast path for large sweeps.
    link_model:
        Delivery semantics: ``None`` / :class:`~repro.sim.links.ReliableLinks`
        for the paper's model, or
        :class:`~repro.sim.links.IndependentLossLinks` for independent
        per-link failures (§VI robustness).  Any ``engine`` combines with
        any link model; the traces are bit-identical per (model, seed)
        across backends.

    Returns
    -------
    BroadcastResult | MultiBroadcastResult
        The complete trace; ``result.latency`` is the paper's ``P(A)`` for
        ``start_time=1`` (for multi-source runs: the makespan of the
        slowest message).
    """
    try:
        round_engine_cls, slot_engine_cls = ENGINE_BACKENDS[engine]
    except KeyError:
        raise ValueError(
            f"unknown engine backend {engine!r}; expected one of "
            f"{sorted(ENGINE_BACKENDS)}"
        ) from None
    link = ReliableLinks() if link_model is None else link_model

    if isinstance(source, (str, bytes)):
        # A stray string would iterate char-by-char into the multi-source
        # path; fail as loudly as an unknown node id always has.
        raise TypeError(
            f"source must be a node id or a sequence of node ids, got {source!r}"
        )
    if not isinstance(source, (int,)) and not hasattr(source, "__index__"):
        sources = tuple(int(s) for s in source)
        policies = _resolve_policies(policy, len(sources))
        for item in policies:
            if not link.lossless and not getattr(item, "loss_tolerant", True):
                raise ValueError(
                    f"policy {item.name!r} replays a fixed plan that assumes "
                    "reliable delivery and cannot run over lossy links; pick "
                    "a loss-tolerant tier from the solver registry "
                    "(repro.solvers.SOLVER_TIERS, --list-solvers) or a "
                    "frontier scheduler (OPT, G-OPT, E-model, largest-first) "
                    "for the loss axis"
                )
            if len(sources) > 1 and not getattr(item, "loss_tolerant", True):
                raise ValueError(
                    f"policy {item.name!r} replays a fixed plan and cannot "
                    "share the timeline with concurrent messages: multi-source "
                    "slot contention defers advances, which requires frontier "
                    "re-planning — pick a loss-tolerant tier from the solver "
                    "registry (repro.solvers.SOLVER_TIERS, --list-solvers) or "
                    "a frontier scheduler (OPT, G-OPT, E-model, largest-first)"
                )
        for item, src in zip(policies, sources):
            item.prepare(topology, schedule, src)
        if schedule is None:
            round_engine = round_engine_cls(topology, link_model=link)
            multi = round_engine.run_multi(
                policies, sources, start_time=start_time, max_rounds=max_time
            )
        else:
            slot_engine = slot_engine_cls(topology, schedule, link_model=link)
            multi = slot_engine.run_multi(
                policies,
                sources,
                start_time=start_time,
                align_start=align_start,
                max_slots=max_time,
            )
        if validate:
            assert_valid_multi(
                topology,
                multi,
                schedule=schedule,
                backend=engine,
                lossy=not link.lossless,
            )
        return multi

    if not isinstance(policy, SchedulingPolicy):
        raise TypeError(
            "a single-source broadcast takes a single SchedulingPolicy; pass "
            "a sequence of sources for the multi-source workload"
        )
    if not link.lossless and not getattr(policy, "loss_tolerant", True):
        raise ValueError(
            f"policy {policy.name!r} replays a fixed plan that assumes reliable "
            "delivery and cannot run over lossy links; pick a loss-tolerant "
            "tier from the solver registry (repro.solvers.SOLVER_TIERS, "
            "--list-solvers) or a frontier scheduler (OPT, G-OPT, E-model, "
            "largest-first) for the loss axis"
        )
    policy.prepare(topology, schedule, source)
    if schedule is None:
        round_engine = round_engine_cls(topology, link_model=link)
        result = round_engine.run(
            policy, source, start_time=start_time, max_rounds=max_time
        )
    else:
        slot_engine = slot_engine_cls(topology, schedule, link_model=link)
        result = slot_engine.run(
            policy,
            source,
            start_time=start_time,
            align_start=align_start,
            max_slots=max_time,
        )
    if validate:
        assert_valid(
            topology,
            result,
            schedule=schedule,
            backend=engine,
            lossy=not link.lossless,
        )
    return result
