"""High-level entry point: run one broadcast with any policy.

:func:`run_broadcast` is the function most users (and all examples,
experiments and benchmarks) call: it wires the policy's
:meth:`~repro.core.policies.SchedulingPolicy.prepare` hook, picks the right
engine for the system model (round-based when no wake-up schedule is given,
slot-based otherwise), applies the requested
:class:`~repro.sim.links.LinkModel` (reliable by default) and returns the
full :class:`~repro.sim.trace.BroadcastResult`.

:data:`ENGINE_BACKENDS` is the *single* registry of engine backends: the
experiment configuration, the CLI and the lossy shims of
:mod:`repro.sim.unreliable` all resolve engine classes through it, so a new
backend plugs in here and is immediately selectable everywhere.
"""

from __future__ import annotations

from repro.core.policies import SchedulingPolicy
from repro.dutycycle.schedule import WakeupSchedule
from repro.network.topology import WSNTopology
from repro.sim.engine import RoundEngine, SlotEngine
from repro.sim.fast_engine import FastRoundEngine, FastSlotEngine
from repro.sim.links import LinkModel, ReliableLinks
from repro.sim.trace import BroadcastResult
from repro.sim.validation import assert_valid

__all__ = ["run_broadcast", "ENGINE_BACKENDS"]

#: Engine backends selectable via ``run_broadcast(..., engine=...)``:
#: ``(round_engine_cls, slot_engine_cls)`` per backend name.  Both classes
#: of a backend accept ``link_model=`` as their last constructor argument.
ENGINE_BACKENDS = {
    "reference": (RoundEngine, SlotEngine),
    "vectorized": (FastRoundEngine, FastSlotEngine),
}


def run_broadcast(
    topology: WSNTopology,
    source: int,
    policy: SchedulingPolicy,
    *,
    schedule: WakeupSchedule | None = None,
    start_time: int = 1,
    align_start: bool = False,
    max_time: int | None = None,
    validate: bool = True,
    engine: str = "reference",
    link_model: LinkModel | None = None,
) -> BroadcastResult:
    """Broadcast from ``source`` under ``policy`` and return the trace.

    Parameters
    ----------
    topology:
        The network.
    source:
        The node that holds the message at ``start_time``.
    policy:
        Any scheduling policy (the paper's OPT / G-OPT / E-model, a baseline,
        or a user-supplied implementation of :class:`SchedulingPolicy`).
    schedule:
        A wake-up schedule selects the asynchronous duty-cycle system;
        ``None`` selects the round-based synchronous system.
    start_time:
        ``t_s``, 1-based.
    align_start:
        Duty-cycle only: move ``t_s`` to the source's first wake-up slot at
        or after ``start_time`` (the paper's examples assume ``t_s ∈ T(s)``).
    max_time:
        Optional cap on simulated rounds/slots (defaults to a generous bound
        derived from the baselines' worst case, stretched by the link
        model's expected retransmission factor).
    validate:
        Re-validate the produced trace against the network model before
        returning (cheap; disable only in tight benchmarking loops).  Lossy
        traces are validated against the *delivered* receivers.
    engine:
        ``"reference"`` (the frozenset/bigint engines, the correctness
        oracle) or ``"vectorized"`` (the numpy bitset backend of
        :mod:`repro.sim.fast_engine`).  Both produce bit-identical traces
        for any link model; the vectorized backend is the fast path for
        large sweeps.
    link_model:
        Delivery semantics: ``None`` / :class:`~repro.sim.links.ReliableLinks`
        for the paper's model, or
        :class:`~repro.sim.links.IndependentLossLinks` for independent
        per-link failures (§VI robustness).  Any ``engine`` combines with
        any link model; the traces are bit-identical per (model, seed)
        across backends.

    Returns
    -------
    BroadcastResult
        The complete trace; ``result.latency`` is the paper's ``P(A)`` for
        ``start_time=1``.
    """
    try:
        round_engine_cls, slot_engine_cls = ENGINE_BACKENDS[engine]
    except KeyError:
        raise ValueError(
            f"unknown engine backend {engine!r}; expected one of "
            f"{sorted(ENGINE_BACKENDS)}"
        ) from None
    link = ReliableLinks() if link_model is None else link_model
    if not link.lossless and not getattr(policy, "loss_tolerant", True):
        raise ValueError(
            f"policy {policy.name!r} replays a fixed plan that assumes reliable "
            "delivery and cannot run over lossy links; use a frontier scheduler "
            "(OPT, G-OPT, E-model, largest-first) for the loss axis"
        )
    policy.prepare(topology, schedule, source)
    if schedule is None:
        round_engine = round_engine_cls(topology, link_model=link)
        result = round_engine.run(
            policy, source, start_time=start_time, max_rounds=max_time
        )
    else:
        slot_engine = slot_engine_cls(topology, schedule, link_model=link)
        result = slot_engine.run(
            policy,
            source,
            start_time=start_time,
            align_start=align_start,
            max_slots=max_time,
        )
    if validate:
        assert_valid(
            topology,
            result,
            schedule=schedule,
            backend=engine,
            lossy=not link.lossless,
        )
    return result
