"""Broadcast traces: the full record of one simulated broadcast.

A :class:`BroadcastResult` stores every advance the policy issued, in order,
plus enough bookkeeping to recompute any metric afterwards.  The latency
definition follows the paper: the broadcast starts at ``t_s`` (the first
slot the source may transmit in) and ends at ``t_e``, the slot of the last
transmission that completes coverage; ``P(A)`` is ``t_e`` when ``t_s = 1``.
The figures sweep random sources, so :attr:`BroadcastResult.latency`
reports the elapsed rounds/slots ``t_e - t_s + 1`` which coincides with
``P(A)`` for ``t_s = 1`` and is start-time invariant otherwise.

A *multi-source* broadcast (``run_broadcast(..., sources)`` with ``k``
sources) simulates ``k`` concurrent wavefronts on one shared timeline; its
:class:`MultiBroadcastResult` wraps one complete per-message
:class:`BroadcastResult` per wavefront — each message's trace is a valid
single-source trace on its own (coverage, receivers, awake checks), while
the wrapper reports the workload-level view: the makespan (the paper's
``P(A)`` of the slowest message), per-message latencies, and the merged
advance stream that energy accounting consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.advance import Advance
from repro.network.topology import WSNTopology

__all__ = ["BroadcastResult", "MultiBroadcastResult"]


@dataclass(frozen=True)
class BroadcastResult:
    """The outcome of one simulated broadcast.

    Attributes
    ----------
    policy_name:
        Name of the scheduling policy that produced the trace.
    source:
        The broadcast source.
    start_time:
        ``t_s`` — the round/slot at which the simulation started.
    end_time:
        ``t_e`` — the round/slot of the last transmission (equals
        ``start_time - 1`` if the network had a single node and nothing was
        transmitted).
    covered:
        The final covered set (equals the node set for a completed broadcast).
    advances:
        Every advance, in chronological order.
    synchronous:
        True for the round-based system, False for the duty-cycle system.
    cycle_rate:
        The duty-cycle rate ``r`` (1 for the synchronous system).
    """

    policy_name: str
    source: int
    start_time: int
    end_time: int
    covered: frozenset[int]
    advances: tuple[Advance, ...] = field(default_factory=tuple)
    synchronous: bool = True
    cycle_rate: int = 1

    @property
    def latency(self) -> int:
        """Elapsed rounds/slots ``t_e - t_s + 1`` (the paper's ``P(A)`` for ``t_s=1``)."""
        return self.end_time - self.start_time + 1

    @property
    def num_advances(self) -> int:
        """Number of rounds/slots in which at least one relay transmitted."""
        return len(self.advances)

    @property
    def total_transmissions(self) -> int:
        """Total number of individual node transmissions."""
        return sum(len(advance.color) for advance in self.advances)

    @property
    def idle_time(self) -> int:
        """Rounds/slots in the broadcast window without any transmission."""
        return self.latency - self.num_advances

    @property
    def retransmissions(self) -> int:
        """Transmissions beyond each node's first.

        Over lossy links an uncovered node simply stays in the frontier, so
        a relay whose deliveries failed is scheduled again later; this
        counts those repeat transmissions across the whole trace.  (Frontier
        policies never retransmit over reliable links; layered baselines may
        legally transmit a node twice, so this is not strictly a loss
        metric — compare against the loss-free trace of the same policy.)
        """
        return sum(
            count - 1 for count in self.transmissions_by_node().values() if count > 1
        )

    @property
    def failed_deliveries(self) -> int:
        """Intended deliveries that failed across all advances (lossy links)."""
        return sum(advance.failed_deliveries for advance in self.advances)

    def is_complete(self, topology: WSNTopology) -> bool:
        """True iff every node of ``topology`` ended up covered."""
        return self.covered == topology.node_set

    def coverage_timeline(self) -> list[tuple[int, int]]:
        """``(time, cumulative covered count)`` after each advance.

        The initial entry accounts for the source holding the message at
        ``start_time`` before any transmission.
        """
        count = len(self.covered)
        # Reconstruct forward from the advances: start with the source only.
        timeline: list[tuple[int, int]] = [(self.start_time, 1)]
        running = 1
        for advance in self.advances:
            running += len(advance.receivers)
            timeline.append((advance.time, running))
        if running != count:  # pragma: no cover - defensive, validated elsewhere
            timeline.append((self.end_time, count))
        return timeline

    def transmissions_by_node(self) -> dict[int, int]:
        """How many times each node transmitted during the broadcast."""
        counts: dict[int, int] = {}
        for advance in self.advances:
            for node in advance.color:
                counts[node] = counts.get(node, 0) + 1
        return counts

    def summary(self) -> str:
        """A one-line human-readable summary (used by the examples)."""
        system = "rounds" if self.synchronous else f"slots (r={self.cycle_rate})"
        return (
            f"{self.policy_name}: latency={self.latency} {system}, "
            f"advances={self.num_advances}, transmissions={self.total_transmissions}"
        )


@dataclass(frozen=True)
class MultiBroadcastResult:
    """The outcome of one multi-source broadcast (``k`` concurrent messages).

    Attributes
    ----------
    sources:
        The broadcast sources, one per message (message ``i`` originates at
        ``sources[i]``).
    start_time:
        The shared ``t_s`` of every message (all wavefronts start on the
        same timeline).
    messages:
        One complete per-message :class:`BroadcastResult` per source, in
        source order.  ``messages[i].latency`` / ``messages[i].covered``
        are the per-message latency and coverage; for ``k = 1`` the single
        entry is bit-identical to the plain single-source trace.
    synchronous, cycle_rate:
        The system model, mirrored from the engine.
    """

    sources: tuple[int, ...]
    start_time: int
    messages: tuple[BroadcastResult, ...] = field(default_factory=tuple)
    synchronous: bool = True
    cycle_rate: int = 1

    @property
    def num_messages(self) -> int:
        """Number of concurrent messages ``k``."""
        return len(self.messages)

    @property
    def end_time(self) -> int:
        """``t_e`` of the slowest message."""
        return max(
            (message.end_time for message in self.messages),
            default=self.start_time - 1,
        )

    @property
    def latency(self) -> int:
        """The makespan: elapsed rounds/slots until *every* message covered
        the network (``max_i latency_i`` on the shared timeline)."""
        return self.end_time - self.start_time + 1

    @property
    def makespan(self) -> int:
        """Alias of :attr:`latency` (the workload-level completion time)."""
        return self.latency

    @property
    def per_message_latency(self) -> tuple[int, ...]:
        """The per-message latencies, in source order."""
        return tuple(message.latency for message in self.messages)

    @property
    def advances(self) -> tuple[Advance, ...]:
        """All advances of all messages merged chronologically.

        Within one round/slot the advances keep source order (the merge is
        stable); energy and transmission accounting iterate this stream.
        """
        merged = [
            advance for message in self.messages for advance in message.advances
        ]
        merged.sort(key=lambda advance: advance.time)
        return tuple(merged)

    @property
    def num_advances(self) -> int:
        """Total advances across all messages."""
        return sum(message.num_advances for message in self.messages)

    @property
    def total_transmissions(self) -> int:
        """Total individual node transmissions across all messages."""
        return sum(message.total_transmissions for message in self.messages)

    @property
    def retransmissions(self) -> int:
        """Total per-message repeat transmissions (see
        :attr:`BroadcastResult.retransmissions`)."""
        return sum(message.retransmissions for message in self.messages)

    @property
    def failed_deliveries(self) -> int:
        """Total failed intended deliveries across all messages (lossy links)."""
        return sum(message.failed_deliveries for message in self.messages)

    def message_for(self, source: int) -> BroadcastResult:
        """The per-message trace of the message originating at ``source``."""
        for message in self.messages:
            if message.source == source:
                return message
        raise KeyError(
            f"no message originates at {source}; sources: {list(self.sources)}"
        )

    def is_complete(self, topology: WSNTopology) -> bool:
        """True iff every message covered every node of ``topology``."""
        return all(message.is_complete(topology) for message in self.messages)

    def summary(self) -> str:
        """A one-line human-readable summary (used by the examples)."""
        system = "rounds" if self.synchronous else f"slots (r={self.cycle_rate})"
        per_message = "/".join(str(lat) for lat in self.per_message_latency)
        return (
            f"{self.num_messages} messages: makespan={self.latency} {system} "
            f"(per-message {per_message}), "
            f"transmissions={self.total_transmissions}"
        )
