"""Broadcast traces: the full record of one simulated broadcast.

A :class:`BroadcastResult` stores every advance the policy issued, in order,
plus enough bookkeeping to recompute any metric afterwards.  The latency
definition follows the paper: the broadcast starts at ``t_s`` (the first
slot the source may transmit in) and ends at ``t_e``, the slot of the last
transmission that completes coverage; ``P(A)`` is ``t_e`` when ``t_s = 1``.
The figures sweep random sources, so :attr:`BroadcastResult.latency`
reports the elapsed rounds/slots ``t_e - t_s + 1`` which coincides with
``P(A)`` for ``t_s = 1`` and is start-time invariant otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.advance import Advance
from repro.network.topology import WSNTopology

__all__ = ["BroadcastResult"]


@dataclass(frozen=True)
class BroadcastResult:
    """The outcome of one simulated broadcast.

    Attributes
    ----------
    policy_name:
        Name of the scheduling policy that produced the trace.
    source:
        The broadcast source.
    start_time:
        ``t_s`` — the round/slot at which the simulation started.
    end_time:
        ``t_e`` — the round/slot of the last transmission (equals
        ``start_time - 1`` if the network had a single node and nothing was
        transmitted).
    covered:
        The final covered set (equals the node set for a completed broadcast).
    advances:
        Every advance, in chronological order.
    synchronous:
        True for the round-based system, False for the duty-cycle system.
    cycle_rate:
        The duty-cycle rate ``r`` (1 for the synchronous system).
    """

    policy_name: str
    source: int
    start_time: int
    end_time: int
    covered: frozenset[int]
    advances: tuple[Advance, ...] = field(default_factory=tuple)
    synchronous: bool = True
    cycle_rate: int = 1

    @property
    def latency(self) -> int:
        """Elapsed rounds/slots ``t_e - t_s + 1`` (the paper's ``P(A)`` for ``t_s=1``)."""
        return self.end_time - self.start_time + 1

    @property
    def num_advances(self) -> int:
        """Number of rounds/slots in which at least one relay transmitted."""
        return len(self.advances)

    @property
    def total_transmissions(self) -> int:
        """Total number of individual node transmissions."""
        return sum(len(advance.color) for advance in self.advances)

    @property
    def idle_time(self) -> int:
        """Rounds/slots in the broadcast window without any transmission."""
        return self.latency - self.num_advances

    @property
    def retransmissions(self) -> int:
        """Transmissions beyond each node's first.

        Over lossy links an uncovered node simply stays in the frontier, so
        a relay whose deliveries failed is scheduled again later; this
        counts those repeat transmissions across the whole trace.  (Frontier
        policies never retransmit over reliable links; layered baselines may
        legally transmit a node twice, so this is not strictly a loss
        metric — compare against the loss-free trace of the same policy.)
        """
        return sum(
            count - 1 for count in self.transmissions_by_node().values() if count > 1
        )

    @property
    def failed_deliveries(self) -> int:
        """Intended deliveries that failed across all advances (lossy links)."""
        return sum(advance.failed_deliveries for advance in self.advances)

    def is_complete(self, topology: WSNTopology) -> bool:
        """True iff every node of ``topology`` ended up covered."""
        return self.covered == topology.node_set

    def coverage_timeline(self) -> list[tuple[int, int]]:
        """``(time, cumulative covered count)`` after each advance.

        The initial entry accounts for the source holding the message at
        ``start_time`` before any transmission.
        """
        count = len(self.covered)
        # Reconstruct forward from the advances: start with the source only.
        timeline: list[tuple[int, int]] = [(self.start_time, 1)]
        running = 1
        for advance in self.advances:
            running += len(advance.receivers)
            timeline.append((advance.time, running))
        if running != count:  # pragma: no cover - defensive, validated elsewhere
            timeline.append((self.end_time, count))
        return timeline

    def transmissions_by_node(self) -> dict[int, int]:
        """How many times each node transmitted during the broadcast."""
        counts: dict[int, int] = {}
        for advance in self.advances:
            for node in advance.color:
                counts[node] = counts.get(node, 0) + 1
        return counts

    def summary(self) -> str:
        """A one-line human-readable summary (used by the examples)."""
        system = "rounds" if self.synchronous else f"slots (r={self.cycle_rate})"
        return (
            f"{self.policy_name}: latency={self.latency} {system}, "
            f"advances={self.num_advances}, transmissions={self.total_transmissions}"
        )
