"""Round-based and slot-based broadcast engines (the set-based kernel).

The engines own the simulation loop; every scheduling decision is delegated
to a :class:`repro.core.policies.SchedulingPolicy`, and every *delivery* to
a :class:`repro.sim.links.LinkModel` (reliable by default, lossy for the
§VI robustness experiments).  Both engines enforce the paper's network
model at the boundary:

* a node may only relay if it already holds the message;
* (slot engine) a node may only relay in a slot contained in its wake-up
  schedule ``T(u)``;
* the transmitters of a single round/slot must be mutually interference-free
  with respect to the nodes that still need the message — a policy
  returning a conflicting set is a bug and the engine fails loudly instead
  of silently simulating an invalid schedule;
* the nodes *intended* by an advance are exactly the uncovered neighbours
  of its transmitters; the link model then decides which of them actually
  receive the message (all of them, for :class:`~repro.sim.links.ReliableLinks`).

``_EngineBase._run`` is the shared broadcast kernel: one loop serves the
reliable and the lossy configurations of both system models, so there is a
single place where coverage, timing and trace recording are defined (the
numpy-bitset twin lives in :mod:`repro.sim.fast_engine`).
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.advance import Advance, BroadcastState
from repro.core.policies import SchedulingPolicy
from repro.dutycycle.schedule import WakeupSchedule
from repro.network.interference import conflicting_pairs, receivers_of
from repro.network.topology import WSNTopology
from repro.sim.links import LinkModel, ReliableLinks
from repro.sim.trace import BroadcastResult
from repro.utils.validation import require

__all__ = ["SimulationTimeout", "RoundEngine", "SlotEngine"]


class SimulationTimeout(RuntimeError):
    """The broadcast did not complete within the engine's time limit."""


class _EngineBase:
    """Shared bookkeeping of both engines."""

    def __init__(self, topology: WSNTopology, link_model: LinkModel | None = None) -> None:
        self.topology = topology
        self.link_model = ReliableLinks() if link_model is None else link_model

    def _check_advance(
        self,
        advance: Advance,
        covered: frozenset[int],
        time: int,
        schedule: WakeupSchedule | None,
        *,
        check_conflicts: bool = True,
    ) -> None:
        if advance.time != time:
            raise ValueError(
                f"policy returned an advance for time {advance.time}, expected {time}"
            )
        not_covered = advance.color - covered
        if not_covered:
            raise ValueError(
                f"policy scheduled transmitters that do not hold the message: "
                f"{sorted(not_covered)}"
            )
        if schedule is not None:
            asleep = [u for u in advance.color if not schedule.is_active(u, time)]
            if asleep:
                raise ValueError(
                    f"policy scheduled sleeping transmitters at slot {time}: {sorted(asleep)}"
                )
        if check_conflicts:
            conflicts = conflicting_pairs(self.topology, advance.color, covered)
            if conflicts:
                raise ValueError(
                    f"policy scheduled conflicting transmitters at time {time}: {conflicts}"
                )
        expected = receivers_of(self.topology, advance.color, covered)
        if expected != advance.receivers:
            raise ValueError(
                "advance.receivers does not match the uncovered neighbours of its "
                f"transmitters at time {time}"
            )

    def _run(
        self,
        policy: SchedulingPolicy,
        source: int,
        start_time: int,
        limit: int,
        schedule: WakeupSchedule | None,
    ) -> BroadcastResult:
        require(source in self.topology, f"unknown source node {source}")
        require(start_time >= 1, "start_time is 1-based")
        link = self.link_model
        link_state = None if link.lossless else link.make_state()
        covered: frozenset[int] = frozenset({source})
        advances: list[Advance] = []
        time = start_time
        end_time = start_time - 1
        full = self.topology.node_set

        while covered != full:
            if time > limit:
                raise SimulationTimeout(
                    f"broadcast did not complete by time {limit} "
                    f"(covered {len(covered)}/{len(full)} nodes); the policy or the "
                    "wake-up schedule is not making progress"
                )
            state = BroadcastState(
                topology=self.topology,
                covered=covered,
                time=time,
                schedule=schedule,
            )
            advance = policy.select_advance(state)
            if advance is not None:
                self._check_advance(
                    advance,
                    covered,
                    time,
                    schedule,
                    check_conflicts=getattr(policy, "interference_free", True),
                )
                if link.lossless:
                    recorded = advance
                    delivered = advance.receivers
                else:
                    delivered = link.deliver(link_state, self.topology, advance, covered)
                    recorded = replace(
                        advance,
                        receivers=delivered,
                        intended_receivers=advance.receivers,
                    )
                covered = covered | delivered
                if delivered:
                    end_time = time
                advances.append(recorded)
            time += 1

        return BroadcastResult(
            policy_name=policy.name,
            source=source,
            start_time=start_time,
            end_time=max(end_time, start_time - 1),
            covered=covered,
            advances=tuple(advances),
            synchronous=schedule is None,
            cycle_rate=1 if schedule is None else schedule.rate,
        )


class RoundEngine(_EngineBase):
    """The round-based synchronous system: every node may relay every round."""

    def run(
        self,
        policy: SchedulingPolicy,
        source: int,
        *,
        start_time: int = 1,
        max_rounds: int | None = None,
    ) -> BroadcastResult:
        """Simulate a broadcast and return its trace.

        ``max_rounds`` defaults to a generous bound derived from the
        baseline's worst case (the hop radius times the maximum colour-clique
        size cannot exceed the number of nodes times the hop radius).
        """
        require(source in self.topology, f"unknown source node {source}")
        if max_rounds is None:
            depth = max(self.topology.eccentricity(source), 1)
            max_rounds = int(
                (depth * max(self.topology.max_degree(), 1) + depth + 8)
                * self.link_model.limit_stretch
            )
        limit = start_time + max_rounds
        return self._run(policy, source, start_time, limit, schedule=None)


class SlotEngine(_EngineBase):
    """The asynchronous duty-cycle system: relays only at wake-up slots."""

    def __init__(
        self,
        topology: WSNTopology,
        schedule: WakeupSchedule,
        link_model: LinkModel | None = None,
    ) -> None:
        super().__init__(topology, link_model)
        missing = set(topology.node_ids) - set(schedule.node_ids)
        if missing:
            raise ValueError(
                f"wake-up schedule missing nodes {sorted(missing)[:5]}..."
                if len(missing) > 5
                else f"wake-up schedule missing nodes {sorted(missing)}"
            )
        self.schedule = schedule

    def run(
        self,
        policy: SchedulingPolicy,
        source: int,
        *,
        start_time: int = 1,
        align_start: bool = False,
        max_slots: int | None = None,
    ) -> BroadcastResult:
        """Simulate a duty-cycle broadcast.

        ``align_start=True`` moves the start to the source's first wake-up
        slot at or after ``start_time`` (so ``t_s ∈ T(s)`` as in the paper's
        examples).  ``max_slots`` defaults to several times the baseline's
        ``17 k d`` worst case.
        """
        require(source in self.topology, f"unknown source node {source}")
        if align_start:
            start_time = self.schedule.next_active_slot(source, start_time)
        if max_slots is None:
            depth = max(self.topology.eccentricity(source), 1)
            # max_rate, not rate: with heterogeneous duty cycling the cap
            # must cover the sleepiest node's cycle length.
            worst_per_layer = 2 * self.schedule.max_rate * (
                max(self.topology.max_degree(), 1) + 2
            )
            max_slots = int(
                (depth * worst_per_layer + 4 * self.schedule.max_rate)
                * self.link_model.limit_stretch
            )
        limit = start_time + max_slots
        return self._run(policy, source, start_time, limit, schedule=self.schedule)
