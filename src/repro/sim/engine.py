"""Round-based and slot-based broadcast engines (the set-based kernel).

The engines own the simulation loop; every scheduling decision is delegated
to a :class:`repro.core.policies.SchedulingPolicy`, and every *delivery* to
a :class:`repro.sim.links.LinkModel` (reliable by default, lossy for the
§VI robustness experiments).  Both engines enforce the paper's network
model at the boundary:

* a node may only relay if it already holds the message;
* (slot engine) a node may only relay in a slot contained in its wake-up
  schedule ``T(u)``;
* the transmitters of a single round/slot must be mutually interference-free
  with respect to the nodes that still need the message — a policy
  returning a conflicting set is a bug and the engine fails loudly instead
  of silently simulating an invalid schedule;
* the nodes *intended* by an advance are exactly the uncovered neighbours
  of its transmitters; the link model then decides which of them actually
  receive the message (all of them, for :class:`~repro.sim.links.ReliableLinks`).

``_EngineBase._run`` is the shared broadcast kernel: one loop serves the
reliable and the lossy configurations of both system models, so there is a
single place where coverage, timing and trace recording are defined (the
numpy-bitset twin lives in :mod:`repro.sim.fast_engine`).

``_EngineBase._run_multi`` is the *multi-source* kernel behind
``run_broadcast(..., k sources)``: ``k`` concurrent wavefronts share the
timeline (and, in the slot engine, the wake-up schedule) and contend for
slots under the paper's interference rules.  Each message keeps its own
covered set and its own policy instance; per slot the messages are offered
in a rotating priority order (so no message is structurally favoured) and
an advance is *deferred* — not transmitted, retried at a later slot — when
it would cross-interfere with an advance already accepted this slot:

* a node may serve at most one message per slot (transmitter or intended
  receiver of two messages → the later message waits);
* an intended receiver of one message must not be in range of another
  accepted message's transmitter (the collision would destroy both), in
  either acceptance order.

Deferral relies on the policies re-planning from their actual covered set
every slot, which is exactly the :attr:`SchedulingPolicy.loss_tolerant`
contract; ``run_broadcast`` rejects planned baselines for ``k > 1``.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from repro.core.advance import Advance, BroadcastState
from repro.core.policies import SchedulingPolicy
from repro.dutycycle.schedule import WakeupSchedule
from repro.network.interference import conflicting_pairs, receivers_of
from repro.network.topology import WSNTopology
from repro.sim.links import LinkModel, ReliableLinks
from repro.sim.trace import BroadcastResult, MultiBroadcastResult
from repro.utils.validation import require

__all__ = ["SimulationTimeout", "RoundEngine", "SlotEngine"]


class SimulationTimeout(RuntimeError):
    """The broadcast did not complete within the engine's time limit."""


def check_multi_inputs(
    topology: WSNTopology,
    policies: Sequence[SchedulingPolicy],
    sources: Sequence[int],
) -> None:
    """Validate the (policies, sources) inputs of a multi-source run.

    Shared by both engine backends — the contract is representation-free
    (source distinctness/membership, one policy per message), so it lives
    once at module level instead of being twinned like the kernels.
    """
    require(len(sources) >= 1, "a multi-source broadcast needs >= 1 source")
    require(
        len(set(sources)) == len(sources),
        f"duplicate sources: {sorted(sources)}",
    )
    for source in sources:
        require(source in topology, f"unknown source node {source}")
    require(
        len(policies) == len(sources),
        f"need one policy per message: {len(policies)} policies for "
        f"{len(sources)} sources",
    )


class _EngineBase:
    """Shared bookkeeping of both engines."""

    def __init__(self, topology: WSNTopology, link_model: LinkModel | None = None) -> None:
        self.topology = topology
        self.link_model = ReliableLinks() if link_model is None else link_model

    def _check_advance(
        self,
        advance: Advance,
        covered: frozenset[int],
        time: int,
        schedule: WakeupSchedule | None,
        *,
        check_conflicts: bool = True,
    ) -> None:
        if advance.time != time:
            raise ValueError(
                f"policy returned an advance for time {advance.time}, expected {time}"
            )
        not_covered = advance.color - covered
        if not_covered:
            raise ValueError(
                f"policy scheduled transmitters that do not hold the message: "
                f"{sorted(not_covered)}"
            )
        if schedule is not None:
            asleep = [u for u in advance.color if not schedule.is_active(u, time)]
            if asleep:
                raise ValueError(
                    f"policy scheduled sleeping transmitters at slot {time}: {sorted(asleep)}"
                )
        if check_conflicts:
            conflicts = conflicting_pairs(self.topology, advance.color, covered)
            if conflicts:
                raise ValueError(
                    f"policy scheduled conflicting transmitters at time {time}: {conflicts}"
                )
        expected = receivers_of(self.topology, advance.color, covered)
        if expected != advance.receivers:
            raise ValueError(
                "advance.receivers does not match the uncovered neighbours of its "
                f"transmitters at time {time}"
            )

    def _run(
        self,
        policy: SchedulingPolicy,
        source: int,
        start_time: int,
        limit: int,
        schedule: WakeupSchedule | None,
    ) -> BroadcastResult:
        require(source in self.topology, f"unknown source node {source}")
        require(start_time >= 1, "start_time is 1-based")
        link = self.link_model
        link_state = None if link.lossless else link.make_state()
        covered: frozenset[int] = frozenset({source})
        advances: list[Advance] = []
        time = start_time
        end_time = start_time - 1
        full = self.topology.node_set

        while covered != full:
            # Honour the policy's fast-forward hint before the limit check
            # (the same order as every other backend): the hint promises
            # select_advance answers None on the skipped slots, so jumping
            # is trace-preserving.
            hinted = policy.next_decision_slot(time)
            if hinted is not None and hinted > time:
                time = hinted
            if time > limit:
                raise SimulationTimeout(
                    f"broadcast did not complete by time {limit} "
                    f"(covered {len(covered)}/{len(full)} nodes); the policy or the "
                    "wake-up schedule is not making progress"
                )
            state = BroadcastState(
                topology=self.topology,
                covered=covered,
                time=time,
                schedule=schedule,
            )
            advance = policy.select_advance(state)
            if advance is not None:
                self._check_advance(
                    advance,
                    covered,
                    time,
                    schedule,
                    check_conflicts=getattr(policy, "interference_free", True),
                )
                if link.lossless:
                    recorded = advance
                    delivered = advance.receivers
                else:
                    delivered = link.deliver(link_state, self.topology, advance, covered)
                    recorded = replace(
                        advance,
                        receivers=delivered,
                        intended_receivers=advance.receivers,
                    )
                covered = covered | delivered
                if delivered:
                    end_time = time
                advances.append(recorded)
            time += 1

        return BroadcastResult(
            policy_name=policy.name,
            source=source,
            start_time=start_time,
            end_time=max(end_time, start_time - 1),
            covered=covered,
            advances=tuple(advances),
            synchronous=schedule is None,
            cycle_rate=1 if schedule is None else schedule.rate,
        )

    def _check_multi_inputs(
        self, policies: Sequence[SchedulingPolicy], sources: Sequence[int]
    ) -> None:
        check_multi_inputs(self.topology, policies, sources)

    def _run_multi(
        self,
        policies: Sequence[SchedulingPolicy],
        sources: Sequence[int],
        start_time: int,
        limit: int,
        schedule: WakeupSchedule | None,
    ) -> MultiBroadcastResult:
        # Inputs were validated by the public ``run_multi`` entry point
        # (which needs them checked before its default-limit computation).
        require(start_time >= 1, "start_time is 1-based")
        topology = self.topology
        k = len(sources)
        link = self.link_model
        link_state = None if link.lossless else link.make_state()
        full = topology.node_set
        covered: list[frozenset[int]] = [frozenset({s}) for s in sources]
        advances: list[list[Advance]] = [[] for _ in range(k)]
        end_times = [start_time - 1] * k
        time = start_time

        while any(c != full for c in covered):
            if time > limit:
                pending = sum(1 for c in covered if c != full)
                raise SimulationTimeout(
                    f"multi-source broadcast did not complete by time {limit} "
                    f"({pending}/{k} messages still spreading); the policies, "
                    "the wake-up schedule or the slot contention is not making "
                    "progress"
                )
            # Slot-contention bookkeeping: nodes engaged this slot (either
            # transmitting or intended to receive some accepted message),
            # nodes in range of an accepted transmitter, and the accepted
            # intended receivers — all as bigint masks.
            busy_mask = 0
            heard_mask = 0
            rx_mask = 0
            offset = (time - start_time) % k
            for m in ((offset + j) % k for j in range(k)):
                if covered[m] == full:
                    continue
                policy = policies[m]
                state = BroadcastState(
                    topology=topology,
                    covered=covered[m],
                    time=time,
                    schedule=schedule,
                )
                advance = policy.select_advance(state)
                if advance is None:
                    continue
                self._check_advance(
                    advance,
                    covered[m],
                    time,
                    schedule,
                    check_conflicts=getattr(policy, "interference_free", True),
                )
                color_mask = topology.mask_from_nodes(advance.color)
                recv_mask = topology.mask_from_nodes(advance.receivers)
                cand_heard = 0
                for transmitter in advance.color:
                    cand_heard |= topology.neighbor_mask(transmitter)
                if (
                    ((color_mask | recv_mask) & busy_mask)
                    or (recv_mask & heard_mask)
                    or (rx_mask & cand_heard)
                ):
                    # Cross-message contention: defer this message; its
                    # frontier is unchanged, so the policy re-plans later.
                    continue
                if link.lossless:
                    recorded = advance
                    delivered = advance.receivers
                else:
                    delivered = link.deliver(link_state, topology, advance, covered[m])
                    recorded = replace(
                        advance,
                        receivers=delivered,
                        intended_receivers=advance.receivers,
                    )
                covered[m] = covered[m] | delivered
                if delivered:
                    end_times[m] = time
                advances[m].append(recorded)
                busy_mask |= color_mask | recv_mask
                heard_mask |= cand_heard
                rx_mask |= recv_mask
            time += 1

        messages = tuple(
            BroadcastResult(
                policy_name=policies[i].name,
                source=sources[i],
                start_time=start_time,
                end_time=max(end_times[i], start_time - 1),
                covered=covered[i],
                advances=tuple(advances[i]),
                synchronous=schedule is None,
                cycle_rate=1 if schedule is None else schedule.rate,
            )
            for i in range(k)
        )
        return MultiBroadcastResult(
            sources=tuple(int(s) for s in sources),
            start_time=start_time,
            messages=messages,
            synchronous=schedule is None,
            cycle_rate=1 if schedule is None else schedule.rate,
        )


class RoundEngine(_EngineBase):
    """The round-based synchronous system: every node may relay every round."""

    def run(
        self,
        policy: SchedulingPolicy,
        source: int,
        *,
        start_time: int = 1,
        max_rounds: int | None = None,
    ) -> BroadcastResult:
        """Simulate a broadcast and return its trace.

        ``max_rounds`` defaults to a generous bound derived from the
        baseline's worst case (the hop radius times the maximum colour-clique
        size cannot exceed the number of nodes times the hop radius).
        """
        require(source in self.topology, f"unknown source node {source}")
        if max_rounds is None:
            max_rounds = self._default_max_rounds(source)
        limit = start_time + max_rounds
        return self._run(policy, source, start_time, limit, schedule=None)

    def _default_max_rounds(self, source: int) -> int:
        depth = max(self.topology.eccentricity(source), 1)
        return int(
            (depth * max(self.topology.max_degree(), 1) + depth + 8)
            * self.link_model.limit_stretch
        )

    def run_multi(
        self,
        policies: Sequence[SchedulingPolicy],
        sources: Sequence[int],
        *,
        start_time: int = 1,
        max_rounds: int | None = None,
    ) -> MultiBroadcastResult:
        """Simulate ``len(sources)`` concurrent broadcasts on one timeline.

        ``max_rounds`` defaults to the worst single-source bound over the
        sources, stretched by the message count (slot contention can
        serialise the wavefronts in the worst case).
        """
        self._check_multi_inputs(policies, sources)
        if max_rounds is None:
            max_rounds = max(
                self._default_max_rounds(source) for source in sources
            ) * max(len(sources), 1)
        limit = start_time + max_rounds
        return self._run_multi(policies, sources, start_time, limit, schedule=None)


class SlotEngine(_EngineBase):
    """The asynchronous duty-cycle system: relays only at wake-up slots."""

    def __init__(
        self,
        topology: WSNTopology,
        schedule: WakeupSchedule,
        link_model: LinkModel | None = None,
    ) -> None:
        super().__init__(topology, link_model)
        missing = set(topology.node_ids) - set(schedule.node_ids)
        if missing:
            raise ValueError(
                f"wake-up schedule missing nodes {sorted(missing)[:5]}..."
                if len(missing) > 5
                else f"wake-up schedule missing nodes {sorted(missing)}"
            )
        self.schedule = schedule

    def run(
        self,
        policy: SchedulingPolicy,
        source: int,
        *,
        start_time: int = 1,
        align_start: bool = False,
        max_slots: int | None = None,
    ) -> BroadcastResult:
        """Simulate a duty-cycle broadcast.

        ``align_start=True`` moves the start to the source's first wake-up
        slot at or after ``start_time`` (so ``t_s ∈ T(s)`` as in the paper's
        examples).  ``max_slots`` defaults to several times the baseline's
        ``17 k d`` worst case.
        """
        require(source in self.topology, f"unknown source node {source}")
        if align_start:
            start_time = self.schedule.next_active_slot(source, start_time)
        if max_slots is None:
            max_slots = self._default_max_slots(source)
        limit = start_time + max_slots
        return self._run(policy, source, start_time, limit, schedule=self.schedule)

    def _default_max_slots(self, source: int) -> int:
        depth = max(self.topology.eccentricity(source), 1)
        # max_rate, not rate: with heterogeneous duty cycling the cap
        # must cover the sleepiest node's cycle length.
        worst_per_layer = 2 * self.schedule.max_rate * (
            max(self.topology.max_degree(), 1) + 2
        )
        return int(
            (depth * worst_per_layer + 4 * self.schedule.max_rate)
            * self.link_model.limit_stretch
        )

    def run_multi(
        self,
        policies: Sequence[SchedulingPolicy],
        sources: Sequence[int],
        *,
        start_time: int = 1,
        align_start: bool = False,
        max_slots: int | None = None,
    ) -> MultiBroadcastResult:
        """Simulate concurrent duty-cycle broadcasts on one shared timeline.

        ``align_start=True`` moves the shared start to the *earliest* wake-up
        slot of any source at or after ``start_time`` (the other messages
        simply wait for their source's first active slot).  ``max_slots``
        defaults to the worst single-source bound over the sources,
        stretched by the message count.
        """
        self._check_multi_inputs(policies, sources)
        if align_start:
            start_time = min(
                self.schedule.next_active_slot(source, start_time)
                for source in sources
            )
        if max_slots is None:
            max_slots = max(
                self._default_max_slots(source) for source in sources
            ) * max(len(sources), 1)
        limit = start_time + max_slots
        return self._run_multi(
            policies, sources, start_time, limit, schedule=self.schedule
        )
