"""Plain-text rendering of topologies and broadcast schedules.

The reproduction targets headless environments, so instead of matplotlib the
examples and the CLI render results as text: an ASCII scatter of the
deployment and a per-round/slot timeline ("Gantt" view) of who transmits and
who receives.  Both renderers are deterministic, which also makes them easy
to test.
"""

from __future__ import annotations

from repro.network.topology import WSNTopology
from repro.sim.trace import BroadcastResult
from repro.utils.validation import require

__all__ = ["render_topology_ascii", "render_schedule_timeline"]


def render_topology_ascii(
    topology: WSNTopology,
    *,
    width: int = 60,
    height: int = 24,
    highlight: int | None = None,
) -> str:
    """Render the deployment as an ASCII scatter plot.

    Nodes are drawn as ``*`` (or ``S`` for the highlighted node, typically
    the source); multiple nodes falling into the same character cell are
    drawn as ``#``.  The bounding box of the deployment is mapped onto the
    ``width x height`` character grid.
    """
    require(width >= 2 and height >= 2, "grid must be at least 2x2 characters")
    if topology.num_nodes == 0:
        return "(empty topology)"

    positions = topology.positions
    min_x, min_y = positions.min(axis=0)
    max_x, max_y = positions.max(axis=0)
    span_x = max(max_x - min_x, 1e-9)
    span_y = max(max_y - min_y, 1e-9)

    grid = [[" " for _ in range(width)] for _ in range(height)]
    for node_id in topology.node_ids:
        x, y = topology.position(node_id)
        col = int((x - min_x) / span_x * (width - 1))
        row = int((y - min_y) / span_y * (height - 1))
        row = height - 1 - row  # y grows upwards, rows grow downwards
        current = grid[row][col]
        if node_id == highlight:
            grid[row][col] = "S"
        elif current == " ":
            grid[row][col] = "*"
        elif current == "*":
            grid[row][col] = "#"
    border = "+" + "-" * width + "+"
    body = "\n".join("|" + "".join(row) + "|" for row in grid)
    legend = (
        f"{topology.num_nodes} nodes, {topology.num_edges} links"
        + (f", S = node {highlight}" if highlight is not None else "")
    )
    return f"{border}\n{body}\n{border}\n{legend}"


def render_schedule_timeline(
    result: BroadcastResult,
    *,
    max_entries: int = 50,
) -> str:
    """Render a broadcast trace as a per-round/slot timeline.

    Idle slots (duty-cycle waits) are compressed into a single ``... idle``
    line so long light-duty-cycle traces stay readable; at most
    ``max_entries`` transmission rows are shown.
    """
    require(max_entries >= 1, "max_entries must be >= 1")
    unit = "round" if result.synchronous else "slot"
    lines = [
        f"broadcast by {result.policy_name}: source {result.source}, "
        f"P(A) = {result.latency} {unit}s"
    ]
    previous_time = result.start_time - 1
    shown = 0
    for advance in result.advances:
        gap = advance.time - previous_time - 1
        if gap > 0:
            lines.append(f"  ... {gap} idle {unit}{'s' if gap != 1 else ''} ...")
        marker = "#" * min(len(advance.receivers), 40)
        lines.append(
            f"  {unit} {advance.time:>4}: {sorted(advance.color)} -> "
            f"{len(advance.receivers):>3} new receivers {marker}"
        )
        previous_time = advance.time
        shown += 1
        if shown >= max_entries:
            remaining = len(result.advances) - shown
            if remaining > 0:
                lines.append(f"  ... {remaining} further advances omitted ...")
            break
    lines.append(f"  covered {len(result.covered)} nodes by {unit} {result.end_time}")
    return "\n".join(lines)
